//! Long-tail entity alignment (paper Section V-B2): on a sparse
//! SRPRS-style dataset, compare how SDEA and a structure-only baseline
//! fare on long-tail test entities (degree <= 3) versus normal ones.
//!
//! ```sh
//! cargo run --release --example long_tail_alignment
//! ```

use sdea::baselines::transe::JapeStru;
use sdea::baselines::{AlignmentMethod, MethodInput};
use sdea::eval::evaluate_ranking;
use sdea::prelude::*;

fn main() {
    let ds = sdea::synth::generate(&DatasetProfile::srprs_en_fr(220, 11));
    let mut rng = Rng::seed_from_u64(11);
    let split = ds.seeds.split_paper(&mut rng);
    let corpus = sdea::synth::corpus::dataset_corpus(&ds);

    // Partition test pairs by the source entity's degree.
    let (tail, normal): (Vec<_>, Vec<_>) =
        split.test.iter().copied().partition(|&(e1, _)| ds.kg1().degree(e1) <= 3);
    println!(
        "{} test pairs: {} long-tail (degree <= 3), {} normal",
        split.test.len(),
        tail.len(),
        normal.len()
    );

    // --- SDEA ---
    let cfg = SdeaConfig { attr_epochs: 6, rel_epochs: 15, seed: 11, ..SdeaConfig::default() };
    let pipeline = SdeaPipeline {
        kg1: ds.kg1(),
        kg2: ds.kg2(),
        split: &split,
        corpus: &corpus,
        cfg,
        variant: RelVariant::Full,
    };
    println!("training SDEA...");
    let model = pipeline.run();

    // --- structure-only baseline ---
    println!("training JAPE-Stru (structure-only baseline)...");
    let input =
        MethodInput { kg1: ds.kg1(), kg2: ds.kg2(), split: &split, corpus: &corpus, seed: 11 };
    let baseline_result = JapeStru::default().align(&input);

    // Evaluate each method on each stratum.
    let eval_stratum = |pairs: &[(sdea::kg::EntityId, sdea::kg::EntityId)]| {
        if pairs.is_empty() {
            return (0.0, 0.0);
        }
        let sdea_m = model.align_test(pairs).metrics();
        // baseline similarity rows correspond to split.test order
        let idx: Vec<usize> = pairs
            .iter()
            .map(|p| split.test.iter().position(|q| q == p).expect("test pair"))
            .collect();
        let m = baseline_result.sim.shape()[1];
        let mut data = Vec::with_capacity(idx.len() * m);
        for &i in &idx {
            data.extend_from_slice(&baseline_result.sim.data()[i * m..(i + 1) * m]);
        }
        let sub_sim = Tensor::from_vec(data, &[idx.len(), m]);
        let gold: Vec<usize> = pairs.iter().map(|&(_, e)| e.0 as usize).collect();
        let base_m = evaluate_ranking(&sub_sim, &gold);
        (sdea_m.hits1, base_m.hits1)
    };

    let (sdea_tail, base_tail) = eval_stratum(&tail);
    let (sdea_norm, base_norm) = eval_stratum(&normal);
    println!("\n                     {:>12} {:>12}", "long-tail", "normal");
    println!("SDEA      Hits@1     {:>11.1}% {:>11.1}%", sdea_tail * 100.0, sdea_norm * 100.0);
    println!("JAPE-Stru Hits@1     {:>11.1}% {:>11.1}%", base_tail * 100.0, base_norm * 100.0);
    println!(
        "\nThe paper's claim: structure-only methods collapse on long-tail\n\
         entities while SDEA keeps working by reading their long-text\n\
         attributes (Section V-B2). SDEA's long-tail advantage here: {:+.1} points.",
        (sdea_tail - base_tail) * 100.0
    );
}
