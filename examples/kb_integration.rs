//! Knowledge-base integration — the paper's motivating application
//! (Section I): align two KGs, apply 1-1 stable matching, then *merge*
//! them into one integrated KG and export it as TSV.
//!
//! ```sh
//! cargo run --release --example kb_integration
//! ```

use sdea::core::align::stable_matching;
use sdea::eval::cosine_matrix;
use sdea::prelude::*;
use std::collections::HashMap;

fn main() {
    let ds = sdea::synth::generate(&DatasetProfile::srprs_dbp_wd(150, 21));
    let mut rng = Rng::seed_from_u64(21);
    let split = ds.seeds.split_paper(&mut rng);
    let corpus = sdea::synth::corpus::dataset_corpus(&ds);
    let (kg1, kg2) = (ds.kg1(), ds.kg2());

    let cfg = SdeaConfig { attr_epochs: 5, rel_epochs: 12, seed: 21, ..SdeaConfig::default() };
    println!("aligning {} ({} + {} entities)...", ds.name, kg1.num_entities(), kg2.num_entities());
    let model =
        SdeaPipeline { kg1, kg2, split: &split, corpus: &corpus, cfg, variant: RelVariant::Full }
            .run();

    // Full similarity matrix and a confident 1-1 matching over ALL
    // entities (not just test pairs) — the integration step.
    let sim = cosine_matrix(&model.ent1, &model.ent2);
    let matches = stable_matching(&sim);
    let threshold = 0.75f32;
    let mut merged: HashMap<u32, u32> = HashMap::new();
    for (i, m) in matches.iter().enumerate() {
        if let Some(j) = m {
            if sim.at2(i, *j) >= threshold {
                merged.insert(i as u32, *j as u32);
            }
        }
    }
    println!("matched {} entity pairs above cosine {threshold}", merged.len());

    // Merge: KG1 entities keep their identity; matched KG2 entities map
    // onto them; everything else is added as-is.
    let mut b = KgBuilder::new();
    let name2 = |e: sdea::kg::EntityId| -> String {
        if let Some((&i, _)) = merged.iter().find(|&(_, &j)| j == e.0) {
            kg1.entity_name(sdea::kg::EntityId(i)).to_string()
        } else {
            format!("kg2:{}", kg2.entity_name(e))
        }
    };
    for t in kg1.rel_triples() {
        b.rel_triple(kg1.entity_name(t.head), kg1.relation_name(t.rel), kg1.entity_name(t.tail));
    }
    for t in kg1.attr_triples() {
        b.attr_triple(kg1.entity_name(t.entity), kg1.attribute_name(t.attr), &t.value);
    }
    for t in kg2.rel_triples() {
        b.rel_triple(&name2(t.head), kg2.relation_name(t.rel), &name2(t.tail));
    }
    for t in kg2.attr_triples() {
        b.attr_triple(&name2(t.entity), kg2.attribute_name(t.attr), &t.value);
    }
    let integrated = b.build();

    println!("\nintegrated KB:");
    println!(
        "  {} entities (from {} + {}; {} merged)",
        integrated.num_entities(),
        kg1.num_entities(),
        kg2.num_entities(),
        merged.len()
    );
    println!(
        "  {} relational + {} attributed triples",
        integrated.rel_triples().len(),
        integrated.attr_triples().len()
    );

    // Export.
    let dir = std::env::temp_dir().join("sdea_integrated_kb");
    std::fs::create_dir_all(&dir).expect("create output dir");
    let rel = dir.join("rel_triples.tsv");
    let attr = dir.join("attr_triples.tsv");
    sdea::kg::io::save_kg(&integrated, &rel, &attr).expect("export");
    println!("  exported to {} and {}", rel.display(), attr.display());

    // Quality: how many merged pairs agree with the ground truth?
    let gold: HashMap<u32, u32> = ds.seeds.pairs.iter().map(|&(a, b)| (a.0, b.0)).collect();
    let correct = merged.iter().filter(|&(i, j)| gold.get(i) == Some(j)).count();
    println!(
        "  merge precision vs ground truth: {:.1}% ({} / {})",
        100.0 * correct as f64 / merged.len().max(1) as f64,
        correct,
        merged.len()
    );
}
