//! Aligning two hand-built knowledge graphs — the paper's own running
//! example (Fig. 2): C._Ronaldo / Cristiano_Ronaldo and the long-tail pair
//! F.W._Bruskewitz / Fabian_Bruskewitz, whose only evidence on one side is
//! a long `comment` text.
//!
//! Shows how to use the public API on your own data: build KGs with
//! `KgBuilder`, provide a few seed alignments, train, and inspect ranked
//! candidates.
//!
//! ```sh
//! cargo run --release --example custom_kgs
//! ```

use sdea::prelude::*;

fn kg1() -> KnowledgeGraph {
    let mut b = KgBuilder::new();
    // C._Ronaldo and neighbours (paper Fig. 2, KG1)
    b.rel_triple("C._Ronaldo", "nationality", "Portugal");
    b.rel_triple("C._Ronaldo", "team", "C.D._Nacional");
    b.rel_triple("C._Ronaldo", "team", "Real_Madrid_C.F.");
    b.rel_triple("C._Ronaldo", "trainedAt", "Academia_Sporting");
    b.rel_triple("C._Ronaldo", "type", "person");
    b.rel_triple("C._Ronaldo", "position", "player");
    b.attr_triple("C._Ronaldo", "name", "C. Ronaldo");
    b.attr_triple("C._Ronaldo", "birthDate", "1985-02-05");
    b.attr_triple("C._Ronaldo", "height", "187");
    // long-tail bishop with structured attributes
    b.rel_triple("F.W._Bruskewitz", "birthPlace", "Milwaukee");
    b.rel_triple("F.W._Bruskewitz", "nationality", "United_States");
    b.rel_triple("F.W._Bruskewitz", "type", "person");
    b.attr_triple("F.W._Bruskewitz", "name", "Fabian Wendelin Bruskewitz");
    b.attr_triple("F.W._Bruskewitz", "workPlace", "Roman Catholic Church");
    b.attr_triple("F.W._Bruskewitz", "startYear", "1992");
    b.attr_triple("F.W._Bruskewitz", "endYear", "2012");
    // context entities
    b.attr_triple("Portugal", "name", "Portugal");
    b.attr_triple("Milwaukee", "name", "Milwaukee");
    b.attr_triple("United_States", "name", "United States");
    b.attr_triple("Real_Madrid_C.F.", "name", "Real Madrid C.F.");
    b.attr_triple("C.D._Nacional", "name", "C.D. Nacional");
    b.attr_triple("Academia_Sporting", "name", "Academia Sporting");
    // a few extra persons so ranking is non-trivial
    for (i, year) in [("A", "1970-01-01"), ("B", "1991-07-21"), ("C", "1960-12-02")] {
        let e = format!("Other_Person_{i}");
        b.rel_triple(&e, "type", "person");
        b.attr_triple(&e, "name", &format!("Other Person {i}"));
        b.attr_triple(&e, "birthDate", year);
    }
    b.build()
}

fn kg2() -> KnowledgeGraph {
    let mut b = KgBuilder::new();
    // Cristiano_Ronaldo (paper Fig. 2, KG2) — different schema
    b.rel_triple("Cristiano_Ronaldo", "countryOfCitizenship", "Portugal");
    b.rel_triple("Cristiano_Ronaldo", "memberOfSportsTeam", "C.D._Nacional");
    b.rel_triple("Cristiano_Ronaldo", "memberOfSportsTeam", "Real_Madrid_C.F.");
    b.rel_triple("Cristiano_Ronaldo", "placeOfBirth", "Madeira");
    b.rel_triple("Cristiano_Ronaldo", "instanceOf", "people");
    b.attr_triple("Cristiano_Ronaldo", "label", "Cristiano Ronaldo");
    b.attr_triple("Cristiano_Ronaldo", "dateOfBirth", "05.02.1985");
    // the long-tail bishop: ONLY a comment, as in the paper
    b.rel_triple("Fabian_Bruskewitz", "instanceOf", "people");
    b.attr_triple(
        "Fabian_Bruskewitz",
        "comment",
        "Fabian Wendelin Bruskewitz is an American prelate of the Roman \
         Catholic Church born in Milwaukee United States who served from \
         1992 until 2012",
    );
    // context entities
    b.attr_triple("Portugal", "label", "Portugal");
    b.attr_triple("Madeira", "label", "Madeira");
    b.attr_triple("Real_Madrid_C.F.", "label", "Real Madrid C.F.");
    b.attr_triple("C.D._Nacional", "label", "C.D. Nacional");
    for (i, year) in [("X", "1970-01-01"), ("Y", "1991-07-21"), ("Z", "1960-12-02")] {
        let e = format!("Some_Person_{i}");
        b.rel_triple(&e, "instanceOf", "people");
        b.attr_triple(&e, "label", &format!("Some Person {i}"));
        b.attr_triple(&e, "dateOfBirth", year);
    }
    b.build()
}

fn main() {
    let kg1 = kg1();
    let kg2 = kg2();

    // Seed alignments: the shared context entities. The two persons are
    // NOT seeds — the model must discover them.
    let seeds: Vec<_> = ["Portugal", "Real_Madrid_C.F.", "C.D._Nacional"]
        .iter()
        .map(|n| (kg1.find_entity(n).unwrap(), kg2.find_entity(n).unwrap()))
        .collect();
    let ronaldo1 = kg1.find_entity("C._Ronaldo").unwrap();
    let ronaldo2 = kg2.find_entity("Cristiano_Ronaldo").unwrap();
    let bishop1 = kg1.find_entity("F.W._Bruskewitz").unwrap();
    let bishop2 = kg2.find_entity("Fabian_Bruskewitz").unwrap();

    let split = SplitSeeds {
        train: seeds.clone(),
        valid: seeds,
        test: vec![(ronaldo1, ronaldo2), (bishop1, bishop2)],
    };

    // Corpus: all attribute values of both KGs (unlabeled).
    let mut corpus: Vec<String> = kg1.attr_triples().iter().map(|t| t.value.clone()).collect();
    corpus.extend(kg2.attr_triples().iter().map(|t| t.value.clone()));

    let cfg = SdeaConfig { attr_epochs: 4, rel_epochs: 8, seed: 7, ..SdeaConfig::default() };
    let pipeline = SdeaPipeline {
        kg1: &kg1,
        kg2: &kg2,
        split: &split,
        corpus: &corpus,
        cfg,
        variant: RelVariant::Full,
    };
    println!("training on the paper's Fig. 2 example...");
    let model = pipeline.run();

    // Inspect the ranking each test entity produces.
    let result = model.align_test(&split.test);
    for (row, &(e1, _)) in split.test.iter().enumerate() {
        let m = result.sim.shape()[1];
        let scores = &result.sim.data()[row * m..(row + 1) * m];
        let top = sdea::eval::top_k_indices(scores, 3);
        println!("\n{} best matches:", kg1.entity_name(e1));
        for (rank, &j) in top.iter().enumerate() {
            println!(
                "  {}. {:<22} (cosine {:+.3})",
                rank + 1,
                kg2.entity_name(sdea::kg::EntityId(j as u32)),
                scores[j]
            );
        }
    }
    let metrics = result.metrics();
    println!("\nHits@1 on the two hidden pairs: {:.0}%", metrics.hits1 * 100.0);
}
