//! Quickstart: generate a small DBP15K-style benchmark, train SDEA
//! end-to-end, and report the paper's metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sdea::prelude::*;

fn main() {
    // 1. A miniature FR-EN benchmark: two KGs derived from one ground-truth
    //    world, with heterogeneous schemas and near-literal names.
    let ds = sdea::synth::generate(&DatasetProfile::dbp15k_fr_en(200, 42));
    println!(
        "generated {}: KG1 {} entities / {} rel triples, KG2 {} entities, {} gold links",
        ds.name,
        ds.kg1().num_entities(),
        ds.kg1().rel_triples().len(),
        ds.kg2().num_entities(),
        ds.seeds.len()
    );

    // 2. The paper's 2:1:7 split.
    let mut rng = Rng::seed_from_u64(42);
    let split = ds.seeds.split_paper(&mut rng);
    println!(
        "split: {} train / {} valid / {} test",
        split.train.len(),
        split.valid.len(),
        split.test.len()
    );

    // 3. Train SDEA. A reduced configuration keeps this example fast; see
    //    `SdeaConfig::default()` for the benchmark configuration.
    let cfg = SdeaConfig {
        attr_epochs: 6,
        rel_epochs: 15,
        max_seq: 64,
        seed: 42,
        ..SdeaConfig::default()
    };
    let corpus = sdea::synth::corpus::dataset_corpus(&ds);
    let pipeline = SdeaPipeline {
        kg1: ds.kg1(),
        kg2: ds.kg2(),
        split: &split,
        corpus: &corpus,
        cfg,
        variant: RelVariant::Full,
    };
    println!("training SDEA (attribute module + relation module)...");
    let model = pipeline.run();

    // 4. Evaluate.
    let result = model.align_test(&split.test);
    let m = result.metrics();
    println!("\nSDEA on {} test pairs:", split.test.len());
    println!("  Hits@1  = {:5.1}%", m.hits1 * 100.0);
    println!("  Hits@10 = {:5.1}%", m.hits10 * 100.0);
    println!("  MRR     = {:5.2}", m.mrr);
    println!("  Hits@1 with stable matching = {:5.1}%", result.stable_matching_hits1() * 100.0);

    let ablation = model.align_test_attr_only(&split.test).metrics();
    println!("  (SDEA w/o rel.: Hits@1 = {:5.1}%)", ablation.hits1 * 100.0);
}
