//! Neural-network specific autograd ops: softmax, log-softmax, negative
//! log-likelihood, layer norm, dropout, and row L2-normalization.

use crate::graph::{Flow, Graph, Var};
use crate::rng::Rng;
use crate::tensor::Tensor;

impl Graph {
    /// Softmax over the last dimension.
    pub fn softmax_lastdim(&self, x: Var) -> Var {
        let pool = self.pool.clone();
        self.unary(
            x,
            |t| t.softmax_lastdim(),
            Box::new(move |g, out, _| {
                // dx = s * (g - <g, s>) per last-dim slice
                let d = *out.shape().last().expect("softmax rank");
                let mut dx = crate::pool::copy_tensor(&pool, g);
                for (gs, ss) in dx.data_mut().chunks_mut(d).zip(out.data().chunks(d)) {
                    let dot: f32 = gs.iter().zip(ss).map(|(&a, &b)| a * b).sum();
                    for (gv, &sv) in gs.iter_mut().zip(ss) {
                        *gv = sv * (*gv - dot);
                    }
                }
                vec![Flow::Grad(dx)]
            }),
        )
    }

    /// Log-softmax over the last dimension.
    pub fn log_softmax_lastdim(&self, x: Var) -> Var {
        let pool = self.pool.clone();
        self.unary(
            x,
            |t| t.log_softmax_lastdim(),
            Box::new(move |g, out, _| {
                // dx = g - softmax * sum(g) per slice; softmax = exp(out)
                let d = *out.shape().last().expect("log_softmax rank");
                let mut dx = crate::pool::copy_tensor(&pool, g);
                for (gs, os) in dx.data_mut().chunks_mut(d).zip(out.data().chunks(d)) {
                    let gsum: f32 = gs.iter().sum();
                    for (gv, &ov) in gs.iter_mut().zip(os) {
                        *gv -= ov.exp() * gsum;
                    }
                }
                vec![Flow::Grad(dx)]
            }),
        )
    }

    /// Mean negative log-likelihood over rows of log-probabilities
    /// `[n,v]` at the given target class per row. Produces a scalar.
    pub fn nll_mean(&self, logp: Var, targets: &[usize]) -> Var {
        let t_f = targets.to_vec();
        let t_b = targets.to_vec();
        self.unary(
            logp,
            move |t| {
                assert_eq!(t.rank(), 2, "nll_mean expects [n,v]");
                assert_eq!(t.shape()[0], t_f.len(), "nll_mean target count");
                let v = t.shape()[1];
                let total: f32 = t_f.iter().enumerate().map(|(i, &c)| -t.data()[i * v + c]).sum();
                Tensor::scalar(total / t_f.len().max(1) as f32)
            },
            Box::new(move |g, _, ps| {
                let v = ps[0].shape()[1];
                let n = t_b.len().max(1) as f32;
                let scale = -g.item() / n;
                let mut dx = Tensor::zeros(ps[0].shape());
                for (i, &c) in t_b.iter().enumerate() {
                    dx.data_mut()[i * v + c] = scale;
                }
                vec![Flow::Grad(dx)]
            }),
        )
    }

    /// Layer normalization over the last dimension with learned gain and
    /// bias (`gain`, `bias` both `[d]`).
    pub fn layer_norm(&self, x: Var, gain: Var, bias: Var, eps: f32) -> Var {
        // Forward computes (x - mu) / sigma per slice; backward uses the
        // standard layer-norm gradient. The normalized values are
        // recomputed in backward from the parent (cheap, avoids captures).
        let (value, rg) = {
            let inner = self.inner.borrow();
            let xv = &inner.values[x.id];
            let gv = &inner.values[gain.id];
            let bv = &inner.values[bias.id];
            let d = *xv.shape().last().expect("layer_norm rank");
            assert_eq!(gv.len(), d, "layer_norm gain");
            assert_eq!(bv.len(), d, "layer_norm bias");
            let mut out = xv.clone();
            for chunk in out.data_mut().chunks_mut(d) {
                let (mu, sig) = mean_std(chunk, eps);
                for (c, (&gvv, &bvv)) in chunk.iter_mut().zip(gv.data().iter().zip(bv.data())) {
                    *c = (*c - mu) / sig * gvv + bvv;
                }
            }
            let rg = [x, gain, bias].iter().any(|v| inner.nodes[v.id].requires_grad);
            (out, rg)
        };
        let back: crate::graph::BackFn = Box::new(move |g, _, ps| {
            let xv = ps[0];
            let gainv = ps[1];
            let d = *xv.shape().last().expect("rank");
            let rows = xv.len() / d;
            let mut dx = Tensor::zeros(xv.shape());
            let mut dgain = vec![0.0f32; d];
            let mut dbias = vec![0.0f32; d];
            let mut xhat = vec![0.0f32; d];
            let mut dxhat = vec![0.0f32; d];
            for r in 0..rows {
                let xs = &xv.data()[r * d..(r + 1) * d];
                let gs = &g.data()[r * d..(r + 1) * d];
                let (mu, sig) = mean_std(xs, eps);
                let mut mean_dxhat = 0.0f32;
                let mut mean_dxhat_xhat = 0.0f32;
                for j in 0..d {
                    xhat[j] = (xs[j] - mu) / sig;
                    dxhat[j] = gs[j] * gainv.data()[j];
                    mean_dxhat += dxhat[j];
                    mean_dxhat_xhat += dxhat[j] * xhat[j];
                    dgain[j] += gs[j] * xhat[j];
                    dbias[j] += gs[j];
                }
                mean_dxhat /= d as f32;
                mean_dxhat_xhat /= d as f32;
                let out_row = &mut dx.data_mut()[r * d..(r + 1) * d];
                for j in 0..d {
                    out_row[j] = (dxhat[j] - mean_dxhat - xhat[j] * mean_dxhat_xhat) / sig;
                }
            }
            vec![
                Flow::Grad(dx),
                Flow::Grad(Tensor::from_vec(dgain, ps[1].shape())),
                Flow::Grad(Tensor::from_vec(dbias, ps[2].shape())),
            ]
        });
        self.push(value, vec![x.id, gain.id, bias.id], if rg { Some(back) } else { None }, rg, None)
    }

    /// Inverted dropout: at train time zeroes elements with probability `p`
    /// and scales survivors by `1/(1-p)`; identity at eval time.
    pub fn dropout(&self, x: Var, p: f32, training: bool, rng: &mut Rng) -> Var {
        if !training || p <= 0.0 {
            return x;
        }
        assert!(p < 1.0, "dropout p must be < 1");
        let keep = 1.0 - p;
        let n = self.inner.borrow().values[x.id].len();
        let mask: Vec<f32> =
            (0..n).map(|_| if rng.next_f32() < keep { 1.0 / keep } else { 0.0 }).collect();
        let mask_b = mask.clone();
        let pool = self.pool.clone();
        self.unary(
            x,
            move |t| {
                let mut out = t.clone();
                for (o, &m) in out.data_mut().iter_mut().zip(&mask) {
                    *o *= m;
                }
                out
            },
            Box::new(move |g, _, _| {
                let mut dx = crate::pool::copy_tensor(&pool, g);
                for (o, &m) in dx.data_mut().iter_mut().zip(&mask_b) {
                    *o *= m;
                }
                vec![Flow::Grad(dx)]
            }),
        )
    }

    /// Elementwise safe reciprocal: `1/x` where `|x| > eps`, else `0`.
    /// Gradient is `-g/x²` on the live region and `0` elsewhere. Used for
    /// masked mean pooling where some rows have zero denominators.
    pub fn recip_clamped(&self, x: Var) -> Var {
        const EPS: f32 = 1e-6;
        self.unary(
            x,
            |t| t.map(|v| if v.abs() > EPS { 1.0 / v } else { 0.0 }),
            Box::new(|g, _, ps| {
                vec![Flow::Grad(
                    g.zip(ps[0], |gv, xv| if xv.abs() > EPS { -gv / (xv * xv) } else { 0.0 }),
                )]
            }),
        )
    }

    /// Elementwise `sqrt(x + eps)`; the epsilon keeps the gradient finite
    /// at zero (needed by `l2`-distance losses).
    pub fn sqrt_eps(&self, x: Var, eps: f32) -> Var {
        self.unary(
            x,
            move |t| t.map(|v| (v + eps).sqrt()),
            Box::new(move |g, out, _| {
                vec![Flow::Grad(g.zip(out, |gv, ov| gv / (2.0 * ov.max(1e-6))))]
            }),
        )
    }

    /// L2-normalizes each row of a `[n,d]` tensor (with an epsilon floor so
    /// zero rows stay finite).
    pub fn l2_normalize_rows(&self, x: Var) -> Var {
        const EPS: f32 = 1e-12;
        let pool = self.pool.clone();
        self.unary(
            x,
            |t| {
                assert_eq!(t.rank(), 2);
                let d = t.shape()[1];
                let mut out = t.clone();
                for chunk in out.data_mut().chunks_mut(d) {
                    let n = chunk.iter().map(|&v| v * v).sum::<f32>().sqrt().max(EPS);
                    let inv = 1.0 / n;
                    chunk.iter_mut().for_each(|v| *v *= inv);
                }
                out
            },
            Box::new(move |g, out, ps| {
                // dx = (g - out * <g, out>) / ||x||
                let d = ps[0].shape()[1];
                let rows = ps[0].shape()[0];
                let mut dx = crate::pool::copy_tensor(&pool, g);
                for r in 0..rows {
                    let xs = ps[0].row(r);
                    let os = &out.data()[r * d..(r + 1) * d];
                    let norm = xs.iter().map(|&v| v * v).sum::<f32>().sqrt().max(EPS);
                    let gs = &mut dx.data_mut()[r * d..(r + 1) * d];
                    let dot: f32 = gs.iter().zip(os).map(|(&a, &b)| a * b).sum();
                    for (gv, &ov) in gs.iter_mut().zip(os) {
                        *gv = (*gv - ov * dot) / norm;
                    }
                }
                vec![Flow::Grad(dx)]
            }),
        )
    }
}

#[inline]
pub(crate) fn mean_std(chunk: &[f32], eps: f32) -> (f32, f32) {
    let d = chunk.len() as f32;
    let mu: f32 = chunk.iter().sum::<f32>() / d;
    let var: f32 = chunk.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d;
    (mu, (var + eps).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_check(
        shape: &[usize],
        seed: u64,
        f: impl Fn(&Graph, Var) -> Var,
        what: &str,
        tol: f32,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let x0 = Tensor::rand_normal(shape, 0.8, &mut rng);
        let g = Graph::new();
        let x = g.leaf(x0.clone(), true);
        let y = f(&g, x);
        g.backward(y);
        let analytic = g.grad(x).expect("no grad");
        // numeric
        let mut numeric = Tensor::zeros(shape);
        let eps = 1e-3;
        for i in 0..x0.len() {
            let eval = |t: &Tensor| {
                let g2 = Graph::new();
                let xv = g2.leaf(t.clone(), false);
                let yv = f(&g2, xv);
                g2.value_cloned(yv).item()
            };
            let mut plus = x0.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[i] -= eps;
            numeric.data_mut()[i] = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        }
        for (i, (a, b)) in analytic.data().iter().zip(numeric.data()).enumerate() {
            assert!(
                (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
                "{what}[{i}]: analytic {a} vs numeric {b}"
            );
        }
    }

    #[test]
    fn grad_softmax() {
        grad_check(
            &[2, 4],
            1,
            |g, x| {
                let s = g.softmax_lastdim(x);
                let w = g.constant(Tensor::from_vec(
                    vec![1.0, -2.0, 3.0, 0.5, 2.0, 1.0, -1.0, 0.3],
                    &[2, 4],
                ));
                g.sum_all(g.mul(s, w))
            },
            "softmax",
            2e-2,
        );
    }

    #[test]
    fn grad_log_softmax_and_nll() {
        grad_check(
            &[3, 5],
            2,
            |g, x| {
                let lp = g.log_softmax_lastdim(x);
                g.nll_mean(lp, &[0, 3, 2])
            },
            "log_softmax+nll",
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm_all_inputs() {
        let mut rng = Rng::seed_from_u64(3);
        let gain0 = Tensor::rand_normal(&[4], 0.5, &mut rng).map(|v| v + 1.0);
        let bias0 = Tensor::rand_normal(&[4], 0.5, &mut rng);
        let (gc, bc) = (gain0.clone(), bias0.clone());
        grad_check(
            &[3, 4],
            4,
            move |g, x| {
                let gain = g.constant(gc.clone());
                let bias = g.constant(bc.clone());
                let y = g.layer_norm(x, gain, bias, 1e-5);
                g.sum_all(g.square(y))
            },
            "layer_norm x",
            5e-2,
        );

        let mut rng2 = Rng::seed_from_u64(5);
        let x0 = Tensor::rand_normal(&[3, 4], 0.8, &mut rng2);
        let bias1 = bias0.clone();
        let xc = x0.clone();
        grad_check(
            &[4],
            6,
            move |g, gain| {
                let x = g.constant(xc.clone());
                let bias = g.constant(bias1.clone());
                let y = g.layer_norm(x, gain, bias, 1e-5);
                g.sum_all(g.square(y))
            },
            "layer_norm gain",
            3e-2,
        );

        let xc2 = x0.clone();
        let gc2 = gain0.clone();
        grad_check(
            &[4],
            7,
            move |g, bias| {
                let x = g.constant(xc2.clone());
                let gain = g.constant(gc2.clone());
                let y = g.layer_norm(x, gain, bias, 1e-5);
                g.sum_all(g.square(y))
            },
            "layer_norm bias",
            3e-2,
        );
    }

    #[test]
    fn grad_l2_normalize() {
        grad_check(
            &[3, 4],
            8,
            |g, x| {
                let n = g.l2_normalize_rows(x);
                let w = g.constant(Tensor::from_vec(
                    (0..12).map(|i| (i as f32 * 0.37).sin()).collect(),
                    &[3, 4],
                ));
                g.sum_all(g.mul(n, w))
            },
            "l2_normalize",
            3e-2,
        );
    }

    #[test]
    fn layer_norm_output_statistics() {
        let g = Graph::new();
        let mut rng = Rng::seed_from_u64(9);
        let x = g.leaf(Tensor::rand_normal(&[5, 16], 3.0, &mut rng), false);
        let gain = g.constant(Tensor::ones(&[16]));
        let bias = g.constant(Tensor::zeros(&[16]));
        let y = g.layer_norm(x, gain, bias, 1e-5);
        let out = g.value_cloned(y);
        for r in 0..5 {
            let row = out.row(r);
            let mu: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / 16.0;
            assert!(mu.abs() < 1e-4, "mean {mu}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn dropout_eval_is_identity_and_train_preserves_mean() {
        let g = Graph::new();
        let mut rng = Rng::seed_from_u64(10);
        let x = g.leaf(Tensor::ones(&[100, 10]), false);
        let eval = g.dropout(x, 0.5, false, &mut rng);
        assert_eq!(eval, x, "eval dropout should be a no-op var");
        let train = g.dropout(x, 0.5, true, &mut rng);
        let out = g.value_cloned(train);
        let kept = out.data().iter().filter(|&&v| v > 0.0).count();
        // roughly half kept
        assert!((300..700).contains(&kept), "kept {kept}");
        let mean = out.sum() / out.len() as f32;
        assert!((mean - 1.0).abs() < 0.15, "inverted dropout mean {mean}");
    }

    #[test]
    fn nll_mean_value_matches_manual() {
        let g = Graph::new();
        let lp = g.leaf(Tensor::from_vec(vec![-0.1, -2.0, -3.0, -1.5, -0.2, -2.5], &[2, 3]), false);
        let loss = g.nll_mean(lp, &[0, 1]);
        assert!((g.value(loss).item() - (0.1 + 0.2) / 2.0).abs() < 1e-6);
    }
}
