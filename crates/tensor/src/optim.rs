//! Parameter storage and optimizers.
//!
//! A [`ParamStore`] owns every trainable tensor of a model plus its gradient
//! accumulator. Each training step: build a [`crate::Graph`], pull params in
//! with [`crate::Graph::param`], run forward + backward, call
//! [`crate::Graph::accumulate_param_grads`], then step an [`Optimizer`].

use crate::tensor::Tensor;

/// Identifier of a parameter within its [`ParamStore`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

#[derive(Clone, Debug)]
struct Slot {
    name: String,
    value: Tensor,
    grad: Tensor,
    trainable: bool,
}

/// A named collection of trainable tensors with gradient accumulators.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    slots: Vec<Slot>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        ParamStore { slots: Vec::new() }
    }

    /// Registers a new trainable parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.slots.push(Slot { name: name.into(), value, grad, trainable: true });
        ParamId(self.slots.len() - 1)
    }

    /// Registers a frozen (non-trainable) tensor; it can still be pulled
    /// onto graphs but no optimizer will update it.
    pub fn add_frozen(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = self.add(name, value);
        self.slots[id.0].trainable = false;
        id
    }

    /// Marks a parameter trainable or frozen.
    pub fn set_trainable(&mut self, id: ParamId, trainable: bool) {
        self.slots[id.0].trainable = trainable;
    }

    /// Whether the parameter is currently trainable.
    pub fn is_trainable(&self, id: ParamId) -> bool {
        self.slots[id.0].trainable
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// The parameter's name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Read access to the value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    /// Mutable access to the value (for manual updates, e.g. TransE's
    /// in-place normalization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    /// Read access to the gradient accumulator.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].grad
    }

    /// Mutable access to the gradient accumulator.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].grad
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            s.grad.fill_zero();
        }
    }

    /// Global L2 norm of all trainable gradients.
    pub fn grad_norm(&self) -> f32 {
        self.slots.iter().filter(|s| s.trainable).map(|s| s.grad.sq_norm()).sum::<f32>().sqrt()
    }

    /// Iterates over all ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.slots.len()).map(ParamId)
    }

    /// Takes a snapshot of all values (for early-stopping checkpoints).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.slots.iter().map(|s| s.value.clone()).collect()
    }

    /// Restores a snapshot taken with [`ParamStore::snapshot`].
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.slots.len(), "snapshot arity mismatch");
        for (s, v) in self.slots.iter_mut().zip(snapshot) {
            assert_eq!(s.value.shape(), v.shape(), "snapshot shape mismatch for {}", s.name);
            s.value = v.clone();
        }
    }

    /// Copies every parameter value out of `saved` into this store, matched
    /// by name. Used by checkpoint resume: the live store is rebuilt
    /// deterministically by the model constructors, then its weights are
    /// overwritten from the saved store. Errors (rather than panics) on any
    /// arity, name, or shape mismatch so a stale checkpoint surfaces as
    /// `InvalidData` at the IO boundary.
    pub fn restore_from_named(&mut self, saved: &ParamStore) -> Result<(), String> {
        if saved.len() != self.len() {
            return Err(format!(
                "checkpoint has {} parameters, model has {}",
                saved.len(),
                self.len()
            ));
        }
        // Validate everything before touching any value: a mismatch must
        // leave this store exactly as it was, never half-restored.
        for (slot, other) in self.slots.iter().zip(&saved.slots) {
            if slot.name != other.name {
                return Err(format!(
                    "checkpoint parameter {:?} does not match model parameter {:?}",
                    other.name, slot.name
                ));
            }
            if slot.value.shape() != other.value.shape() {
                return Err(format!(
                    "checkpoint parameter {:?} has shape {:?}, model expects {:?}",
                    other.name,
                    other.value.shape(),
                    slot.value.shape()
                ));
            }
        }
        for (slot, other) in self.slots.iter_mut().zip(&saved.slots) {
            slot.value = other.value.clone();
        }
        Ok(())
    }
}

/// Gradient clipping configuration.
#[derive(Copy, Clone, Debug)]
pub enum GradClip {
    /// No clipping.
    None,
    /// Scale all gradients so the global norm is at most this value.
    GlobalNorm(f32),
}

impl GradClip {
    fn apply(&self, store: &mut ParamStore) {
        if let GradClip::GlobalNorm(max) = *self {
            let norm = store.grad_norm();
            if norm > max && norm.is_finite() {
                let scale = max / norm;
                for s in &mut store.slots {
                    if s.trainable {
                        s.grad.data_mut().iter_mut().for_each(|g| *g *= scale);
                    }
                }
            }
        }
    }
}

/// A gradient-descent optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update from the accumulated gradients, then zeroes them.
    fn step(&mut self, store: &mut ParamStore);
    /// The current learning rate.
    fn lr(&self) -> f32;
    /// Overrides the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional gradient clipping.
pub struct Sgd {
    lr: f32,
    clip: GradClip,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, clip: GradClip::None }
    }

    /// Adds gradient clipping.
    pub fn with_clip(mut self, clip: GradClip) -> Self {
        self.clip = clip;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        self.clip.apply(store);
        for s in &mut store.slots {
            if !s.trainable {
                s.grad.fill_zero();
                continue;
            }
            for (v, g) in s.value.data_mut().iter_mut().zip(s.grad.data()) {
                *v -= self.lr * g;
            }
            s.grad.fill_zero();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction and optional clipping.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    clip: GradClip,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip: GradClip::None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds decoupled weight decay (AdamW-style).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Adds gradient clipping.
    pub fn with_clip(mut self, clip: GradClip) -> Self {
        self.clip = clip;
        self
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        if self.m.len() != store.slots.len() {
            self.m = store.slots.iter().map(|s| Tensor::zeros(s.value.shape())).collect();
            self.v = store.slots.iter().map(|s| Tensor::zeros(s.value.shape())).collect();
        }
    }

    /// Captures the optimizer state (step count, first and second moments)
    /// for checkpointing. Moments are positional: they only make sense for
    /// a store with the same parameter layout.
    pub fn state(&self) -> (u64, &[Tensor], &[Tensor]) {
        (self.t, &self.m, &self.v)
    }

    /// Restores state captured by [`Adam::state`]; a resumed run then takes
    /// bit-identical steps to an uninterrupted one.
    pub fn set_state(&mut self, t: u64, m: Vec<Tensor>, v: Vec<Tensor>) {
        assert_eq!(m.len(), v.len(), "Adam moment arity mismatch");
        self.t = t;
        self.m = m;
        self.v = v;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.ensure_state(store);
        self.clip.apply(store);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, s) in store.slots.iter_mut().enumerate() {
            if !s.trainable {
                s.grad.fill_zero();
                continue;
            }
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            for (((val, g), mi), vi) in
                s.value.data_mut().iter_mut().zip(s.grad.data()).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *val -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *val);
            }
            s.grad.fill_zero();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::rng::Rng;

    /// Minimizes (w - 3)^2 and checks convergence for each optimizer.
    fn converges(mut opt: impl Optimizer, steps: usize, tol: f32) {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        for _ in 0..steps {
            let g = Graph::new();
            let wv = g.param(&store, w);
            let target = g.constant(Tensor::scalar(3.0));
            let diff = g.sub(wv, target);
            let loss = g.sum_all(g.square(diff));
            g.backward(loss);
            g.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        let final_w = store.value(w).item();
        assert!((final_w - 3.0).abs() < tol, "w = {final_w}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        converges(Sgd::new(0.1), 100, 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        converges(Adam::new(0.1), 300, 1e-2);
    }

    #[test]
    fn frozen_params_do_not_move() {
        let mut store = ParamStore::new();
        let w = store.add_frozen("w", Tensor::scalar(1.0));
        let g = Graph::new();
        let wv = g.param(&store, w);
        let loss = g.sum_all(g.square(wv));
        g.backward(loss);
        g.accumulate_param_grads(&mut store);
        let mut opt = Sgd::new(0.5);
        opt.step(&mut store);
        assert_eq!(store.value(w).item(), 1.0);
    }

    #[test]
    fn grad_clip_bounds_global_norm() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[4]));
        store.grad_mut(w).data_mut().copy_from_slice(&[10.0, 10.0, 10.0, 10.0]);
        let before = store.grad_norm();
        assert!(before > 1.0);
        GradClip::GlobalNorm(1.0).apply(&mut store);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut rng = Rng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::rand_normal(&[3, 3], 1.0, &mut rng));
        let snap = store.snapshot();
        let orig = store.value(a).clone();
        store.value_mut(a).data_mut()[0] = 999.0;
        store.restore(&snap);
        assert_eq!(store.value(a), &orig);
    }

    #[test]
    fn restore_from_named_checks_names_and_shapes() {
        let mut rng = Rng::seed_from_u64(2);
        let mut live = ParamStore::new();
        live.add("a", Tensor::zeros(&[2, 2]));
        live.add("b", Tensor::zeros(&[3]));
        let mut saved = ParamStore::new();
        saved.add("a", Tensor::rand_normal(&[2, 2], 1.0, &mut rng));
        saved.add("b", Tensor::rand_normal(&[3], 1.0, &mut rng));
        live.restore_from_named(&saved).unwrap();
        assert_eq!(live.value(ParamId(0)), saved.value(ParamId(0)));
        assert_eq!(live.value(ParamId(1)), saved.value(ParamId(1)));

        let mut wrong_name = ParamStore::new();
        wrong_name.add("a", Tensor::zeros(&[2, 2]));
        wrong_name.add("c", Tensor::zeros(&[3]));
        assert!(live.restore_from_named(&wrong_name).is_err());

        let mut wrong_shape = ParamStore::new();
        wrong_shape.add("a", Tensor::zeros(&[2, 2]));
        wrong_shape.add("b", Tensor::zeros(&[4]));
        assert!(live.restore_from_named(&wrong_shape).is_err());

        let mut wrong_arity = ParamStore::new();
        wrong_arity.add("a", Tensor::zeros(&[2, 2]));
        assert!(live.restore_from_named(&wrong_arity).is_err());
    }

    /// Interrupt-and-restore of Adam state must continue bit-identically
    /// with an uninterrupted optimizer — the resume determinism contract.
    #[test]
    fn adam_state_round_trip_is_bit_identical() {
        let run = |resume_at: Option<usize>| -> Vec<f32> {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(vec![5.0, -2.0], &[2]));
            let mut opt = Adam::new(0.05);
            for step in 0..20 {
                if Some(step) == resume_at {
                    // Snapshot and rebuild both the optimizer and the
                    // weights, as checkpoint resume does.
                    let (t, m, v) = opt.state();
                    let (m, v, weights) = (m.to_vec(), v.to_vec(), store.snapshot());
                    store.restore(&weights);
                    opt = Adam::new(0.05);
                    opt.set_state(t, m, v);
                }
                let g = Graph::new();
                let wv = g.param(&store, w);
                let loss = g.sum_all(g.square(wv));
                g.backward(loss);
                g.accumulate_param_grads(&mut store);
                opt.step(&mut store);
            }
            store.value(w).data().to_vec()
        };
        let uninterrupted = run(None);
        let resumed = run(Some(7));
        assert_eq!(uninterrupted, resumed);
    }

    #[test]
    fn accumulate_param_grads_reaches_store() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![2.0], &[1]));
        let g = Graph::new();
        let wv = g.param(&store, w);
        let loss = g.sum_all(g.square(wv));
        g.backward(loss);
        let n = g.accumulate_param_grads(&mut store);
        assert_eq!(n, 1);
        assert!((store.grad(w).item() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn two_graphs_accumulate_additively() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0], &[1]));
        for _ in 0..2 {
            let g = Graph::new();
            let wv = g.param(&store, w);
            let loss = g.sum_all(wv);
            g.backward(loss);
            g.accumulate_param_grads(&mut store);
        }
        assert!((store.grad(w).item() - 2.0).abs() < 1e-6);
    }
}
