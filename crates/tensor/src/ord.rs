//! The workspace-wide total order over `f32` scores.
//!
//! Every ranking, retrieval and matching path (top-k selection, argsort,
//! Gale–Shapley preferences, IVF probe ordering) compares scores through
//! [`desc_nan_last`] so that NaN — from upstream numerical blow-ups or
//! degenerate embeddings — can never panic a `partial_cmp().unwrap()` or
//! silently outrank a real score. Defined here at the bottom of the crate
//! graph so `sdea-index` and `sdea-eval` share one definition
//! (`sdea_eval::desc_nan_last` re-exports it for existing call sites).

use std::cmp::Ordering;

/// Total descending order over similarity scores with **NaN ranked last**
/// (worst), the workspace-wide comparison convention for ranking and
/// matching.
///
/// `Less` means `a` ranks strictly before (better than) `b`. Unlike
/// `partial_cmp(..).unwrap()` this never panics, and unlike raw
/// [`f32::total_cmp`] it does not let `+NaN` outrank every real score: any
/// NaN compares worse than every finite or infinite value, and equal to
/// every other NaN (callers tie-break equal scores by index).
pub fn desc_nan_last(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Ordering::*;

    #[test]
    fn total_order_over_scores() {
        assert_eq!(desc_nan_last(1.0, 0.5), Less); // higher score ranks first
        assert_eq!(desc_nan_last(0.5, 1.0), Greater);
        assert_eq!(desc_nan_last(0.5, 0.5), Equal);
        assert_eq!(desc_nan_last(f32::NAN, -1e30), Greater); // NaN worst
        assert_eq!(desc_nan_last(f32::NEG_INFINITY, f32::NAN), Less);
        assert_eq!(desc_nan_last(f32::NAN, f32::NAN), Equal);
        assert_eq!(desc_nan_last(f32::INFINITY, f32::MAX), Less);
        // -0.0 vs +0.0: total_cmp puts +0.0 first in descending order.
        assert_eq!(desc_nan_last(0.0, -0.0), Less);
    }
}
