//! Compact binary (de)serialization for tensors and parameter stores, with
//! checksummed containers and crash-safe (atomic) file writes.
//!
//! ## Container format (v2, little-endian)
//!
//! Every file-level artifact is a *blob*: a 4-byte kind magic, a container
//! version, the payload length, a CRC-32 of the payload, then the payload.
//!
//! ```text
//! kind[4] | u32 container_version | u64 payload_len | u32 crc32 | payload
//! ```
//!
//! A parameter store is a blob of kind `SDT2` whose payload is the legacy
//! v1 body:
//!
//! ```text
//! u32 n_params | for each param:
//!   u32 name_len | name bytes | u8 trainable | u32 rank | u32 dims... | f32 data...
//! ```
//!
//! [`store_from_bytes`] still reads legacy `SDT1` files (magic + body, no
//! checksum) so pre-v2 checkpoints keep loading. Any mismatch — wrong
//! magic, wrong version, wrong length, wrong checksum, truncated body —
//! fails with a clean `InvalidData` error, never a panic and never silent
//! wrong weights.
//!
//! ## Write discipline
//!
//! [`atomic_write`] never leaves a partial file at the destination path:
//! bytes go to `<path>.tmp`, the file is fsynced, then renamed over the
//! destination (and the parent directory fsynced, best-effort). A crash at
//! any instant leaves either the old file or the new file, plus at worst a
//! stale `.tmp`. [`atomic_write_retry`] adds bounded retry with exponential
//! backoff around transient IO errors. Both are instrumented with
//! `sdea_obs` counters (`store.writes`, `store.bytes_written`,
//! `store.retries`, `store.write_failures`) and carry [`crate::fault`]
//! injection sites (`<site>` before the write, `<site>.rename` before the
//! rename) so crash tests can kill or corrupt a write at a chosen point.

use crate::fault::{self, FaultAction};
use crate::optim::ParamStore;
use crate::tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const LEGACY_MAGIC: &[u8; 4] = b"SDT1";
/// Blob kind of a serialized [`ParamStore`].
pub const STORE_KIND: &[u8; 4] = b"SDT2";
/// Current container version written by [`blob_to_bytes`].
pub const CONTAINER_VERSION: u32 = 2;
/// Fixed byte length of the blob header.
pub const BLOB_HEADER_LEN: usize = 4 + 4 + 8 + 4;

/// Little-endian append helpers over a byte buffer (covers the subset of
/// the `bytes` crate's `BufMut` the wire format needs; local so the build
/// has no registry dependencies). Public so higher layers (the checkpoint
/// manifest in `sdea-core`) can compose the same wire format.
pub trait WireWrite {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);
}

impl WireWrite for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Little-endian cursor helpers over a byte slice; callers bounds-check via
/// [`WireRead::remaining`] before each read (the getters panic on a short
/// slice — they are building blocks for checked parsers, not a parser).
pub trait WireRead {
    /// Bytes left in the cursor.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
    /// Copies `dst.len()` bytes out of the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl WireRead for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("bounds checked"));
        *self = &self[4..];
        v
    }
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("bounds checked"));
        *self = &self[8..];
        v
    }
    fn get_f32_le(&mut self) -> f32 {
        let v = f32::from_le_bytes(self[..4].try_into().expect("bounds checked"));
        *self = &self[4..];
        v
    }
    fn get_f64_le(&mut self) -> f64 {
        let v = f64::from_le_bytes(self[..8].try_into().expect("bounds checked"));
        *self = &self[8..];
        v
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Wraps `payload` in a versioned, checksummed blob container of `kind`.
pub fn blob_to_bytes(kind: &[u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(BLOB_HEADER_LEN + payload.len());
    buf.put_slice(kind);
    buf.put_u32_le(CONTAINER_VERSION);
    buf.put_u64_le(payload.len() as u64);
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
    buf
}

/// Verifies a blob container's kind, version, length and checksum, and
/// returns the payload. Every failure is `InvalidData` with a message.
pub fn blob_payload<'a>(bytes: &'a [u8], kind: &[u8; 4]) -> io::Result<&'a [u8]> {
    let mut buf = bytes;
    if buf.remaining() < BLOB_HEADER_LEN {
        return Err(bad("truncated blob header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != kind {
        return Err(bad(&format!(
            "bad magic {:?} (expected {:?})",
            String::from_utf8_lossy(&magic),
            String::from_utf8_lossy(kind)
        )));
    }
    let version = buf.get_u32_le();
    if version != CONTAINER_VERSION {
        return Err(bad(&format!(
            "unsupported container version {version} (expected {CONTAINER_VERSION})"
        )));
    }
    let len = buf.get_u64_le() as usize;
    let crc = buf.get_u32_le();
    if buf.remaining() != len {
        return Err(bad(&format!(
            "payload length mismatch: header says {len}, file has {}",
            buf.remaining()
        )));
    }
    if crc32(buf) != crc {
        return Err(bad("checksum mismatch (corrupt blob)"));
    }
    Ok(buf)
}

/// Serializes a single tensor to the wire format.
pub fn write_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    buf.put_u32_le(t.shape().len() as u32);
    for &d in t.shape() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
}

/// Deserializes a single tensor from the wire format.
pub fn read_tensor(buf: &mut &[u8]) -> io::Result<Tensor> {
    if buf.remaining() < 4 {
        return Err(bad("truncated tensor rank"));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(bad("implausible tensor rank"));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        if buf.remaining() < 4 {
            return Err(bad("truncated tensor shape"));
        }
        shape.push(buf.get_u32_le() as usize);
    }
    let n: usize = shape.iter().product();
    if buf.remaining() < n * 4 {
        return Err(bad("truncated tensor data"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(data, &shape))
}

fn store_body_bytes(store: &ParamStore) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + store.num_scalars() * 4);
    buf.put_u32_le(store.len() as u32);
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        buf.put_u8(store.is_trainable(id) as u8);
        write_tensor(&mut buf, store.value(id));
    }
    buf
}

fn store_from_body(mut buf: &[u8]) -> io::Result<ParamStore> {
    if buf.remaining() < 4 {
        return Err(bad("truncated header"));
    }
    let n = buf.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(bad("truncated name length"));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len + 1 {
            return Err(bad("truncated name"));
        }
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| bad("parameter name is not UTF-8"))?;
        let trainable = buf.get_u8() != 0;
        let tensor = read_tensor(&mut buf)?;
        let id = store.add(name, tensor);
        store.set_trainable(id, trainable);
    }
    Ok(store)
}

/// Serializes a full parameter store (v2 checksummed container).
pub fn store_to_bytes(store: &ParamStore) -> Vec<u8> {
    blob_to_bytes(STORE_KIND, &store_body_bytes(store))
}

/// Deserializes a parameter store produced by [`store_to_bytes`] (v2) or by
/// the legacy pre-checksum `SDT1` writer.
pub fn store_from_bytes(buf: &[u8]) -> io::Result<ParamStore> {
    if buf.len() >= 4 && &buf[..4] == LEGACY_MAGIC {
        // Legacy v1: magic + body, no checksum.
        return store_from_body(&buf[4..]);
    }
    store_from_body(blob_payload(buf, STORE_KIND)?)
}

/// Writes `bytes` to `path` atomically: `<path>.tmp` + fsync + rename +
/// parent-dir fsync. `site` names the [`crate::fault`] injection point.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8], site: &str) -> io::Result<()> {
    let path = path.as_ref();
    let corrupted;
    let bytes = match fault::hit(site) {
        FaultAction::Proceed => bytes,
        FaultAction::InjectError => return Err(fault::injected_error(site)),
        FaultAction::CorruptPayload => {
            // Silent media corruption: flip one mid-payload byte; the write
            // itself succeeds, only checksum verification can catch it.
            let mut c = bytes.to_vec();
            let i = c.len() / 2;
            c[i] ^= 0x40;
            corrupted = c;
            &corrupted[..]
        }
    };
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match fault::hit(&format!("{site}.rename")) {
        FaultAction::Proceed | FaultAction::CorruptPayload => {}
        FaultAction::InjectError => {
            let _ = std::fs::remove_file(&tmp);
            return Err(fault::injected_error(site));
        }
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself (directory entry), best effort: some
    // filesystems reject opening a directory for sync.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    sdea_obs::add("store.writes", 1);
    sdea_obs::add("store.bytes_written", bytes.len() as u64);
    Ok(())
}

/// Retry attempts of [`atomic_write_retry`] (total tries, not re-tries).
pub const WRITE_ATTEMPTS: u32 = 3;

/// [`atomic_write`] with bounded retry and exponential backoff (5 ms, then
/// 10 ms) around transient IO errors. Counts `store.retries` per retry and
/// `store.write_failures` when all attempts are exhausted.
pub fn atomic_write_retry(path: impl AsRef<Path>, bytes: &[u8], site: &str) -> io::Result<()> {
    let path = path.as_ref();
    let mut delay = std::time::Duration::from_millis(5);
    let mut attempt = 1;
    loop {
        match atomic_write(path, bytes, site) {
            Ok(()) => return Ok(()),
            Err(e) if attempt < WRITE_ATTEMPTS => {
                sdea_obs::add("store.retries", 1);
                eprintln!(
                    "checkpoint write to {} failed (attempt {attempt}/{WRITE_ATTEMPTS}): {e}; retrying",
                    path.display()
                );
                std::thread::sleep(delay);
                delay *= 2;
                attempt += 1;
            }
            Err(e) => {
                sdea_obs::add("store.write_failures", 1);
                return Err(e);
            }
        }
    }
}

/// The temp-file path used by [`atomic_write`] for `path`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes a parameter store to disk atomically (checksummed v2 container,
/// temp-file + fsync + rename, bounded retry). Never leaves a partial file
/// at `path`.
pub fn save_store(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let _span = sdea_obs::span("store.save");
    atomic_write_retry(path, &store_to_bytes(store), "ckpt.store")
}

/// Reads a parameter store from disk, verifying the container checksum.
pub fn load_store(path: impl AsRef<Path>) -> io::Result<ParamStore> {
    let _span = sdea_obs::span("store.load");
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    sdea_obs::add("store.loads", 1);
    store_from_bytes(&bytes)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultMode;
    use crate::rng::Rng;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdea_serialize_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tensor_round_trip() {
        let mut rng = Rng::seed_from_u64(1);
        let t = Tensor::rand_normal(&[3, 4, 2], 1.0, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t);
        let back = read_tensor(&mut &buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn store_round_trip_preserves_names_values_flags() {
        let mut rng = Rng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let a = store.add("layer.weight", Tensor::rand_normal(&[4, 4], 1.0, &mut rng));
        let b = store.add_frozen("embeddings", Tensor::rand_normal(&[10, 4], 1.0, &mut rng));
        let bytes = store_to_bytes(&store);
        let back = store_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.name(a), "layer.weight");
        assert_eq!(back.name(b), "embeddings");
        assert_eq!(back.value(a), store.value(a));
        assert_eq!(back.value(b), store.value(b));
        assert!(back.is_trainable(a));
        assert!(!back.is_trainable(b));
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let mut rng = Rng::seed_from_u64(7);
        let mut store = ParamStore::new();
        store.add("w", Tensor::rand_normal(&[3, 3], 1.0, &mut rng));
        // Reconstruct the old writer: magic + body, no checksum.
        let mut v1 = Vec::new();
        v1.put_slice(LEGACY_MAGIC);
        v1.put_slice(&store_body_bytes(&store));
        let back = store_from_bytes(&v1).unwrap();
        assert_eq!(back.value(crate::optim::ParamId(0)), store.value(crate::optim::ParamId(0)));
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(1.0));
        let mut bytes = store_to_bytes(&store);
        assert_eq!(&bytes[..4], STORE_KIND, "store header starts with the registered kind");
        bytes[0] = b'X';
        assert!(store_from_bytes(&bytes).is_err());
    }

    /// Single-byte corruption anywhere in the container must be caught at
    /// load with `InvalidData` — the checksum acceptance criterion.
    #[test]
    fn any_single_bit_flip_is_rejected() {
        let mut rng = Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        store.add("w", Tensor::rand_normal(&[4, 5], 1.0, &mut rng));
        store.add_frozen("b", Tensor::rand_normal(&[5], 1.0, &mut rng));
        let bytes = store_to_bytes(&store);
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] ^= 0x01;
            let err = match store_from_bytes(&c) {
                Ok(_) => panic!("flip at byte {i} loaded successfully"),
                Err(e) => e,
            };
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at byte {i}");
        }
    }

    #[test]
    fn truncated_payload_is_rejected_not_panicking() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let bytes = store_to_bytes(&store);
        for cut in [0, 4, 9, BLOB_HEADER_LEN, bytes.len() - 2] {
            assert!(store_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn blob_round_trip_and_kind_check() {
        let payload = b"hello blob".to_vec();
        let bytes = blob_to_bytes(b"TEST", &payload);
        assert_eq!(blob_payload(&bytes, b"TEST").unwrap(), &payload[..]);
        assert!(blob_payload(&bytes, b"OTHR").is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut rng = Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        store.add("w", Tensor::rand_normal(&[8, 8], 1.0, &mut rng));
        let dir = test_dir("file_rt");
        let path = dir.join("ckpt.sdt");
        save_store(&store, &path).unwrap();
        let back = load_store(&path).unwrap();
        assert_eq!(back.value(crate::optim::ParamId(0)), store.value(crate::optim::ParamId(0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An injected write error on the first attempt is absorbed by the
    /// retry loop; the file still lands intact.
    #[test]
    fn transient_write_error_is_retried() {
        let dir = test_dir("retry");
        let path = dir.join("retry.sdt");
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(4.0));
        crate::fault::arm("test.retry.site", 1, FaultMode::Error);
        atomic_write_retry(&path, &store_to_bytes(&store), "test.retry.site").unwrap();
        assert_eq!(load_store(&path).unwrap().value(crate::optim::ParamId(0)).item(), 4.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A persistent error exhausts the bounded retries and surfaces.
    #[test]
    fn persistent_write_error_surfaces_after_bounded_retries() {
        let dir = test_dir("exhaust");
        let path = dir.join("never.sdt");
        for nth in 1..=WRITE_ATTEMPTS as u64 {
            crate::fault::arm("test.exhaust.site", nth, FaultMode::Error);
        }
        let err = atomic_write_retry(&path, b"payload", "test.exhaust.site").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(!path.exists(), "failed write must not leave a file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An injected rename failure must leave the previous file untouched —
    /// the atomicity guarantee the old `File::create` writer lacked.
    #[test]
    fn failed_write_preserves_previous_file() {
        let dir = test_dir("atomic");
        let path = dir.join("model.sdt");
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(1.0));
        save_store(&store, &path).unwrap();

        let mut store2 = ParamStore::new();
        store2.add("w", Tensor::scalar(2.0));
        for nth in 1..=WRITE_ATTEMPTS as u64 {
            crate::fault::arm("test.atomic.site.rename", nth, FaultMode::Error);
        }
        let err = atomic_write_retry(&path, &store_to_bytes(&store2), "test.atomic.site");
        assert!(err.is_err());
        // Old contents intact and loadable; no temp litter.
        let back = load_store(&path).unwrap();
        assert_eq!(back.value(crate::optim::ParamId(0)).item(), 1.0);
        assert!(!tmp_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupt-mode fault lets the write "succeed" but the checksum
    /// rejects the file at load.
    #[test]
    fn corrupting_fault_is_caught_at_load() {
        let dir = test_dir("corrupt");
        let path = dir.join("bad.sdt");
        let mut store = ParamStore::new();
        store.add("w", Tensor::rand_normal(&[6, 6], 1.0, &mut Rng::seed_from_u64(5)));
        crate::fault::arm("test.corrupt.site", 1, FaultMode::Corrupt);
        atomic_write_retry(&path, &store_to_bytes(&store), "test.corrupt.site").unwrap();
        let err = load_store(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
