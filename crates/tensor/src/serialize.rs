//! Compact binary (de)serialization for tensors and parameter stores.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "SDT1" | u32 n_params | for each param:
//!   u32 name_len | name bytes | u8 trainable | u32 rank | u32 dims... | f32 data...
//! ```
//!
//! Used to persist the pre-trained language model between the MLM
//! pre-training phase and SDEA fine-tuning, mirroring the paper's use of a
//! pre-trained BERT checkpoint.

use crate::optim::ParamStore;
use crate::tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SDT1";

/// Little-endian append helpers over a byte buffer (covers the subset of
/// the `bytes` crate's `BufMut` the wire format needs; local so the build
/// has no registry dependencies).
trait WireWrite {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_f32_le(&mut self, v: f32);
    fn put_slice(&mut self, s: &[u8]);
}

impl WireWrite for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Little-endian cursor helpers over a byte slice; callers bounds-check via
/// [`WireRead::remaining`] before each read.
trait WireRead {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_f32_le(&mut self) -> f32;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl WireRead for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("bounds checked"));
        *self = &self[4..];
        v
    }
    fn get_f32_le(&mut self) -> f32 {
        let v = f32::from_le_bytes(self[..4].try_into().expect("bounds checked"));
        *self = &self[4..];
        v
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Serializes a single tensor to the wire format.
pub fn write_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    buf.put_u32_le(t.shape().len() as u32);
    for &d in t.shape() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
}

/// Deserializes a single tensor from the wire format.
pub fn read_tensor(buf: &mut &[u8]) -> io::Result<Tensor> {
    if buf.remaining() < 4 {
        return Err(bad("truncated tensor rank"));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(bad("implausible tensor rank"));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        if buf.remaining() < 4 {
            return Err(bad("truncated tensor shape"));
        }
        shape.push(buf.get_u32_le() as usize);
    }
    let n: usize = shape.iter().product();
    if buf.remaining() < n * 4 {
        return Err(bad("truncated tensor data"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(data, &shape))
}

/// Serializes a full parameter store.
pub fn store_to_bytes(store: &ParamStore) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + store.num_scalars() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(store.len() as u32);
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        buf.put_u8(store.is_trainable(id) as u8);
        write_tensor(&mut buf, store.value(id));
    }
    buf
}

/// Deserializes a parameter store produced by [`store_to_bytes`].
pub fn store_from_bytes(mut buf: &[u8]) -> io::Result<ParamStore> {
    if buf.remaining() < 8 {
        return Err(bad("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic (not an SDT1 checkpoint)"));
    }
    let n = buf.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(bad("truncated name length"));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len + 1 {
            return Err(bad("truncated name"));
        }
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| bad("parameter name is not UTF-8"))?;
        let trainable = buf.get_u8() != 0;
        let tensor = read_tensor(&mut buf)?;
        let id = store.add(name, tensor);
        store.set_trainable(id, trainable);
    }
    Ok(store)
}

/// Writes a parameter store to disk.
pub fn save_store(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let bytes = store_to_bytes(store);
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()
}

/// Reads a parameter store from disk.
pub fn load_store(path: impl AsRef<Path>) -> io::Result<ParamStore> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    store_from_bytes(&bytes)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn tensor_round_trip() {
        let mut rng = Rng::seed_from_u64(1);
        let t = Tensor::rand_normal(&[3, 4, 2], 1.0, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t);
        let back = read_tensor(&mut &buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn store_round_trip_preserves_names_values_flags() {
        let mut rng = Rng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let a = store.add("layer.weight", Tensor::rand_normal(&[4, 4], 1.0, &mut rng));
        let b = store.add_frozen("embeddings", Tensor::rand_normal(&[10, 4], 1.0, &mut rng));
        let bytes = store_to_bytes(&store);
        let back = store_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.name(a), "layer.weight");
        assert_eq!(back.name(b), "embeddings");
        assert_eq!(back.value(a), store.value(a));
        assert_eq!(back.value(b), store.value(b));
        assert!(back.is_trainable(a));
        assert!(!back.is_trainable(b));
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::scalar(1.0));
        let mut bytes = store_to_bytes(&store);
        bytes[0] = b'X';
        assert!(store_from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_payload_is_rejected_not_panicking() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let bytes = store_to_bytes(&store);
        for cut in [0, 4, 9, bytes.len() - 2] {
            assert!(store_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_round_trip() {
        let mut rng = Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        store.add("w", Tensor::rand_normal(&[8, 8], 1.0, &mut rng));
        let dir = std::env::temp_dir().join("sdea_tensor_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.sdt");
        save_store(&store, &path).unwrap();
        let back = load_store(&path).unwrap();
        assert_eq!(back.value(crate::optim::ParamId(0)), store.value(crate::optim::ParamId(0)));
        let _ = std::fs::remove_file(path);
    }
}
