//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the system (weight initialization, negative
//! sampling, dataset synthesis, dropout) draws from this generator so that a
//! single `u64` seed reproduces an entire experiment bit-for-bit. The
//! implementation is xoshiro256** seeded through SplitMix64, the combination
//! recommended by the xoshiro authors.

/// A seedable, splittable PRNG (xoshiro256** over a SplitMix64-expanded seed).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Derives an independent child generator; used to give each subsystem
    /// (generator, trainer, sampler) its own stream from one master seed.
    pub fn split(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Captures the full internal state, for checkpointing. Restoring with
    /// [`Rng::from_state`] continues the stream bit-identically.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from a state captured by [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 high-quality bits -> [0,1)
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "Rng::below(0)");
        // Lemire-style widening multiply; bias is negligible for our ranges.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1 = (1.0 - self.next_f64()) as f32; // (0, 1]
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Returns `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly chooses one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Samples `k` distinct indices from `[0, n)` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        if k * 3 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            self.shuffle(&mut idx);
            idx.truncate(k);
            idx
        } else {
            // Sparse rejection sampling for k << n.
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let v = self.below(n);
                if seen.insert(v) {
                    out.push(v);
                }
            }
            out
        }
    }

    /// Samples an index according to unnormalized non-negative weights.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weighted sample needs positive mass");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Zipf-like rank sample over `[0, n)` with exponent `s` (heavier head
    /// for larger `s`). Used to produce long-tail degree distributions.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        // Inverse-CDF on the continuous approximation.
        let u = self.next_f64();
        if (s - 1.0).abs() < 1e-9 {
            let h = (n as f64).ln();
            return ((u * h).exp() - 1.0).min((n - 1) as f64) as usize;
        }
        let p = 1.0 - s;
        let h = ((n as f64).powf(p) - 1.0) / p;
        let x = (1.0 + p * u * h).powf(1.0 / p) - 1.0;
        (x.min((n - 1) as f64)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(3);
        let mut hits = [false; 10];
        for _ in 0..1_000 {
            hits[r.below(10)] = true;
        }
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = Rng::seed_from_u64(11);
        let n = 50_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let x = r.normal() as f64;
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::seed_from_u64(9);
        for &(n, k) in &[(100usize, 5usize), (10, 10), (1000, 30)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k);
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn weighted_prefers_heavy_index() {
        let mut r = Rng::seed_from_u64(13);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..5_000 {
            counts[r.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn zipf_head_heavier_than_tail() {
        let mut r = Rng::seed_from_u64(17);
        let mut head = 0usize;
        let mut tail = 0usize;
        for _ in 0..10_000 {
            let x = r.zipf(1000, 1.2);
            if x < 10 {
                head += 1;
            }
            if x >= 500 {
                tail += 1;
            }
        }
        assert!(head > tail, "head {head} tail {tail}");
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = Rng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = Rng::seed_from_u64(21);
        let mut a = root.split();
        let mut b = root.split();
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
