//! Weight initialization schemes.

use crate::rng::Rng;
use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform(shape: &[usize], rng: &mut Rng) -> Tensor {
    let (fan_in, fan_out) = fans(shape);
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Xavier/Glorot normal initialization.
pub fn xavier_normal(shape: &[usize], rng: &mut Rng) -> Tensor {
    let (fan_in, fan_out) = fans(shape);
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_normal(shape, std, rng)
}

/// Kaiming/He normal initialization (for ReLU stacks).
pub fn kaiming_normal(shape: &[usize], rng: &mut Rng) -> Tensor {
    let (fan_in, _) = fans(shape);
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::rand_normal(shape, std, rng)
}

/// BERT-style truncated-ish normal with std 0.02 (we clip at 2 std).
pub fn bert_normal(shape: &[usize], rng: &mut Rng) -> Tensor {
    let mut t = Tensor::rand_normal(shape, 0.02, rng);
    for v in t.data_mut() {
        *v = v.clamp(-0.04, 0.04);
    }
    t
}

fn fans(shape: &[usize]) -> (usize, usize) {
    match shape {
        [n] => (*n, *n),
        [i, o] => (*i, *o),
        [b, i, o] => (*b * *i, *o),
        _ => {
            let n: usize = shape.iter().product();
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_uniform_within_bound() {
        let mut rng = Rng::seed_from_u64(1);
        let t = xavier_uniform(&[64, 64], &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= bound));
        // nonzero spread
        assert!(t.norm() > 0.1);
    }

    #[test]
    fn xavier_normal_variance() {
        let mut rng = Rng::seed_from_u64(2);
        let t = xavier_normal(&[128, 128], &mut rng);
        let var = t.sq_norm() / t.len() as f32;
        let expected = 2.0 / 256.0;
        assert!((var - expected).abs() < expected * 0.3, "var {var} vs {expected}");
    }

    #[test]
    fn bert_normal_is_clipped() {
        let mut rng = Rng::seed_from_u64(3);
        let t = bert_normal(&[1000], &mut rng);
        assert!(t.data().iter().all(|&v| v.abs() <= 0.04));
    }
}
