//! Sparse matrices (CSR) and the sparse-dense product used by the GCN/GAT
//! baselines (`out = A · X` with `A` a normalized adjacency matrix).

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;
use std::sync::Arc;

/// A compressed-sparse-row f32 matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets. Duplicate
    /// coordinates are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds {rows}x{cols}");
        }
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut i = 0usize;
        for (r, ptr) in row_ptr.iter_mut().enumerate().take(rows) {
            *ptr = col_idx.len();
            while i < sorted.len() && sorted[i].0 == r {
                let c = sorted[i].1;
                let mut v = 0.0f32;
                while i < sorted.len() && sorted[i].0 == r && sorted[i].1 == c {
                    v += sorted[i].2;
                    i += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
        }
        row_ptr[rows] = col_idx.len();
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates the entries of one row as `(col, value)`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Dense product `self · x` (`x: [cols, d] -> [rows, d]`).
    ///
    /// Row-parallel: each output row is a gather over that row's entries, so
    /// partitioning rows across workers never changes any accumulation order
    /// (bit-identical for every thread budget). Stored zeros are skipped.
    pub fn matmul_dense(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2);
        assert_eq!(x.shape()[0], self.cols, "spmm inner dim");
        let d = x.shape()[1];
        let mut out = Tensor::zeros(&[self.rows, d]);
        if self.rows * d > 0 {
            let avg_nnz = (self.nnz() / self.rows.max(1)).max(1);
            crate::par::par_row_chunks(
                out.data_mut(),
                self.rows,
                d,
                2 * avg_nnz * d,
                |row0, block| {
                    for (i, orow) in block.chunks_mut(d).enumerate() {
                        let r = row0 + i;
                        for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                            let v = self.values[k];
                            if v == 0.0 {
                                continue;
                            }
                            let c = self.col_idx[k];
                            let xrow = &x.data()[c * d..(c + 1) * d];
                            for (o, &xv) in orow.iter_mut().zip(xrow) {
                                *o += v * xv;
                            }
                        }
                    }
                },
            );
        }
        out
    }

    /// Transposed product `selfᵀ · x` (`x: [rows, d] -> [cols, d]`),
    /// needed for the backward pass of [`Graph::spmm`].
    pub fn t_matmul_dense(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2);
        assert_eq!(x.shape()[0], self.rows, "spmm-t inner dim");
        let d = x.shape()[1];
        let mut out = Tensor::zeros(&[self.cols, d]);
        for r in 0..self.rows {
            let xrow = &x.data()[r * d..(r + 1) * d];
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                let c = self.col_idx[k];
                let v = self.values[k];
                let orow = out.row_mut(c);
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Row-normalizes in place so each non-empty row sums to 1
    /// (random-walk normalization, `D⁻¹A`).
    pub fn row_normalize(&mut self) {
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let sum: f32 = self.values[lo..hi].iter().sum();
            if sum > 0.0 {
                let inv = 1.0 / sum;
                self.values[lo..hi].iter_mut().for_each(|v| *v *= inv);
            }
        }
    }

    /// Symmetric GCN normalization `D^{-1/2} (A) D^{-1/2}` (square only).
    pub fn sym_normalize(&mut self) {
        assert_eq!(self.rows, self.cols, "sym_normalize needs a square matrix");
        let mut deg = vec![0.0f32; self.rows];
        for (r, d) in deg.iter_mut().enumerate() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                *d += self.values[k];
            }
        }
        let inv_sqrt: Vec<f32> =
            deg.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                self.values[k] *= inv_sqrt[r] * inv_sqrt[self.col_idx[k]];
            }
        }
    }
}

impl Graph {
    /// Sparse-dense product `A · X` with gradient flowing into `X`
    /// (`A` is a constant adjacency structure).
    pub fn spmm(&self, a: Arc<CsrMatrix>, x: Var) -> Var {
        let a_b = Arc::clone(&a);
        self.unary(
            x,
            move |t| a.matmul_dense(t),
            Box::new(move |g, _, _| vec![crate::graph::Flow::Grad(a_b.t_matmul_dense(g))]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn dense_of(a: &CsrMatrix) -> Tensor {
        let mut t = Tensor::zeros(&[a.rows(), a.cols()]);
        for r in 0..a.rows() {
            for (c, v) in a.row_entries(r) {
                t.row_mut(r)[c] += v;
            }
        }
        t
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 5.0)]);
        assert_eq!(a.nnz(), 2);
        let d = dense_of(&a);
        assert_eq!(d.data(), &[0.0, 3.0, 5.0, 0.0]);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let mut rng = Rng::seed_from_u64(1);
        let triplets: Vec<(usize, usize, f32)> =
            (0..30).map(|_| (rng.below(5), rng.below(7), rng.uniform(-1.0, 1.0))).collect();
        let a = CsrMatrix::from_triplets(5, 7, &triplets);
        let x = Tensor::rand_normal(&[7, 3], 1.0, &mut rng);
        let sparse = a.matmul_dense(&x);
        let dense = dense_of(&a).matmul(&x);
        for (s, d) in sparse.data().iter().zip(dense.data()) {
            assert!((s - d).abs() < 1e-4);
        }
    }

    #[test]
    fn t_matmul_matches_dense_transpose() {
        let mut rng = Rng::seed_from_u64(2);
        let triplets: Vec<(usize, usize, f32)> =
            (0..20).map(|_| (rng.below(4), rng.below(6), rng.uniform(-1.0, 1.0))).collect();
        let a = CsrMatrix::from_triplets(4, 6, &triplets);
        let x = Tensor::rand_normal(&[4, 3], 1.0, &mut rng);
        let sparse = a.t_matmul_dense(&x);
        let dense = dense_of(&a).transpose2().matmul(&x);
        for (s, d) in sparse.data().iter().zip(dense.data()) {
            assert!((s - d).abs() < 1e-4);
        }
    }

    #[test]
    fn row_normalize_sums_to_one() {
        let mut a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (0, 1, 2.0), (2, 1, 5.0)]);
        a.row_normalize();
        let d = dense_of(&a);
        assert!((d.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(d.row(1).iter().sum::<f32>(), 0.0); // empty row untouched
        assert!((d.row(2).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sym_normalize_eigen_sane() {
        // Complete graph K2 with self loops: entries become 1/2.
        let mut a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        a.sym_normalize();
        let d = dense_of(&a);
        for v in d.data() {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn spmm_gradient_is_transpose_product() {
        let a = Arc::new(CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0)]));
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]), true);
        let y = g.spmm(Arc::clone(&a), x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        // dX = A^T * ones(3,2): col sums of A per input row.
        assert_eq!(grad.data(), &[4.0, 4.0, 2.0, 2.0]);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = Rng::seed_from_u64(3);
        let x = Tensor::rand_normal(&[4, 3], 1.0, &mut rng);
        let i = CsrMatrix::identity(4);
        assert_eq!(i.matmul_dense(&x), x);
    }
}
