//! Int8 scalar-quantization kernels for the retrieval layer.
//!
//! Companion of [`crate::kernels`]: where the tiled matmul microkernels
//! serve the exact paths, these pack an embedding table into one signed
//! byte per element (~4x memory cut versus `f32`) for the approximate
//! candidate scan of `sdea-index`. The format is per-dimension affine:
//! dimension `j` stores a midpoint `offset[j]` and a step `scale[j]`, and a
//! code `c ∈ [-127, 127]` reconstructs to `offset[j] + scale[j]·c`. The
//! reconstruction error is bounded by `scale[j]/2` per element, which the
//! `property` suite asserts, and every quantized score is only ever used to
//! pick a shortlist that is re-scored exactly in `f32` — quantization never
//! decides a final ranking on its own.
//!
//! **Determinism.** Quantization and the dot kernels are branch-free
//! element-wise loops in ascending index order: bit-identical at any
//! `SDEA_THREADS` budget and across runs. [`quantized_dot`] performs
//! exactly the same operations in the same order as the two-step oracle
//! (dequantize, then [`reference`](crate::kernels::reference)-style dot),
//! so the fused and unfused paths agree bitwise — the property suite's
//! oracle check.

/// Largest code magnitude: codes live in `[-127, 127]` so the range is
/// symmetric around the per-dimension midpoint (`-128` is never produced).
pub const QMAX: f32 = 127.0;

/// Per-dimension affine quantization parameters for a `[n, d]` table.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantParams {
    /// Step size per dimension; `0.0` for a constant dimension (every code
    /// is then 0 and reconstruction is exact).
    pub scale: Vec<f32>,
    /// Midpoint per dimension: `(min + max) / 2` of the column.
    pub offset: Vec<f32>,
}

impl QuantParams {
    /// The embedding width this parameter set quantizes.
    pub fn dim(&self) -> usize {
        self.scale.len()
    }
}

/// Quantizes a row-major `[n, d]` table to one `i8` code per element with
/// per-dimension scale/offset, returning `(codes, params)`.
///
/// Each dimension maps its observed `[min, max]` range symmetrically onto
/// `[-QMAX, QMAX]`. Degenerate cases are exact by construction: a constant
/// dimension (including all-zero rows in that dimension) gets
/// `scale = 0.0`, code 0, and reconstructs to the constant itself; an
/// empty table returns empty codes and zero-length params. Non-finite
/// inputs clamp into the code range (NaN encodes as code 0).
pub fn quantize_rows(data: &[f32], n: usize, d: usize) -> (Vec<i8>, QuantParams) {
    assert_eq!(data.len(), n * d, "quantize_rows: data must be n * d");
    let mut lo = vec![f32::INFINITY; d];
    let mut hi = vec![f32::NEG_INFINITY; d];
    for row in data.chunks_exact(d) {
        for (j, &x) in row.iter().enumerate() {
            // min/max ignore NaN (comparisons are false), so a stray NaN
            // cannot poison a whole dimension's range.
            if x < lo[j] {
                lo[j] = x;
            }
            if x > hi[j] {
                hi[j] = x;
            }
        }
    }
    let mut scale = vec![0.0f32; d];
    let mut offset = vec![0.0f32; d];
    for j in 0..d {
        if n == 0 || !lo[j].is_finite() || !hi[j].is_finite() {
            continue; // empty or all-NaN column: scale 0, offset 0
        }
        offset[j] = 0.5 * (lo[j] + hi[j]);
        let half_range = 0.5 * (hi[j] - lo[j]);
        if half_range > 0.0 {
            scale[j] = half_range / QMAX;
        }
    }
    let mut codes = vec![0i8; n * d];
    for (row, crow) in data.chunks_exact(d).zip(codes.chunks_exact_mut(d)) {
        for j in 0..d {
            if scale[j] > 0.0 {
                let q = (row[j] - offset[j]) / scale[j];
                // NaN fails both clamps below and encodes as 0.
                let q = if q > QMAX {
                    QMAX
                } else if q < -QMAX {
                    -QMAX
                } else if q.is_nan() {
                    0.0
                } else {
                    q
                };
                crow[j] = q.round() as i8;
            }
        }
    }
    (codes, QuantParams { scale, offset })
}

/// Reconstructs one quantized row to `f32`: `offset[j] + scale[j]·code`.
pub fn dequantize_row(codes: &[i8], p: &QuantParams) -> Vec<f32> {
    assert_eq!(codes.len(), p.dim(), "dequantize_row: code width mismatch");
    codes.iter().zip(p.scale.iter().zip(&p.offset)).map(|(&c, (&s, &o))| o + s * c as f32).collect()
}

/// Approximate dot product of an `f32` query row against one quantized
/// row: `Σ_j q[j] · (offset[j] + scale[j]·code[j])` in ascending `j`.
///
/// Operation-for-operation identical to `dot(q, dequantize_row(codes, p))`
/// — the fused form just skips the intermediate allocation — so the
/// property suite can assert bitwise agreement with the unfused oracle.
pub fn quantized_dot(q: &[f32], codes: &[i8], p: &QuantParams) -> f32 {
    debug_assert_eq!(q.len(), codes.len());
    debug_assert_eq!(q.len(), p.dim());
    let mut acc = 0.0f32;
    for j in 0..q.len() {
        acc += q[j] * (p.offset[j] + p.scale[j] * codes[j] as f32);
    }
    acc
}

/// Exact `f32` dot product in ascending index order — the same per-element
/// operation sequence as one output element of the matmul microkernels
/// (see the determinism contract in [`crate::kernels`]), so shortlist
/// re-scoring through this function is bit-identical to a full
/// `matmul_t` row.
pub fn exact_dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for j in 0..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded_per_dim() {
        let data: Vec<f32> = (0..64).map(|i| ((i * 37 % 13) as f32 - 6.0) * 0.37).collect();
        let (codes, p) = quantize_rows(&data, 8, 8);
        for (r, row) in data.chunks_exact(8).enumerate() {
            let back = dequantize_row(&codes[r * 8..(r + 1) * 8], &p);
            for j in 0..8 {
                let bound = 0.5 * p.scale[j] + 1e-6;
                assert!(
                    (row[j] - back[j]).abs() <= bound,
                    "row {r} dim {j}: {} vs {} (scale {})",
                    row[j],
                    back[j],
                    p.scale[j]
                );
            }
        }
    }

    #[test]
    fn constant_dim_reconstructs_exactly() {
        // Dimension 1 is the constant 0.75 in every row; dimension 0 varies.
        let data = vec![0.1, 0.75, -0.4, 0.75, 0.9, 0.75];
        let (codes, p) = quantize_rows(&data, 3, 2);
        assert_eq!(p.scale[1], 0.0);
        for r in 0..3 {
            let back = dequantize_row(&codes[r * 2..(r + 1) * 2], &p);
            assert_eq!(back[1], 0.75, "constant dims must be exact");
        }
    }

    #[test]
    fn single_row_reconstructs_exactly() {
        // One row: every dimension is constant, so reconstruction is exact.
        let data = vec![0.3, -1.7, 0.0, 42.5];
        let (codes, p) = quantize_rows(&data, 1, 4);
        assert_eq!(codes, vec![0, 0, 0, 0]);
        assert_eq!(dequantize_row(&codes, &p), data);
    }

    #[test]
    fn all_zero_row_stays_zero() {
        let data = vec![0.0, 0.0, 0.0, 1.0, -1.0, 0.5];
        let (codes, p) = quantize_rows(&data, 2, 3);
        let back = dequantize_row(&codes[..3], &p);
        // The zero row reconstructs within the bound; with a symmetric
        // range its codes are the midpoint's nearest code.
        for (j, &b) in back.iter().enumerate() {
            assert!(b.abs() <= 0.5 * p.scale[j] + 1e-6, "dim {j}: {b}");
        }
    }

    #[test]
    fn empty_table_is_fine() {
        let (codes, p) = quantize_rows(&[], 0, 4);
        assert!(codes.is_empty());
        assert_eq!(p.dim(), 4);
        assert!(p.scale.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn fused_dot_matches_unfused_oracle_bitwise() {
        let data: Vec<f32> = (0..48).map(|i| ((i * 29 % 17) as f32).sin()).collect();
        let (codes, p) = quantize_rows(&data, 4, 12);
        let q: Vec<f32> = (0..12).map(|i| ((i * 7 % 5) as f32).cos()).collect();
        for r in 0..4 {
            let crow = &codes[r * 12..(r + 1) * 12];
            let fused = quantized_dot(&q, crow, &p);
            let unfused = exact_dot(&q, &dequantize_row(crow, &p));
            assert_eq!(fused.to_bits(), unfused.to_bits(), "row {r}");
        }
    }

    #[test]
    fn nan_input_encodes_without_poisoning() {
        let data = vec![f32::NAN, 0.5, 1.0, -0.5, -1.0, 0.0];
        let (codes, p) = quantize_rows(&data, 3, 2);
        assert_eq!(codes[0], 0, "NaN encodes as the midpoint code");
        assert!(p.scale[0].is_finite() && p.offset[0].is_finite());
        // Other rows in the same dimension still reconstruct within bound.
        let back = dequantize_row(&codes[2..4], &p);
        assert!((back[0] - 1.0).abs() <= 0.5 * p.scale[0] + 1e-6);
    }
}
