//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is a plain value type: a shape plus a contiguous buffer. All
//! the numeric kernels used by both forward evaluation and the autograd
//! backward passes live here as ordinary methods; the tape in
//! [`crate::graph`] composes them.

use crate::rng::Rng;

/// A dense row-major tensor of `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; n] }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![value; n] }
    }

    /// Wraps an existing buffer. Panics if the element count mismatches.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length {} != shape product {}", data.len(), n);
        Tensor { shape: shape.to_vec(), data }
    }

    /// A scalar (rank-0 is represented as shape `[1]`).
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: vec![1], data: vec![value] }
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// Normal random tensor with the given standard deviation.
    pub fn rand_normal(shape: &[usize], std: f32, rng: &mut Rng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.normal() * std).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    // ------------------------------------------------------------ accessors

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The raw buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Scalar value of a single-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor of shape {:?}", self.shape);
        self.data[0]
    }

    /// For a rank-2 tensor, the `i`-th row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert_eq!(self.rank(), 2);
        let d = self.shape[1];
        &self.data[i * d..(i + 1) * d]
    }

    /// For a rank-2 tensor, the `i`-th row mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert_eq!(self.rank(), 2);
        let d = self.shape[1];
        &mut self.data[i * d..(i + 1) * d]
    }

    /// Element access for rank-2 tensors.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Reinterprets the buffer with a new shape of the same element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape {:?} -> {:?}", self.shape, shape);
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// In-place reshape (no copy).
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len());
        self.shape = shape.to_vec();
    }

    // --------------------------------------------------------- elementwise

    /// Elementwise binary op into a fresh tensor; shapes must match.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Elementwise map into a fresh tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// `self + other`.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Hadamard product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scales by a constant.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// Accumulates `other` into `self` (`self += other`).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += c * other` (axpy).
    pub fn axpy(&mut self, c: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += c * b;
        }
    }

    /// Fills with zeros, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared L2 norm of the whole buffer.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Frobenius / L2 norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Dot product of two same-shaped tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data.iter().zip(other.data.iter()).map(|(&a, &b)| a * b).sum()
    }

    // ------------------------------------------------------------- matmul

    /// Rank-2 matrix multiplication `[n,k] x [k,m] -> [n,m]` through the
    /// register-tiled microkernel (see [`crate::kernels`]): B is packed
    /// into column panels once per call, then row blocks fan out across
    /// the thread budget.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_with(other, None, None)
    }

    /// `self × other + bias` with the `[m]` bias added in the kernel
    /// write-back epilogue (one pass over the output instead of two).
    pub fn matmul_bias(&self, other: &Tensor, bias: &Tensor) -> Tensor {
        self.matmul_with(other, Some(bias), None)
    }

    /// Shared `matmul` driver: optional fused bias and an optional
    /// pre-allocated output buffer (pool reuse; contents are overwritten).
    pub(crate) fn matmul_with(
        &self,
        other: &Tensor,
        bias: Option<&Tensor>,
        buf: Option<Vec<f32>>,
    ) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs rank {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs rank {:?}", other.shape);
        let (n, k) = (self.shape[0], self.shape[1]);
        let (k2, m) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dim: {:?} x {:?}", self.shape, other.shape);
        if let Some(b) = bias {
            assert_eq!(b.len(), m, "matmul bias dim {} != {}", b.len(), m);
        }
        let mut out = take_buf(buf, n * m);
        if n * m > 0 {
            let bias = bias.map(|b| b.data());
            crate::kernels::with_pack_scratch(|scratch| {
                crate::kernels::pack_b(&other.data, k, m, scratch);
                let packed: &[f32] = scratch;
                crate::par::par_row_chunks(&mut out, n, m, k * m, |row0, block| {
                    let rows = block.len() / m;
                    crate::kernels::matmul_packed(
                        &self.data[row0 * k..(row0 + rows) * k],
                        packed,
                        rows,
                        k,
                        m,
                        1.0,
                        bias,
                        block,
                    );
                });
            });
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// `self^T x other` for rank-2 tensors: `[k,n]^T=[n,k]`… computes
    /// `[n,m]` from `self: [k,n]`, `other: [k,m]` without materializing the
    /// transpose. Used by matmul backward.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        self.t_matmul_with(other, None)
    }

    pub(crate) fn t_matmul_with(&self, other: &Tensor, buf: Option<Vec<f32>>) -> Tensor {
        let (k, n) = (self.shape[0], self.shape[1]);
        let (k2, m) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "t_matmul inner dim");
        let mut out = take_buf(buf, n * m);
        if n * m > 0 {
            crate::kernels::with_pack_scratch(|scratch| {
                crate::kernels::pack_b(&other.data, k, m, scratch);
                let packed: &[f32] = scratch;
                crate::par::par_row_chunks(&mut out, n, m, k * m, |row0, block| {
                    let rows = block.len() / m;
                    // Each worker transposes its own A-column block into
                    // row-major form; the per-element sum order (ascending
                    // k) is the same for any row split.
                    let mut at = Vec::new();
                    crate::kernels::transpose_block(&self.data, k, n, row0, rows, &mut at);
                    crate::kernels::matmul_packed(&at, packed, rows, k, m, 1.0, None, block);
                });
            });
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// `self x other^T` for rank-2 tensors: `self: [n,k]`, `other: [m,k]`,
    /// result `[n,m]`, without materializing the transpose.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        self.matmul_t_with(other, None)
    }

    pub(crate) fn matmul_t_with(&self, other: &Tensor, buf: Option<Vec<f32>>) -> Tensor {
        let (n, k) = (self.shape[0], self.shape[1]);
        let (m, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_t inner dim");
        let mut out = take_buf(buf, n * m);
        if n * m > 0 {
            crate::kernels::with_pack_scratch(|scratch| {
                crate::kernels::pack_bt(&other.data, k, m, scratch);
                let packed: &[f32] = scratch;
                crate::par::par_row_chunks(&mut out, n, m, k * m, |row0, block| {
                    let rows = block.len() / m;
                    crate::kernels::matmul_packed(
                        &self.data[row0 * k..(row0 + rows) * k],
                        packed,
                        rows,
                        k,
                        m,
                        1.0,
                        None,
                        block,
                    );
                });
            });
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// Rank-2 transpose.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2);
        let (n, m) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            for j in 0..m {
                out[j * n + i] = self.data[i * m + j];
            }
        }
        Tensor { shape: vec![m, n], data: out }
    }

    /// Batched matmul `[b,n,k] x [b,k,m] -> [b,n,m]`.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        self.bmm_scaled(other, 1.0, None)
    }

    /// Batched `A x B^T`: `[b,n,k] x [b,m,k] -> [b,n,m]` without
    /// materializing the transpose (attention scores `Q·Kᵀ`).
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        self.bmm_nt_scaled(other, 1.0, None)
    }

    /// Batched `A^T x B`: `[b,k,n] x [b,k,m] -> [b,n,m]` without
    /// materializing the transpose (attention backward `dK = gᵀ·Q`).
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        self.bmm_tn_scaled(other, 1.0, None)
    }

    pub(crate) fn bmm_scaled(&self, other: &Tensor, alpha: f32, buf: Option<Vec<f32>>) -> Tensor {
        assert_eq!(self.rank(), 3);
        assert_eq!(other.rank(), 3);
        let (b, n, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, m) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm batch mismatch");
        assert_eq!(k, k2, "bmm inner dim");
        let mut out = take_buf(buf, b * n * m);
        if b * n * m > 0 {
            // One "row" per batch: each worker owns whole [n,m] output slabs
            // and packs its batch's B panel into a reused local buffer.
            crate::par::par_row_chunks(&mut out, b, n * m, n * k * m, |b0, block| {
                let mut packed = Vec::new();
                for (i, o) in block.chunks_mut(n * m).enumerate() {
                    let bi = b0 + i;
                    crate::kernels::pack_b(
                        &other.data[bi * k * m..(bi + 1) * k * m],
                        k,
                        m,
                        &mut packed,
                    );
                    crate::kernels::matmul_packed(
                        &self.data[bi * n * k..(bi + 1) * n * k],
                        &packed,
                        n,
                        k,
                        m,
                        alpha,
                        None,
                        o,
                    );
                }
            });
        }
        Tensor { shape: vec![b, n, m], data: out }
    }

    pub(crate) fn bmm_nt_scaled(
        &self,
        other: &Tensor,
        alpha: f32,
        buf: Option<Vec<f32>>,
    ) -> Tensor {
        assert_eq!(self.rank(), 3);
        assert_eq!(other.rank(), 3);
        let (b, n, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, m, k2) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm_nt batch mismatch");
        assert_eq!(k, k2, "bmm_nt inner dim");
        let mut out = take_buf(buf, b * n * m);
        if b * n * m > 0 {
            crate::par::par_row_chunks(&mut out, b, n * m, n * k * m, |b0, block| {
                let mut packed = Vec::new();
                for (i, o) in block.chunks_mut(n * m).enumerate() {
                    let bi = b0 + i;
                    crate::kernels::pack_bt(
                        &other.data[bi * m * k..(bi + 1) * m * k],
                        k,
                        m,
                        &mut packed,
                    );
                    crate::kernels::matmul_packed(
                        &self.data[bi * n * k..(bi + 1) * n * k],
                        &packed,
                        n,
                        k,
                        m,
                        alpha,
                        None,
                        o,
                    );
                }
            });
        }
        Tensor { shape: vec![b, n, m], data: out }
    }

    pub(crate) fn bmm_tn_scaled(
        &self,
        other: &Tensor,
        alpha: f32,
        buf: Option<Vec<f32>>,
    ) -> Tensor {
        assert_eq!(self.rank(), 3);
        assert_eq!(other.rank(), 3);
        let (b, k, n) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, m) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm_tn batch mismatch");
        assert_eq!(k, k2, "bmm_tn inner dim");
        let mut out = take_buf(buf, b * n * m);
        if b * n * m > 0 {
            crate::par::par_row_chunks(&mut out, b, n * m, n * k * m, |b0, block| {
                let mut packed = Vec::new();
                let mut at = Vec::new();
                for (i, o) in block.chunks_mut(n * m).enumerate() {
                    let bi = b0 + i;
                    crate::kernels::pack_b(
                        &other.data[bi * k * m..(bi + 1) * k * m],
                        k,
                        m,
                        &mut packed,
                    );
                    crate::kernels::transpose_block(
                        &self.data[bi * k * n..(bi + 1) * k * n],
                        k,
                        n,
                        0,
                        n,
                        &mut at,
                    );
                    crate::kernels::matmul_packed(&at, &packed, n, k, m, alpha, None, o);
                }
            });
        }
        Tensor { shape: vec![b, n, m], data: out }
    }

    /// Transposes the last two axes of a rank-3 tensor.
    pub fn transpose_last2(&self) -> Tensor {
        assert_eq!(self.rank(), 3);
        let (b, n, m) = (self.shape[0], self.shape[1], self.shape[2]);
        let mut out = vec![0.0f32; b * n * m];
        for bi in 0..b {
            let src = &self.data[bi * n * m..(bi + 1) * n * m];
            let dst = &mut out[bi * n * m..(bi + 1) * n * m];
            for i in 0..n {
                for j in 0..m {
                    dst[j * n + i] = src[i * m + j];
                }
            }
        }
        Tensor { shape: vec![b, m, n], data: out }
    }

    // ----------------------------------------------------------- rows / nn

    /// Softmax over the last dimension (any rank >= 1), numerically stable.
    pub fn softmax_lastdim(&self) -> Tensor {
        let d = *self.shape.last().expect("softmax on rank-0");
        let mut out = self.data.clone();
        for chunk in out.chunks_mut(d) {
            let max = chunk.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for x in chunk.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            let inv = 1.0 / sum;
            for x in chunk.iter_mut() {
                *x *= inv;
            }
        }
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// Log-softmax over the last dimension.
    pub fn log_softmax_lastdim(&self) -> Tensor {
        let d = *self.shape.last().expect("log_softmax on rank-0");
        let mut out = self.data.clone();
        for chunk in out.chunks_mut(d) {
            let max = chunk.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for x in chunk.iter() {
                sum += (*x - max).exp();
            }
            let lse = max + sum.ln();
            for x in chunk.iter_mut() {
                *x -= lse;
            }
        }
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// L2-normalizes each row of a rank-2 tensor (zero rows stay zero).
    pub fn l2_normalize_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2);
        let mut out = self.clone();
        let (rows, d) = (self.shape[0], self.shape[1]);
        if d > 0 {
            crate::par::par_row_chunks(&mut out.data, rows, d, 2 * d, |_, block| {
                for chunk in block.chunks_mut(d) {
                    let n: f32 = chunk.iter().map(|&x| x * x).sum::<f32>().sqrt();
                    if n > 1e-12 {
                        let inv = 1.0 / n;
                        chunk.iter_mut().for_each(|x| *x *= inv);
                    }
                }
            });
        }
        out
    }

    /// The canonical cosine-space view of a rank-2 embedding table: every
    /// row L2-normalized, zero rows left as zero vectors (their cosine
    /// against anything is exactly `0.0`, never NaN).
    ///
    /// This is *the* normalization helper for every similarity consumer —
    /// `sdea_eval::cosine_matrix` and the `sdea-index` retrievers all call
    /// it, so the zero-row convention and the exact operation sequence
    /// (and therefore bit-identity between those paths) live in one place.
    /// A thin wrapper over [`Tensor::l2_normalize_rows`], which is also a
    /// differentiable graph op.
    pub fn normalized_view(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "normalized_view expects a rank-2 table");
        self.l2_normalize_rows()
    }

    /// Gathers rows of a rank-2 table into a new rank-2 tensor.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.rank(), 2);
        let d = self.shape[1];
        let mut data = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Tensor { shape: vec![indices.len(), d], data }
    }

    /// Stacks rank-1 tensors of equal length into rows of a rank-2 tensor.
    pub fn stack_rows(rows: &[&Tensor]) -> Tensor {
        assert!(!rows.is_empty());
        let d = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * d);
        for r in rows {
            assert_eq!(r.len(), d, "stack_rows length mismatch");
            data.extend_from_slice(&r.data);
        }
        Tensor { shape: vec![rows.len(), d], data }
    }

    /// Concatenates rank-2 tensors along the last dimension.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty());
        let n = parts[0].shape[0];
        let total: usize = parts.iter().map(|p| p.shape[1]).sum();
        let mut data = Vec::with_capacity(n * total);
        for i in 0..n {
            for p in parts {
                assert_eq!(p.shape[0], n, "concat_cols row mismatch");
                data.extend_from_slice(p.row(i));
            }
        }
        Tensor { shape: vec![n, total], data }
    }

    /// Mean over rows of a rank-2 tensor, producing shape `[d]`.
    pub fn mean_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2);
        let (n, d) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; d];
        for i in 0..n {
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += x;
            }
        }
        let inv = 1.0 / n.max(1) as f32;
        out.iter_mut().for_each(|x| *x *= inv);
        Tensor { shape: vec![d], data: out }
    }

    /// Sums over all leading dimensions: `[.., d] -> [d]` (bias gradients).
    pub fn col_sums(&self) -> Tensor {
        self.col_sums_with(None)
    }

    pub(crate) fn col_sums_with(&self, buf: Option<Vec<f32>>) -> Tensor {
        let d = *self.shape.last().expect("col_sums on rank-0");
        let mut out = take_buf(buf, d);
        out.iter_mut().for_each(|x| *x = 0.0);
        if d > 0 {
            for chunk in self.data.chunks_exact(d) {
                for (o, &v) in out.iter_mut().zip(chunk) {
                    *o += v;
                }
            }
        }
        Tensor { shape: vec![d], data: out }
    }

    /// Consumes the tensor and returns its backing buffer (pool recycling).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Checks all entries are finite; used by tests and the trainer's
    /// divergence guard.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Resolves the output allocation for a kernel call: reuse `buf` (resized to
/// `len`) when the caller recycled one from a pool, else allocate fresh.
/// Contents are unspecified — every kernel fully overwrites its output.
fn take_buf(buf: Option<Vec<f32>>, len: usize) -> Vec<f32> {
    match buf {
        Some(mut v) => {
            v.resize(len, 0.0);
            v
        }
        None => vec![0.0f32; len],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from_u64(1);
        let a = Tensor::rand_normal(&[3, 3], 1.0, &mut rng);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        let c = a.matmul(&eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(2);
        let a = Tensor::rand_normal(&[4, 3], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[4, 5], 1.0, &mut rng);
        let via_t = a.transpose2().matmul(&b);
        let fused = a.t_matmul(&b);
        assert_eq!(via_t.shape(), fused.shape());
        for (x, y) in via_t.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = Rng::seed_from_u64(3);
        let a = Tensor::rand_normal(&[4, 3], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[5, 3], 1.0, &mut rng);
        let via_t = a.matmul(&b.transpose2());
        let fused = a.matmul_t(&b);
        for (x, y) in via_t.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let mut rng = Rng::seed_from_u64(4);
        let a = Tensor::rand_normal(&[2, 3, 4], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[2, 4, 5], 1.0, &mut rng);
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[2, 3, 5]);
        for bi in 0..2 {
            let a2 = Tensor::from_vec(a.data()[bi * 12..(bi + 1) * 12].to_vec(), &[3, 4]);
            let b2 = Tensor::from_vec(b.data()[bi * 20..(bi + 1) * 20].to_vec(), &[4, 5]);
            let c2 = a2.matmul(&b2);
            for (x, y) in c.data()[bi * 15..(bi + 1) * 15].iter().zip(c2.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 5.0], &[2, 3]);
        let s = t.softmax_lastdim();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(i).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[1, 3]);
        let s = t.softmax_lastdim();
        assert!(s.all_finite());
        let t2 = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]);
        let s2 = t2.softmax_lastdim();
        for (a, b) in s.data().iter().zip(s2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_exp_matches_softmax() {
        let t = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0], &[1, 4]);
        let ls = t.log_softmax_lastdim();
        let s = t.softmax_lastdim();
        for (a, b) in ls.data().iter().zip(s.data()) {
            assert!((a.exp() - b).abs() < 1e-6);
        }
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        let n = t.l2_normalize_rows();
        assert!((n.row(0).iter().map(|x| x * x).sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(n.row(1), &[0.0, 0.0]); // zero row preserved
    }

    #[test]
    fn transpose2_round_trip() {
        let mut rng = Rng::seed_from_u64(5);
        let a = Tensor::rand_normal(&[3, 7], 1.0, &mut rng);
        assert_eq!(a.transpose2().transpose2(), a);
    }

    #[test]
    fn transpose_last2_round_trip() {
        let mut rng = Rng::seed_from_u64(6);
        let a = Tensor::rand_normal(&[2, 3, 4], 1.0, &mut rng);
        assert_eq!(a.transpose_last2().transpose_last2(), a);
    }

    #[test]
    fn gather_and_stack() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![9.0, 8.0], &[2, 1]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn mean_rows_average() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let m = t.mean_rows();
        assert_eq!(m.data(), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.add(&b);
    }

    #[test]
    fn shape_and_data_accessors_agree() {
        let mut rng = Rng::seed_from_u64(7);
        let t = Tensor::rand_normal(&[4, 5], 1.0, &mut rng);
        // Binary round trips are exercised by serialize.rs tests; here we
        // assert field access consistency.
        assert_eq!(t.shape(), &[4, 5]);
        assert_eq!(t.data().len(), 20);
    }
}
