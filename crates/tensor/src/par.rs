//! Deterministic fork-join execution layer.
//!
//! Every compute hot path in the system (dense matmul, cosine scoring,
//! batched transformer inference, top-k retrieval) parallelizes through the
//! two scoped helpers here instead of hand-rolling `thread::scope` blocks:
//!
//! * [`par_row_chunks`] — split a row-major output buffer into contiguous
//!   row blocks and fill each block on its own worker;
//! * [`par_map_collect`] — map an index range to values, preserving index
//!   order in the returned `Vec`.
//!
//! **Determinism guarantee.** Work is partitioned *by position, never by
//! arrival*: each output element is computed by exactly the same scalar
//! operations in exactly the same order regardless of the thread budget, so
//! results are bit-identical between `SDEA_THREADS=1` and `SDEA_THREADS=N`
//! (enforced by the `par_equivalence` test suites). The only thing the
//! budget changes is wall-clock time.
//!
//! **Thread budget.** A process-wide budget is resolved in priority order:
//! programmatic override ([`set_thread_budget`], wired to
//! `SdeaConfig::threads`), the `SDEA_THREADS` environment variable (capped
//! at `std::thread::available_parallelism()` — an env budget past the
//! hardware only buys spawn and context-switch overhead), then
//! `available_parallelism()` itself. Programmatic overrides are taken
//! literally so the equivalence suites can force real fan-outs on any
//! machine. Helpers additionally cap the fan-out by the amount of work
//! (`cost` hints), so small inputs never pay spawn overhead, and nested
//! parallel regions run serially instead of oversubscribing (a worker that
//! calls back into `par_*` executes inline).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Work (in ~flops or bytes touched) below which a helper stays serial, and
/// the minimum work per spawned worker. One core's worth of a few
/// microseconds; spawn cost is ~10µs, so chunks must dominate that.
const MIN_COST_PER_THREAD: usize = 1 << 16;

/// Programmatic thread-budget override; 0 = unset (fall through to the
/// environment / hardware).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker closures so nested parallel regions stay serial.
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // Strict parse: a malformed value (`SDEA_THREADS=banana`) used to be
        // silently ignored, leaving a server running on the default budget —
        // now it is a hard startup error. `0`, unset and blank mean "auto".
        match sdea_obs::env::parse_or_exit::<usize>(
            "SDEA_THREADS",
            "a non-negative integer worker count (0 = auto)",
        ) {
            // The env var expresses "use up to N": budgets past the hardware
            // would only buy spawn + context-switch overhead (measured ~25%
            // of a pipeline run on a 1-core container), so it is capped.
            // Programmatic overrides stay literal — the equivalence suites
            // use them to force real fan-outs regardless of the machine.
            Some(n) if n > 0 => n.min(hw),
            _ => 0,
        }
    })
}

/// The current process-wide thread budget: the [`set_thread_budget`]
/// override if set, else `SDEA_THREADS`, else the hardware parallelism.
/// Always at least 1; exactly 1 inside a parallel worker (nested regions
/// serialize instead of oversubscribing).
pub fn max_threads() -> usize {
    if IN_PARALLEL_REGION.with(|f| f.get()) {
        return 1;
    }
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    let e = env_threads();
    if e != 0 {
        return e;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Sets (n >= 1) or clears (n = 0) the process-wide thread budget override.
/// Takes precedence over `SDEA_THREADS`.
pub fn set_thread_budget(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Runs `f` under a temporary thread budget, restoring the previous
/// override afterwards. Calls are serialized on a global lock so
/// concurrent tests never observe each other's budget; safe to use from
/// `#[test]`s.
pub fn with_thread_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    static GUARD: Mutex<()> = Mutex::new(());
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let prev = OVERRIDE.swap(n, Ordering::Relaxed);
    let out = f();
    OVERRIDE.store(prev, Ordering::Relaxed);
    out
}

/// Cached `sdea_obs` counters for the fork-join layer: total parallel-region
/// entries, entries that actually fanned out, and workers spawned. Handles
/// are pre-registered so the hot path pays one atomic add and no lock
/// (and only a relaxed load when observability is disabled).
fn obs_counters() -> &'static (sdea_obs::Counter, sdea_obs::Counter, sdea_obs::Counter) {
    static C: OnceLock<(sdea_obs::Counter, sdea_obs::Counter, sdea_obs::Counter)> = OnceLock::new();
    C.get_or_init(|| {
        (
            sdea_obs::counter("par.regions"),
            sdea_obs::counter("par.regions_parallel"),
            sdea_obs::counter("par.workers_spawned"),
        )
    })
}

/// Decides the fan-out for a task of `units` independent pieces whose total
/// cost is `total_cost`: 1 when the work wouldn't amortize a spawn, else at
/// most the budget and at most one thread per `MIN_COST_PER_THREAD` of work.
fn fanout(units: usize, total_cost: usize) -> usize {
    let budget = max_threads();
    let threads = if budget <= 1 || units <= 1 || total_cost < 2 * MIN_COST_PER_THREAD {
        1
    } else {
        budget.min(units).min((total_cost / MIN_COST_PER_THREAD).max(1))
    };
    let (regions, parallel, workers) = obs_counters();
    regions.add(1);
    if threads > 1 {
        parallel.add(1);
        workers.add(threads as u64);
    }
    threads
}

/// Fills the row-major buffer `out` (`rows` rows of `row_width` elements)
/// by calling `fill(first_row, block)` on contiguous row blocks, one block
/// per worker. `cost_per_row` is an order-of-magnitude estimate of the
/// scalar operations needed per row and controls the fan-out.
///
/// `fill` receives the index of its block's first row and the mutable
/// sub-slice covering the block's rows; blocks are disjoint, so no
/// synchronization is needed and the result is bit-identical to a serial
/// `fill(0, out)`.
pub fn par_row_chunks<F>(
    out: &mut [f32],
    rows: usize,
    row_width: usize,
    cost_per_row: usize,
    fill: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(out.len(), rows * row_width, "out buffer must be rows * row_width");
    let threads = fanout(rows, cost_per_row.saturating_mul(rows));
    if threads <= 1 || row_width == 0 {
        fill(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut row0 = 0usize;
        while row0 < rows {
            let take = chunk_rows.min(rows - row0);
            let (block, tail) = rest.split_at_mut(take * row_width);
            rest = tail;
            let first = row0;
            let fill = &fill;
            scope.spawn(move || {
                IN_PARALLEL_REGION.with(|f| f.set(true));
                fill(first, block);
            });
            row0 += take;
        }
    });
}

/// Maps `0..n` through `f` and collects the results in index order,
/// fanning contiguous index ranges out to workers. `cost_per_item` is an
/// order-of-magnitude per-item work estimate controlling the fan-out.
///
/// Output order is always `f(0), f(1), .., f(n-1)` regardless of the
/// thread budget.
pub fn par_map_collect<R, F>(n: usize, cost_per_item: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = fanout(n, cost_per_item.saturating_mul(n));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                let f = &f;
                scope.spawn(move || {
                    IN_PARALLEL_REGION.with(|flag| flag.set(true));
                    (start..end).map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("par_map_collect worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_resolution_order() {
        with_thread_budget(3, || assert_eq!(max_threads(), 3));
        // override cleared -> env or hardware, both >= 1
        assert!(max_threads() >= 1);
    }

    #[test]
    fn row_chunks_cover_every_row_once() {
        let rows = 117;
        let width = 13;
        let mut out = vec![0.0f32; rows * width];
        with_thread_budget(8, || {
            // huge cost estimate to force the threaded path
            par_row_chunks(&mut out, rows, width, 1 << 20, |row0, block| {
                for (r, row) in block.chunks_mut(width).enumerate() {
                    for v in row.iter_mut() {
                        *v += (row0 + r) as f32;
                    }
                }
            });
        });
        for r in 0..rows {
            assert!(out[r * width..(r + 1) * width].iter().all(|&v| v == r as f32), "row {r}");
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        for budget in [1, 2, 5, 16] {
            let got = with_thread_budget(budget, || par_map_collect(100, 1 << 20, |i| i * i));
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "budget {budget}");
        }
    }

    #[test]
    fn small_work_stays_serial() {
        // cost below the spawn threshold: must not panic and must be exact
        let mut out = vec![0.0f32; 8];
        par_row_chunks(&mut out, 4, 2, 1, |row0, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = (row0 * 2 + i) as f32;
            }
        });
        assert_eq!(out, (0..8).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn nested_regions_serialize() {
        let nested_budgets =
            with_thread_budget(8, || par_map_collect(4, 1 << 20, |_| max_threads()));
        assert_eq!(nested_budgets, vec![1; 4], "workers must see a budget of 1");
    }

    #[test]
    fn zero_rows_and_zero_width_are_safe() {
        let mut empty: Vec<f32> = Vec::new();
        par_row_chunks(&mut empty, 0, 5, 100, |_, _| {});
        par_row_chunks(&mut empty, 5, 0, 100, |_, block| assert!(block.is_empty()));
        assert!(par_map_collect(0, 100, |i| i).is_empty());
    }
}
