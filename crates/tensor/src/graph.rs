//! Reverse-mode autograd tape.
//!
//! A [`Graph`] owns one training step's computation: every op appends a node
//! (value + parent ids + backward closure). [`Graph::backward`] seeds the
//! root gradient and walks the tape in reverse, calling each node's backward
//! closure to produce per-parent gradients which are accumulated.
//!
//! Model weights persist across steps in a [`crate::optim::ParamStore`];
//! [`Graph::param`] copies a parameter onto the tape and remembers the
//! binding so [`Graph::accumulate_param_grads`] can push gradients back.

use crate::optim::{ParamId, ParamStore};
use crate::pool::BufferPool;
use crate::tensor::Tensor;
use std::cell::{Cell, Ref, RefCell};
use std::rc::Rc;

/// Handle to a node on a [`Graph`] tape.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var {
    pub(crate) id: usize,
}

/// What a backward closure sends to one parent.
pub(crate) enum Flow {
    /// Identity Jacobian: the output gradient flows to this parent
    /// element-for-element (lengths match; shapes may differ, e.g. through a
    /// reshape). [`Graph::backward`] forwards the tensor without copying
    /// whenever it can.
    Pass,
    /// An explicit gradient tensor, shaped like the parent.
    Grad(Tensor),
}

/// Backward closure: given (grad wrt output, output value, parent values),
/// return one [`Flow`] per parent.
pub(crate) type BackFn = Box<dyn Fn(&Tensor, &Tensor, &[&Tensor]) -> Vec<Flow>>;

pub(crate) struct Node {
    pub parents: Vec<usize>,
    pub backward: Option<BackFn>,
    pub requires_grad: bool,
    pub param: Option<ParamId>,
}

pub(crate) struct Inner {
    pub values: Vec<Tensor>,
    pub grads: Vec<Option<Tensor>>,
    pub nodes: Vec<Node>,
}

/// An autograd tape. Create one per forward/backward pass.
///
/// With [`Graph::with_pool`], node values and gradients are recycled through
/// a [`BufferPool`] when the graph drops, so the next step's tape reuses
/// this step's allocations.
pub struct Graph {
    pub(crate) inner: RefCell<Inner>,
    pub(crate) pool: Option<Rc<BufferPool>>,
    retain_grads: Cell<bool>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Graph {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            let inner = self.inner.get_mut();
            for t in inner.values.drain(..) {
                pool.put_tensor(t);
            }
            for g in inner.grads.drain(..).flatten() {
                pool.put_tensor(g);
            }
        }
    }
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph {
            inner: RefCell::new(Inner { values: Vec::new(), grads: Vec::new(), nodes: Vec::new() }),
            pool: None,
            retain_grads: Cell::new(false),
        }
    }

    /// An empty tape whose allocations are recycled through `pool` — both
    /// on drop and inside backward closures that produce temporaries.
    pub fn with_pool(pool: Rc<BufferPool>) -> Self {
        let mut g = Self::new();
        g.pool = Some(pool);
        g
    }

    /// When enabled, [`Graph::backward`] keeps the gradient of every
    /// intermediate node (matching the pre-pool behavior) instead of only
    /// leaves; costs one extra tensor copy per pass-through node.
    pub fn set_retain_grads(&self, on: bool) {
        self.retain_grads.set(on);
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(
        &self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackFn>,
        requires_grad: bool,
        param: Option<ParamId>,
    ) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.values.push(value);
        inner.grads.push(None);
        inner.nodes.push(Node { parents, backward, requires_grad, param });
        Var { id }
    }

    /// Records a leaf tensor. `requires_grad` controls whether a gradient is
    /// accumulated for it during [`Graph::backward`].
    pub fn leaf(&self, value: Tensor, requires_grad: bool) -> Var {
        self.push(value, Vec::new(), None, requires_grad, None)
    }

    /// Records a constant (no gradient).
    pub fn constant(&self, value: Tensor) -> Var {
        self.leaf(value, false)
    }

    /// Copies a parameter from the store onto the tape (through the buffer
    /// pool when one is attached) and records the binding so its gradient
    /// can later be pushed back.
    pub fn param(&self, store: &ParamStore, id: ParamId) -> Var {
        let value = crate::pool::copy_tensor(&self.pool, store.value(id));
        self.push(value, Vec::new(), None, true, Some(id))
    }

    /// Shared read access to a node's value.
    pub fn value(&self, v: Var) -> Ref<'_, Tensor> {
        Ref::map(self.inner.borrow(), |i| &i.values[v.id])
    }

    /// Clones a node's value out of the tape.
    pub fn value_cloned(&self, v: Var) -> Tensor {
        self.inner.borrow().values[v.id].clone()
    }

    /// The gradient of a node after [`Graph::backward`], if one was produced.
    pub fn grad(&self, v: Var) -> Option<Tensor> {
        self.inner.borrow().grads[v.id].clone()
    }

    fn requires(&self, ids: &[usize]) -> bool {
        let inner = self.inner.borrow();
        ids.iter().any(|&i| inner.nodes[i].requires_grad)
    }

    /// Generic unary op.
    pub(crate) fn unary(
        &self,
        a: Var,
        forward: impl FnOnce(&Tensor) -> Tensor,
        backward: BackFn,
    ) -> Var {
        let value = forward(&self.inner.borrow().values[a.id]);
        let rg = self.requires(&[a.id]);
        self.push(value, vec![a.id], if rg { Some(backward) } else { None }, rg, None)
    }

    /// Generic binary op.
    pub(crate) fn binary(
        &self,
        a: Var,
        b: Var,
        forward: impl FnOnce(&Tensor, &Tensor) -> Tensor,
        backward: BackFn,
    ) -> Var {
        let value = {
            let inner = self.inner.borrow();
            forward(&inner.values[a.id], &inner.values[b.id])
        };
        let rg = self.requires(&[a.id, b.id]);
        self.push(value, vec![a.id, b.id], if rg { Some(backward) } else { None }, rg, None)
    }

    /// Runs reverse-mode differentiation from a scalar root.
    ///
    /// Panics if the root is not a single-element tensor.
    ///
    /// [`Flow::Pass`] parents receive the output gradient itself: the last
    /// empty pass-through slot takes the tensor by move (zero-copy — the
    /// common chain `a → b → c` of reshapes/adds never duplicates the
    /// gradient), earlier ones get pool-backed copies, and occupied slots
    /// accumulate flat. Unless [`Graph::set_retain_grads`] is on, a consumed
    /// node's own gradient is dropped (recycled) rather than kept.
    pub fn backward(&self, root: Var) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.values[root.id].len(),
            1,
            "backward root must be scalar, got shape {:?}",
            inner.values[root.id].shape()
        );
        inner.grads[root.id] = Some(Tensor::scalar(1.0));

        let retain = self.retain_grads.get();
        let Inner { values, grads, nodes } = &mut *inner;
        let mut pending: Vec<usize> = Vec::new();
        for id in (0..=root.id).rev() {
            if grads[id].is_none() || nodes[id].backward.is_none() {
                continue;
            }
            let mut gout = grads[id].take();
            let node = &nodes[id];
            let back = node.backward.as_ref().expect("checked above");
            let parent_vals: Vec<&Tensor> = node.parents.iter().map(|&p| &values[p]).collect();
            let flows = back(gout.as_ref().expect("checked above"), &values[id], &parent_vals);
            debug_assert_eq!(flows.len(), node.parents.len());
            pending.clear();
            for (&p, flow) in node.parents.iter().zip(flows) {
                if !nodes[p].requires_grad {
                    if let Flow::Grad(t) = flow {
                        crate::pool::recycle(&self.pool, t);
                    }
                    continue;
                }
                match flow {
                    Flow::Grad(pg) => {
                        debug_assert_eq!(
                            pg.shape(),
                            values[p].shape(),
                            "backward produced grad of wrong shape for node {p}"
                        );
                        match &mut grads[p] {
                            Some(g) => {
                                g.add_assign(&pg);
                                crate::pool::recycle(&self.pool, pg);
                            }
                            slot @ None => *slot = Some(pg),
                        }
                    }
                    Flow::Pass => {
                        debug_assert_eq!(
                            gout.as_ref().expect("gout alive during fan-out").len(),
                            values[p].len(),
                            "pass-through grad length mismatch for node {p}"
                        );
                        pending.push(p);
                    }
                }
            }
            // Distribute gout to pass-through parents. Slots are re-checked
            // on every step because a node may list the same parent twice
            // (e.g. `add(x, x)`): the first delivery fills the slot, the
            // second must accumulate into it.
            let n_pend = pending.len();
            for (i, &p) in pending.iter().enumerate() {
                let src = gout.as_ref().expect("gout alive during fan-out");
                match &mut grads[p] {
                    Some(g) => {
                        // Flat accumulate: lengths match, shapes may not.
                        for (o, &v) in g.data_mut().iter_mut().zip(src.data()) {
                            *o += v;
                        }
                    }
                    slot @ None => {
                        let shape = values[p].shape();
                        let t = if i + 1 == n_pend && !retain {
                            let moved = gout.take().expect("last pending takes gout");
                            Tensor::from_vec(moved.into_data(), shape)
                        } else {
                            let data = match &self.pool {
                                Some(pl) => pl.take_copy_of(src.data()),
                                None => src.data().to_vec(),
                            };
                            Tensor::from_vec(data, shape)
                        };
                        *slot = Some(t);
                    }
                }
            }
            match gout {
                Some(g) if retain => grads[id] = Some(g),
                Some(g) => crate::pool::recycle(&self.pool, g),
                None => {}
            }
        }
    }

    /// After [`Graph::backward`], adds every bound parameter's gradient into
    /// the store's accumulators. Returns how many parameters received grads.
    pub fn accumulate_param_grads(&self, store: &mut ParamStore) -> usize {
        let inner = self.inner.borrow();
        let mut n = 0;
        for (id, node) in inner.nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, inner.grads[id].as_ref()) {
                store.grad_mut(pid).add_assign(g);
                n += 1;
            }
        }
        n
    }

    // ------------------------------------------------------ arithmetic ops

    /// Elementwise addition (same shape).
    pub fn add(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.add(y), Box::new(|_, _, _| vec![Flow::Pass, Flow::Pass]))
    }

    /// Elementwise subtraction (same shape).
    pub fn sub(&self, a: Var, b: Var) -> Var {
        self.binary(
            a,
            b,
            |x, y| x.sub(y),
            Box::new(|g, _, _| vec![Flow::Pass, Flow::Grad(g.scale(-1.0))]),
        )
    }

    /// Hadamard product (same shape).
    pub fn mul(&self, a: Var, b: Var) -> Var {
        self.binary(
            a,
            b,
            |x, y| x.mul(y),
            Box::new(|g, _, ps| vec![Flow::Grad(g.mul(ps[1])), Flow::Grad(g.mul(ps[0]))]),
        )
    }

    /// Multiplication by a constant.
    pub fn scale(&self, a: Var, c: f32) -> Var {
        self.unary(a, |x| x.scale(c), Box::new(move |g, _, _| vec![Flow::Grad(g.scale(c))]))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, a: Var, c: f32) -> Var {
        self.unary(a, |x| x.map(|v| v + c), Box::new(|_, _, _| vec![Flow::Pass]))
    }

    /// Negation.
    pub fn neg(&self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// `1 - a`, used by GRU update gates.
    pub fn one_minus(&self, a: Var) -> Var {
        self.unary(a, |x| x.map(|v| 1.0 - v), Box::new(|g, _, _| vec![Flow::Grad(g.scale(-1.0))]))
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        self.unary(
            a,
            |x| x.map(|v| v * v),
            Box::new(|g, _, ps| vec![Flow::Grad(g.zip(ps[0], |gv, xv| 2.0 * gv * xv))]),
        )
    }

    // ------------------------------------------------------ activations

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        self.unary(
            a,
            |x| x.map(|v| v.max(0.0)),
            Box::new(|g, out, _| {
                vec![Flow::Grad(g.zip(out, |gv, ov| if ov > 0.0 { gv } else { 0.0 }))]
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        self.unary(
            a,
            |x| x.map(f32::tanh),
            Box::new(|g, out, _| vec![Flow::Grad(g.zip(out, |gv, ov| gv * (1.0 - ov * ov)))]),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        self.unary(
            a,
            |x| x.map(|v| 1.0 / (1.0 + (-v).exp())),
            Box::new(|g, out, _| vec![Flow::Grad(g.zip(out, |gv, ov| gv * ov * (1.0 - ov)))]),
        )
    }

    /// GELU (tanh approximation), the transformer's feed-forward activation.
    pub fn gelu(&self, a: Var) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        fn gelu_f(x: f32) -> f32 {
            0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
        }
        fn dgelu_f(x: f32) -> f32 {
            let u = C * (x + 0.044715 * x * x * x);
            let t = u.tanh();
            let du = C * (1.0 + 3.0 * 0.044715 * x * x);
            0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
        }
        self.unary(
            a,
            |x| x.map(gelu_f),
            Box::new(|g, _, ps| vec![Flow::Grad(g.zip(ps[0], |gv, xv| gv * dgelu_f(xv)))]),
        )
    }

    // ------------------------------------------------------ linear algebra

    /// Rank-2 matrix product `[n,k] x [k,m] -> [n,m]`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let pool = self.pool.clone();
        self.binary(
            a,
            b,
            |x, y| x.matmul(y),
            Box::new(move |g, _, ps| {
                let da = g.matmul_t_with(ps[1], crate::pool::take_uninit(&pool, ps[0].len()));
                let db = ps[0].t_matmul_with(g, crate::pool::take_uninit(&pool, ps[1].len()));
                vec![Flow::Grad(da), Flow::Grad(db)]
            }),
        )
    }

    /// Batched matrix product `[b,n,k] x [b,k,m] -> [b,n,m]`.
    pub fn bmm(&self, a: Var, b: Var) -> Var {
        let pool = self.pool.clone();
        self.binary(
            a,
            b,
            |x, y| x.bmm(y),
            Box::new(move |g, _, ps| {
                // dA = g x B^T, dB = A^T x g, per batch — both through the
                // transpose-free kernels (no materialized permutations).
                let da = g.bmm_nt_scaled(ps[1], 1.0, crate::pool::take_uninit(&pool, ps[0].len()));
                let db = ps[0].bmm_tn_scaled(g, 1.0, crate::pool::take_uninit(&pool, ps[1].len()));
                vec![Flow::Grad(da), Flow::Grad(db)]
            }),
        )
    }

    /// Rank-2 transpose.
    pub fn transpose2(&self, a: Var) -> Var {
        self.unary(a, |x| x.transpose2(), Box::new(|g, _, _| vec![Flow::Grad(g.transpose2())]))
    }

    /// Transposes the last two axes of a rank-3 tensor.
    pub fn transpose_last2(&self, a: Var) -> Var {
        self.unary(
            a,
            |x| x.transpose_last2(),
            Box::new(|g, _, _| vec![Flow::Grad(g.transpose_last2())]),
        )
    }

    /// Adds a `[d]` bias vector to every row of a `[n,d]` (or `[.., d]`) tensor.
    pub fn add_bias(&self, x: Var, bias: Var) -> Var {
        let pool = self.pool.clone();
        self.binary(
            x,
            bias,
            |x, b| {
                let d = b.len();
                assert_eq!(x.shape().last(), Some(&d), "add_bias dim mismatch");
                let mut out = x.clone();
                for chunk in out.data_mut().chunks_mut(d) {
                    for (c, &bv) in chunk.iter_mut().zip(b.data()) {
                        *c += bv;
                    }
                }
                out
            },
            Box::new(move |g, _, ps| {
                let db = g.col_sums_with(crate::pool::take_uninit(&pool, ps[1].len()));
                vec![Flow::Pass, Flow::Grad(Tensor::from_vec(db.into_data(), ps[1].shape()))]
            }),
        )
    }

    /// Scales each row `i` of `x: [n,d]` by `s[i]` (`s: [n]`).
    pub fn mul_col(&self, x: Var, s: Var) -> Var {
        let pool = self.pool.clone();
        self.binary(
            x,
            s,
            |x, s| {
                assert_eq!(x.rank(), 2);
                assert_eq!(s.shape(), &[x.shape()[0]], "mul_col scaler shape");
                let d = x.shape()[1];
                let mut out = x.clone();
                for (i, chunk) in out.data_mut().chunks_mut(d).enumerate() {
                    let sv = s.data()[i];
                    chunk.iter_mut().for_each(|c| *c *= sv);
                }
                out
            },
            Box::new(move |g, _, ps| {
                let d = ps[0].shape()[1];
                let n = ps[0].shape()[0];
                let mut dx = crate::pool::copy_tensor(&pool, g);
                let mut ds = vec![0.0f32; n];
                for (i, dsi) in ds.iter_mut().enumerate() {
                    let sv = ps[1].data()[i];
                    let grow = &g.data()[i * d..(i + 1) * d];
                    let xrow = ps[0].row(i);
                    *dsi = grow.iter().zip(xrow).map(|(&gv, &xv)| gv * xv).sum();
                    for c in dx.row_mut(i) {
                        *c *= sv;
                    }
                }
                vec![Flow::Grad(dx), Flow::Grad(Tensor::from_vec(ds, &[n]))]
            }),
        )
    }

    /// Per-row dot product of two `[n,d]` tensors, producing `[n]`.
    pub fn rows_dot(&self, a: Var, b: Var) -> Var {
        let pool = self.pool.clone();
        self.binary(
            a,
            b,
            |x, y| {
                assert_eq!(x.shape(), y.shape());
                assert_eq!(x.rank(), 2);
                let (n, d) = (x.shape()[0], x.shape()[1]);
                let mut out = vec![0.0f32; n];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = x.data()[i * d..(i + 1) * d]
                        .iter()
                        .zip(&y.data()[i * d..(i + 1) * d])
                        .map(|(&p, &q)| p * q)
                        .sum();
                }
                Tensor::from_vec(out, &[n])
            },
            Box::new(move |g, _, ps| {
                let (n, d) = (ps[0].shape()[0], ps[0].shape()[1]);
                let mut da = crate::pool::copy_tensor(&pool, ps[1]);
                let mut db = crate::pool::copy_tensor(&pool, ps[0]);
                for i in 0..n {
                    let gv = g.data()[i];
                    da.data_mut()[i * d..(i + 1) * d].iter_mut().for_each(|v| *v *= gv);
                    db.data_mut()[i * d..(i + 1) * d].iter_mut().for_each(|v| *v *= gv);
                }
                vec![Flow::Grad(da), Flow::Grad(db)]
            }),
        )
    }

    /// Sums each row of `[n,d]` into `[n]`.
    pub fn rows_sum(&self, x: Var) -> Var {
        self.unary(
            x,
            |x| {
                assert_eq!(x.rank(), 2);
                let (n, d) = (x.shape()[0], x.shape()[1]);
                let out: Vec<f32> =
                    (0..n).map(|i| x.data()[i * d..(i + 1) * d].iter().sum()).collect();
                Tensor::from_vec(out, &[n])
            },
            Box::new(|g, _, ps| {
                let (n, d) = (ps[0].shape()[0], ps[0].shape()[1]);
                let mut dx = Tensor::zeros(&[n, d]);
                for i in 0..n {
                    let gv = g.data()[i];
                    dx.row_mut(i).iter_mut().for_each(|v| *v = gv);
                }
                vec![Flow::Grad(dx)]
            }),
        )
    }

    // ------------------------------------------------------ reductions

    /// Sum of all elements, producing a scalar.
    pub fn sum_all(&self, x: Var) -> Var {
        self.unary(
            x,
            |x| Tensor::scalar(x.sum()),
            Box::new(|g, _, ps| vec![Flow::Grad(Tensor::full(ps[0].shape(), g.item()))]),
        )
    }

    /// Mean of all elements, producing a scalar.
    pub fn mean_all(&self, x: Var) -> Var {
        self.unary(
            x,
            |x| Tensor::scalar(x.sum() / x.len().max(1) as f32),
            Box::new(|g, _, ps| {
                let n = ps[0].len().max(1) as f32;
                vec![Flow::Grad(Tensor::full(ps[0].shape(), g.item() / n))]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Central finite differences on a scalar-valued function of one leaf.
    pub(crate) fn numeric_grad(f: impl Fn(&Tensor) -> f32, at: &Tensor, eps: f32) -> Tensor {
        let mut g = Tensor::zeros(at.shape());
        for i in 0..at.len() {
            let mut plus = at.clone();
            plus.data_mut()[i] += eps;
            let mut minus = at.clone();
            minus.data_mut()[i] -= eps;
            g.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
        }
        g
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}: grad[{i}] analytic={x} numeric={y}"
            );
        }
    }

    /// Grad-checks a graph function of a single input tensor.
    fn grad_check(shape: &[usize], seed: u64, f: impl Fn(&Graph, Var) -> Var, what: &str) {
        let mut rng = Rng::seed_from_u64(seed);
        let x0 = Tensor::rand_normal(shape, 0.8, &mut rng);
        let g = Graph::new();
        let x = g.leaf(x0.clone(), true);
        let y = f(&g, x);
        g.backward(y);
        let analytic = g.grad(x).expect("no grad");
        let numeric = numeric_grad(
            |t| {
                let g2 = Graph::new();
                let xv = g2.leaf(t.clone(), false);
                let yv = f(&g2, xv);
                g2.value_cloned(yv).item()
            },
            &x0,
            1e-3,
        );
        assert_close(&analytic, &numeric, 2e-2, what);
    }

    #[test]
    fn grad_add_mul_chain() {
        grad_check(
            &[2, 3],
            1,
            |g, x| {
                let y = g.mul(x, x);
                let z = g.add(y, x);
                g.sum_all(z)
            },
            "add/mul",
        );
    }

    #[test]
    fn grad_matmul() {
        let mut rng = Rng::seed_from_u64(2);
        let w0 = Tensor::rand_normal(&[3, 4], 0.8, &mut rng);
        let w = w0.clone();
        grad_check(
            &[2, 3],
            3,
            move |g, x| {
                let wv = g.constant(w.clone());
                let y = g.matmul(x, wv);
                g.sum_all(g.square(y))
            },
            "matmul lhs",
        );
        let x0 = Tensor::rand_normal(&[2, 3], 0.8, &mut rng);
        let xc = x0.clone();
        grad_check(
            &[3, 4],
            4,
            move |g, w| {
                let xv = g.constant(xc.clone());
                let y = g.matmul(xv, w);
                g.sum_all(g.square(y))
            },
            "matmul rhs",
        );
        let _ = w0;
    }

    #[test]
    fn grad_bmm() {
        let mut rng = Rng::seed_from_u64(5);
        let b0 = Tensor::rand_normal(&[2, 4, 3], 0.7, &mut rng);
        grad_check(
            &[2, 3, 4],
            6,
            move |g, x| {
                let bv = g.constant(b0.clone());
                let y = g.bmm(x, bv);
                g.mean_all(g.square(y))
            },
            "bmm",
        );
    }

    #[test]
    fn grad_activations() {
        grad_check(&[2, 4], 7, |g, x| g.sum_all(g.relu(x)), "relu");
        grad_check(&[2, 4], 8, |g, x| g.sum_all(g.tanh(x)), "tanh");
        grad_check(&[2, 4], 9, |g, x| g.sum_all(g.sigmoid(x)), "sigmoid");
        grad_check(&[2, 4], 10, |g, x| g.sum_all(g.gelu(x)), "gelu");
    }

    #[test]
    fn grad_bias_and_rows() {
        let mut rng = Rng::seed_from_u64(11);
        let b0 = Tensor::rand_normal(&[4], 0.5, &mut rng);
        grad_check(
            &[3, 4],
            12,
            move |g, x| {
                let b = g.constant(b0.clone());
                g.sum_all(g.square(g.add_bias(x, b)))
            },
            "add_bias x",
        );
        let x0 = Tensor::rand_normal(&[3, 4], 0.5, &mut rng);
        grad_check(
            &[4],
            13,
            move |g, b| {
                let x = g.constant(x0.clone());
                g.sum_all(g.square(g.add_bias(x, b)))
            },
            "add_bias b",
        );
        grad_check(&[3, 4], 14, |g, x| g.sum_all(g.square(g.rows_sum(x))), "rows_sum");
    }

    #[test]
    fn grad_mul_col_and_rows_dot() {
        let mut rng = Rng::seed_from_u64(15);
        let s0 = Tensor::rand_normal(&[3], 0.7, &mut rng);
        grad_check(
            &[3, 4],
            16,
            move |g, x| {
                let s = g.constant(s0.clone());
                g.sum_all(g.square(g.mul_col(x, s)))
            },
            "mul_col x",
        );
        let x0 = Tensor::rand_normal(&[3, 4], 0.7, &mut rng);
        grad_check(
            &[3],
            17,
            move |g, s| {
                let x = g.constant(x0.clone());
                g.sum_all(g.square(g.mul_col(x, s)))
            },
            "mul_col s",
        );
        let y0 = Tensor::rand_normal(&[3, 4], 0.7, &mut rng);
        grad_check(
            &[3, 4],
            18,
            move |g, x| {
                let y = g.constant(y0.clone());
                g.sum_all(g.square(g.rows_dot(x, y)))
            },
            "rows_dot",
        );
    }

    #[test]
    fn backward_accumulates_over_shared_subexpression() {
        // y = x*x + x*x => dy/dx = 4x
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![3.0], &[1]), true);
        let sq = g.mul(x, x);
        let y = g.add(sq, sq);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert!((g.grad(x).unwrap().item() - 12.0).abs() < 1e-5);
    }

    #[test]
    fn constants_get_no_grad() {
        let g = Graph::new();
        let x = g.leaf(Tensor::scalar(2.0), true);
        let c = g.constant(Tensor::scalar(5.0));
        let y = g.mul(x, c);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert!(g.grad(c).is_none());
        assert!((g.grad(x).unwrap().item() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must be scalar")]
    fn backward_requires_scalar_root() {
        let g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[2, 2]), true);
        g.backward(x);
    }

    #[test]
    fn one_minus_and_add_scalar() {
        grad_check(&[2, 3], 19, |g, x| g.sum_all(g.square(g.one_minus(x))), "one_minus");
        grad_check(&[2, 3], 20, |g, x| g.sum_all(g.square(g.add_scalar(x, 0.7))), "add_scalar");
    }
}
