//! # sdea-tensor
//!
//! Dense `f32` tensors with reverse-mode automatic differentiation, written
//! from scratch for the SDEA entity-alignment system.
//!
//! The paper's models (a BERT-style transformer, a bidirectional GRU with
//! attention, GCN/GAT/TransE baselines) all train on CPU through this crate.
//! The design is a classic *tape*: every operation appends a node to a
//! [`Graph`]; [`Graph::backward`] walks the tape in reverse and accumulates
//! gradients. Model parameters live in a [`ParamStore`] so the same weights
//! persist across many short-lived tapes (one per training step).
//!
//! ```
//! use sdea_tensor::{Graph, Tensor};
//!
//! let g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]), true);
//! let w = g.leaf(Tensor::from_vec(vec![0.5, -1.0, 1.5, 2.0], &[2, 2]), true);
//! let y = g.matmul(x, w);
//! let loss = g.sum_all(y);
//! g.backward(loss);
//! let gx = g.grad(x).unwrap();
//! assert_eq!(gx.shape(), &[1, 2]);
//! ```

#![forbid(unsafe_code)]

pub mod fault;
pub mod graph;
pub mod init;
pub mod kernels;
pub mod ops_fused;
pub mod ops_nn;
pub mod ops_shape;
pub mod optim;
pub mod ord;
pub mod par;
pub mod pool;
pub mod qkernels;
pub mod rng;
pub mod serialize;
pub mod shards;
pub mod sparse;
pub mod tensor;

pub use graph::{Graph, Var};
pub use optim::{Adam, GradClip, Optimizer, ParamId, ParamStore, Sgd};
pub use ord::desc_nan_last;
pub use par::{
    max_threads, par_map_collect, par_row_chunks, set_thread_budget, with_thread_budget,
};
pub use pool::BufferPool;
pub use rng::Rng;
pub use shards::EmbeddingShards;
pub use sparse::CsrMatrix;
pub use tensor::Tensor;
