//! Register-tiled, panel-packed matmul microkernels.
//!
//! Every dense product in the system (`matmul`, `matmul_t`, `t_matmul`,
//! `bmm` and friends) funnels into [`matmul_packed`]: the B operand is
//! packed once per call into column panels of [`NR`] contiguous floats per
//! k-step, then an [`MR`]×[`NR`] register tile of accumulators is carried
//! over the full k range for each output block. The panel layout makes the
//! inner loop a unit-stride load + broadcast-multiply-accumulate that LLVM
//! autovectorizes; the register tile gives 4 independent accumulator chains
//! per vector lane, enough to hide FP add latency.
//!
//! **Determinism contract.** Each output element `out[i,j]` is produced by
//! exactly one accumulator that sums `a[i,k]·b[k,j]` in strictly ascending
//! `k` order — there is no k-splitting and no partial-sum write-back. The
//! per-element operation sequence is therefore independent of (a) where a
//! row falls inside an `MR` block and (b) how `par_row_chunks` partitions
//! rows across workers, so results are bit-identical at any `SDEA_THREADS`
//! budget **and** bit-identical to the naive [`reference`] kernels (which
//! the `property` suite asserts with exact equality).

/// Rows per register tile (independent accumulator chains per panel column).
pub const MR: usize = 4;
/// Columns per packed panel (vector-lane width of the accumulator tile).
pub const NR: usize = 8;

/// Length of the packed buffer produced by [`pack_b`]/[`pack_bt`]:
/// `ceil(m / NR)` panels of `k·NR` floats (tail panels are zero-padded).
pub fn packed_len(k: usize, m: usize) -> usize {
    m.div_ceil(NR) * k * NR
}

/// Packs row-major `b: [k,m]` into column panels: panel `p` holds columns
/// `[p·NR, p·NR+NR)` as `k` rows of `NR` contiguous floats, zero-padded on
/// the right when `m` is not a multiple of `NR`.
pub fn pack_b(b: &[f32], k: usize, m: usize, packed: &mut Vec<f32>) {
    debug_assert_eq!(b.len(), k * m);
    let panels = m.div_ceil(NR);
    packed.clear();
    packed.resize(panels * k * NR, 0.0);
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(m - j0);
        let panel = &mut packed[p * k * NR..(p + 1) * k * NR];
        // clear + resize zero-fills, so tail lanes w..NR stay padded.
        for kk in 0..k {
            panel[kk * NR..kk * NR + w].copy_from_slice(&b[kk * m + j0..kk * m + j0 + w]);
        }
    }
}

/// Packs row-major `bt: [m,k]` — i.e. `Bᵀ` — into the panel format
/// [`pack_b`] would produce for `B: [k,m]`. Lets `matmul_t` (`A·Bᵀ`) run
/// through the same microkernel without materializing the transpose.
pub fn pack_bt(bt: &[f32], k: usize, m: usize, packed: &mut Vec<f32>) {
    debug_assert_eq!(bt.len(), m * k);
    let panels = m.div_ceil(NR);
    packed.clear();
    packed.resize(panels * k * NR, 0.0);
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(m - j0);
        let panel = &mut packed[p * k * NR..(p + 1) * k * NR];
        // clear + resize zero-fills, so tail lanes w..NR stay padded.
        for jj in 0..w {
            let row = &bt[(j0 + jj) * k..(j0 + jj + 1) * k];
            for (kk, &v) in row.iter().enumerate() {
                panel[kk * NR + jj] = v;
            }
        }
    }
}

/// Transposes columns `[col0, col0+rows)` of column-major-viewed
/// `a: [k,n]` into a row-major `[rows,k]` block. Used by `t_matmul`
/// workers to feed their row block through [`matmul_packed`].
pub fn transpose_block(
    a: &[f32],
    k: usize,
    n: usize,
    col0: usize,
    rows: usize,
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(a.len(), k * n);
    debug_assert!(col0 + rows <= n);
    out.clear();
    out.resize(rows * k, 0.0);
    for kk in 0..k {
        let src = &a[kk * n + col0..kk * n + col0 + rows];
        for (r, &v) in src.iter().enumerate() {
            out[r * k + kk] = v;
        }
    }
}

/// `out[r,j] = alpha · Σ_k a[r,k]·B[k,j] (+ bias[j])` over a packed B,
/// overwriting `out: [rows,m]`. `a` is row-major `[rows,k]`; `packed_b`
/// comes from [`pack_b`]/[`pack_bt`]. The bias (when given) and `alpha`
/// are applied in the write-back epilogue, after the full-k sum — with
/// `alpha == 1.0` the stored value is bit-identical to the bare product.
pub fn matmul_packed(
    a: &[f32],
    packed_b: &[f32],
    rows: usize,
    k: usize,
    m: usize,
    alpha: f32,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(packed_b.len(), packed_len(k, m));
    debug_assert_eq!(out.len(), rows * m);
    if let Some(b) = bias {
        debug_assert_eq!(b.len(), m);
    }
    let panels = m.div_ceil(NR);
    let mut i0 = 0usize;
    while i0 < rows {
        let mr = MR.min(rows - i0);
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(m - j0);
            let panel = &packed_b[p * k * NR..(p + 1) * k * NR];
            let mut acc = [[0.0f32; NR]; MR];
            if mr == MR {
                kernel_full(&a[i0 * k..(i0 + MR) * k], k, panel, &mut acc);
            } else {
                kernel_tail(&a[i0 * k..(i0 + mr) * k], k, panel, mr, &mut acc);
            }
            for (r, acc_row) in acc.iter().enumerate().take(mr) {
                let dst = &mut out[(i0 + r) * m + j0..(i0 + r) * m + j0 + w];
                match bias {
                    Some(b) => {
                        let bs = &b[j0..j0 + w];
                        if alpha == 1.0 {
                            for ((d, &acc_v), &bv) in dst.iter_mut().zip(acc_row).zip(bs) {
                                *d = acc_v + bv;
                            }
                        } else {
                            for ((d, &acc_v), &bv) in dst.iter_mut().zip(acc_row).zip(bs) {
                                *d = acc_v * alpha + bv;
                            }
                        }
                    }
                    None => {
                        if alpha == 1.0 {
                            dst.copy_from_slice(&acc_row[..w]);
                        } else {
                            for (d, &acc_v) in dst.iter_mut().zip(acc_row) {
                                *d = acc_v * alpha;
                            }
                        }
                    }
                }
            }
        }
        i0 += mr;
    }
}

/// Full MR×NR tile: 4 rows of `a` against one packed panel, ascending k.
#[inline(always)]
fn kernel_full(a: &[f32], k: usize, panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let (a01, a23) = a.split_at(2 * k);
    let (a0, a1) = a01.split_at(k);
    let (a2, a3) = a23.split_at(k);
    let it = a0.iter().zip(a1).zip(a2).zip(a3).zip(panel.chunks_exact(NR));
    for ((((&x0, &x1), &x2), &x3), bv) in it {
        for j in 0..NR {
            acc[0][j] += x0 * bv[j];
            acc[1][j] += x1 * bv[j];
            acc[2][j] += x2 * bv[j];
            acc[3][j] += x3 * bv[j];
        }
    }
}

/// Remainder tile (1–3 rows); same per-element accumulation order as the
/// full kernel.
#[inline(always)]
fn kernel_tail(a: &[f32], k: usize, panel: &[f32], mr: usize, acc: &mut [[f32; NR]; MR]) {
    for (kk, bv) in panel.chunks_exact(NR).take(k).enumerate() {
        for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
            let x = a[r * k + kk];
            for j in 0..NR {
                acc_row[j] += x * bv[j];
            }
        }
    }
}

/// Runs `f` with a reusable thread-local packing scratch buffer. The
/// buffer is *taken* (not borrowed) so re-entrant calls simply fall back
/// to a fresh allocation instead of aliasing.
pub(crate) fn with_pack_scratch<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    use std::cell::Cell;
    thread_local! {
        static SCRATCH: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    }
    let mut buf = SCRATCH.with(|c| c.take());
    let r = f(&mut buf);
    SCRATCH.with(|c| c.set(buf));
    r
}

/// Naive single-accumulator kernels with the *same per-element operation
/// order* as the tiled path (ascending k, one sum per output element).
/// They serve two roles: the exact-equality oracle for the property tests,
/// and the pre-tiling baseline for `bench_kernels`.
pub mod reference {
    /// `out[i,j] = Σ_k a[i,k]·b[k,j]`, i-k-j saxpy order (the pre-tiling
    /// production kernel, minus its zero-skip).
    pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
        debug_assert_eq!(a.len(), n * k);
        debug_assert_eq!(b.len(), k * m);
        debug_assert_eq!(out.len(), n * m);
        out.iter_mut().for_each(|x| *x = 0.0);
        for i in 0..n {
            let a_row = &a[i * k..(i + 1) * k];
            let o = &mut out[i * m..(i + 1) * m];
            for (kk, &av) in a_row.iter().enumerate() {
                let b_row = &b[kk * m..(kk + 1) * m];
                for (oj, &bv) in o.iter_mut().zip(b_row.iter()) {
                    *oj += av * bv;
                }
            }
        }
    }

    /// `out[i,j] = Σ_k a[i,k]·bt[j,k]` (`A·Bᵀ` with `bt: [m,k]`).
    pub fn matmul_t_into(a: &[f32], bt: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
        debug_assert_eq!(a.len(), n * k);
        debug_assert_eq!(bt.len(), m * k);
        debug_assert_eq!(out.len(), n * m);
        for i in 0..n {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..m {
                let b_row = &bt[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                out[i * m + j] = acc;
            }
        }
    }

    /// `out[i,j] = Σ_k a[k,i]·b[k,j]` (`Aᵀ·B` with `a: [k,n]`).
    pub fn t_matmul_into(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
        debug_assert_eq!(a.len(), k * n);
        debug_assert_eq!(b.len(), k * m);
        debug_assert_eq!(out.len(), n * m);
        out.iter_mut().for_each(|x| *x = 0.0);
        for kk in 0..k {
            let a_row = &a[kk * n..(kk + 1) * n];
            let b_row = &b[kk * m..(kk + 1) * m];
            for (i, &av) in a_row.iter().enumerate() {
                let o = &mut out[i * m..(i + 1) * m];
                for (oj, &bv) in o.iter_mut().zip(b_row.iter()) {
                    *oj += av * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.normal()).collect()
    }

    fn tiled(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
        let mut packed = Vec::new();
        pack_b(b, k, m, &mut packed);
        let mut out = vec![0.0f32; n * m];
        matmul_packed(a, &packed, n, k, m, 1.0, None, &mut out);
        out
    }

    #[test]
    fn tiled_matches_reference_exactly_over_shapes() {
        for &(n, k, m) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 8),
            (8, 3, 17),
            (129, 33, 65),
            (13, 0, 9), // k = 0: all zeros
        ] {
            let a = rand_vec(n * k, (n * 1000 + k * 10 + m) as u64);
            let b = rand_vec(k * m, (m * 1000 + k) as u64 + 7);
            let got = tiled(&a, &b, n, k, m);
            let mut want = vec![0.0f32; n * m];
            reference::matmul_into(&a, &b, &mut want, n, k, m);
            assert_eq!(got, want, "shape {n}x{k}x{m}");
        }
    }

    #[test]
    fn packed_bt_matches_reference_matmul_t() {
        for &(n, k, m) in &[(1, 1, 1), (3, 5, 7), (129, 33, 65)] {
            let a = rand_vec(n * k, 11);
            let bt = rand_vec(m * k, 13);
            let mut packed = Vec::new();
            pack_bt(&bt, k, m, &mut packed);
            let mut got = vec![0.0f32; n * m];
            matmul_packed(&a, &packed, n, k, m, 1.0, None, &mut got);
            let mut want = vec![0.0f32; n * m];
            reference::matmul_t_into(&a, &bt, &mut want, n, k, m);
            assert_eq!(got, want, "shape {n}x{k}x{m}");
        }
    }

    #[test]
    fn transpose_block_then_kernel_matches_t_matmul() {
        let (n, k, m) = (37, 19, 23);
        let a = rand_vec(k * n, 17); // [k, n]
        let b = rand_vec(k * m, 19);
        let mut packed = Vec::new();
        pack_b(&b, k, m, &mut packed);
        let mut at = Vec::new();
        transpose_block(&a, k, n, 0, n, &mut at);
        let mut got = vec![0.0f32; n * m];
        matmul_packed(&at, &packed, n, k, m, 1.0, None, &mut got);
        let mut want = vec![0.0f32; n * m];
        reference::t_matmul_into(&a, &b, &mut want, n, k, m);
        assert_eq!(got, want);
    }

    #[test]
    fn epilogue_bias_and_alpha() {
        let (n, k, m) = (5, 6, 9);
        let a = rand_vec(n * k, 23);
        let b = rand_vec(k * m, 29);
        let bias = rand_vec(m, 31);
        let mut packed = Vec::new();
        pack_b(&b, k, m, &mut packed);
        let mut plain = vec![0.0f32; n * m];
        matmul_packed(&a, &packed, n, k, m, 1.0, None, &mut plain);
        let mut biased = vec![0.0f32; n * m];
        matmul_packed(&a, &packed, n, k, m, 1.0, Some(&bias), &mut biased);
        for i in 0..n {
            for j in 0..m {
                assert_eq!(biased[i * m + j], plain[i * m + j] + bias[j]);
            }
        }
        let mut scaled = vec![0.0f32; n * m];
        matmul_packed(&a, &packed, n, k, m, 0.5, None, &mut scaled);
        for (s, p) in scaled.iter().zip(&plain) {
            assert_eq!(*s, p * 0.5);
        }
    }

    #[test]
    fn pack_scratch_reentrancy_is_safe() {
        with_pack_scratch(|outer| {
            outer.resize(16, 1.0);
            with_pack_scratch(|inner| {
                assert!(inner.is_empty(), "re-entrant take must see a fresh buffer");
                inner.resize(4, 2.0);
            });
            assert_eq!(outer.len(), 16);
        });
    }
}
