//! Structural (shape-moving) autograd ops: reshape, gather, concat,
//! stacking, selection, and the attention head split/merge permutations.

use crate::graph::{Flow, Graph, Var};
use crate::tensor::Tensor;

impl Graph {
    /// Reinterprets `x` with a new shape (same element count).
    pub fn reshape(&self, x: Var, shape: &[usize]) -> Var {
        let shape_owned = shape.to_vec();
        self.unary(x, |t| t.reshape(&shape_owned), Box::new(|_, _, _| vec![Flow::Pass]))
    }

    /// Embedding-style lookup: gathers rows of a `[v,d]` table by index.
    /// The same index may appear multiple times; backward scatter-adds.
    pub fn gather_rows(&self, table: Var, indices: &[usize]) -> Var {
        let idx_f = indices.to_vec();
        let idx_b = indices.to_vec();
        self.unary(
            table,
            move |t| t.gather_rows(&idx_f),
            Box::new(move |g, _, ps| {
                let d = ps[0].shape()[1];
                let mut dt = Tensor::zeros(ps[0].shape());
                for (r, &i) in idx_b.iter().enumerate() {
                    let src = &g.data()[r * d..(r + 1) * d];
                    for (o, &gv) in dt.row_mut(i).iter_mut().zip(src) {
                        *o += gv;
                    }
                }
                vec![Flow::Grad(dt)]
            }),
        )
    }

    /// Gathers elements of a rank-1 tensor by index (backward scatter-adds).
    pub fn gather_rows_vec(&self, x: Var, indices: &[usize]) -> Var {
        let idx_f = indices.to_vec();
        let idx_b = indices.to_vec();
        self.unary(
            x,
            move |t| {
                assert_eq!(t.rank(), 1, "gather_rows_vec expects rank-1");
                let data: Vec<f32> = idx_f.iter().map(|&i| t.data()[i]).collect();
                Tensor::from_vec(data, &[idx_f.len()])
            },
            Box::new(move |g, _, ps| {
                let mut dt = Tensor::zeros(ps[0].shape());
                for (r, &i) in idx_b.iter().enumerate() {
                    dt.data_mut()[i] += g.data()[r];
                }
                vec![Flow::Grad(dt)]
            }),
        )
    }

    /// Concatenates rank-2 tensors with equal row counts along the last dim.
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let (value, widths, rg) = {
            let inner = self.inner.borrow();
            let tensors: Vec<&Tensor> = parts.iter().map(|v| &inner.values[v.id]).collect();
            let widths: Vec<usize> = tensors.iter().map(|t| t.shape()[1]).collect();
            let rg = parts.iter().any(|v| inner.nodes[v.id].requires_grad);
            (Tensor::concat_cols(&tensors), widths, rg)
        };
        let parent_ids: Vec<usize> = parts.iter().map(|v| v.id).collect();
        let back: crate::graph::BackFn = Box::new(move |g, _, ps| {
            let n = ps[0].shape()[0];
            let total: usize = widths.iter().sum();
            let mut grads: Vec<Tensor> = widths.iter().map(|&w| Tensor::zeros(&[n, w])).collect();
            for i in 0..n {
                let grow = &g.data()[i * total..(i + 1) * total];
                let mut off = 0;
                for (gi, &w) in grads.iter_mut().zip(widths.iter()) {
                    gi.row_mut(i).copy_from_slice(&grow[off..off + w]);
                    off += w;
                }
            }
            grads.into_iter().map(Flow::Grad).collect()
        });
        self.push(value, parent_ids, if rg { Some(back) } else { None }, rg, None)
    }

    /// Stacks `s` rank-1 tensors (each `[n]`) into the columns of `[n,s]`.
    pub fn stack_cols(&self, cols: &[Var]) -> Var {
        assert!(!cols.is_empty(), "stack_cols of nothing");
        let (value, n, rg) = {
            let inner = self.inner.borrow();
            let n = inner.values[cols[0].id].len();
            let s = cols.len();
            let mut data = vec![0.0f32; n * s];
            for (j, v) in cols.iter().enumerate() {
                let t = &inner.values[v.id];
                assert_eq!(t.len(), n, "stack_cols length mismatch");
                for i in 0..n {
                    data[i * s + j] = t.data()[i];
                }
            }
            let rg = cols.iter().any(|v| inner.nodes[v.id].requires_grad);
            (Tensor::from_vec(data, &[n, s]), n, rg)
        };
        let s = cols.len();
        let parent_ids: Vec<usize> = cols.iter().map(|v| v.id).collect();
        let back: crate::graph::BackFn = Box::new(move |g, _, _| {
            (0..s)
                .map(|j| {
                    let col: Vec<f32> = (0..n).map(|i| g.data()[i * s + j]).collect();
                    Flow::Grad(Tensor::from_vec(col, &[n]))
                })
                .collect()
        });
        self.push(value, parent_ids, if rg { Some(back) } else { None }, rg, None)
    }

    /// Extracts column `j` of `[n,s]` as `[n]`.
    pub fn select_col(&self, x: Var, j: usize) -> Var {
        self.unary(
            x,
            |t| {
                assert_eq!(t.rank(), 2);
                let (n, s) = (t.shape()[0], t.shape()[1]);
                assert!(j < s, "select_col {j} of width {s}");
                let col: Vec<f32> = (0..n).map(|i| t.data()[i * s + j]).collect();
                Tensor::from_vec(col, &[n])
            },
            Box::new(move |g, _, ps| {
                let (n, s) = (ps[0].shape()[0], ps[0].shape()[1]);
                let mut dx = Tensor::zeros(&[n, s]);
                for i in 0..n {
                    dx.data_mut()[i * s + j] = g.data()[i];
                }
                vec![Flow::Grad(dx)]
            }),
        )
    }

    /// Slices rows `[lo, hi)` of a rank-2 tensor.
    pub fn slice_rows(&self, x: Var, lo: usize, hi: usize) -> Var {
        self.unary(
            x,
            |t| {
                assert_eq!(t.rank(), 2);
                let d = t.shape()[1];
                Tensor::from_vec(t.data()[lo * d..hi * d].to_vec(), &[hi - lo, d])
            },
            Box::new(move |g, _, ps| {
                let mut dx = Tensor::zeros(ps[0].shape());
                let d = ps[0].shape()[1];
                dx.data_mut()[lo * d..hi * d].copy_from_slice(g.data());
                vec![Flow::Grad(dx)]
            }),
        )
    }

    /// Multi-head attention head split:
    /// `[b*s, h*dh] -> [b*h, s, dh]` (a strided permutation copy).
    pub fn split_heads(&self, x: Var, b: usize, s: usize, h: usize) -> Var {
        self.unary(
            x,
            |t| split_heads_t(t, b, s, h),
            Box::new(move |g, _, _| vec![Flow::Grad(merge_heads_t(g, b, s, h))]),
        )
    }

    /// Inverse of [`Graph::split_heads`]: `[b*h, s, dh] -> [b*s, h*dh]`.
    pub fn merge_heads(&self, x: Var, b: usize, s: usize, h: usize) -> Var {
        self.unary(
            x,
            |t| merge_heads_t(t, b, s, h),
            Box::new(move |g, _, _| vec![Flow::Grad(split_heads_t(g, b, s, h))]),
        )
    }
}

/// `[b*s, h*dh] -> [b*h, s, dh]`.
pub(crate) fn split_heads_t(t: &Tensor, b: usize, s: usize, h: usize) -> Tensor {
    assert_eq!(t.rank(), 2);
    assert_eq!(t.shape()[0], b * s, "split_heads rows");
    let hd = t.shape()[1];
    assert_eq!(hd % h, 0, "split_heads width {hd} not divisible by {h}");
    let dh = hd / h;
    let mut out = vec![0.0f32; b * h * s * dh];
    for bi in 0..b {
        for si in 0..s {
            let row = t.row(bi * s + si);
            for hi in 0..h {
                let dst = ((bi * h + hi) * s + si) * dh;
                out[dst..dst + dh].copy_from_slice(&row[hi * dh..(hi + 1) * dh]);
            }
        }
    }
    Tensor::from_vec(out, &[b * h, s, dh])
}

/// `[b*h, s, dh] -> [b*s, h*dh]`.
pub(crate) fn merge_heads_t(t: &Tensor, b: usize, s: usize, h: usize) -> Tensor {
    assert_eq!(t.rank(), 3);
    assert_eq!(t.shape()[0], b * h, "merge_heads batch");
    assert_eq!(t.shape()[1], s, "merge_heads seq");
    let dh = t.shape()[2];
    let mut out = vec![0.0f32; b * s * h * dh];
    for bi in 0..b {
        for hi in 0..h {
            for si in 0..s {
                let src = ((bi * h + hi) * s + si) * dh;
                let dst = (bi * s + si) * (h * dh) + hi * dh;
                out[dst..dst + dh].copy_from_slice(&t.data()[src..src + dh]);
            }
        }
    }
    Tensor::from_vec(out, &[b * s, h * dh])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn split_merge_round_trip() {
        let mut rng = Rng::seed_from_u64(1);
        let t = Tensor::rand_normal(&[2 * 3, 4 * 2], 1.0, &mut rng); // b=2,s=3,h=4,dh=2
        let split = split_heads_t(&t, 2, 3, 4);
        assert_eq!(split.shape(), &[8, 3, 2]);
        let merged = merge_heads_t(&split, 2, 3, 4);
        assert_eq!(merged, t);
    }

    #[test]
    fn gather_rows_backward_scatter_adds() {
        let g = Graph::new();
        let table = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]), true);
        let picked = g.gather_rows(table, &[0, 0, 1]);
        let loss = g.sum_all(picked);
        g.backward(loss);
        let grad = g.grad(table).unwrap();
        // Row 0 gathered twice -> grad 2, row 1 once -> grad 1.
        assert_eq!(grad.data(), &[2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn concat_cols_backward_splits() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2, 1]), true);
        let b = g.leaf(Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]), true);
        let c = g.concat_cols(&[a, b]);
        assert_eq!(g.value(c).shape(), &[2, 3]);
        // Weight each output element distinctly so split is observable.
        let w = g.constant(Tensor::from_vec(vec![1.0, 10.0, 100.0, 2.0, 20.0, 200.0], &[2, 3]));
        let loss = g.sum_all(g.mul(c, w));
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 2.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[10.0, 100.0, 20.0, 200.0]);
    }

    #[test]
    fn stack_select_round_trip() {
        let g = Graph::new();
        let c0 = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let c1 = g.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]), true);
        let m = g.stack_cols(&[c0, c1]);
        assert_eq!(g.value(m).data(), &[1.0, 3.0, 2.0, 4.0]);
        let back0 = g.select_col(m, 0);
        assert_eq!(g.value(back0).data(), &[1.0, 2.0]);
        let loss = g.sum_all(g.square(back0));
        g.backward(loss);
        assert_eq!(g.grad(c0).unwrap().data(), &[2.0, 4.0]);
        assert_eq!(g.grad(c1).unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn slice_rows_backward_pads() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]), true);
        let s = g.slice_rows(x, 1, 3);
        assert_eq!(g.value(s).data(), &[3.0, 4.0, 5.0, 6.0]);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[0.0, 0.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn reshape_backward_restores_shape() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]), true);
        let r = g.reshape(x, &[3, 2]);
        let loss = g.sum_all(g.square(r));
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().shape(), &[2, 3]);
    }

    #[test]
    fn split_heads_grad_flows() {
        let g = Graph::new();
        let mut rng = Rng::seed_from_u64(3);
        let x0 = Tensor::rand_normal(&[4, 6], 1.0, &mut rng); // b=2,s=2,h=3,dh=2
        let x = g.leaf(x0, true);
        let sh = g.split_heads(x, 2, 2, 3);
        let back = g.merge_heads(sh, 2, 2, 3);
        let loss = g.sum_all(g.square(back));
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        // d(sum x^2)/dx = 2x, the permutation must cancel out.
        let expected = g.value(x).scale(2.0);
        for (a, b) in grad.data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
