//! Sharded on-disk embedding tables: spill-as-you-go storage for
//! embedding runs too large to hold in memory.
//!
//! An [`EmbeddingShards`] directory holds one logical `[n, d]` tensor cut
//! into fixed-height row shards, each persisted as its own checksummed
//! blob through the same atomic-write discipline as checkpoints
//! (`serialize::atomic_write_retry`: tmp + fsync + rename, bounded
//! retry, fault-injection sites `shards.write` / `shards.manifest`).
//! Producers embed one bounded window of rows at a time and call
//! [`EmbeddingShards::write_shard`]; every completed shard write *is* a
//! checkpoint, so a run killed mid-table resumes by skipping the shards
//! already on disk ([`EmbeddingShards::missing`]). Consumers — the IVF
//! builder, blocked evaluation — stream the table back one shard at a
//! time ([`EmbeddingShards::read_shard`]) and never materialize all `n`
//! rows unless they explicitly ask ([`EmbeddingShards::to_tensor`]).
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/shards.sdem          manifest blob (kind SDEM):
//!                            u32 n | u32 d | u32 shard_rows | u64 fingerprint
//! <dir>/shard_000000.sdes    shard blob (kind SDES):
//!                            u32 shard_index | tensor wire format
//! ```
//!
//! The manifest binds the geometry and a caller-supplied `fingerprint`
//! (the checkpoint config fingerprint upstream), so shards written under
//! a different configuration are discarded on open rather than silently
//! resumed. Each shard payload embeds its own slot index, so a shard
//! file copied or renamed into the wrong slot fails validation instead
//! of returning the wrong rows. Corrupt files are quarantined aside as
//! `*.corrupt` — mirroring the checkpoint layer — and simply count as
//! missing, so one flipped bit costs one re-embedded shard, never the
//! table.

use crate::serialize::{
    atomic_write_retry, blob_payload, blob_to_bytes, read_tensor, write_tensor, WireRead, WireWrite,
};
use crate::tensor::Tensor;
use std::io;
use std::path::{Path, PathBuf};

/// Blob kind of the shard-directory manifest.
pub const SHARD_MANIFEST_KIND: &[u8; 4] = b"SDEM";
/// Blob kind of one embedding shard.
pub const SHARD_KIND: &[u8; 4] = b"SDES";
/// File name of the manifest inside a shard directory.
pub const MANIFEST_FILE: &str = "shards.sdem";

/// A sharded `[n, d]` embedding table on disk. See the module docs.
#[derive(Debug, Clone)]
pub struct EmbeddingShards {
    dir: PathBuf,
    n: usize,
    d: usize,
    shard_rows: usize,
    fingerprint: u64,
}

impl EmbeddingShards {
    /// Opens `dir` as a shard directory for an `[n, d]` table cut into
    /// `shard_rows`-row shards, creating or re-initializing it as needed.
    ///
    /// * No manifest → a fresh one is written (new run).
    /// * A matching manifest (same `n`, `d`, `shard_rows`, `fingerprint`)
    ///   → reused as-is; shards already on disk will be resumed.
    /// * A mismatched manifest → the directory belongs to a different run
    ///   or configuration: every shard file is removed and a fresh
    ///   manifest written.
    /// * A corrupt manifest → quarantined to `*.corrupt`, shards removed,
    ///   fresh manifest written.
    ///
    /// `shard_rows` must be ≥ 1 (callers map "0 = whole table" before
    /// getting here).
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        n: usize,
        d: usize,
        shard_rows: usize,
        fingerprint: u64,
    ) -> io::Result<Self> {
        assert!(shard_rows >= 1, "shard_rows must be >= 1");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let this = EmbeddingShards { dir, n, d, shard_rows, fingerprint };
        let manifest = this.manifest_path();
        match std::fs::read(&manifest) {
            Ok(bytes) => match parse_manifest(&bytes) {
                Ok(m) if m == (n, d, shard_rows, fingerprint) => return Ok(this),
                Ok(_) => {
                    // Stale geometry or configuration: the shards answer a
                    // different question; start over.
                    this.remove_all_shards()?;
                }
                Err(_) => {
                    sdea_obs::add("shards.quarantined", 1);
                    quarantine(&manifest);
                    this.remove_all_shards()?;
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        atomic_write_retry(&manifest, &this.manifest_bytes(), "shards.manifest")?;
        Ok(this)
    }

    /// Opens an existing shard directory, reading geometry and fingerprint
    /// from its manifest. Fails with `NotFound` when no manifest exists and
    /// `InvalidData` when it is corrupt (no quarantine here — `open` is a
    /// read-only entry point).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
        let (n, d, shard_rows, fingerprint) = parse_manifest(&bytes)?;
        Ok(EmbeddingShards { dir, n, d, shard_rows, fingerprint })
    }

    /// Total rows of the logical table.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the logical table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Rows per shard (the last shard may be shorter).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// The caller-supplied configuration fingerprint bound at creation.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The shard directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards covering the table.
    pub fn n_shards(&self) -> usize {
        self.n.div_ceil(self.shard_rows)
    }

    /// Row range `[start, end)` of shard `s`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        let start = s * self.shard_rows;
        (start, (start + self.shard_rows).min(self.n))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    fn shard_path(&self, s: usize) -> PathBuf {
        self.dir.join(format!("shard_{s:06}.sdes"))
    }

    fn manifest_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(4 + 4 + 4 + 8);
        payload.put_u32_le(self.n as u32);
        payload.put_u32_le(self.d as u32);
        payload.put_u32_le(self.shard_rows as u32);
        payload.put_u64_le(self.fingerprint);
        blob_to_bytes(SHARD_MANIFEST_KIND, &payload)
    }

    fn remove_all_shards(&self) -> io::Result<()> {
        for s in 0..self.n_shards() {
            match std::fs::remove_file(self.shard_path(s)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Persists shard `s` atomically. `t` must be exactly the rows of
    /// [`EmbeddingShards::shard_range`]`(s)`, shape `[end - start, d]`.
    pub fn write_shard(&self, s: usize, t: &Tensor) -> io::Result<()> {
        let (start, end) = self.shard_range(s);
        if s >= self.n_shards() || t.shape() != [end - start, self.d] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "shard {s} expects shape [{}, {}], got {:?}",
                    end - start,
                    self.d,
                    t.shape()
                ),
            ));
        }
        let mut payload = Vec::with_capacity(8 + t.data().len() * 4);
        payload.put_u32_le(s as u32);
        write_tensor(&mut payload, t);
        let blob = blob_to_bytes(SHARD_KIND, &payload);
        atomic_write_retry(self.shard_path(s), &blob, "shards.write")?;
        sdea_obs::add("shards.written", 1);
        Ok(())
    }

    /// Reads and validates shard `s`. `NotFound` when never written;
    /// `InvalidData` on any corruption, slot mismatch or wrong shape.
    pub fn read_shard(&self, s: usize) -> io::Result<Tensor> {
        let (start, end) = self.shard_range(s);
        if s >= self.n_shards() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard index {s} out of range ({} shards)", self.n_shards()),
            ));
        }
        let bytes = std::fs::read(self.shard_path(s))?;
        let mut payload = blob_payload(&bytes, SHARD_KIND)?;
        if payload.remaining() < 4 {
            return Err(bad("truncated shard header"));
        }
        let slot = payload.get_u32_le() as usize;
        if slot != s {
            return Err(bad(&format!("shard file for slot {slot} found in slot {s}")));
        }
        let t = read_tensor(&mut payload)?;
        if t.shape() != [end - start, self.d] {
            return Err(bad(&format!(
                "shard {s} has shape {:?}, expected [{}, {}]",
                t.shape(),
                end - start,
                self.d
            )));
        }
        Ok(t)
    }

    /// [`EmbeddingShards::read_shard`] that treats any invalid file as
    /// absent: corrupt or mis-slotted shards are quarantined aside as
    /// `*.corrupt` (counted under `shards.quarantined`) and `None` is
    /// returned, so the producer re-embeds exactly that window.
    pub fn try_read_shard(&self, s: usize) -> Option<Tensor> {
        match self.read_shard(s) {
            Ok(t) => Some(t),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(_) => {
                sdea_obs::add("shards.quarantined", 1);
                quarantine(&self.shard_path(s));
                None
            }
        }
    }

    /// Indices of shards not yet validly on disk — the resume work-list.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.n_shards()).filter(|&s| self.try_read_shard(s).is_none()).collect()
    }

    /// Whether every shard is validly on disk.
    pub fn is_complete(&self) -> bool {
        self.missing().is_empty()
    }

    /// Assembles the full `[n, d]` table in memory. Only for consumers
    /// that genuinely need all rows at once; streaming consumers should
    /// iterate [`EmbeddingShards::read_shard`] instead.
    pub fn to_tensor(&self) -> io::Result<Tensor> {
        let mut out = Tensor::zeros(&[self.n, self.d]);
        for s in 0..self.n_shards() {
            let t = self.read_shard(s)?;
            let (start, _) = self.shard_range(s);
            let off = start * self.d;
            out.data_mut()[off..off + t.data().len()].copy_from_slice(t.data());
        }
        Ok(out)
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("embedding shards: {msg}"))
}

fn parse_manifest(bytes: &[u8]) -> io::Result<(usize, usize, usize, u64)> {
    let mut payload = blob_payload(bytes, SHARD_MANIFEST_KIND)?;
    if payload.remaining() != 4 + 4 + 4 + 8 {
        return Err(bad("manifest payload has the wrong length"));
    }
    let n = payload.get_u32_le() as usize;
    let d = payload.get_u32_le() as usize;
    let shard_rows = payload.get_u32_le() as usize;
    if shard_rows == 0 {
        return Err(bad("manifest declares zero shard_rows"));
    }
    let fingerprint = payload.get_u64_le();
    Ok((n, d, shard_rows, fingerprint))
}

/// Renames `path` aside as `<path>.corrupt` (best effort) so the bad bytes
/// stay available for diagnosis without blocking recovery.
fn quarantine(path: &Path) {
    let mut corrupt = path.as_os_str().to_os_string();
    corrupt.push(".corrupt");
    let _ = std::fs::rename(path, &corrupt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{self, FaultMode};
    use crate::rng::Rng;

    /// Every test here hits the shared `shards.write` fault site; the
    /// fault registry counts hits globally per site, so the injection test
    /// below can only arm a precise `nth` while no sibling test writes.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdea_shards_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn random_table(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * d).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
        Tensor::from_vec(data, &[n, d])
    }

    fn spill(table: &Tensor, shards: &EmbeddingShards) {
        let d = shards.dim();
        for s in shards.missing() {
            let (start, end) = shards.shard_range(s);
            let rows =
                Tensor::from_vec(table.data()[start * d..end * d].to_vec(), &[end - start, d]);
            shards.write_shard(s, &rows).unwrap();
        }
    }

    #[test]
    fn roundtrip_is_bit_identical_at_any_shard_height() {
        let _g = lock();
        let table = random_table(23, 5, 1);
        for shard_rows in [1usize, 7, 23, 100] {
            let dir = test_dir(&format!("rt{shard_rows}"));
            let shards = EmbeddingShards::open_or_create(&dir, 23, 5, shard_rows, 0xF00D).unwrap();
            assert!(!shards.is_complete());
            spill(&table, &shards);
            assert!(shards.is_complete());
            assert_eq!(shards.to_tensor().unwrap(), table);
            // Streaming read sees exactly the same rows.
            for s in 0..shards.n_shards() {
                let (start, end) = shards.shard_range(s);
                let t = shards.read_shard(s).unwrap();
                assert_eq!(t.data(), &table.data()[start * 5..end * 5]);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn reopen_resumes_only_missing_shards() {
        let _g = lock();
        let dir = test_dir("resume");
        let table = random_table(20, 4, 2);
        let shards = EmbeddingShards::open_or_create(&dir, 20, 4, 6, 7).unwrap();
        // Write shards 0 and 2 only, "crash", reopen.
        for s in [0usize, 2] {
            let (start, end) = shards.shard_range(s);
            let rows =
                Tensor::from_vec(table.data()[start * 4..end * 4].to_vec(), &[end - start, 4]);
            shards.write_shard(s, &rows).unwrap();
        }
        let reopened = EmbeddingShards::open_or_create(&dir, 20, 4, 6, 7).unwrap();
        assert_eq!(reopened.missing(), vec![1, 3], "done shards must survive reopen");
        spill(&table, &reopened);
        assert_eq!(reopened.to_tensor().unwrap(), table);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_fingerprint_discards_stale_shards() {
        let _g = lock();
        let dir = test_dir("fp");
        let table = random_table(12, 3, 3);
        let shards = EmbeddingShards::open_or_create(&dir, 12, 3, 5, 111).unwrap();
        spill(&table, &shards);
        assert!(shards.is_complete());
        let other = EmbeddingShards::open_or_create(&dir, 12, 3, 5, 222).unwrap();
        assert_eq!(other.missing().len(), other.n_shards(), "stale shards must not resume");
        // The original handle's manifest is gone too: reopening under the
        // old fingerprint starts fresh again rather than mixing runs.
        let back = EmbeddingShards::open_or_create(&dir, 12, 3, 5, 111).unwrap();
        assert_eq!(back.missing().len(), back.n_shards());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shard_is_quarantined_and_re_embedded() {
        let _g = lock();
        let dir = test_dir("corrupt");
        let table = random_table(10, 4, 4);
        let shards = EmbeddingShards::open_or_create(&dir, 10, 4, 4, 9).unwrap();
        spill(&table, &shards);
        // Flip a payload byte in shard 1.
        let p = dir.join("shard_000001.sdes");
        let mut bytes = std::fs::read(&p).unwrap();
        assert_eq!(&bytes[..4], SHARD_KIND, "shard header starts with the registered kind");
        let manifest = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
        assert_eq!(&manifest[..4], SHARD_MANIFEST_KIND, "manifest carries its own kind");
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0x20;
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(shards.missing(), vec![1]);
        assert!(dir.join("shard_000001.sdes.corrupt").exists(), "bad bytes kept for diagnosis");
        spill(&table, &shards);
        assert_eq!(shards.to_tensor().unwrap(), table);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_file_in_the_wrong_slot_is_rejected() {
        let _g = lock();
        let dir = test_dir("slot");
        let table = random_table(8, 2, 5);
        let shards = EmbeddingShards::open_or_create(&dir, 8, 2, 4, 1).unwrap();
        spill(&table, &shards);
        std::fs::rename(dir.join("shard_000000.sdes"), dir.join("shard_000001.sdes")).unwrap();
        let err = shards.read_shard(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("slot"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_fault_leaves_no_partial_shard() {
        let _g = lock();
        let dir = test_dir("fault");
        let table = random_table(6, 3, 6);
        let shards = EmbeddingShards::open_or_create(&dir, 6, 3, 3, 2).unwrap();
        // Exhaust every retry attempt so write_shard surfaces the error.
        let base = fault::hit_count("shards.write");
        for i in 1..=crate::serialize::WRITE_ATTEMPTS as u64 {
            fault::arm("shards.write", base + i, FaultMode::Error);
        }
        let rows = Tensor::from_vec(table.data()[..9].to_vec(), &[3, 3]);
        let r = shards.write_shard(0, &rows);
        assert!(r.is_err());
        assert_eq!(shards.missing(), vec![0, 1], "failed write must not leave a shard behind");
        spill(&table, &shards);
        assert_eq!(shards.to_tensor().unwrap(), table);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_table_has_no_shards() {
        let _g = lock();
        let dir = test_dir("empty");
        let shards = EmbeddingShards::open_or_create(&dir, 0, 8, 4, 0).unwrap();
        assert_eq!(shards.n_shards(), 0);
        assert!(shards.is_complete());
        assert_eq!(shards.to_tensor().unwrap().shape(), [0, 8]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_shape_write_is_invalid_input() {
        let _g = lock();
        let dir = test_dir("shape");
        let shards = EmbeddingShards::open_or_create(&dir, 10, 4, 4, 0).unwrap();
        let bad = Tensor::zeros(&[3, 4]);
        assert_eq!(shards.write_shard(0, &bad).unwrap_err().kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
