//! Fault injection for crash-safety testing.
//!
//! Checkpoint IO calls [`hit`] at named sites (e.g. `"ckpt.store"`,
//! `"stage.rel.write.rename"`). A site can be *armed* to fire on its n-th
//! hit, either programmatically ([`arm`]) or through the environment:
//!
//! ```text
//! SDEA_FAULT=<site>:<nth>[:<mode>][,<site>:<nth>[:<mode>]...]
//! ```
//!
//! Modes:
//!
//! * `kill` (default) — terminate the process immediately with exit code
//!   137, simulating a crash / OOM-kill mid-write.
//! * `error` — make the IO call return an injected `io::Error`, exercising
//!   the bounded-retry path.
//! * `corrupt` — let the write complete but flip one byte of the payload,
//!   simulating silent media corruption that checksum verification must
//!   catch at load time.
//!
//! Each armed spec fires exactly once (on the n-th hit of its site, 1-based)
//! and is inert afterwards. When nothing is armed, a hit is one mutex lock
//! on a cold path — checkpoint IO is far from any per-element hot loop.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// What an armed fault does when it fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Exit the process immediately (exit code 137).
    Kill,
    /// Return an injected IO error from the faulted call.
    Error,
    /// Complete the write but with one byte of the payload flipped.
    Corrupt,
}

/// What the calling IO site must do after [`hit`] returns.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed normally.
    Proceed,
    /// Fail with an injected error.
    InjectError,
    /// Proceed, but corrupt the payload being written.
    CorruptPayload,
}

#[derive(Debug)]
struct Armed {
    site: String,
    nth: u64,
    mode: FaultMode,
    fired: bool,
}

#[derive(Default)]
struct Registry {
    armed: Vec<Armed>,
    hits: HashMap<String, u64>,
}

fn registry() -> &'static Mutex<Registry> {
    static R: OnceLock<Mutex<Registry>> = OnceLock::new();
    R.get_or_init(|| {
        let mut reg = Registry::default();
        if let Some(spec) = sdea_obs::env::string_or_exit("SDEA_FAULT") {
            for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
                match parse_spec(part) {
                    Some((site, nth, mode)) => {
                        reg.armed.push(Armed { site, nth, mode, fired: false })
                    }
                    // A malformed spec used to be skipped with a warning,
                    // which silently disarms the fault a test meant to
                    // inject; hard-error like every other SDEA_* variable.
                    None => sdea_obs::env::die(&format!(
                        "invalid SDEA_FAULT spec {part:?}: expected <site>:<nth>[:kill|error|corrupt]"
                    )),
                }
            }
        }
        Mutex::new(reg)
    })
}

fn parse_spec(spec: &str) -> Option<(String, u64, FaultMode)> {
    let mut it = spec.trim().split(':');
    let site = it.next()?.to_string();
    let nth: u64 = it.next()?.parse().ok()?;
    let mode = match it.next() {
        None | Some("kill") => FaultMode::Kill,
        Some("error") => FaultMode::Error,
        Some("corrupt") => FaultMode::Corrupt,
        Some(_) => return None,
    };
    if site.is_empty() || nth == 0 || it.next().is_some() {
        return None;
    }
    Some((site, nth, mode))
}

/// Programmatically arms a fault: the `nth` (1-based) [`hit`] of `site`
/// fires with `mode`. Test-oriented twin of the `SDEA_FAULT` variable.
pub fn arm(site: &str, nth: u64, mode: FaultMode) {
    let mut reg = registry().lock().unwrap();
    reg.armed.push(Armed { site: site.to_string(), nth, mode, fired: false });
}

/// Disarms all programmatic and environment faults and zeroes the per-site
/// hit counters. Used between tests.
pub fn reset() {
    let mut reg = registry().lock().unwrap();
    reg.armed.clear();
    reg.hits.clear();
}

/// Number of times `site` has been hit so far.
pub fn hit_count(site: &str) -> u64 {
    registry().lock().unwrap().hits.get(site).copied().unwrap_or(0)
}

/// Records one hit of `site` and returns what the caller must do. A `Kill`
/// fault does not return: the process exits here, mid-operation, exactly
/// like a crash.
pub fn hit(site: &str) -> FaultAction {
    let mut reg = registry().lock().unwrap();
    let count = reg.hits.entry(site.to_string()).or_insert(0);
    *count += 1;
    let count = *count;
    for a in reg.armed.iter_mut() {
        if !a.fired && a.site == site && a.nth == count {
            a.fired = true;
            match a.mode {
                FaultMode::Kill => {
                    // Flush nothing, clean up nothing: a crash does neither.
                    eprintln!("SDEA_FAULT: killing process at site {site:?} (hit {count})");
                    std::process::exit(137);
                }
                FaultMode::Error => return FaultAction::InjectError,
                FaultMode::Corrupt => return FaultAction::CorruptPayload,
            }
        }
    }
    FaultAction::Proceed
}

/// The `io::Error` an [`FaultAction::InjectError`] site should return.
pub fn injected_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at site {site:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share the process-global registry, so each uses its own
    // site names and calls `reset` defensively at the start.

    #[test]
    fn unarmed_sites_proceed() {
        assert_eq!(hit("fault.test.unarmed"), FaultAction::Proceed);
        assert_eq!(hit("fault.test.unarmed"), FaultAction::Proceed);
        assert!(hit_count("fault.test.unarmed") >= 2);
    }

    #[test]
    fn fires_on_nth_hit_exactly_once() {
        arm("fault.test.nth", 2, FaultMode::Error);
        assert_eq!(hit("fault.test.nth"), FaultAction::Proceed);
        assert_eq!(hit("fault.test.nth"), FaultAction::InjectError);
        assert_eq!(hit("fault.test.nth"), FaultAction::Proceed);
    }

    #[test]
    fn corrupt_mode_requests_payload_corruption() {
        arm("fault.test.corrupt", 1, FaultMode::Corrupt);
        assert_eq!(hit("fault.test.corrupt"), FaultAction::CorruptPayload);
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(parse_spec("a.b:3"), Some(("a.b".into(), 3, FaultMode::Kill)));
        assert_eq!(parse_spec("x:1:error"), Some(("x".into(), 1, FaultMode::Error)));
        assert_eq!(parse_spec("x:1:corrupt"), Some(("x".into(), 1, FaultMode::Corrupt)));
        assert_eq!(parse_spec("x:0"), None, "nth is 1-based");
        assert_eq!(parse_spec(":1"), None);
        assert_eq!(parse_spec("x:notanum"), None);
        assert_eq!(parse_spec("x:1:bogus"), None);
        assert_eq!(parse_spec("x:1:error:extra"), None);
    }
}
