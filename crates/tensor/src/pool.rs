//! Reusable `Vec<f32>` buffers for the autograd hot loop.
//!
//! A training step builds a fresh [`crate::Graph`] per batch; every node
//! value and gradient is a heap allocation that dies with the tape. The
//! [`BufferPool`] keeps those allocations alive across steps: when a graph
//! is dropped (or a backward closure finishes with a temporary), buffers
//! land in per-length buckets and the next step's nodes take them back out.
//!
//! The pool is deliberately simple and single-threaded (`Rc` + `RefCell`,
//! `!Send`): only the sequential trainer loops hold one; parallel workers
//! (e.g. `embed_all`) build plain pool-less graphs. Buffers are bucketed by
//! *exact* length — tape shapes repeat identically batch after batch, so
//! exact matching hits nearly always and avoids capacity-waste heuristics.
//! Pooling never changes numerics: every consumer fully overwrites the
//! buffer it takes (or asks for an explicit zeroed/copied one).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::tensor::Tensor;

/// Buffers shorter than this are cheaper to allocate than to bucket.
const MIN_POOLED_LEN: usize = 16;
/// Cap on the total number of buffers held, across all buckets.
const MAX_POOLED_BUFS: usize = 512;

/// Cached `sdea_obs` counters (pool bucket hits / misses), pre-registered
/// so the hot path pays one atomic add — same pattern as `par::obs_counters`.
fn obs_counters() -> &'static (sdea_obs::Counter, sdea_obs::Counter) {
    use std::sync::OnceLock;
    static C: OnceLock<(sdea_obs::Counter, sdea_obs::Counter)> = OnceLock::new();
    C.get_or_init(|| {
        (sdea_obs::counter("tensor.pool.hits"), sdea_obs::counter("tensor.pool.misses"))
    })
}

/// Per-length free lists of `Vec<f32>` buffers. See the module docs.
#[derive(Default)]
pub struct BufferPool {
    buckets: RefCell<HashMap<usize, Vec<Vec<f32>>>>,
    held: std::cell::Cell<usize>,
}

impl BufferPool {
    pub fn new() -> Rc<Self> {
        Rc::new(Self::default())
    }

    /// Takes a buffer of exactly `len` elements with **unspecified**
    /// contents. Only for consumers that overwrite every element.
    pub fn take_uninit(&self, len: usize) -> Option<Vec<f32>> {
        if len < MIN_POOLED_LEN {
            return None;
        }
        let got = self.buckets.borrow_mut().get_mut(&len).and_then(|bucket| bucket.pop());
        let (hits, misses) = obs_counters();
        if got.is_some() {
            hits.add(1);
            self.held.set(self.held.get() - 1);
        } else {
            misses.add(1);
        }
        got
    }

    /// Takes a zero-filled buffer of `len` elements (pooled or fresh).
    pub fn take_zeroed(&self, len: usize) -> Vec<f32> {
        match self.take_uninit(len) {
            Some(mut v) => {
                v.iter_mut().for_each(|x| *x = 0.0);
                v
            }
            None => vec![0.0f32; len],
        }
    }

    /// Copies `src` into a pooled (or fresh) buffer of the same length.
    pub fn take_copy_of(&self, src: &[f32]) -> Vec<f32> {
        match self.take_uninit(src.len()) {
            Some(mut v) => {
                v.copy_from_slice(src);
                v
            }
            None => src.to_vec(),
        }
    }

    /// Clones `src`'s data through the pool into a new tensor.
    pub fn clone_tensor(&self, src: &Tensor) -> Tensor {
        Tensor::from_vec(self.take_copy_of(src.data()), src.shape())
    }

    /// Returns a buffer to its bucket (dropped if the pool is full or the
    /// buffer is too small to be worth keeping).
    pub fn put(&self, buf: Vec<f32>) {
        if buf.len() < MIN_POOLED_LEN || self.held.get() >= MAX_POOLED_BUFS {
            return;
        }
        self.held.set(self.held.get() + 1);
        self.buckets.borrow_mut().entry(buf.len()).or_default().push(buf);
    }

    /// Recycles a tensor's backing storage.
    pub fn put_tensor(&self, t: Tensor) {
        self.put(t.into_data());
    }
}

/// Helpers for `Option<Rc<BufferPool>>`, the shape every call site holds.
pub(crate) fn take_uninit(pool: &Option<Rc<BufferPool>>, len: usize) -> Option<Vec<f32>> {
    pool.as_ref().and_then(|p| p.take_uninit(len))
}

pub(crate) fn copy_tensor(pool: &Option<Rc<BufferPool>>, src: &Tensor) -> Tensor {
    match pool {
        Some(p) => p.clone_tensor(src),
        None => src.clone(),
    }
}

pub(crate) fn recycle(pool: &Option<Rc<BufferPool>>, t: Tensor) {
    if let Some(p) = pool {
        p.put_tensor(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_lengths() {
        let pool = BufferPool::new();
        pool.put(vec![1.0; 64]);
        let buf = pool.take_uninit(64).expect("bucket hit");
        assert_eq!(buf.len(), 64);
        assert!(pool.take_uninit(64).is_none(), "bucket now empty");
        assert!(pool.take_uninit(32).is_none(), "no cross-length reuse");
    }

    #[test]
    fn zeroed_and_copy_variants_scrub_stale_contents() {
        let pool = BufferPool::new();
        pool.put(vec![7.0; 32]);
        assert_eq!(pool.take_zeroed(32), vec![0.0; 32]);
        pool.put(vec![7.0; 32]);
        let src: Vec<f32> = (0..32).map(|i| i as f32).collect();
        assert_eq!(pool.take_copy_of(&src), src);
    }

    #[test]
    fn tiny_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        pool.put(vec![1.0; 4]);
        assert!(pool.take_uninit(4).is_none());
    }

    #[test]
    fn capacity_cap_bounds_held_buffers() {
        let pool = BufferPool::new();
        for _ in 0..(MAX_POOLED_BUFS + 10) {
            pool.put(vec![0.0; 64]);
        }
        assert_eq!(pool.held.get(), MAX_POOLED_BUFS);
    }
}
