//! Fused multi-op graph nodes for the transformer inner loop.
//!
//! Each op here replaces a short chain of tape nodes with a single node,
//! cutting tape length, intermediate materializations, and backward
//! dispatches per encoder layer:
//!
//! - [`Graph::linear`] — `matmul + add_bias` with the bias applied in the
//!   kernel's write-back epilogue (one pass over the output).
//! - [`Graph::softmax_bias_lastdim`] — `add(bias) + softmax` with the
//!   additive attention mask folded into the softmax pass.
//! - [`Graph::add_layer_norm`] — `add + layer_norm`, the residual junction,
//!   without materializing the sum.
//! - [`Graph::scaled_bmm_nt`] — `transpose_last2 + bmm + scale` as one
//!   transpose-free scaled kernel call (attention scores `Q·Kᵀ/√d`).
//!
//! Every fused forward performs the *same scalar operations in the same
//! order* as the node chain it replaces, so switching to the fused path does
//! not change f32 results; and all of them partition work by position only,
//! preserving the thread-budget determinism contract.

use crate::graph::{BackFn, Flow, Graph, Var};
use crate::tensor::Tensor;
use std::rc::Rc;

impl Graph {
    /// Fused affine map `x·w + bias` for `x: [n,k]`, `w: [k,m]`,
    /// `bias: [m]`. Equivalent to `add_bias(matmul(x, w), bias)` as one node.
    pub fn linear(&self, x: Var, w: Var, bias: Var) -> Var {
        let pool = self.pool.clone();
        let (value, rg) = {
            let inner = self.inner.borrow();
            let xv = &inner.values[x.id];
            let wv = &inner.values[w.id];
            let bv = &inner.values[bias.id];
            let value = xv.matmul_with(
                wv,
                Some(bv),
                crate::pool::take_uninit(&pool, xv.shape()[0] * wv.shape()[1]),
            );
            let rg = [x, w, bias].iter().any(|v| inner.nodes[v.id].requires_grad);
            (value, rg)
        };
        let back: BackFn = Box::new(move |g, _, ps| {
            let dx = g.matmul_t_with(ps[1], crate::pool::take_uninit(&pool, ps[0].len()));
            let dw = ps[0].t_matmul_with(g, crate::pool::take_uninit(&pool, ps[1].len()));
            let db = g.col_sums_with(crate::pool::take_uninit(&pool, ps[2].len()));
            vec![
                Flow::Grad(dx),
                Flow::Grad(dw),
                Flow::Grad(Tensor::from_vec(db.into_data(), ps[2].shape())),
            ]
        });
        self.push(value, vec![x.id, w.id, bias.id], if rg { Some(back) } else { None }, rg, None)
    }

    /// Softmax over the last dimension of `x + bias`, with `bias` a constant
    /// tensor of the same length (the additive attention mask; `Rc` so the
    /// per-layer nodes share one copy). Equivalent to
    /// `softmax_lastdim(add(x, constant(bias)))` as one node, without
    /// putting the mask on the tape.
    pub fn softmax_bias_lastdim(&self, x: Var, bias: &Rc<Tensor>) -> Var {
        let pool = self.pool.clone();
        let fpool = pool.clone();
        let bias = Rc::clone(bias);
        self.unary(
            x,
            move |t| {
                assert_eq!(t.len(), bias.len(), "softmax_bias length mismatch");
                let d = *t.shape().last().expect("softmax_bias rank");
                let mut data = match crate::pool::take_uninit(&fpool, t.len()) {
                    Some(mut v) => {
                        v.copy_from_slice(t.data());
                        v
                    }
                    None => t.data().to_vec(),
                };
                for (o, &bv) in data.iter_mut().zip(bias.data()) {
                    *o += bv;
                }
                for chunk in data.chunks_mut(d) {
                    let max = chunk.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0f32;
                    for v in chunk.iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                    let inv = 1.0 / sum;
                    for v in chunk.iter_mut() {
                        *v *= inv;
                    }
                }
                Tensor::from_vec(data, t.shape())
            },
            Box::new(move |g, out, _| {
                // Same Jacobian as plain softmax: dx = s * (g - <g, s>).
                let d = *out.shape().last().expect("softmax_bias rank");
                let mut dx = crate::pool::copy_tensor(&pool, g);
                for (gs, ss) in dx.data_mut().chunks_mut(d).zip(out.data().chunks(d)) {
                    let dot: f32 = gs.iter().zip(ss).map(|(&a, &b)| a * b).sum();
                    for (gv, &sv) in gs.iter_mut().zip(ss) {
                        *gv = sv * (*gv - dot);
                    }
                }
                vec![Flow::Grad(dx)]
            }),
        )
    }

    /// Fused residual junction: layer-norm of `a + b` over the last
    /// dimension with learned `gain`/`bias` (both `[d]`). Equivalent to
    /// `layer_norm(add(a, b), gain, bias, eps)` as one node; the sum is
    /// never materialized on the tape (backward recomputes it per row).
    pub fn add_layer_norm(&self, a: Var, b: Var, gain: Var, bias: Var, eps: f32) -> Var {
        let pool = self.pool.clone();
        let (value, rg) = {
            let inner = self.inner.borrow();
            let av = &inner.values[a.id];
            let bv = &inner.values[b.id];
            let gv = &inner.values[gain.id];
            let biv = &inner.values[bias.id];
            assert_eq!(av.shape(), bv.shape(), "add_layer_norm operand shapes");
            let d = *av.shape().last().expect("add_layer_norm rank");
            assert_eq!(gv.len(), d, "add_layer_norm gain");
            assert_eq!(biv.len(), d, "add_layer_norm bias");
            let mut data = match crate::pool::take_uninit(&pool, av.len()) {
                Some(v) => v,
                None => vec![0.0f32; av.len()],
            };
            for ((o, &x), &y) in data.iter_mut().zip(av.data()).zip(bv.data()) {
                *o = x + y;
            }
            for chunk in data.chunks_mut(d) {
                let (mu, sig) = super::ops_nn::mean_std(chunk, eps);
                for (c, (&gvv, &bvv)) in chunk.iter_mut().zip(gv.data().iter().zip(biv.data())) {
                    *c = (*c - mu) / sig * gvv + bvv;
                }
            }
            let value = Tensor::from_vec(data, av.shape());
            let rg = [a, b, gain, bias].iter().any(|v| inner.nodes[v.id].requires_grad);
            (value, rg)
        };
        let back: BackFn = Box::new(move |g, _, ps| {
            let (av, bv, gainv) = (ps[0], ps[1], ps[2]);
            let d = *av.shape().last().expect("rank");
            let rows = av.len() / d;
            let mut dres = match crate::pool::take_uninit(&pool, av.len()) {
                Some(v) => Tensor::from_vec(v, av.shape()),
                None => Tensor::zeros(av.shape()),
            };
            let mut dgain = vec![0.0f32; d];
            let mut dbias = vec![0.0f32; d];
            let mut xs = vec![0.0f32; d];
            let mut xhat = vec![0.0f32; d];
            let mut dxhat = vec![0.0f32; d];
            for r in 0..rows {
                // Recompute the residual sum for this row (same f32 adds as
                // the forward pass, so mu/sig match bit-for-bit).
                for ((o, &x), &y) in xs
                    .iter_mut()
                    .zip(&av.data()[r * d..(r + 1) * d])
                    .zip(&bv.data()[r * d..(r + 1) * d])
                {
                    *o = x + y;
                }
                let gs = &g.data()[r * d..(r + 1) * d];
                let (mu, sig) = super::ops_nn::mean_std(&xs, eps);
                let mut mean_dxhat = 0.0f32;
                let mut mean_dxhat_xhat = 0.0f32;
                for j in 0..d {
                    xhat[j] = (xs[j] - mu) / sig;
                    dxhat[j] = gs[j] * gainv.data()[j];
                    mean_dxhat += dxhat[j];
                    mean_dxhat_xhat += dxhat[j] * xhat[j];
                    dgain[j] += gs[j] * xhat[j];
                    dbias[j] += gs[j];
                }
                mean_dxhat /= d as f32;
                mean_dxhat_xhat /= d as f32;
                let out_row = &mut dres.data_mut()[r * d..(r + 1) * d];
                for j in 0..d {
                    out_row[j] = (dxhat[j] - mean_dxhat - xhat[j] * mean_dxhat_xhat) / sig;
                }
            }
            // Both residual branches receive the same gradient.
            let dres_b = crate::pool::copy_tensor(&pool, &dres);
            vec![
                Flow::Grad(dres),
                Flow::Grad(dres_b),
                Flow::Grad(Tensor::from_vec(dgain, ps[2].shape())),
                Flow::Grad(Tensor::from_vec(dbias, ps[3].shape())),
            ]
        });
        self.push(
            value,
            vec![a.id, b.id, gain.id, bias.id],
            if rg { Some(back) } else { None },
            rg,
            None,
        )
    }

    /// Fused attention-score kernel: `scale * (q · kᵀ)` per batch for
    /// `q: [B,n,dh]`, `k: [B,m,dh]`, producing `[B,n,m]`. Equivalent to
    /// `scale(bmm(q, transpose_last2(k)), scale)` as one node with no
    /// materialized transpose.
    pub fn scaled_bmm_nt(&self, q: Var, k: Var, scale: f32) -> Var {
        let pool = self.pool.clone();
        let fpool = pool.clone();
        self.binary(
            q,
            k,
            move |x, y| {
                let len = x.shape()[0] * x.shape()[1] * y.shape()[1];
                x.bmm_nt_scaled(y, scale, crate::pool::take_uninit(&fpool, len))
            },
            Box::new(move |g, _, ps| {
                let dq = g.bmm_scaled(ps[1], scale, crate::pool::take_uninit(&pool, ps[0].len()));
                let dk =
                    g.bmm_tn_scaled(ps[0], scale, crate::pool::take_uninit(&pool, ps[1].len()));
                vec![Flow::Grad(dq), Flow::Grad(dk)]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BufferPool;
    use crate::rng::Rng;

    fn rand(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor::rand_normal(shape, 0.8, &mut rng)
    }

    /// Builds the same computation through the fused op and through the
    /// unfused node chain and asserts forward values and input gradients
    /// are bit-identical.
    fn assert_fused_matches(
        fused: impl Fn(&Graph, &[Var]) -> Var,
        unfused: impl Fn(&Graph, &[Var]) -> Var,
        inputs: &[Tensor],
        what: &str,
    ) {
        let run = |f: &dyn Fn(&Graph, &[Var]) -> Var| {
            let g = Graph::new();
            let vars: Vec<Var> = inputs.iter().map(|t| g.leaf(t.clone(), true)).collect();
            let y = f(&g, &vars);
            let loss = g.sum_all(g.square(y));
            g.backward(loss);
            let out = g.value_cloned(y);
            let grads: Vec<Tensor> = vars.iter().map(|&v| g.grad(v).expect("grad")).collect();
            (out, grads)
        };
        let (fo, fg) = run(&fused);
        let (uo, ug) = run(&unfused);
        assert_eq!(fo, uo, "{what}: forward mismatch");
        for (i, (a, b)) in fg.iter().zip(&ug).enumerate() {
            assert_eq!(a.shape(), b.shape(), "{what}: grad[{i}] shape");
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!(
                    (x - y).abs() <= 1e-5 * (1.0 + x.abs().max(y.abs())),
                    "{what}: grad[{i}] {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn linear_matches_matmul_add_bias() {
        assert_fused_matches(
            |g, v| g.linear(v[0], v[1], v[2]),
            |g, v| g.add_bias(g.matmul(v[0], v[1]), v[2]),
            &[rand(&[5, 3], 1), rand(&[3, 4], 2), rand(&[4], 3)],
            "linear",
        );
    }

    #[test]
    fn softmax_bias_matches_add_then_softmax() {
        let bias = Rc::new(rand(&[2, 3, 3], 4));
        let bias2 = (*bias).clone();
        assert_fused_matches(
            move |g, v| g.softmax_bias_lastdim(v[0], &bias),
            move |g, v| {
                let b = g.constant(bias2.clone());
                g.softmax_lastdim(g.add(v[0], b))
            },
            &[rand(&[2, 3, 3], 5)],
            "softmax_bias",
        );
    }

    #[test]
    fn add_layer_norm_matches_add_then_layer_norm() {
        assert_fused_matches(
            |g, v| g.add_layer_norm(v[0], v[1], v[2], v[3], 1e-5),
            |g, v| g.layer_norm(g.add(v[0], v[1]), v[2], v[3], 1e-5),
            &[rand(&[6, 4], 6), rand(&[6, 4], 7), rand(&[4], 8), rand(&[4], 9)],
            "add_layer_norm",
        );
    }

    #[test]
    fn scaled_bmm_nt_matches_transpose_bmm_scale() {
        let scale = 0.37f32;
        assert_fused_matches(
            move |g, v| g.scaled_bmm_nt(v[0], v[1], scale),
            move |g, v| {
                let kt = g.transpose_last2(v[1]);
                g.scale(g.bmm(v[0], kt), scale)
            },
            &[rand(&[3, 4, 5], 10), rand(&[3, 6, 5], 11)],
            "scaled_bmm_nt",
        );
    }

    #[test]
    fn fused_ops_work_with_pool_attached() {
        // Run twice through the same pool: the second graph reuses the
        // first's buffers and must produce identical results.
        let pool = BufferPool::new();
        let run = |pool: &std::rc::Rc<BufferPool>| {
            let g = Graph::with_pool(pool.clone());
            let x = g.leaf(rand(&[8, 16], 12), true);
            let w = g.leaf(rand(&[16, 16], 13), true);
            let b = g.leaf(rand(&[16], 14), true);
            let y = g.linear(x, w, b);
            let gain = g.leaf(rand(&[16], 15), true);
            let bias = g.leaf(rand(&[16], 16), true);
            let z = g.add_layer_norm(y, y, gain, bias, 1e-5);
            let loss = g.sum_all(g.square(z));
            g.backward(loss);
            (g.value_cloned(z), g.grad(x).unwrap(), g.grad(w).unwrap())
        };
        let first = run(&pool);
        let second = run(&pool);
        assert_eq!(first, second);
    }
}
