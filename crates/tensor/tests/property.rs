//! Property-based tests for the tensor/autograd engine.

use proptest::prelude::*;
use sdea_tensor::{kernels, with_thread_budget, CsrMatrix, Graph, Rng, Tensor};
use std::sync::Arc;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_is_associative(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 5),
        c in tensor_strategy(5, 2),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributes_over_add(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 3),
        c in tensor_strategy(4, 3),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn transpose_reverses_product(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
    ) {
        let left = a.matmul(&b).transpose2();
        let right = b.transpose2().matmul(&a.transpose2());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax output is a probability distribution for any input.
    #[test]
    fn softmax_is_distribution(t in tensor_strategy(4, 6)) {
        let s = t.softmax_lastdim();
        for r in 0..4 {
            let row = s.row(r);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    /// Autograd gradient of sum(x ⊙ w) wrt x equals w exactly.
    #[test]
    fn grad_of_linear_form_is_weight(
        x in tensor_strategy(3, 5),
        w in tensor_strategy(3, 5),
    ) {
        let g = Graph::new();
        let xv = g.leaf(x, true);
        let wv = g.constant(w.clone());
        let loss = g.sum_all(g.mul(xv, wv));
        g.backward(loss);
        let grad = g.grad(xv).unwrap();
        for (a, b) in grad.data().iter().zip(w.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Backward through matmul: analytic == central finite differences.
    #[test]
    fn matmul_grad_matches_numeric(seed in 0u64..10_000) {
        let mut rng = Rng::seed_from_u64(seed);
        let x0 = Tensor::rand_normal(&[2, 3], 0.7, &mut rng);
        let w = Tensor::rand_normal(&[3, 2], 0.7, &mut rng);
        let f = |t: &Tensor| -> f32 {
            let g = Graph::new();
            let xv = g.leaf(t.clone(), false);
            let wv = g.constant(w.clone());
            let y = g.matmul(xv, wv);
            g.value_cloned(g.sum_all(g.square(y))).item()
        };
        let g = Graph::new();
        let xv = g.leaf(x0.clone(), true);
        let wv = g.constant(w.clone());
        let y = g.matmul(xv, wv);
        let loss = g.sum_all(g.square(y));
        g.backward(loss);
        let analytic = g.grad(xv).unwrap();
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += 1e-3;
            let mut minus = x0.clone();
            minus.data_mut()[i] -= 1e-3;
            let numeric = (f(&plus) - f(&minus)) / 2e-3;
            let a = analytic.data()[i];
            prop_assert!(
                (a - numeric).abs() <= 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad[{}]: analytic {} vs numeric {}", i, a, numeric
            );
        }
    }

    /// spmm equals dense matmul for random sparse matrices.
    #[test]
    fn spmm_matches_dense(
        entries in prop::collection::vec((0usize..4, 0usize..5, -2.0f32..2.0), 0..15),
        x in tensor_strategy(5, 3),
    ) {
        let csr = CsrMatrix::from_triplets(4, 5, &entries);
        let sparse = csr.matmul_dense(&x);
        // dense reference
        let mut dense = Tensor::zeros(&[4, 5]);
        for &(r, c, v) in &entries {
            dense.row_mut(r)[c] += v;
        }
        let expected = dense.matmul(&x);
        for (a, b) in sparse.data().iter().zip(expected.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// spmm backward: gradient of sum(A·X) wrt X is Aᵀ·1.
    #[test]
    fn spmm_grad_is_transpose(
        entries in prop::collection::vec((0usize..4, 0usize..5, -2.0f32..2.0), 1..12),
    ) {
        let csr = Arc::new(CsrMatrix::from_triplets(4, 5, &entries));
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(&[5, 2]), true);
        let y = g.spmm(Arc::clone(&csr), x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        let expected = csr.t_matmul_dense(&Tensor::ones(&[4, 2]));
        for (a, b) in grad.data().iter().zip(expected.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// l2-normalized rows have unit norm (or zero).
    #[test]
    fn l2_normalize_rows_property(t in tensor_strategy(4, 6)) {
        let n = t.l2_normalize_rows();
        for r in 0..4 {
            let norm: f32 = n.row(r).iter().map(|&v| v * v).sum::<f32>().sqrt();
            prop_assert!(norm < 1.0 + 1e-4);
            // Either a unit row or an all-zero row (which normalizes to zero).
            prop_assert!(!(1e-6..=0.99).contains(&norm), "norm {}", norm);
        }
    }

    /// The register-tiled `matmul` equals the naive single-accumulator
    /// reference kernel EXACTLY (bit-for-bit, not within tolerance) at
    /// thread budget 1, for arbitrary shapes including empty inner dims.
    #[test]
    fn tiled_matmul_matches_reference_exactly(
        n in 1usize..24, k in 0usize..20, m in 1usize..40, seed in 0u64..10_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let a = Tensor::rand_normal(&[n, k], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, m], 1.0, &mut rng);
        let tiled = with_thread_budget(1, || a.matmul(&b));
        let mut expect = vec![0.0f32; n * m];
        kernels::reference::matmul_into(a.data(), b.data(), &mut expect, n, k, m);
        prop_assert_eq!(tiled.data(), &expect[..]);
    }

    /// Same exactness for the transposed variants `A·Bᵀ` and `Aᵀ·B`.
    #[test]
    fn tiled_transposed_matmuls_match_reference_exactly(
        n in 1usize..20, k in 1usize..20, m in 1usize..36, seed in 0u64..10_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let a = Tensor::rand_normal(&[n, k], 1.0, &mut rng);
        let bt = Tensor::rand_normal(&[m, k], 1.0, &mut rng);
        let at = Tensor::rand_normal(&[k, n], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, m], 1.0, &mut rng);
        let (got_nt, got_tn) = with_thread_budget(1, || (a.matmul_t(&bt), at.t_matmul(&b)));
        let mut expect = vec![0.0f32; n * m];
        kernels::reference::matmul_t_into(a.data(), bt.data(), &mut expect, n, k, m);
        prop_assert_eq!(got_nt.data(), &expect[..]);
        kernels::reference::t_matmul_into(at.data(), b.data(), &mut expect, n, k, m);
        prop_assert_eq!(got_tn.data(), &expect[..]);
    }

    /// Serialization round-trips arbitrary tensors bit-exactly.
    #[test]
    fn serialize_round_trip(t in tensor_strategy(3, 7)) {
        let mut buf = Vec::new();
        sdea_tensor::serialize::write_tensor(&mut buf, &t);
        let back = sdea_tensor::serialize::read_tensor(&mut &buf[..]).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Int8 quantization round-trip error is bounded by half a code step
    /// per dimension, for arbitrary tables.
    #[test]
    fn quantize_round_trip_error_is_bounded(
        rows in 1usize..8, cols in 1usize..10, seed in 0u64..10_000,
    ) {
        use sdea_tensor::qkernels::{dequantize_row, quantize_rows};
        let mut rng = Rng::seed_from_u64(seed);
        let t = Tensor::rand_normal(&[rows, cols], 1.5, &mut rng);
        let (codes, params) = quantize_rows(t.data(), rows, cols);
        for r in 0..rows {
            let back = dequantize_row(&codes[r * cols..(r + 1) * cols], &params);
            for (j, (&orig, &deq)) in t.row(r).iter().zip(&back).enumerate() {
                let bound = 0.5 * params.scale[j] + 1e-6;
                prop_assert!(
                    (orig - deq).abs() <= bound,
                    "row {} dim {}: |{} - {}| > {}", r, j, orig, deq, bound
                );
            }
        }
    }

    /// The fused quantized dot product is bit-identical to the exact dot
    /// against the dequantized row — the oracle the IVF re-scoring
    /// correctness argument rests on.
    #[test]
    fn quantized_dot_matches_dequantized_oracle_bitwise(
        rows in 1usize..6, cols in 1usize..12, seed in 0u64..10_000,
    ) {
        use sdea_tensor::qkernels::{dequantize_row, exact_dot, quantize_rows, quantized_dot};
        let mut rng = Rng::seed_from_u64(seed);
        let t = Tensor::rand_normal(&[rows, cols], 1.0, &mut rng);
        let q = Tensor::rand_normal(&[1, cols], 1.0, &mut rng);
        let (codes, params) = quantize_rows(t.data(), rows, cols);
        for r in 0..rows {
            let row = &codes[r * cols..(r + 1) * cols];
            let fused = quantized_dot(q.row(0), row, &params);
            let oracle = exact_dot(q.row(0), &dequantize_row(row, &params));
            prop_assert_eq!(fused.to_bits(), oracle.to_bits(), "row {}", r);
        }
    }

    /// Degenerate tables quantize losslessly: a constant dimension (zero
    /// range) and all-zero rows reconstruct exactly.
    #[test]
    fn degenerate_dims_quantize_exactly(value in -3.0f32..3.0, rows in 1usize..6) {
        use sdea_tensor::qkernels::{dequantize_row, quantize_rows};
        // Column 0 constant at `value`, column 1 all zero.
        let data: Vec<f32> = (0..rows).flat_map(|_| [value, 0.0]).collect();
        let (codes, params) = quantize_rows(&data, rows, 2);
        for r in 0..rows {
            let back = dequantize_row(&codes[r * 2..(r + 1) * 2], &params);
            prop_assert_eq!(back[0].to_bits(), value.to_bits(), "constant dim row {}", r);
            prop_assert_eq!(back[1], 0.0, "zero dim row {}", r);
        }
    }
}
