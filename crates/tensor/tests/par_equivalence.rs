//! The fork-join layer's core guarantee: every parallelized kernel is
//! bit-identical at any thread budget. These tests compare budget 1 (fully
//! serial) against budget 8 on inputs large enough to cross the fan-out
//! thresholds.

use sdea_tensor::{with_thread_budget, CsrMatrix, Rng, Tensor};

/// Budgets exercised by the tiled-kernel suites: serial, an even split, a
/// prime that never divides the tile grid evenly, and the CI budget.
const BUDGETS: [usize; 3] = [2, 7, 8];

fn pair(n: usize, k: usize, m: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = Rng::seed_from_u64(seed);
    (Tensor::rand_normal(&[n, k], 1.0, &mut rng), Tensor::rand_normal(&[k, m], 1.0, &mut rng))
}

#[test]
fn matmul_bitwise_equal_across_budgets() {
    let (a, b) = pair(257, 96, 131, 1);
    let serial = with_thread_budget(1, || a.matmul(&b));
    for budget in [2, 3, 8] {
        let par = with_thread_budget(budget, || a.matmul(&b));
        assert_eq!(serial.data(), par.data(), "budget {budget}");
    }
}

#[test]
fn matmul_t_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(2);
    let a = Tensor::rand_normal(&[300, 64], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[290, 64], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.matmul_t(&b));
    let par = with_thread_budget(8, || a.matmul_t(&b));
    assert_eq!(serial.data(), par.data());
}

#[test]
fn t_matmul_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(3);
    let a = Tensor::rand_normal(&[64, 280], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[64, 310], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.t_matmul(&b));
    let par = with_thread_budget(8, || a.t_matmul(&b));
    assert_eq!(serial.data(), par.data());
}

#[test]
fn bmm_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(4);
    let a = Tensor::rand_normal(&[12, 40, 48], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[12, 48, 36], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.bmm(&b));
    let par = with_thread_budget(8, || a.bmm(&b));
    assert_eq!(serial.data(), par.data());
}

#[test]
fn l2_normalize_rows_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(5);
    let a = Tensor::rand_normal(&[4000, 64], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.l2_normalize_rows());
    let par = with_thread_budget(8, || a.l2_normalize_rows());
    assert_eq!(serial.data(), par.data());
}

/// The register-tiled microkernel has 4-row × 8-column full tiles plus tail
/// kernels; these shapes hit the degenerate (1×1), all-tail (3×5×7), and
/// mixed full+tail (129×65) paths at every budget, including a prime one.
#[test]
fn tiled_matmul_family_bitwise_equal_at_odd_shapes_and_budgets() {
    for &(n, k, m, seed) in &[(1usize, 1usize, 1usize, 10u64), (3, 5, 7, 11), (129, 33, 65, 12)] {
        let (a, b) = pair(n, k, m, seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0xabcd);
        let bt = Tensor::rand_normal(&[m, k], 1.0, &mut rng);
        let at = Tensor::rand_normal(&[k, n], 1.0, &mut rng);
        let serial = with_thread_budget(1, || (a.matmul(&b), a.matmul_t(&bt), at.t_matmul(&b)));
        for budget in BUDGETS {
            let par =
                with_thread_budget(budget, || (a.matmul(&b), a.matmul_t(&bt), at.t_matmul(&b)));
            assert_eq!(serial.0.data(), par.0.data(), "matmul {n}x{k}x{m} budget {budget}");
            assert_eq!(serial.1.data(), par.1.data(), "matmul_t {n}x{k}x{m} budget {budget}");
            assert_eq!(serial.2.data(), par.2.data(), "t_matmul {n}x{k}x{m} budget {budget}");
        }
    }
}

#[test]
fn matmul_bias_bitwise_equal_across_budgets() {
    let (a, b) = pair(211, 96, 77, 13);
    let mut rng = Rng::seed_from_u64(14);
    let bias = Tensor::rand_normal(&[77], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.matmul_bias(&b, &bias));
    for budget in BUDGETS {
        let par = with_thread_budget(budget, || a.matmul_bias(&b, &bias));
        assert_eq!(serial.data(), par.data(), "budget {budget}");
    }
}

#[test]
fn bmm_nt_and_bmm_tn_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(15);
    // bmm_nt: [b,n,k] × [b,m,k] -> [b,n,m]
    let q = Tensor::rand_normal(&[12, 40, 48], 1.0, &mut rng);
    let kx = Tensor::rand_normal(&[12, 36, 48], 1.0, &mut rng);
    // bmm_tn: [b,K,N] × [b,K,M] -> [b,N,M]
    let a = Tensor::rand_normal(&[12, 48, 40], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[12, 48, 36], 1.0, &mut rng);
    let serial = with_thread_budget(1, || (q.bmm_nt(&kx), a.bmm_tn(&b)));
    for budget in BUDGETS {
        let par = with_thread_budget(budget, || (q.bmm_nt(&kx), a.bmm_tn(&b)));
        assert_eq!(serial.0.data(), par.0.data(), "bmm_nt budget {budget}");
        assert_eq!(serial.1.data(), par.1.data(), "bmm_tn budget {budget}");
    }
}

#[test]
fn sparse_matmul_dense_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(16);
    let rows = 1500usize;
    let cols = 900usize;
    let triplets: Vec<(usize, usize, f32)> =
        (0..rows * 8).map(|_| (rng.below(rows), rng.below(cols), rng.uniform(-1.0, 1.0))).collect();
    let a = CsrMatrix::from_triplets(rows, cols, &triplets);
    let x = Tensor::rand_normal(&[cols, 64], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.matmul_dense(&x));
    for budget in BUDGETS {
        let par = with_thread_budget(budget, || a.matmul_dense(&x));
        assert_eq!(serial.data(), par.data(), "spmm budget {budget}");
    }
}

#[test]
fn backward_through_parallel_matmul_is_budget_invariant() {
    use sdea_tensor::Graph;
    let mut rng = Rng::seed_from_u64(6);
    let x = Tensor::rand_normal(&[200, 80], 1.0, &mut rng);
    let w = Tensor::rand_normal(&[80, 120], 1.0, &mut rng);
    let grads_at = |budget: usize| {
        with_thread_budget(budget, || {
            let g = Graph::new();
            let xv = g.leaf(x.clone(), true);
            let wv = g.leaf(w.clone(), true);
            let y = g.matmul(xv, wv);
            let loss = g.sum_all(y);
            g.backward(loss);
            (g.grad(xv).unwrap().clone(), g.grad(wv).unwrap().clone())
        })
    };
    let (gx1, gw1) = grads_at(1);
    let (gx8, gw8) = grads_at(8);
    assert_eq!(gx1.data(), gx8.data());
    assert_eq!(gw1.data(), gw8.data());
}
