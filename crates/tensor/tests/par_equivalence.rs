//! The fork-join layer's core guarantee: every parallelized kernel is
//! bit-identical at any thread budget. These tests compare budget 1 (fully
//! serial) against budget 8 on inputs large enough to cross the fan-out
//! thresholds.

use sdea_tensor::{with_thread_budget, Rng, Tensor};

fn pair(n: usize, k: usize, m: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = Rng::seed_from_u64(seed);
    (Tensor::rand_normal(&[n, k], 1.0, &mut rng), Tensor::rand_normal(&[k, m], 1.0, &mut rng))
}

#[test]
fn matmul_bitwise_equal_across_budgets() {
    let (a, b) = pair(257, 96, 131, 1);
    let serial = with_thread_budget(1, || a.matmul(&b));
    for budget in [2, 3, 8] {
        let par = with_thread_budget(budget, || a.matmul(&b));
        assert_eq!(serial.data(), par.data(), "budget {budget}");
    }
}

#[test]
fn matmul_t_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(2);
    let a = Tensor::rand_normal(&[300, 64], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[290, 64], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.matmul_t(&b));
    let par = with_thread_budget(8, || a.matmul_t(&b));
    assert_eq!(serial.data(), par.data());
}

#[test]
fn t_matmul_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(3);
    let a = Tensor::rand_normal(&[64, 280], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[64, 310], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.t_matmul(&b));
    let par = with_thread_budget(8, || a.t_matmul(&b));
    assert_eq!(serial.data(), par.data());
}

#[test]
fn bmm_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(4);
    let a = Tensor::rand_normal(&[12, 40, 48], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[12, 48, 36], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.bmm(&b));
    let par = with_thread_budget(8, || a.bmm(&b));
    assert_eq!(serial.data(), par.data());
}

#[test]
fn l2_normalize_rows_bitwise_equal_across_budgets() {
    let mut rng = Rng::seed_from_u64(5);
    let a = Tensor::rand_normal(&[4000, 64], 1.0, &mut rng);
    let serial = with_thread_budget(1, || a.l2_normalize_rows());
    let par = with_thread_budget(8, || a.l2_normalize_rows());
    assert_eq!(serial.data(), par.data());
}

#[test]
fn backward_through_parallel_matmul_is_budget_invariant() {
    use sdea_tensor::Graph;
    let mut rng = Rng::seed_from_u64(6);
    let x = Tensor::rand_normal(&[200, 80], 1.0, &mut rng);
    let w = Tensor::rand_normal(&[80, 120], 1.0, &mut rng);
    let grads_at = |budget: usize| {
        with_thread_budget(budget, || {
            let g = Graph::new();
            let xv = g.leaf(x.clone(), true);
            let wv = g.leaf(w.clone(), true);
            let y = g.matmul(xv, wv);
            let loss = g.sum_all(y);
            g.backward(loss);
            (g.grad(xv).unwrap().clone(), g.grad(wv).unwrap().clone())
        })
    };
    let (gx1, gw1) = grads_at(1);
    let (gx8, gw8) = grads_at(8);
    assert_eq!(gx1.data(), gx8.data());
    assert_eq!(gw1.data(), gw8.data());
}
