//! Rule-based pre-tokenization: lowercasing, whitespace splitting, and
//! punctuation isolation — the same normalization BERT's basic tokenizer
//! applies before WordPiece.

/// Splits raw text into lowercase word-level tokens.
///
/// Rules:
/// - Unicode whitespace separates tokens.
/// - ASCII punctuation (and common KG separators like `_`, `/`) become
///   single-character tokens of their own.
/// - Everything is lowercased.
///
/// ```
/// use sdea_text::pretokenize;
/// assert_eq!(
///     pretokenize("Real_Madrid C.F. (1902)"),
///     vec!["real", "_", "madrid", "c", ".", "f", ".", "(", "1902", ")"]
/// );
/// ```
pub fn pretokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_whitespace() {
            flush(&mut cur, &mut out);
        } else if is_punct(ch) {
            flush(&mut cur, &mut out);
            out.push(ch.to_lowercase().collect());
        } else {
            cur.extend(ch.to_lowercase());
        }
    }
    flush(&mut cur, &mut out);
    out
}

#[inline]
fn flush(cur: &mut String, out: &mut Vec<String>) {
    if !cur.is_empty() {
        out.push(std::mem::take(cur));
    }
}

#[inline]
fn is_punct(ch: char) -> bool {
    ch.is_ascii_punctuation()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(pretokenize("hello world"), vec!["hello", "world"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(pretokenize("HeLLo"), vec!["hello"]);
    }

    #[test]
    fn isolates_punctuation() {
        assert_eq!(pretokenize("a,b"), vec!["a", ",", "b"]);
        assert_eq!(pretokenize("(x)"), vec!["(", "x", ")"]);
    }

    #[test]
    fn kg_identifiers_split_on_underscore() {
        assert_eq!(pretokenize("C.D._Nacional"), vec!["c", ".", "d", ".", "_", "nacional"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(pretokenize("").is_empty());
        assert!(pretokenize("   \t\n").is_empty());
    }

    #[test]
    fn numbers_survive_as_tokens() {
        assert_eq!(pretokenize("born 1985-02-05"), vec!["born", "1985", "-", "02", "-", "05"]);
    }

    #[test]
    fn non_ascii_words_pass_through_lowercased() {
        assert_eq!(pretokenize("FUSSBALL Édith"), vec!["fussball", "édith"]);
    }
}
