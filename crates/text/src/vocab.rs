//! Subword vocabulary with BERT-style special tokens.

use std::collections::HashMap;

/// The special tokens every vocabulary carries, in fixed id order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SpecialToken {
    /// Padding (id 0).
    Pad,
    /// Unknown subword (id 1).
    Unk,
    /// Sequence-start classifier token (id 2) — the paper's Eq. (5).
    Cls,
    /// Separator (id 3).
    Sep,
    /// Masked-LM mask (id 4).
    Mask,
}

impl SpecialToken {
    /// Canonical surface string.
    pub fn as_str(self) -> &'static str {
        match self {
            SpecialToken::Pad => "[PAD]",
            SpecialToken::Unk => "[UNK]",
            SpecialToken::Cls => "[CLS]",
            SpecialToken::Sep => "[SEP]",
            SpecialToken::Mask => "[MASK]",
        }
    }

    /// Fixed id.
    pub fn id(self) -> u32 {
        match self {
            SpecialToken::Pad => 0,
            SpecialToken::Unk => 1,
            SpecialToken::Cls => 2,
            SpecialToken::Sep => 3,
            SpecialToken::Mask => 4,
        }
    }

    /// All specials in id order.
    pub fn all() -> [SpecialToken; 5] {
        [
            SpecialToken::Pad,
            SpecialToken::Unk,
            SpecialToken::Cls,
            SpecialToken::Sep,
            SpecialToken::Mask,
        ]
    }
}

/// An id <-> subword bijection. Continuation pieces carry the `##` prefix
/// (WordPiece convention).
#[derive(Clone, Debug)]
pub struct Vocab {
    tokens: Vec<String>,
    index: HashMap<String, u32>,
}

impl Vocab {
    /// Builds a vocabulary from subword strings. The five special tokens are
    /// always prepended; `subwords` must not contain them.
    pub fn new(subwords: impl IntoIterator<Item = String>) -> Self {
        let mut tokens: Vec<String> =
            SpecialToken::all().iter().map(|s| s.as_str().to_string()).collect();
        for sw in subwords {
            debug_assert!(!tokens[..5].contains(&sw), "special token passed as subword");
            tokens.push(sw);
        }
        let index = tokens.iter().enumerate().map(|(i, t)| (t.clone(), i as u32)).collect();
        Vocab { tokens, index }
    }

    /// Total vocabulary size including specials.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Never true — specials always exist.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up a subword's id.
    pub fn id_of(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// The surface string for an id.
    pub fn token_of(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Whether `id` refers to one of the special tokens.
    pub fn is_special(&self, id: u32) -> bool {
        id < 5
    }

    /// `[PAD]`'s id.
    pub fn pad_id(&self) -> u32 {
        SpecialToken::Pad.id()
    }

    /// `[UNK]`'s id.
    pub fn unk_id(&self) -> u32 {
        SpecialToken::Unk.id()
    }

    /// `[CLS]`'s id.
    pub fn cls_id(&self) -> u32 {
        SpecialToken::Cls.id()
    }

    /// `[SEP]`'s id.
    pub fn sep_id(&self) -> u32 {
        SpecialToken::Sep.id()
    }

    /// `[MASK]`'s id.
    pub fn mask_id(&self) -> u32 {
        SpecialToken::Mask.id()
    }

    /// Iterates `(id, token)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.tokens.iter().enumerate().map(|(i, t)| (i as u32, t.as_str()))
    }

    /// Ids of all non-special tokens (useful for MLM random replacement).
    pub fn content_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (5..self.tokens.len() as u32).filter(move |_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocab::new(vec!["ab".into(), "##cd".into()]);
        assert_eq!(v.id_of("[PAD]"), Some(0));
        assert_eq!(v.id_of("[UNK]"), Some(1));
        assert_eq!(v.id_of("[CLS]"), Some(2));
        assert_eq!(v.id_of("[SEP]"), Some(3));
        assert_eq!(v.id_of("[MASK]"), Some(4));
        assert_eq!(v.id_of("ab"), Some(5));
        assert_eq!(v.id_of("##cd"), Some(6));
    }

    #[test]
    fn round_trip_ids() {
        let v = Vocab::new(vec!["x".into(), "yz".into()]);
        for (id, tok) in v.iter() {
            assert_eq!(v.id_of(tok), Some(id));
            assert_eq!(v.token_of(id), tok);
        }
    }

    #[test]
    fn special_detection() {
        let v = Vocab::new(vec!["q".into()]);
        assert!(v.is_special(0));
        assert!(v.is_special(4));
        assert!(!v.is_special(5));
    }

    #[test]
    fn content_ids_skip_specials() {
        let v = Vocab::new(vec!["a".into(), "b".into()]);
        let ids: Vec<u32> = v.content_ids().collect();
        assert_eq!(ids, vec![5, 6]);
    }
}
