//! # sdea-text
//!
//! Tokenization substrate for the SDEA entity-alignment system.
//!
//! The paper feeds entity attribute values into BERT, which uses a WordPiece
//! subword vocabulary. This crate provides the equivalent pipeline from
//! scratch: a rule-based pre-tokenizer ([`pretokenize()`]), a trainable
//! subword vocabulary ([`wordpiece`], trained with BPE-style merges and
//! encoded with WordPiece greedy longest-match), and fixed-length encoding
//! with special tokens ([`encode`]).
//!
//! ```
//! use sdea_text::{WordPieceTrainer, Tokenizer};
//!
//! let corpus = ["cristiano ronaldo plays for real madrid", "ronaldo was born in portugal"];
//! let vocab = WordPieceTrainer::new(200).train(corpus.iter().copied());
//! let tok = Tokenizer::new(vocab);
//! let enc = tok.encode("ronaldo of portugal", 16);
//! assert_eq!(enc.ids.len(), 16);
//! assert_eq!(enc.ids[0], tok.vocab().cls_id());
//! ```

#![forbid(unsafe_code)]

pub mod encode;
pub mod pretokenize;
pub mod vocab;
pub mod wordpiece;

pub use encode::{Encoded, EncodedPair, Tokenizer};
pub use pretokenize::pretokenize;
pub use vocab::{SpecialToken, Vocab};
pub use wordpiece::WordPieceTrainer;
