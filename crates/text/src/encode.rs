//! Fixed-length sequence encoding: WordPiece greedy longest-match plus
//! `[CLS]` prefixing, truncation and padding — the input format of the
//! attribute embedding module (paper Eq. 5).

use crate::pretokenize::pretokenize;
use crate::vocab::Vocab;

/// A fixed-length encoded sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Encoded {
    /// Token ids, length exactly `max_len` (`[CLS] tok... [PAD]...`).
    pub ids: Vec<u32>,
    /// 1 for real tokens (incl. `[CLS]`), 0 for padding; same length.
    pub mask: Vec<u8>,
}

impl Encoded {
    /// Number of non-padding positions.
    pub fn real_len(&self) -> usize {
        self.mask.iter().map(|&m| m as usize).sum()
    }
}

/// Encodes text against a trained [`Vocab`].
#[derive(Clone, Debug)]
pub struct Tokenizer {
    vocab: Vocab,
    /// Words longer than this many characters map to `[UNK]` outright
    /// (mirrors BERT's `max_input_chars_per_word`).
    max_word_chars: usize,
}

impl Tokenizer {
    /// Wraps a vocabulary.
    pub fn new(vocab: Vocab) -> Self {
        Tokenizer { vocab, max_word_chars: 64 }
    }

    /// The wrapped vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// WordPiece-tokenizes a single word into subword ids (no specials).
    /// Falls back to a single `[UNK]` when any position cannot be matched.
    pub fn word_to_ids(&self, word: &str) -> Vec<u32> {
        let chars: Vec<char> = word.chars().collect();
        if chars.is_empty() {
            return Vec::new();
        }
        if chars.len() > self.max_word_chars {
            return vec![self.vocab.unk_id()];
        }
        let mut ids = Vec::new();
        let mut start = 0;
        while start < chars.len() {
            let mut end = chars.len();
            let mut matched = None;
            while end > start {
                let body: String = chars[start..end].iter().collect();
                let candidate = if start == 0 { body } else { format!("##{body}") };
                if let Some(id) = self.vocab.id_of(&candidate) {
                    matched = Some((id, end));
                    break;
                }
                end -= 1;
            }
            match matched {
                Some((id, new_start)) => {
                    ids.push(id);
                    start = new_start;
                }
                None => return vec![self.vocab.unk_id()],
            }
        }
        ids
    }

    /// Tokenizes free text into subword ids (no specials, no padding).
    pub fn text_to_ids(&self, text: &str) -> Vec<u32> {
        let mut ids = Vec::new();
        for word in pretokenize(text) {
            ids.extend(self.word_to_ids(&word));
        }
        ids
    }

    /// Full encoding: `[CLS]` + subwords, truncated and padded to `max_len`.
    pub fn encode(&self, text: &str, max_len: usize) -> Encoded {
        assert!(max_len >= 1, "max_len must fit at least [CLS]");
        let mut ids = Vec::with_capacity(max_len);
        ids.push(self.vocab.cls_id());
        for id in self.text_to_ids(text) {
            if ids.len() >= max_len {
                break;
            }
            ids.push(id);
        }
        let real = ids.len();
        ids.resize(max_len, self.vocab.pad_id());
        let mut mask = vec![0u8; max_len];
        mask[..real].iter_mut().for_each(|m| *m = 1);
        Encoded { ids, mask }
    }

    /// Encodes a pre-tokenized id sequence (already produced by
    /// [`Tokenizer::text_to_ids`]) with `[CLS]`/padding. Lets callers cache
    /// the expensive subword pass.
    pub fn encode_ids(&self, body: &[u32], max_len: usize) -> Encoded {
        assert!(max_len >= 1);
        let take = body.len().min(max_len - 1);
        let mut ids = Vec::with_capacity(max_len);
        ids.push(self.vocab.cls_id());
        ids.extend_from_slice(&body[..take]);
        let real = ids.len();
        ids.resize(max_len, self.vocab.pad_id());
        let mut mask = vec![0u8; max_len];
        mask[..real].iter_mut().for_each(|m| *m = 1);
        Encoded { ids, mask }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordpiece::WordPieceTrainer;

    fn toy_tokenizer() -> Tokenizer {
        let corpus = vec![
            "portugal portugal portugal madrid madrid ronaldo ronaldo ronaldo",
            "real madrid club portugal lisbon",
        ];
        Tokenizer::new(WordPieceTrainer::new(300).train(corpus))
    }

    #[test]
    fn encode_layout() {
        let t = toy_tokenizer();
        let e = t.encode("ronaldo portugal", 12);
        assert_eq!(e.ids.len(), 12);
        assert_eq!(e.mask.len(), 12);
        assert_eq!(e.ids[0], t.vocab().cls_id());
        assert!(e.real_len() >= 3);
        // padding is contiguous at the end
        let real = e.real_len();
        assert!(e.ids[real..].iter().all(|&i| i == t.vocab().pad_id()));
        assert!(e.mask[..real].iter().all(|&m| m == 1));
        assert!(e.mask[real..].iter().all(|&m| m == 0));
    }

    #[test]
    fn truncation_respects_max_len() {
        let t = toy_tokenizer();
        let long = "portugal ".repeat(100);
        let e = t.encode(&long, 8);
        assert_eq!(e.ids.len(), 8);
        assert_eq!(e.real_len(), 8);
    }

    #[test]
    fn unknown_word_does_not_panic() {
        let t = toy_tokenizer();
        // Characters never seen in training.
        let ids = t.word_to_ids("北京");
        assert_eq!(ids, vec![t.vocab().unk_id()]);
    }

    #[test]
    fn known_words_avoid_unk() {
        let t = toy_tokenizer();
        let ids = t.text_to_ids("madrid lisbon");
        assert!(!ids.contains(&t.vocab().unk_id()), "{ids:?}");
    }

    #[test]
    fn subwords_reconstruct_word() {
        let t = toy_tokenizer();
        let ids = t.word_to_ids("ronaldo");
        let rebuilt: String =
            ids.iter().map(|&i| t.vocab().token_of(i).trim_start_matches("##")).collect();
        assert_eq!(rebuilt, "ronaldo");
    }

    #[test]
    fn overlong_word_is_unk() {
        let t = toy_tokenizer();
        let w = "a".repeat(100);
        assert_eq!(t.word_to_ids(&w), vec![t.vocab().unk_id()]);
    }

    #[test]
    fn encode_ids_matches_encode() {
        let t = toy_tokenizer();
        let text = "real madrid portugal";
        let body = t.text_to_ids(text);
        assert_eq!(t.encode_ids(&body, 10), t.encode(text, 10));
    }

    #[test]
    fn determinism() {
        let t = toy_tokenizer();
        assert_eq!(t.encode("club portugal", 16), t.encode("club portugal", 16));
    }
}
