//! Fixed-length sequence encoding: WordPiece greedy longest-match plus
//! `[CLS]` prefixing, truncation and padding — the input format of the
//! attribute embedding module (paper Eq. 5).

use crate::pretokenize::pretokenize;
use crate::vocab::Vocab;

/// A fixed-length encoded sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Encoded {
    /// Token ids, length exactly `max_len` (`[CLS] tok... [PAD]...`).
    pub ids: Vec<u32>,
    /// 1 for real tokens (incl. `[CLS]`), 0 for padding; same length.
    pub mask: Vec<u8>,
}

impl Encoded {
    /// Number of non-padding positions.
    pub fn real_len(&self) -> usize {
        self.mask.iter().map(|&m| m as usize).sum()
    }
}

/// A fixed-length encoded *pair* `[CLS] a [SEP] b [SEP] [PAD]...` with the
/// BERT-style segment vector a cross-encoder needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedPair {
    /// Token ids, length exactly `max_len`.
    pub ids: Vec<u32>,
    /// 1 for real tokens (incl. specials), 0 for padding; same length.
    pub mask: Vec<u8>,
    /// Segment per position: 0 for `[CLS]`, side `a` and its `[SEP]`;
    /// 1 for side `b` and its `[SEP]`; 0 again for padding.
    pub segments: Vec<u8>,
}

impl EncodedPair {
    /// Number of non-padding positions.
    pub fn real_len(&self) -> usize {
        self.mask.iter().map(|&m| m as usize).sum()
    }
}

/// Encodes text against a trained [`Vocab`].
#[derive(Clone, Debug)]
pub struct Tokenizer {
    vocab: Vocab,
    /// Words longer than this many characters map to `[UNK]` outright
    /// (mirrors BERT's `max_input_chars_per_word`).
    max_word_chars: usize,
}

impl Tokenizer {
    /// Wraps a vocabulary.
    pub fn new(vocab: Vocab) -> Self {
        Tokenizer { vocab, max_word_chars: 64 }
    }

    /// The wrapped vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// WordPiece-tokenizes a single word into subword ids (no specials).
    /// Falls back to a single `[UNK]` when any position cannot be matched.
    pub fn word_to_ids(&self, word: &str) -> Vec<u32> {
        let chars: Vec<char> = word.chars().collect();
        if chars.is_empty() {
            return Vec::new();
        }
        if chars.len() > self.max_word_chars {
            return vec![self.vocab.unk_id()];
        }
        let mut ids = Vec::new();
        let mut start = 0;
        while start < chars.len() {
            let mut end = chars.len();
            let mut matched = None;
            while end > start {
                let body: String = chars[start..end].iter().collect();
                let candidate = if start == 0 { body } else { format!("##{body}") };
                if let Some(id) = self.vocab.id_of(&candidate) {
                    matched = Some((id, end));
                    break;
                }
                end -= 1;
            }
            match matched {
                Some((id, new_start)) => {
                    ids.push(id);
                    start = new_start;
                }
                None => return vec![self.vocab.unk_id()],
            }
        }
        ids
    }

    /// Tokenizes free text into subword ids (no specials, no padding).
    pub fn text_to_ids(&self, text: &str) -> Vec<u32> {
        let mut ids = Vec::new();
        for word in pretokenize(text) {
            ids.extend(self.word_to_ids(&word));
        }
        ids
    }

    /// Full encoding: `[CLS]` + subwords, truncated and padded to `max_len`.
    pub fn encode(&self, text: &str, max_len: usize) -> Encoded {
        assert!(max_len >= 1, "max_len must fit at least [CLS]");
        let mut ids = Vec::with_capacity(max_len);
        ids.push(self.vocab.cls_id());
        for id in self.text_to_ids(text) {
            if ids.len() >= max_len {
                break;
            }
            ids.push(id);
        }
        let real = ids.len();
        ids.resize(max_len, self.vocab.pad_id());
        let mut mask = vec![0u8; max_len];
        mask[..real].iter_mut().for_each(|m| *m = 1);
        Encoded { ids, mask }
    }

    /// Encodes a pre-tokenized id sequence (already produced by
    /// [`Tokenizer::text_to_ids`]) with `[CLS]`/padding. Lets callers cache
    /// the expensive subword pass.
    pub fn encode_ids(&self, body: &[u32], max_len: usize) -> Encoded {
        assert!(max_len >= 1);
        let take = body.len().min(max_len - 1);
        let mut ids = Vec::with_capacity(max_len);
        ids.push(self.vocab.cls_id());
        ids.extend_from_slice(&body[..take]);
        let real = ids.len();
        ids.resize(max_len, self.vocab.pad_id());
        let mut mask = vec![0u8; max_len];
        mask[..real].iter_mut().for_each(|m| *m = 1);
        Encoded { ids, mask }
    }

    /// Encodes a pre-tokenized id *pair* as `[CLS] a [SEP] b [SEP]`,
    /// truncated and padded to exactly `max_len` (which must fit the three
    /// specials). Truncation is balanced and deterministic: the budget
    /// `max_len - 3` splits evenly, and whatever one short side does not
    /// use the longer side absorbs — a pure function of the two lengths,
    /// never of batch context.
    pub fn encode_pair_ids(&self, a: &[u32], b: &[u32], max_len: usize) -> EncodedPair {
        assert!(max_len >= 3, "max_len must fit [CLS] a [SEP] b [SEP]");
        let budget = max_len - 3;
        let half = budget / 2;
        let take_a = a.len().min(half.max(budget.saturating_sub(b.len())));
        let take_b = b.len().min(budget - take_a);
        let mut ids = Vec::with_capacity(max_len);
        ids.push(self.vocab.cls_id());
        ids.extend_from_slice(&a[..take_a]);
        ids.push(self.vocab.sep_id());
        let seg_boundary = ids.len();
        ids.extend_from_slice(&b[..take_b]);
        ids.push(self.vocab.sep_id());
        let real = ids.len();
        ids.resize(max_len, self.vocab.pad_id());
        let mut mask = vec![0u8; max_len];
        mask[..real].iter_mut().for_each(|m| *m = 1);
        let mut segments = vec![0u8; max_len];
        segments[seg_boundary..real].iter_mut().for_each(|s| *s = 1);
        EncodedPair { ids, mask, segments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordpiece::WordPieceTrainer;

    fn toy_tokenizer() -> Tokenizer {
        let corpus = vec![
            "portugal portugal portugal madrid madrid ronaldo ronaldo ronaldo",
            "real madrid club portugal lisbon",
        ];
        Tokenizer::new(WordPieceTrainer::new(300).train(corpus))
    }

    #[test]
    fn encode_layout() {
        let t = toy_tokenizer();
        let e = t.encode("ronaldo portugal", 12);
        assert_eq!(e.ids.len(), 12);
        assert_eq!(e.mask.len(), 12);
        assert_eq!(e.ids[0], t.vocab().cls_id());
        assert!(e.real_len() >= 3);
        // padding is contiguous at the end
        let real = e.real_len();
        assert!(e.ids[real..].iter().all(|&i| i == t.vocab().pad_id()));
        assert!(e.mask[..real].iter().all(|&m| m == 1));
        assert!(e.mask[real..].iter().all(|&m| m == 0));
    }

    #[test]
    fn truncation_respects_max_len() {
        let t = toy_tokenizer();
        let long = "portugal ".repeat(100);
        let e = t.encode(&long, 8);
        assert_eq!(e.ids.len(), 8);
        assert_eq!(e.real_len(), 8);
    }

    #[test]
    fn unknown_word_does_not_panic() {
        let t = toy_tokenizer();
        // Characters never seen in training.
        let ids = t.word_to_ids("北京");
        assert_eq!(ids, vec![t.vocab().unk_id()]);
    }

    #[test]
    fn known_words_avoid_unk() {
        let t = toy_tokenizer();
        let ids = t.text_to_ids("madrid lisbon");
        assert!(!ids.contains(&t.vocab().unk_id()), "{ids:?}");
    }

    #[test]
    fn subwords_reconstruct_word() {
        let t = toy_tokenizer();
        let ids = t.word_to_ids("ronaldo");
        let rebuilt: String =
            ids.iter().map(|&i| t.vocab().token_of(i).trim_start_matches("##")).collect();
        assert_eq!(rebuilt, "ronaldo");
    }

    #[test]
    fn overlong_word_is_unk() {
        let t = toy_tokenizer();
        let w = "a".repeat(100);
        assert_eq!(t.word_to_ids(&w), vec![t.vocab().unk_id()]);
    }

    #[test]
    fn encode_ids_matches_encode() {
        let t = toy_tokenizer();
        let text = "real madrid portugal";
        let body = t.text_to_ids(text);
        assert_eq!(t.encode_ids(&body, 10), t.encode(text, 10));
    }

    #[test]
    fn determinism() {
        let t = toy_tokenizer();
        assert_eq!(t.encode("club portugal", 16), t.encode("club portugal", 16));
    }

    #[test]
    fn pair_layout_and_segments() {
        let t = toy_tokenizer();
        let a = t.text_to_ids("real madrid");
        let b = t.text_to_ids("portugal");
        let p = t.encode_pair_ids(&a, &b, 16);
        assert_eq!(p.ids.len(), 16);
        assert_eq!(p.ids[0], t.vocab().cls_id());
        // Layout: [CLS] a [SEP] b [SEP] [PAD]...
        let real = p.real_len();
        assert_eq!(p.ids[real - 1], t.vocab().sep_id());
        assert_eq!(p.ids[1 + a.len()], t.vocab().sep_id());
        assert!(p.ids[real..].iter().all(|&i| i == t.vocab().pad_id()));
        // Segments: 0 through the first [SEP] inclusive, 1 through the
        // second, 0 on padding.
        assert!(p.segments[..=1 + a.len()].iter().all(|&s| s == 0));
        assert!(p.segments[1 + a.len() + 1..real].iter().all(|&s| s == 1));
        assert!(p.segments[real..].iter().all(|&s| s == 0));
        assert_eq!(real, 3 + a.len() + b.len());
    }

    #[test]
    fn pair_truncation_is_balanced_and_deterministic() {
        let t = toy_tokenizer();
        let long: Vec<u32> = t.text_to_ids(&"portugal ".repeat(50));
        let short = t.text_to_ids("madrid");
        // Both long: the budget splits evenly.
        let p = t.encode_pair_ids(&long, &long, 19);
        assert_eq!(p.real_len(), 19);
        let first_sep = p.ids.iter().position(|&i| i == t.vocab().sep_id()).unwrap();
        assert_eq!(first_sep - 1, 8, "side a gets half the 16-token budget");
        // One short side: the long side absorbs the slack.
        let p = t.encode_pair_ids(&long, &short, 19);
        assert_eq!(p.real_len(), 19);
        let first_sep = p.ids.iter().position(|&i| i == t.vocab().sep_id()).unwrap();
        assert_eq!(first_sep - 1, 16 - short.len(), "side a absorbs what b left");
        // Symmetric case: b absorbs.
        let p = t.encode_pair_ids(&short, &long, 19);
        assert_eq!(p.real_len(), 19);
        // Deterministic.
        assert_eq!(t.encode_pair_ids(&long, &short, 19), t.encode_pair_ids(&long, &short, 19));
        // Tiny budget never panics and keeps the frame.
        let p = t.encode_pair_ids(&long, &long, 3);
        assert_eq!(p.ids[0], t.vocab().cls_id());
        assert_eq!(p.real_len(), 3);
    }
}
