//! Subword vocabulary training.
//!
//! The trainer builds a WordPiece-style vocabulary with BPE merges: start
//! from characters, repeatedly merge the most frequent adjacent pair, and
//! record merged units. Word-internal (continuation) units carry the `##`
//! prefix. Encoding is then WordPiece greedy longest-match (see
//! [`crate::encode`]).

use crate::pretokenize::pretokenize;
use crate::vocab::Vocab;
use std::collections::HashMap;

/// Trains a subword [`Vocab`] from a text corpus.
pub struct WordPieceTrainer {
    target_size: usize,
    min_pair_freq: usize,
}

impl WordPieceTrainer {
    /// A trainer producing at most `target_size` subwords (excluding the
    /// five special tokens).
    pub fn new(target_size: usize) -> Self {
        WordPieceTrainer { target_size, min_pair_freq: 2 }
    }

    /// Sets the minimum pair frequency for a merge (default 2).
    pub fn with_min_pair_freq(mut self, f: usize) -> Self {
        self.min_pair_freq = f.max(1);
        self
    }

    /// Trains on an iterator of text lines.
    pub fn train<'a>(&self, corpus: impl IntoIterator<Item = &'a str>) -> Vocab {
        // 1. Word frequency table.
        let mut word_freq: HashMap<String, usize> = HashMap::new();
        for line in corpus {
            for w in pretokenize(line) {
                *word_freq.entry(w).or_insert(0) += 1;
            }
        }
        self.train_from_word_freq(&word_freq)
    }

    /// Trains from a precomputed word frequency table.
    pub fn train_from_word_freq(&self, word_freq: &HashMap<String, usize>) -> Vocab {
        // 2. Represent each word as a unit sequence; the first unit is bare,
        //    later units carry the ## continuation prefix.
        let mut words: Vec<(Vec<String>, usize)> = word_freq
            .iter()
            .map(|(w, &f)| {
                let units: Vec<String> = w
                    .chars()
                    .enumerate()
                    .map(|(i, c)| if i == 0 { c.to_string() } else { format!("##{c}") })
                    .collect();
                (units, f)
            })
            .collect();
        // deterministic order
        words.sort_by(|a, b| a.0.cmp(&b.0));

        // Base alphabet.
        let mut vocab_set: Vec<String> = Vec::new();
        let mut seen: HashMap<String, ()> = HashMap::new();
        for (units, _) in &words {
            for u in units {
                if seen.insert(u.clone(), ()).is_none() {
                    vocab_set.push(u.clone());
                }
            }
        }
        vocab_set.sort();

        // 3. Iterative merges of the most frequent adjacent pair.
        while vocab_set.len() < self.target_size {
            let mut pair_freq: HashMap<(String, String), usize> = HashMap::new();
            for (units, f) in &words {
                for win in units.windows(2) {
                    *pair_freq.entry((win[0].clone(), win[1].clone())).or_insert(0) += f;
                }
            }
            // Most frequent pair, ties broken lexicographically for
            // determinism.
            let best = pair_freq
                .into_iter()
                .filter(|&(_, f)| f >= self.min_pair_freq)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((left, right), _)) = best else { break };
            let merged = merge_units(&left, &right);
            if seen.insert(merged.clone(), ()).is_none() {
                vocab_set.push(merged.clone());
            }
            // Apply the merge everywhere.
            for (units, _) in &mut words {
                let mut i = 0;
                while i + 1 < units.len() {
                    if units[i] == left && units[i + 1] == right {
                        units[i] = merged.clone();
                        units.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        Vocab::new(vocab_set)
    }
}

/// Concatenates two units, keeping the left unit's continuation status.
fn merge_units(left: &str, right: &str) -> String {
    let right_body = right.strip_prefix("##").unwrap_or(right);
    format!("{left}{right_body}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_units_keeps_continuation_prefix() {
        assert_eq!(merge_units("a", "##b"), "ab");
        assert_eq!(merge_units("##a", "##b"), "##ab");
    }

    #[test]
    fn alphabet_is_always_included() {
        // Only position-marked units that actually occur: "abc" contributes
        // a ##b ##c, "cab" contributes c ##a ##b.
        let v = WordPieceTrainer::new(10).train(["abc cab"]);
        for t in ["a", "c", "##a", "##b", "##c"] {
            assert!(v.id_of(t).is_some(), "missing {t}");
        }
        assert!(v.id_of("b").is_none(), "'b' never occurs word-initially");
    }

    #[test]
    fn frequent_words_become_single_units() {
        let corpus = vec!["portugal"; 50];
        let v = WordPieceTrainer::new(64).train(corpus);
        assert!(v.id_of("portugal").is_some(), "frequent word should merge fully");
    }

    #[test]
    fn respects_target_size() {
        let corpus = ["the quick brown fox jumps over the lazy dog again and again"];
        let v = WordPieceTrainer::new(30).train(corpus);
        // 5 specials + at most 30 subwords... alphabet may exceed target, but
        // merges must stop at the cap.
        assert!(v.len() <= 5 + 64, "vocab grew unboundedly: {}", v.len());
    }

    #[test]
    fn deterministic_across_runs() {
        let corpus = ["alpha beta gamma delta alpha beta", "beta gamma alpha"];
        let v1 = WordPieceTrainer::new(40).train(corpus.iter().copied());
        let v2 = WordPieceTrainer::new(40).train(corpus.iter().copied());
        let t1: Vec<&str> = v1.iter().map(|(_, t)| t).collect();
        let t2: Vec<&str> = v2.iter().map(|(_, t)| t).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn empty_corpus_yields_specials_only() {
        let v = WordPieceTrainer::new(100).train(std::iter::empty());
        assert_eq!(v.len(), 5);
    }
}
