//! Property-based tests for the tokenization substrate.

use proptest::prelude::*;
use sdea_text::{pretokenize, Tokenizer, WordPieceTrainer};

fn trained_tokenizer() -> Tokenizer {
    let corpus = [
        "cristiano ronaldo dos santos plays for real madrid",
        "born 1985-02-05 in funchal madeira portugal",
        "the quick brown fox jumps over the lazy dog 42 times",
    ];
    Tokenizer::new(WordPieceTrainer::new(400).train(corpus))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pre-tokenization is total and produces non-empty lowercase tokens.
    #[test]
    fn pretokenize_total(text in ".{0,120}") {
        for tok in pretokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert_eq!(&tok.to_lowercase(), &tok);
            prop_assert!(!tok.chars().any(char::is_whitespace));
        }
    }

    /// Pre-tokenization is idempotent under re-joining with spaces.
    #[test]
    fn pretokenize_idempotent(text in "[a-z0-9 ,.]{0,80}") {
        let once = pretokenize(&text);
        let rejoined = once.join(" ");
        let twice = pretokenize(&rejoined);
        prop_assert_eq!(once, twice);
    }

    /// Encoding is deterministic, fits max_len exactly, and the mask marks
    /// a prefix.
    #[test]
    fn encode_shape_invariants(text in ".{0,150}", max_len in 1usize..96) {
        let tok = trained_tokenizer();
        let a = tok.encode(&text, max_len);
        let b = tok.encode(&text, max_len);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.ids.len(), max_len);
        let real = a.real_len();
        prop_assert!(a.mask[..real].iter().all(|&m| m == 1));
        prop_assert!(a.mask[real..].iter().all(|&m| m == 0));
        prop_assert_eq!(a.ids[0], tok.vocab().cls_id());
    }

    /// Every produced id is within the vocabulary.
    #[test]
    fn ids_in_vocab(text in ".{0,100}") {
        let tok = trained_tokenizer();
        for id in tok.text_to_ids(&text) {
            prop_assert!((id as usize) < tok.vocab().len());
        }
    }

    /// Subword pieces of an in-alphabet word concatenate back to the word.
    #[test]
    fn subwords_reconstruct(word in "[a-z]{1,12}") {
        let tok = trained_tokenizer();
        let ids = tok.word_to_ids(&word);
        if ids != vec![tok.vocab().unk_id()] {
            let rebuilt: String = ids
                .iter()
                .map(|&i| tok.vocab().token_of(i).trim_start_matches("##"))
                .collect();
            prop_assert_eq!(rebuilt, word);
        }
    }

    /// Trainer determinism: same corpus -> same vocabulary.
    #[test]
    fn trainer_deterministic(corpus in prop::collection::vec("[a-z ]{1,30}", 1..6)) {
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let v1 = WordPieceTrainer::new(120).train(refs.iter().copied());
        let v2 = WordPieceTrainer::new(120).train(refs.iter().copied());
        let t1: Vec<&str> = v1.iter().map(|(_, t)| t).collect();
        let t2: Vec<&str> = v2.iter().map(|(_, t)| t).collect();
        prop_assert_eq!(t1, t2);
    }
}
