//! Batching must be invisible in the results: a query's candidate scores
//! are bitwise identical whether it was embedded alone, coalesced into
//! one batch with every other query, or raced through the batcher from
//! concurrent threads — at any thread budget.

use sdea_core::attr_module::AttrModule;
use sdea_core::{CrossEncoder, SdeaConfig};
use sdea_index::{ExactRetriever, Hit, IndexConfig, IndexKind, IvfRetriever, Retriever};
use sdea_serve::{BatchConfig, Batcher, ModelState, Reranker};
use sdea_tensor::par::with_thread_budget;
use sdea_tensor::Rng;
use std::sync::Arc;
use std::time::Duration;

/// Which serving stack a fixture builds; every variant must be equally
/// batch-invisible.
enum Stack {
    /// Exact scan, no second stage.
    Exact,
    /// Quantized IVF — the backend whose rescore pool is sized from `k`.
    QuantizedIvf,
    /// Exact scan plus a (warm-started, untrained) cross-encoder rerank
    /// pass over every shortlist.
    Reranked,
}

fn fixture_with(stack: Stack) -> (Arc<ModelState>, Vec<String>) {
    let corpus: Vec<String> = (0..24)
        .map(|i| format!("city ville{i} population {} founded {}", 1000 * i, 1800 + i))
        .collect();
    let mut rng = Rng::seed_from_u64(42);
    let mut cfg = SdeaConfig::test_tiny();
    cfg.mlm_epochs = 0;
    let encoder = AttrModule::build(&cfg, &corpus, &mut rng);
    // Index the embeddings of the first 16 texts as the "KG2 table".
    let table = encoder.embed_batch(&corpus[..16]);
    let retriever: Box<dyn Retriever> = match stack {
        Stack::QuantizedIvf => Box::new(IvfRetriever::build(
            &table,
            &IndexConfig { kind: IndexKind::Ivf, nlist: 4, nprobe: 2, quantize: true },
        )),
        Stack::Exact | Stack::Reranked => Box::new(ExactRetriever::new(&table)),
    };
    let reranker = match stack {
        Stack::Reranked => Some(Reranker {
            cross: CrossEncoder::from_encoder(&encoder, &mut rng),
            cand_tokens: encoder.token_cache(&corpus[..16]),
            alpha: 0.5,
        }),
        _ => None,
    };
    let queries: Vec<String> = corpus[16..].to_vec();
    (Arc::new(ModelState { encoder, retriever, reranker }), queries)
}

fn fixture() -> (Arc<ModelState>, Vec<String>) {
    fixture_with(Stack::Exact)
}

/// Ground truth: embed all queries in one direct call, search once, and
/// apply the same rerank pass the worker would.
fn direct(state: &ModelState, queries: &[String], k: usize) -> Vec<Vec<Hit>> {
    let hits = state.retriever.search(&state.encoder.embed_batch(queries), k);
    match &state.reranker {
        None => hits,
        Some(rr) => {
            let qtok: Vec<Vec<u32>> =
                queries.iter().map(|q| state.encoder.tokenize_query(q)).collect();
            rr.rerank_hits(&qtok, &hits)
        }
    }
}

/// Pushes every query through a batcher configured to coalesce them all.
fn via_one_batch(state: &Arc<ModelState>, queries: &[String], k: usize) -> Vec<Vec<Hit>> {
    let cfg = BatchConfig {
        window: Duration::from_millis(200),
        max_batch: queries.len().max(1),
        request_timeout: Duration::from_secs(30),
    };
    let batcher = Arc::new(Batcher::new(state.clone(), &cfg));
    let handles: Vec<_> = queries
        .iter()
        .map(|q| {
            let batcher = batcher.clone();
            let tokens = state.encoder.tokenize_query(q);
            std::thread::spawn(move || batcher.submit(tokens, k).expect("no timeout in test"))
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("client thread ok")).collect()
}

/// One query per batch: window zero, batch cap one.
fn via_sequential(state: &Arc<ModelState>, queries: &[String], k: usize) -> Vec<Vec<Hit>> {
    let cfg = BatchConfig {
        window: Duration::from_micros(0),
        max_batch: 1,
        request_timeout: Duration::from_secs(30),
    };
    let batcher = Batcher::new(state.clone(), &cfg);
    queries
        .iter()
        .map(|q| batcher.submit(state.encoder.tokenize_query(q), k).expect("no timeout in test"))
        .collect()
}

fn assert_bitwise_equal(a: &[Vec<Hit>], b: &[Vec<Hit>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: query count");
    for (qi, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{what}: hit count for query {qi}");
        for ((ia, sa), (ib, sb)) in ra.iter().zip(rb) {
            assert_eq!(ia, ib, "{what}: index for query {qi}");
            assert_eq!(sa.to_bits(), sb.to_bits(), "{what}: score bits for query {qi}");
        }
    }
}

fn check_at_budget(budget: usize) {
    with_thread_budget(budget, || {
        let (state, queries) = fixture();
        let k = 4;
        let expected = direct(&state, &queries, k);
        let sequential = via_sequential(&state, &queries, k);
        assert_bitwise_equal(&sequential, &expected, "sequential vs direct");
        let batched = via_one_batch(&state, &queries, k);
        assert_bitwise_equal(&batched, &expected, "coalesced vs direct");
    });
}

#[test]
fn batching_is_bitwise_invisible_single_thread() {
    check_at_budget(1);
}

#[test]
fn batching_is_bitwise_invisible_eight_threads() {
    check_at_budget(8);
}

/// The cross-encoder rerank pass must be exactly as batch-invisible as
/// stage 1: pair scores are per-row (fixed padding, per-row pooling), so a
/// reranked shortlist is bitwise the same alone, coalesced, or raced —
/// at any thread budget.
#[test]
fn reranked_serving_is_bitwise_invisible_at_both_budgets() {
    for budget in [1usize, 8] {
        with_thread_budget(budget, || {
            let (state, queries) = fixture_with(Stack::Reranked);
            let k = 4;
            let expected = direct(&state, &queries, k);
            let sequential = via_sequential(&state, &queries, k);
            assert_bitwise_equal(&sequential, &expected, "rerank sequential vs direct");
            let batched = via_one_batch(&state, &queries, k);
            assert_bitwise_equal(&batched, &expected, "rerank coalesced vs direct");
        });
    }
}

/// Regression (quantized IVF): the backend sizes its exact-rescore pool
/// from `k`, so answering a mixed-k batch with one max-k search and
/// truncating per request is NOT bitwise faithful — a k=1 request could
/// see different hits batched vs alone. The worker's per-distinct-k
/// sub-searches must make every mixed-k batched answer bitwise equal to
/// the same request running sequentially, at any thread budget.
#[test]
fn mixed_k_quantized_batches_match_sequential_bitwise() {
    for budget in [1usize, 8] {
        with_thread_budget(budget, || {
            let (state, queries) = fixture_with(Stack::QuantizedIvf);
            let ks: Vec<usize> =
                [1usize, 3, 5, 2].iter().cycle().take(queries.len()).copied().collect();
            // Sequential reference: each request in its own batch.
            let cfg = BatchConfig {
                window: Duration::from_micros(0),
                max_batch: 1,
                request_timeout: Duration::from_secs(30),
            };
            let batcher = Batcher::new(state.clone(), &cfg);
            let expected: Vec<Vec<Hit>> = queries
                .iter()
                .zip(&ks)
                .map(|(q, &k)| {
                    batcher.submit(state.encoder.tokenize_query(q), k).expect("no timeout")
                })
                .collect();
            drop(batcher);
            // Concurrent: all requests coalesced into one mixed-k batch.
            let cfg = BatchConfig {
                window: Duration::from_millis(200),
                max_batch: queries.len(),
                request_timeout: Duration::from_secs(30),
            };
            let batcher = Arc::new(Batcher::new(state.clone(), &cfg));
            let handles: Vec<_> = queries
                .iter()
                .zip(&ks)
                .map(|(q, &k)| {
                    let batcher = batcher.clone();
                    let tokens = state.encoder.tokenize_query(q);
                    std::thread::spawn(move || batcher.submit(tokens, k).expect("no timeout"))
                })
                .collect();
            let got: Vec<Vec<Hit>> =
                handles.into_iter().map(|h| h.join().expect("client thread ok")).collect();
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(g.len(), ks[i].min(state.retriever.len()), "hit count for query {i}");
                assert_bitwise_equal(
                    std::slice::from_ref(g),
                    std::slice::from_ref(e),
                    &format!("mixed-k batch, query {i} (k={}, threads={budget})", ks[i]),
                );
            }
        });
    }
}

/// Mixed-k batches truncate per request without changing scores.
#[test]
fn per_request_k_is_honored_within_one_batch() {
    let (state, queries) = fixture();
    let cfg = BatchConfig {
        window: Duration::from_millis(200),
        max_batch: 8,
        request_timeout: Duration::from_secs(30),
    };
    let batcher = Arc::new(Batcher::new(state.clone(), &cfg));
    let ks = [1usize, 3, 5];
    let handles: Vec<_> = queries
        .iter()
        .zip(ks.iter().cycle())
        .map(|(q, &k)| {
            let batcher = batcher.clone();
            let tokens = state.encoder.tokenize_query(q);
            std::thread::spawn(move || (k, batcher.submit(tokens, k).expect("no timeout")))
        })
        .collect();
    let expected = direct(&state, &queries, 5);
    for (i, h) in handles.into_iter().enumerate() {
        let (k, hits) = h.join().expect("client thread ok");
        assert_eq!(hits.len(), k);
        assert_bitwise_equal(
            std::slice::from_ref(&hits),
            std::slice::from_ref(&expected[i][..k].to_vec()),
            "truncated batch",
        );
    }
}
