//! End-to-end exercise of the HTTP surface: health, alignment queries,
//! input validation, metrics, and graceful shutdown — against a real
//! listener on an ephemeral loopback port.

use sdea_core::attr_module::AttrModule;
use sdea_core::SdeaConfig;
use sdea_obs::json::Json;
use sdea_serve::{http, BatchConfig, ModelState, ServeState, Server};
use sdea_tensor::Rng;
use std::sync::Arc;
use std::time::Duration;

fn serve_state() -> (ServeState, Vec<String>) {
    let corpus: Vec<String> =
        (0..12).map(|i| format!("museum halle{i} opened {} items {}", 1900 + i, 500 * i)).collect();
    let mut rng = Rng::seed_from_u64(9);
    let mut cfg = SdeaConfig::test_tiny();
    cfg.mlm_epochs = 0;
    let encoder = AttrModule::build(&cfg, &corpus, &mut rng);
    let table = encoder.embed_batch(&corpus);
    let retriever: Box<dyn sdea_index::Retriever> =
        Box::new(sdea_index::ExactRetriever::new(&table));
    let names: Vec<String> = (0..corpus.len()).map(|i| format!("kg2_entity_{i}")).collect();
    let state =
        ServeState { model: Arc::new(ModelState { encoder, retriever, reranker: None }), names };
    (state, corpus)
}

fn start() -> (String, sdea_serve::ShutdownHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let (state, _) = serve_state();
    let cfg = BatchConfig {
        window: Duration::from_micros(200),
        max_batch: 8,
        request_timeout: Duration::from_secs(10),
    };
    let server = Server::bind("127.0.0.1:0", state, &cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("bound").to_string();
    let shutdown = server.shutdown_handle().expect("bound");
    let thread = std::thread::spawn(move || server.run());
    (addr, shutdown, thread)
}

#[test]
fn full_request_cycle() {
    let (addr, shutdown, thread) = start();

    let (status, body) = http::request(&addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    assert!(body.contains("ok"), "{body}");

    // A self-query: the served top-1 for an indexed text is that text's
    // own row (cosine 1 with itself).
    let query = Json::obj(vec![
        ("text", Json::str("museum halle3 opened 1903 items 1500")),
        ("k", Json::Num(3.0)),
    ])
    .encode();
    let (status, body) = http::request(&addr, "POST", "/v1/align", &query).expect("align");
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).expect("response is JSON");
    let candidates = parsed.get("candidates").and_then(|v| v.as_array()).expect("candidates");
    assert_eq!(candidates.len(), 3);
    assert_eq!(candidates[0].get("index").and_then(|v| v.as_f64()), Some(3.0));
    assert_eq!(candidates[0].get("name").and_then(|v| v.as_str()), Some("kg2_entity_3"));
    let top_score = candidates[0].get("score").and_then(|v| v.as_f64()).expect("score");
    assert!((top_score - 1.0).abs() < 1e-5, "self-similarity ~1, got {top_score}");

    // Validation: bad JSON, missing field, bad k, wrong method, 404.
    let (status, _) = http::request(&addr, "POST", "/v1/align", "{nope").expect("send");
    assert_eq!(status, 400);
    let (status, _) = http::request(&addr, "POST", "/v1/align", "{\"k\": 2}").expect("send");
    assert_eq!(status, 400);
    let (status, _) =
        http::request(&addr, "POST", "/v1/align", "{\"text\": \"x\", \"k\": 0}").expect("send");
    assert_eq!(status, 400);
    let (status, _) = http::request(&addr, "GET", "/v1/align", "").expect("send");
    assert_eq!(status, 405);
    let (status, _) = http::request(&addr, "GET", "/nothing", "").expect("send");
    assert_eq!(status, 404);

    // Metrics reflect the traffic above.
    let (status, body) = http::request(&addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let metrics = Json::parse(&body).expect("metrics JSON");
    let requests = metrics
        .get("counters")
        .and_then(|c| c.get("serve.requests"))
        .and_then(|v| v.as_f64())
        .expect("serve.requests counter");
    assert!(requests >= 7.0, "saw {requests} requests");

    // Graceful shutdown over HTTP; run() returns and the port closes.
    let (status, _) = http::request(&addr, "POST", "/admin/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    thread.join().expect("server thread").expect("clean run");
    drop(shutdown);
}

#[test]
fn oversized_bodies_are_rejected() {
    let (addr, shutdown, thread) = start();
    let huge = "x".repeat(http::MAX_BODY_BYTES + 1);
    let (status, _) = http::request(&addr, "POST", "/v1/align", &huge).expect("send");
    assert_eq!(status, 413);
    shutdown.shutdown();
    thread.join().expect("server thread").expect("clean run");
}
