//! The HTTP server: accept loop, routing, and graceful shutdown.
//!
//! Thread-per-connection over [`std::net::TcpListener`]: connections are
//! short-lived (one request each), the expensive work is already
//! serialized through the [`Batcher`] worker, and the alternative — a
//! hand-rolled poll loop — buys nothing at loopback-service scale.
//!
//! Shutdown (`POST /admin/shutdown` or [`ShutdownHandle::shutdown`]) is
//! graceful: the accept loop stops taking connections, every in-flight
//! request runs to completion, the batch worker drains its queue, and
//! only then does [`Server::run`] return.

use crate::batcher::{BatchConfig, Batcher, SubmitError};
use crate::http::{self, Request};
use crate::state::ServeState;
use sdea_obs::json::Json;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Hard cap on candidates per query, whatever the client asks for.
pub const MAX_K: usize = 100;

fn err_body(msg: &str) -> String {
    Json::obj(vec![("error", Json::str(msg))]).encode()
}

/// Signals a running server to stop; cloneable across threads.
#[derive(Clone)]
pub struct ShutdownHandle {
    running: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Initiates graceful shutdown and returns immediately.
    pub fn shutdown(&self) {
        if self.running.swap(false, Ordering::SeqCst) {
            // Unblock the blocking accept() with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    batcher: Arc<Batcher>,
    running: Arc<AtomicBool>,
    /// (active connection count, its condvar) — the drain barrier.
    inflight: Arc<(Mutex<usize>, Condvar)>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// batch worker. The listener is live after this returns — requests
    /// queue in the OS backlog until [`run`](Server::run) is called.
    pub fn bind(addr: &str, state: ServeState, cfg: &BatchConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let batcher = Arc::new(Batcher::new(state.model.clone(), cfg));
        Ok(Server {
            listener,
            state: Arc::new(state),
            batcher,
            running: Arc::new(AtomicBool::new(true)),
            inflight: Arc::new((Mutex::new(0), Condvar::new())),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`run`](Server::run) from another thread.
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle { running: self.running.clone(), addr: self.local_addr()? })
    }

    /// Serves until shutdown, then drains in-flight requests and returns.
    pub fn run(self) -> io::Result<()> {
        let shutdown = self.shutdown_handle()?;
        for stream in self.listener.incoming() {
            if !self.running.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            sdea_obs::add("serve.connections", 1);
            {
                let (count, _) = &*self.inflight;
                *count.lock().unwrap_or_else(|e| e.into_inner()) += 1;
            }
            let state = self.state.clone();
            let batcher = self.batcher.clone();
            let inflight = self.inflight.clone();
            let shutdown = shutdown.clone();
            // lint: serve-spawn — one short-lived thread per connection.
            std::thread::spawn(move || {
                handle_connection(stream, &state, &batcher, &shutdown);
                let (count, signal) = &*inflight;
                let mut n = count.lock().unwrap_or_else(|e| e.into_inner());
                *n -= 1;
                signal.notify_all();
            });
        }
        // Drain: wait for every accepted connection to finish, then let
        // the batcher drop — which drains its queue and joins the worker.
        let (count, signal) = &*self.inflight;
        let mut n = count.lock().unwrap_or_else(|e| e.into_inner());
        while *n > 0 {
            n = signal.wait(n).unwrap_or_else(|e| e.into_inner());
        }
        Ok(())
    }
}

fn handle_connection(
    mut stream: TcpStream,
    state: &ServeState,
    batcher: &Batcher,
    shutdown: &ShutdownHandle,
) {
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            sdea_obs::add("serve.bad_requests", 1);
            http::write_response(&mut stream, e.status(), &err_body(&e.message()));
            return;
        }
    };
    sdea_obs::add("serve.requests", 1);
    let (status, body) = route(&request, state, batcher, shutdown);
    http::write_response(&mut stream, status, &body);
}

fn route(
    request: &Request,
    state: &ServeState,
    batcher: &Batcher,
    shutdown: &ShutdownHandle,
) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, Json::obj(vec![("status", Json::str("ok"))]).encode()),
        ("GET", "/metrics") => (200, metrics_json().encode()),
        ("POST", "/v1/align") => align(request, state, batcher),
        ("POST", "/admin/shutdown") => {
            shutdown.shutdown();
            (200, Json::obj(vec![("status", Json::str("shutting down"))]).encode())
        }
        (_, "/healthz" | "/metrics" | "/v1/align" | "/admin/shutdown") => {
            (405, err_body("method not allowed"))
        }
        _ => (404, err_body("no such endpoint")),
    }
}

/// Parses the optional `"k"` field of an align request. Absent means the
/// default of 5; present means it must be a finite JSON number that is a
/// whole value `>= 1` (values above [`MAX_K`] clamp). Every invalid shape
/// — wrong type, non-finite, fractional, zero, negative — is a distinct
/// 400 diagnostic naming the field, never a silent default.
fn parse_k(parsed: &Json) -> Result<usize, String> {
    let Some(v) = parsed.get("k") else {
        return Ok(5);
    };
    let Some(f) = v.as_f64() else {
        return Err("\"k\" must be a number".into());
    };
    if !f.is_finite() {
        return Err("\"k\" must be finite".into());
    }
    if f.fract() != 0.0 {
        return Err("\"k\" must be an integer".into());
    }
    if f < 1.0 {
        return Err("\"k\" must be >= 1".into());
    }
    Ok((f as usize).min(MAX_K))
}

fn align(request: &Request, state: &ServeState, batcher: &Batcher) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return (400, err_body("body is not UTF-8"));
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return (400, err_body(&format!("bad JSON: {e}"))),
    };
    let Some(query) = parsed.get("text").and_then(|v| v.as_str()) else {
        return (400, err_body("missing required string field \"text\""));
    };
    let k = match parse_k(&parsed) {
        Ok(k) => k,
        Err(msg) => return (400, err_body(&msg)),
    };
    // Tokenize here on the connection thread; the batch worker only runs
    // the model.
    let tokens = state.model.encoder.tokenize_query(query);
    match batcher.submit(tokens, k) {
        Ok(hits) => {
            sdea_obs::add("serve.align_ok", 1);
            let candidates: Vec<Json> = hits
                .into_iter()
                .map(|(row, score)| {
                    Json::obj(vec![
                        ("index", Json::Num(row as f64)),
                        ("name", Json::str(state.names[row].as_str())),
                        ("score", Json::Num(score as f64)),
                    ])
                })
                .collect();
            (200, Json::obj(vec![("candidates", Json::Arr(candidates))]).encode())
        }
        Err(SubmitError::Busy) => {
            sdea_obs::add("serve.rejected", 1);
            (503, err_body("queue full, retry later"))
        }
        Err(SubmitError::Timeout) => {
            sdea_obs::add("serve.rejected", 1);
            (503, err_body("request timed out"))
        }
    }
}

/// The observability registry as JSON: counter totals, span timings and
/// histogram summaries (which include the `serve.queue_wait` and
/// `serve.batch_size` distributions).
fn metrics_json() -> Json {
    let snap = sdea_obs::snapshot();
    let counters: Vec<(String, Json)> =
        snap.counters.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))).collect();
    let spans: Vec<(String, Json)> = snap
        .spans
        .iter()
        .map(|(k, s)| {
            let fields = Json::obj(vec![
                ("count", Json::Num(s.count as f64)),
                ("total_secs", Json::Num(s.total_secs)),
                ("min_secs", Json::Num(s.min_secs)),
                ("max_secs", Json::Num(s.max_secs)),
            ]);
            (k.clone(), fields)
        })
        .collect();
    let histograms: Vec<(String, Json)> = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            let fields = Json::obj(vec![
                ("count", Json::Num(h.count as f64)),
                ("mean", Json::Num(h.mean())),
                ("min", Json::Num(h.min)),
                ("max", Json::Num(h.max)),
            ]);
            (k.clone(), fields)
        })
        .collect();
    Json::Obj(vec![
        ("counters".to_string(), Json::Obj(counters)),
        ("spans".to_string(), Json::Obj(spans)),
        ("histograms".to_string(), Json::Obj(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k_of(body: &str) -> Result<usize, String> {
        parse_k(&Json::parse(body).expect("test body parses"))
    }

    #[test]
    fn absent_k_defaults_to_five() {
        assert_eq!(k_of(r#"{"text":"q"}"#), Ok(5));
    }

    #[test]
    fn valid_k_is_accepted_and_clamped() {
        assert_eq!(k_of(r#"{"k":1}"#), Ok(1));
        assert_eq!(k_of(r#"{"k":7}"#), Ok(7));
        assert_eq!(k_of(r#"{"k":100}"#), Ok(MAX_K));
        // Above the cap: clamp, not reject (documented API behavior).
        assert_eq!(k_of(r#"{"k":5000}"#), Ok(MAX_K));
        assert_eq!(k_of(r#"{"k":1e3}"#), Ok(MAX_K), "whole-valued exponent form is an integer");
    }

    #[test]
    fn zero_k_is_a_400_naming_the_field() {
        let err = k_of(r#"{"k":0}"#).unwrap_err();
        assert!(err.contains("\"k\""), "diagnostic must name the field: {err}");
    }

    #[test]
    fn negative_k_is_a_400_naming_the_field() {
        for body in [r#"{"k":-1}"#, r#"{"k":-100}"#, r#"{"k":-0.5}"#] {
            let err = k_of(body).unwrap_err();
            assert!(err.contains("\"k\""), "{body}: diagnostic must name the field: {err}");
        }
    }

    #[test]
    fn fractional_k_is_a_400_naming_the_field() {
        for body in [r#"{"k":1.5}"#, r#"{"k":2.0000001}"#, r#"{"k":0.9999}"#] {
            let err = k_of(body).unwrap_err();
            assert!(err.contains("\"k\""), "{body}: diagnostic must name the field: {err}");
        }
    }

    #[test]
    fn non_finite_k_is_a_400_naming_the_field() {
        // JSON has no Infinity literal, but an overflowing exponent parses
        // to one; it must be rejected as non-finite, not silently clamped
        // (inf.fract() is NaN, so the old integer guard happened to reject
        // it — this pins the behavior with an explicit diagnostic).
        for body in [r#"{"k":1e999}"#, r#"{"k":-1e999}"#] {
            let err = k_of(body).unwrap_err();
            assert!(err.contains("\"k\""), "{body}: diagnostic must name the field: {err}");
        }
    }

    #[test]
    fn non_number_k_is_a_400_naming_the_field() {
        for body in
            [r#"{"k":"5"}"#, r#"{"k":true}"#, r#"{"k":null}"#, r#"{"k":[5]}"#, r#"{"k":{}}"#]
        {
            let err = k_of(body).unwrap_err();
            assert!(err.contains("\"k\""), "{body}: diagnostic must name the field: {err}");
        }
    }
}
