//! # sdea-serve
//!
//! Alignment-as-a-service: an online inference server over a trained SDEA
//! model. Training (`sdea align`) exports two artifacts — the embedding
//! tables (`--out`) and the query encoder (`--encoder-out`); this crate
//! loads both, indexes the KG2 attribute table behind the
//! [`sdea_index::Retriever`] trait, and answers alignment queries over
//! HTTP/1.1:
//!
//! * `POST /v1/align` — `{"text": "...", "k": 5}` in, top-k candidate
//!   entities with cosine scores out.
//! * `GET /healthz` — liveness.
//! * `GET /metrics` — the [`sdea_obs`] registry (counters, span timings,
//!   latency histograms) as JSON.
//! * `POST /admin/shutdown` — graceful shutdown: drains in-flight
//!   requests and the batch queue, then exits.
//!
//! The interesting part is the [`batcher`]: concurrent requests coalesce
//! into one embed forward without changing any result bitwise. Like the
//! rest of the workspace this crate has zero external dependencies — the
//! HTTP layer is ~150 lines over [`std::net`].

#![forbid(unsafe_code)]

pub mod batcher;
pub mod http;
pub mod server;
pub mod state;

pub use batcher::{BatchConfig, Batcher, SubmitError};
pub use server::{Server, ShutdownHandle};
pub use state::{ModelState, Reranker, ServeState};
