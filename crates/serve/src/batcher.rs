//! Request batching: the core of the serving data path.
//!
//! Concurrent `/v1/align` requests each cost one transformer forward; run
//! naively that is one tiny batch per request and the matmul kernels never
//! amortize. The [`Batcher`] funnels all requests through one bounded
//! queue into a single worker thread that coalesces whatever arrives
//! within a short window (`SDEA_BATCH_WINDOW_US`, capped at
//! `SDEA_MAX_BATCH` rows) into one `embed_token_rows` call plus one
//! retriever search per distinct requested `k` (searching once at the
//! batch max-k and truncating is not bitwise faithful for the quantized
//! backend, whose rescore pool is sized from `k`). When the model state
//! carries a reranker, each sub-batch's shortlist then takes the
//! cross-encoder rerank pass under the `serve.rerank` span.
//!
//! Batching is invisible in the results: the encoder pads every row to
//! the same fixed `max_seq` and pools per-row, so a query's embedding —
//! and therefore its candidate scores — is bitwise identical whether it
//! was embedded alone, in a batch of 32, or interleaved with any other
//! traffic (pinned by `tests/determinism.rs`).
//!
//! Requests tokenize on their own connection thread (the cheap part) and
//! queue token rows, so the worker spends its time only on the forwards.

use crate::state::ModelState;
use sdea_index::Hit;
use sdea_tensor::Tensor;
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bound on queued (not yet batched) requests; beyond it submissions are
/// rejected immediately with [`SubmitError::Busy`] instead of building an
/// unbounded backlog.
pub const QUEUE_DEPTH: usize = 1024;

/// Tunables of the batching layer, resolved once at startup.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// How long the worker waits for more requests after the first one.
    pub window: Duration,
    /// Hard cap on rows per embed batch.
    pub max_batch: usize,
    /// Per-request end-to-end deadline; past it the client gets a 503.
    pub request_timeout: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            window: Duration::from_micros(1000),
            max_batch: 32,
            request_timeout: Duration::from_millis(5000),
        }
    }
}

impl BatchConfig {
    /// Reads `SDEA_BATCH_WINDOW_US`, `SDEA_MAX_BATCH` and
    /// `SDEA_REQUEST_TIMEOUT_MS`. Malformed values abort startup
    /// ([`sdea_obs::env`]); unset keeps the defaults above.
    pub fn from_env() -> Self {
        let d = BatchConfig::default();
        let window = sdea_obs::env::parse_or_exit::<u64>(
            "SDEA_BATCH_WINDOW_US",
            "a batch window in microseconds",
        )
        .map_or(d.window, Duration::from_micros);
        let max_batch =
            sdea_obs::env::parse_or_exit::<usize>("SDEA_MAX_BATCH", "a positive batch size cap")
                .unwrap_or(d.max_batch);
        if max_batch == 0 {
            sdea_obs::env::die("SDEA_MAX_BATCH is 0: expected a positive batch size cap");
        }
        let request_timeout = sdea_obs::env::parse_or_exit::<u64>(
            "SDEA_REQUEST_TIMEOUT_MS",
            "a request timeout in milliseconds",
        )
        .map_or(d.request_timeout, Duration::from_millis);
        BatchConfig { window, max_batch, request_timeout }
    }
}

/// Why a submission failed; the server maps both to HTTP 503.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at [`QUEUE_DEPTH`] (or the worker is gone).
    Busy,
    /// The request sat past its deadline without a result.
    Timeout,
}

struct Job {
    tokens: Vec<u32>,
    k: usize,
    enqueued: Instant,
    reply: SyncSender<Vec<Hit>>,
}

/// Owns the batching queue and its worker thread. Dropping the batcher
/// closes the queue; the worker finishes every job already accepted
/// (graceful drain) and exits, and `drop` joins it.
pub struct Batcher {
    tx: SyncSender<Job>,
    worker: Option<std::thread::JoinHandle<()>>,
    request_timeout: Duration,
}

impl Batcher {
    /// Starts the worker over `state`.
    pub fn new(state: Arc<ModelState>, cfg: &BatchConfig) -> Batcher {
        let (tx, rx) = mpsc::sync_channel::<Job>(QUEUE_DEPTH);
        let window = cfg.window;
        let max_batch = cfg.max_batch;
        // lint: serve-spawn — the one long-lived embed/search worker.
        let worker = std::thread::spawn(move || {
            batch_loop(&state, &rx, window, max_batch);
        });
        Batcher { tx, worker: Some(worker), request_timeout: cfg.request_timeout }
    }

    /// Queues one tokenized query and blocks for its top-`k` hits, at most
    /// the configured request timeout.
    pub fn submit(&self, tokens: Vec<u32>, k: usize) -> Result<Vec<Hit>, SubmitError> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job { tokens, k, enqueued: Instant::now(), reply: reply_tx };
        match self.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                return Err(SubmitError::Busy);
            }
        }
        reply_rx.recv_timeout(self.request_timeout).map_err(|_| SubmitError::Timeout)
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        // Closing the channel is the drain signal; recv in the loop then
        // reports Disconnected once the queue is empty.
        let (dead_tx, _) = mpsc::sync_channel(1);
        self.tx = dead_tx;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn batch_loop(state: &ModelState, rx: &mpsc::Receiver<Job>, window: Duration, max_batch: usize) {
    while let Ok(first) = rx.recv() {
        let deadline = Instant::now() + window;
        let mut jobs = vec![first];
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        sdea_obs::add("serve.batches", 1);
        sdea_obs::add("serve.batched_queries", jobs.len() as u64);
        sdea_obs::record("serve.batch_size", jobs.len() as f64);
        for job in &jobs {
            sdea_obs::record("serve.queue_wait", job.enqueued.elapsed().as_secs_f64());
        }
        let rows: Vec<Vec<u32>> = jobs.iter_mut().map(|j| std::mem::take(&mut j.tokens)).collect();
        let emb = {
            let _span = sdea_obs::span("serve.embed");
            state.encoder.embed_token_rows(&rows)
        };
        // Search each distinct k as its own sub-batch. Searching once at
        // the batch max-k and truncating per job is NOT equivalent for
        // every backend: the quantized IVF path sizes its exact-rescore
        // pool from k (`RESCORE_MULT * k`), so a truncated max-k answer
        // can differ from what the same request would get alone. Per-k
        // sub-searches make a batched answer bitwise equal to a
        // sequential one (pinned by `tests/determinism.rs`).
        let d = emb.shape()[1];
        let mut ks: Vec<usize> = jobs.iter().map(|j| j.k).collect();
        ks.sort_unstable();
        ks.dedup();
        let mut results: Vec<Vec<Hit>> = (0..jobs.len()).map(|_| Vec::new()).collect();
        for &k in &ks {
            let idx: Vec<usize> = (0..jobs.len()).filter(|&i| jobs[i].k == k).collect();
            let mut sub = Vec::with_capacity(idx.len() * d);
            for &i in &idx {
                sub.extend_from_slice(&emb.data()[i * d..(i + 1) * d]);
            }
            let sub = Tensor::from_vec(sub, &[idx.len(), d]);
            let mut hits = {
                let _span = sdea_obs::span("serve.retrieve");
                state.retriever.search(&sub, k)
            };
            if let Some(rr) = &state.reranker {
                let _span = sdea_obs::span("serve.rerank");
                let qtok: Vec<Vec<u32>> = idx.iter().map(|&i| rows[i].clone()).collect();
                hits = rr.rerank_hits(&qtok, &hits);
            }
            for (i, row) in idx.into_iter().zip(hits) {
                results[i] = row;
            }
        }
        for (job, row) in jobs.into_iter().zip(results) {
            // A requester that already timed out dropped its receiver;
            // that's fine, the result is simply discarded.
            let _ = job.reply.send(row);
        }
    }
}
