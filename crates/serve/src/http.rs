//! Minimal HTTP/1.1 framing over a [`TcpStream`].
//!
//! Just enough of RFC 9112 for a loopback inference service: one request
//! per connection (`Connection: close` on every response), request line +
//! headers + optional `Content-Length` body in, status + JSON body out.
//! No chunked encoding, no keep-alive, no TLS — the server sits behind
//! whatever the deployment puts in front of it.
//!
//! Limits are hard errors, not truncations: headers over
//! [`MAX_HEAD_BYTES`] or bodies over [`MAX_BODY_BYTES`] reject the
//! request before any allocation proportional to the claimed size.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a request body (attribute texts are short).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path (query string included, never split —
/// the API is POST-based), and raw body bytes.
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/align`.
    pub path: String,
    /// Raw body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed; [`status`](ParseError::status) maps
/// each to the response code the caller should send.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line or headers.
    Bad(String),
    /// Head or body exceeded a size limit.
    TooLarge(String),
    /// Socket error or premature close mid-request.
    Io(io::Error),
}

impl ParseError {
    /// The HTTP status code this parse failure should produce.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Bad(_) => 400,
            ParseError::TooLarge(_) => 413,
            ParseError::Io(_) => 400,
        }
    }

    /// Human-readable reason, used in the JSON error body.
    pub fn message(&self) -> String {
        match self {
            ParseError::Bad(m) | ParseError::TooLarge(m) => m.clone(),
            ParseError::Io(e) => format!("i/o error: {e}"),
        }
    }
}

/// Reads one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: head is tiny and bounded, and this
    // avoids buffering past the body boundary.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge(format!("headers exceed {MAX_HEAD_BYTES} bytes")));
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err(ParseError::Bad("connection closed mid-headers".into())),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Bad(format!("malformed request line {request_line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported protocol {version:?}")));
    }
    let mut content_length = 0usize;
    for line in lines.filter(|l| !l.is_empty()) {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad Content-Length {value:?}")))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        // Read and discard the declared body (bounded) before rejecting,
        // so the 413 isn't lost to a TCP reset while the peer is still
        // writing.
        let mut remaining = content_length.min(8 * MAX_BODY_BYTES);
        let mut chunk = [0u8; 4096];
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            match stream.read(&mut chunk[..want]) {
                Ok(0) | Err(_) => break,
                Ok(n) => remaining -= n,
            }
        }
        return Err(ParseError::TooLarge(format!("body exceeds {MAX_BODY_BYTES} bytes")));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(ParseError::Io)?;
    Ok(Request { method: method.to_string(), path: path.to_string(), body })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one JSON response and flushes. Errors are swallowed: the peer
/// hanging up mid-response is its problem, not the server's.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Sends one request to `addr` and returns `(status, body)` — the
/// workspace's own client, so smoke tests and the load generator need no
/// external tooling.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    // Body-write errors are tolerated: a server that already rejected the
    // request may respond without reading the body, and the response is
    // what decides the outcome.
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, response_body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response missing header end"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok((status, response_body.to_string()))
}
