//! The immutable model state a server answers queries from.
//!
//! Everything is loaded once at startup — query encoder, target embedding
//! table, retrieval index, entity names — and shared read-only across
//! connection threads. Every load failure is a typed `io::Error` surfaced
//! before the listener binds: a serving process either starts with a
//! complete, validated model or not at all.

use sdea_core::attr_module::AttrModule;
use sdea_core::rerank::CrossEncoder;
use sdea_index::{Hit, IndexConfig, IndexKind, IvfRetriever, Retriever};
use sdea_tensor::Tensor;
use std::io;
use std::path::Path;

/// Optional second-stage verification: a trained [`CrossEncoder`] scores
/// each `(query, shortlist candidate)` pair and the shortlist is re-sorted
/// by the fused score `alpha * cosine + (1 - alpha) * sigmoid(head)`. The
/// candidate token rows are row-aligned with the retriever's index.
pub struct Reranker {
    /// The trained pair scorer.
    pub cross: CrossEncoder,
    /// Token bodies (no `[CLS]`/padding) of every indexed entity, in
    /// retriever row order.
    pub cand_tokens: Vec<Vec<u32>>,
    /// Fusion weight on the stage-1 cosine score.
    pub alpha: f32,
}

impl Reranker {
    /// Reranks one sub-batch of shortlists; `queries[i]` is the token body
    /// behind `hits[i]`.
    pub fn rerank_hits(&self, queries: &[Vec<u32>], hits: &[Vec<Hit>]) -> Vec<Vec<Hit>> {
        self.cross.rerank_hits(queries, &self.cand_tokens, hits, self.alpha)
    }
}

/// What the batch worker needs: the encoder and the index over KG2's
/// attribute-embedding table.
pub struct ModelState {
    /// The persisted query encoder (tokenizer + transformer + pooling).
    pub encoder: AttrModule,
    /// Index over the KG2 attribute table; hit indices are KG2 rows.
    pub retriever: Box<dyn Retriever>,
    /// Optional cross-encoder rerank pass over each shortlist. `None`
    /// executes exactly the stage-1 path, bit for bit.
    pub reranker: Option<Reranker>,
}

/// [`ModelState`] plus presentation data for responses.
pub struct ServeState {
    /// Shared with the batch worker.
    pub model: std::sync::Arc<ModelState>,
    /// KG2 entity names, row-aligned with the indexed table.
    pub names: Vec<String>,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl ServeState {
    /// Loads everything the server needs:
    ///
    /// * `dataset_dir` — OpenEA-layout directory; only KG2 entity names
    ///   are used, to label candidates.
    /// * `model_path` — tables from `sdea align --out`; serving ranks in
    ///   the attribute space (`h_a2`), the space queries embed into.
    /// * `encoder_path` — query encoder from `sdea align --encoder-out`.
    /// * `index_path` — optional persisted `SDIX` index; loaded when it
    ///   matches, (re)built and saved when absent or stale. `None` scans
    ///   exactly without touching disk.
    pub fn load(
        dataset_dir: &Path,
        model_path: &Path,
        encoder_path: &Path,
        index_path: Option<&Path>,
    ) -> io::Result<ServeState> {
        let kg2 = sdea_kg::io::load_kg(
            &dataset_dir.join("rel_triples_2"),
            &dataset_dir.join("attr_triples_2"),
        )?;
        let model = sdea_core::model_io::load_model(model_path)?;
        let encoder = sdea_core::encoder_io::load_encoder(encoder_path)?;
        let table = model.h_a2;
        if kg2.num_entities() != table.shape()[0] {
            return Err(invalid(format!(
                "dataset/model mismatch: KG2 has {} entities but the model table has {} rows",
                kg2.num_entities(),
                table.shape()[0]
            )));
        }
        let d = encoder.config().embed_dim;
        if table.shape()[1] != d {
            return Err(invalid(format!(
                "encoder/model mismatch: encoder embeds into {d} dims but the table is {} wide",
                table.shape()[1]
            )));
        }
        let retriever = build_index(&table, index_path)?;
        let names: Vec<String> = (0..kg2.num_entities())
            .map(|i| kg2.entity_name(sdea_kg::EntityId(i as u32)).to_string())
            .collect();
        Ok(ServeState {
            model: std::sync::Arc::new(ModelState { encoder, retriever, reranker: None }),
            names,
        })
    }
}

/// IVF with `nprobe = 0` probes every cluster, so the persisted index
/// returns bit-identical scores to the exact scan — serving gets the
/// warm-start of a saved index without an accuracy knob to misconfigure.
fn build_index(table: &Tensor, index_path: Option<&Path>) -> io::Result<Box<dyn Retriever>> {
    match index_path {
        None => Ok(Box::new(sdea_index::ExactRetriever::new(table))),
        Some(path) => {
            let cfg = IndexConfig { kind: IndexKind::Ivf, ..IndexConfig::default() };
            Ok(Box::new(IvfRetriever::load_or_build(path, table, &cfg)?))
        }
    }
}
