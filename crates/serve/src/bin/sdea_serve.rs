//! `sdea_serve` — run or talk to the alignment service.
//!
//! Subcommands:
//!
//! * `serve <dir> <model.sdt> <encoder.sdqe> [--addr HOST:PORT]
//!   [--index path.sdix] [--port-file F]` — load the model and serve
//!   until `POST /admin/shutdown`. `--addr` defaults to
//!   `127.0.0.1:7878`; port `0` picks an ephemeral port, and
//!   `--port-file` writes the actual port (for scripted callers).
//! * `query <addr> <text> [--k K]` — one alignment query, printed as
//!   `rank. name score` lines (the JSON body goes to stdout with `--raw`).
//! * `shutdown <addr>` — graceful remote shutdown.
//!
//! Batching knobs come from the environment (`SDEA_BATCH_WINDOW_US`,
//! `SDEA_MAX_BATCH`, `SDEA_REQUEST_TIMEOUT_MS`), and the thread budget
//! from `SDEA_THREADS`; malformed values abort startup with a diagnostic
//! rather than being silently ignored.

#![forbid(unsafe_code)]

use sdea_serve::http;
use sdea_serve::{BatchConfig, ServeState, Server};
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        _ => {
            eprintln!(
                "usage: sdea_serve <serve|query|shutdown> ...\n\
                 \n  sdea_serve serve <dir> <model.sdt> <encoder.sdqe> [--addr HOST:PORT]\
                 \n             [--index path.sdix] [--port-file F]\
                 \n  sdea_serve query <addr> <text> [--k K] [--raw]\
                 \n  sdea_serve shutdown <addr>"
            );
            2
        }
    };
    exit(code);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn cmd_serve(args: &[String]) -> i32 {
    let (Some(dir), Some(model_path), Some(encoder_path)) =
        (args.first(), args.get(1), args.get(2))
    else {
        eprintln!(
            "usage: sdea_serve serve <dir> <model.sdt> <encoder.sdqe> [--addr HOST:PORT] \
             [--index path.sdix] [--port-file F]"
        );
        return 2;
    };
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let index_path = flag_value(args, "--index");
    let cfg = BatchConfig::from_env();
    // Resolve the thread budget eagerly: `SDEA_THREADS` is otherwise parsed
    // lazily on the first parallel region, which for a server would mean
    // dying on the first request instead of at startup.
    let threads = sdea_tensor::max_threads();
    let state = match ServeState::load(
        Path::new(dir),
        Path::new(model_path),
        Path::new(encoder_path),
        index_path.as_deref().map(Path::new),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load model state: {e}");
            return 1;
        }
    };
    let server = match Server::bind(&addr, state, &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return 1;
        }
    };
    let local = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot resolve bound address: {e}");
            return 1;
        }
    };
    if let Some(port_file) = flag_value(args, "--port-file") {
        if let Err(e) =
            sdea_obs::fsio::atomic_write(&port_file, local.port().to_string().as_bytes())
        {
            eprintln!("cannot write port file {port_file}: {e}");
            return 1;
        }
    }
    eprintln!("sdea_serve listening on {local} ({threads} threads)");
    match server.run() {
        Ok(()) => {
            eprintln!("sdea_serve: drained and stopped");
            0
        }
        Err(e) => {
            eprintln!("server error: {e}");
            1
        }
    }
}

fn cmd_query(args: &[String]) -> i32 {
    let (Some(addr), Some(text)) = (args.first(), args.get(1)) else {
        eprintln!("usage: sdea_serve query <addr> <text> [--k K] [--raw]");
        return 2;
    };
    let k = flag_value(args, "--k").and_then(|v| v.parse::<usize>().ok()).unwrap_or(5);
    let body = sdea_obs::json::Json::obj(vec![
        ("text", sdea_obs::json::Json::str(text.as_str())),
        ("k", sdea_obs::json::Json::Num(k as f64)),
    ])
    .encode();
    let (status, response) = match http::request(addr, "POST", "/v1/align", &body) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("request failed: {e}");
            return 1;
        }
    };
    if status != 200 {
        eprintln!("server returned {status}: {response}");
        return 1;
    }
    if args.iter().any(|a| a == "--raw") {
        println!("{response}");
        return 0;
    }
    let parsed = match sdea_obs::json::Json::parse(&response) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bad response JSON: {e}");
            return 1;
        }
    };
    let candidates = parsed.get("candidates").and_then(|v| v.as_array()).unwrap_or(&[]);
    for (rank, c) in candidates.iter().enumerate() {
        let name = c.get("name").and_then(|v| v.as_str()).unwrap_or("?");
        let score = c.get("score").and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
        println!("{}. {name} {score:+.4}", rank + 1);
    }
    0
}

fn cmd_shutdown(args: &[String]) -> i32 {
    let Some(addr) = args.first() else {
        eprintln!("usage: sdea_serve shutdown <addr>");
        return 2;
    };
    match http::request(addr, "POST", "/admin/shutdown", "") {
        Ok((200, _)) => 0,
        Ok((status, body)) => {
            eprintln!("server returned {status}: {body}");
            1
        }
        Err(e) => {
            eprintln!("request failed: {e}");
            1
        }
    }
}
