//! `bench_serve` — load generator for the alignment service.
//!
//! Self-contained: trains a tiny SDEA model on a synthetic dataset
//! in-process, serves it on an ephemeral loopback port, then fires
//! closed-loop client threads at it and reports client-observed latency
//! (p50/p99) and throughput (QPS) per concurrency level to
//! `results/BENCH_serve.json`.
//!
//! Closed-loop means each client thread sends its next request only after
//! the previous response lands, so concurrency = in-flight requests and
//! the batcher's coalescing window is what turns concurrency into larger
//! embed batches — visible as `serve.batch_size` in `/metrics`.
//!
//! Flags: `--smoke` (fewer requests, CI-friendly), `--requests N`
//! (per-thread request count), `--levels a,b,...` (concurrency levels).

#![forbid(unsafe_code)]

use sdea_obs::json::Json;
use sdea_serve::{http, BatchConfig, ServeState, Server};
use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let per_thread: usize = flag_value(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 20 } else { 200 });
    let levels: Vec<usize> = flag_value(&args, "--levels")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 4]);
    if levels.is_empty() {
        eprintln!("bench_serve: --levels must name at least one concurrency level");
        exit(2);
    }

    eprintln!("bench_serve: training tiny fixture model...");
    let (state, queries) = build_fixture();
    let server = match Server::bind("127.0.0.1:0", state, &BatchConfig::from_env()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_serve: cannot bind: {e}");
            exit(1);
        }
    };
    let (addr, shutdown) = match (server.local_addr(), server.shutdown_handle()) {
        (Ok(a), Ok(h)) => (a.to_string(), h),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_serve: cannot resolve bound address: {e}");
            exit(1);
        }
    };
    // lint: serve-spawn — the server under test runs beside the clients.
    let server_thread = std::thread::spawn(move || server.run());

    let mut level_reports: Vec<Json> = Vec::new();
    for &concurrency in &levels {
        let r = run_level(&addr, &queries, concurrency, per_thread);
        eprintln!(
            "bench_serve: c={concurrency} p50 {:.2}ms p99 {:.2}ms {:.0} qps ({} ok / {} err)",
            r.p50_ms, r.p99_ms, r.qps, r.ok, r.errors
        );
        level_reports.push(Json::obj(vec![
            ("concurrency", Json::Num(concurrency as f64)),
            ("requests", Json::Num(r.ok as f64)),
            ("errors", Json::Num(r.errors as f64)),
            ("p50_ms", Json::Num(r.p50_ms)),
            ("p99_ms", Json::Num(r.p99_ms)),
            ("qps", Json::Num(r.qps)),
        ]));
    }

    let _ = http::request(&addr, "POST", "/admin/shutdown", "");
    shutdown.shutdown();
    let _ = server_thread.join();

    let report = Json::obj(vec![
        ("bench", Json::str("serve")),
        ("smoke", Json::Bool(smoke)),
        ("requests_per_thread", Json::Num(per_thread as f64)),
        ("levels", Json::Arr(level_reports)),
    ]);
    let out = Path::new("results").join("BENCH_serve.json");
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("bench_serve: cannot create results/: {e}");
        exit(1);
    }
    if let Err(e) = sdea_obs::fsio::atomic_write(&out, report.encode().as_bytes()) {
        eprintln!("bench_serve: cannot write {}: {e}", out.display());
        exit(1);
    }
    println!("wrote {}", out.display());
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Trains the unit-test-sized model on a synthetic DBP15K-style dataset
/// and returns serving state plus query texts sampled from KG1.
fn build_fixture() -> (ServeState, Vec<String>) {
    let profile = sdea_synth::DatasetProfile::dbp15k_zh_en(60, 2022);
    let ds = sdea_synth::generate(&profile);
    let mut rng = sdea_tensor::Rng::seed_from_u64(2022);
    let split = ds.seeds.split_paper(&mut rng);
    let mut corpus: Vec<String> = ds.kg1().attr_triples().iter().map(|t| t.value.clone()).collect();
    corpus.extend(ds.kg2().attr_triples().iter().map(|t| t.value.clone()));
    let cfg = sdea_core::SdeaConfig { seed: 2022, ..sdea_core::SdeaConfig::test_tiny() };
    let model = match (sdea_core::SdeaPipeline {
        kg1: ds.kg1(),
        kg2: ds.kg2(),
        split: &split,
        corpus: &corpus,
        cfg,
        variant: sdea_core::rel_module::RelVariant::Full,
    })
    .try_run()
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_serve: fixture training failed: {e}");
            exit(1);
        }
    };
    let Some(encoder) = model.attr_module else {
        eprintln!("bench_serve: fixture run produced no encoder");
        exit(1);
    };
    let retriever: Box<dyn sdea_index::Retriever> =
        Box::new(sdea_index::ExactRetriever::new(&model.h_a2));
    let names: Vec<String> = (0..ds.kg2().num_entities())
        .map(|i| ds.kg2().entity_name(sdea_kg::EntityId(i as u32)).to_string())
        .collect();
    let queries: Vec<String> = corpus.iter().take(64).cloned().collect();
    let state = ServeState {
        model: Arc::new(sdea_serve::ModelState { encoder, retriever, reranker: None }),
        names,
    };
    (state, queries)
}

struct LevelResult {
    ok: usize,
    errors: usize,
    p50_ms: f64,
    p99_ms: f64,
    qps: f64,
}

fn run_level(addr: &str, queries: &[String], concurrency: usize, per_thread: usize) -> LevelResult {
    let addr = addr.to_string();
    let started = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..concurrency {
        let addr = addr.clone();
        let queries: Vec<String> = queries.to_vec();
        // lint: serve-spawn — one closed-loop client per concurrency slot.
        handles.push(std::thread::spawn(move || {
            let mut latencies_ms = Vec::with_capacity(per_thread);
            let mut errors = 0usize;
            for i in 0..per_thread {
                let q = &queries[(worker + i * concurrency) % queries.len()];
                let body = Json::obj(vec![("text", Json::str(q.as_str())), ("k", Json::Num(3.0))])
                    .encode();
                let t0 = Instant::now();
                match http::request(&addr, "POST", "/v1/align", &body) {
                    Ok((200, _)) => latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3),
                    _ => errors += 1,
                }
            }
            (latencies_ms, errors)
        }));
    }
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut errors = 0usize;
    for h in handles {
        let (l, e) = h.join().unwrap_or((Vec::new(), per_thread));
        latencies_ms.extend(l);
        errors += e;
    }
    let wall = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies_ms.is_empty() {
            return f64::NAN;
        }
        let idx = ((latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        latencies_ms[idx]
    };
    LevelResult {
        ok: latencies_ms.len(),
        errors,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        qps: latencies_ms.len() as f64 / wall.max(1e-9),
    }
}
