//! Property-based tests for the KG substrate.

use proptest::prelude::*;
use sdea_kg::{DegreeBuckets, KgBuilder, KgStatistics};

/// Strategy: a random triple list over a small name universe.
fn triples_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..12, 0u8..4, 0u8..12), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adjacency degree equals a naive recount over the triple list.
    #[test]
    fn degrees_match_naive_count(triples in triples_strategy()) {
        let mut b = KgBuilder::new();
        for &(h, r, t) in &triples {
            b.rel_triple(&format!("e{h}"), &format!("r{r}"), &format!("e{t}"));
        }
        let kg = b.build();
        for e in kg.entities() {
            let name = kg.entity_name(e).to_string();
            let naive = triples
                .iter()
                .filter(|&&(h, _, t)| format!("e{h}") == name || format!("e{t}") == name)
                // self-loops touch the entity twice in the adjacency
                .map(|&(h, _, t)| {
                    if format!("e{h}") == name && format!("e{t}") == name { 2 } else { 1 }
                })
                .sum::<usize>();
            prop_assert_eq!(kg.degree(e), naive, "entity {}", name);
        }
    }

    /// Statistics are consistent with the builder's inputs.
    #[test]
    fn statistics_consistent(triples in triples_strategy()) {
        let mut b = KgBuilder::new();
        for &(h, r, t) in &triples {
            b.rel_triple(&format!("e{h}"), &format!("r{r}"), &format!("e{t}"));
        }
        let kg = b.build();
        let s = KgStatistics::of(&kg);
        prop_assert_eq!(s.rel_triples, triples.len());
        let distinct_rels: std::collections::HashSet<u8> =
            triples.iter().map(|&(_, r, _)| r).collect();
        prop_assert_eq!(s.relations, distinct_rels.len());
        prop_assert!(s.entities <= 12);
    }

    /// Degree buckets are bounded and monotone for any graph.
    #[test]
    fn degree_buckets_bounded(triples in triples_strategy()) {
        let mut b = KgBuilder::new();
        b.entity("always_present");
        for &(h, r, t) in &triples {
            b.rel_triple(&format!("e{h}"), &format!("r{r}"), &format!("e{t}"));
        }
        let kg = b.build();
        let d = DegreeBuckets::of(&kg);
        prop_assert!(d.upto3 <= d.upto5 && d.upto5 <= d.upto10);
        prop_assert!(d.upto10 <= 1.0);
        prop_assert!(d.mean_degree >= 0.0);
    }

    /// TSV round trip preserves any KG (values with tabs/newlines included).
    #[test]
    fn io_round_trip(
        triples in prop::collection::vec((0u8..6, 0u8..3, 0u8..6), 1..10),
        values in prop::collection::vec("[a-z0-9\t\n ]{0,20}", 1..6),
    ) {
        let mut b = KgBuilder::new();
        for &(h, r, t) in &triples {
            b.rel_triple(&format!("e{h}"), &format!("r{r}"), &format!("e{t}"));
        }
        for (i, v) in values.iter().enumerate() {
            b.attr_triple(&format!("e{}", i % 6), "note", v);
        }
        let kg = b.build();
        let dir = std::env::temp_dir().join(format!("sdea_kg_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rel = dir.join("r.tsv");
        let attr = dir.join("a.tsv");
        sdea_kg::io::save_kg(&kg, &rel, &attr).unwrap();
        let back = sdea_kg::io::load_kg(&rel, &attr).unwrap();
        prop_assert_eq!(back.rel_triples().len(), kg.rel_triples().len());
        let vals_a: Vec<&str> = kg.attr_triples().iter().map(|t| t.value.as_str()).collect();
        let vals_b: Vec<&str> = back.attr_triples().iter().map(|t| t.value.as_str()).collect();
        prop_assert_eq!(vals_a, vals_b);
    }
}
