//! OpenEA-style TSV interchange:
//!
//! * `rel_triples_N`:  `head \t relation \t tail`
//! * `attr_triples_N`: `entity \t attribute \t value`
//! * `ent_links`:      `entity_kg1 \t entity_kg2`
//!
//! This lets generated benchmarks be inspected with standard tooling and
//! real OpenEA/SRPRS dumps be loaded when available.

use crate::alignment::AlignmentSeeds;
use crate::graph::{KgBuilder, KnowledgeGraph};
use sdea_tensor::serialize::atomic_write;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Writes a KG's relational and attributed triples to two TSV files.
///
/// Each file is rendered in memory and landed with the atomic
/// tmp+fsync+rename discipline from [`sdea_tensor::serialize`], so a crash
/// mid-export can never leave a truncated dump behind (fault-injection
/// sites `kg.save_rel` / `kg.save_attr`).
pub fn save_kg(kg: &KnowledgeGraph, rel_path: &Path, attr_path: &Path) -> io::Result<()> {
    let mut rel = Vec::new();
    for t in kg.rel_triples() {
        writeln!(
            rel,
            "{}\t{}\t{}",
            escape(kg.entity_name(t.head)),
            escape(kg.relation_name(t.rel)),
            escape(kg.entity_name(t.tail))
        )?;
    }
    atomic_write(rel_path, &rel, "kg.save_rel")?;
    let mut attr = Vec::new();
    for t in kg.attr_triples() {
        writeln!(
            attr,
            "{}\t{}\t{}",
            escape(kg.entity_name(t.entity)),
            escape(kg.attribute_name(t.attr)),
            escape(&t.value)
        )?;
    }
    atomic_write(attr_path, &attr, "kg.save_attr")
}

/// Loads a KG from the two TSV files produced by [`save_kg`].
pub fn load_kg(rel_path: &Path, attr_path: &Path) -> io::Result<KnowledgeGraph> {
    let mut b = KgBuilder::new();
    for line in read_lines(rel_path)? {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (h, r, t) = (
            parts.next().ok_or_else(|| bad(&line))?,
            parts.next().ok_or_else(|| bad(&line))?,
            parts.next().ok_or_else(|| bad(&line))?,
        );
        b.rel_triple(&unescape(h), &unescape(r), &unescape(t));
    }
    for line in read_lines(attr_path)? {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (e, a, v) = (
            parts.next().ok_or_else(|| bad(&line))?,
            parts.next().ok_or_else(|| bad(&line))?,
            parts.next().ok_or_else(|| bad(&line))?,
        );
        b.attr_triple(&unescape(e), &unescape(a), &unescape(v));
    }
    Ok(b.build())
}

/// Writes seed links as `name1 \t name2` rows, atomically (fault-injection
/// site `kg.save_links`).
pub fn save_links(
    seeds: &AlignmentSeeds,
    kg1: &KnowledgeGraph,
    kg2: &KnowledgeGraph,
    path: &Path,
) -> io::Result<()> {
    let mut out = Vec::new();
    for &(e1, e2) in &seeds.pairs {
        writeln!(out, "{}\t{}", escape(kg1.entity_name(e1)), escape(kg2.entity_name(e2)))?;
    }
    atomic_write(path, &out, "kg.save_links")
}

/// Reads seed links written by [`save_links`]; entity names must resolve in
/// the given KGs.
pub fn load_links(
    kg1: &KnowledgeGraph,
    kg2: &KnowledgeGraph,
    path: &Path,
) -> io::Result<AlignmentSeeds> {
    let mut pairs = Vec::new();
    // Build name -> id maps once (find_entity is O(n)).
    let map1: std::collections::HashMap<&str, _> =
        kg1.entities().map(|e| (kg1.entity_name(e), e)).collect();
    let map2: std::collections::HashMap<&str, _> =
        kg2.entities().map(|e| (kg2.entity_name(e), e)).collect();
    for line in read_lines(path)? {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, '\t');
        let n1 = unescape(parts.next().ok_or_else(|| bad(&line))?);
        let n2 = unescape(parts.next().ok_or_else(|| bad(&line))?);
        let e1 = *map1.get(n1.as_str()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("unknown entity {n1}"))
        })?;
        let e2 = *map2.get(n2.as_str()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("unknown entity {n2}"))
        })?;
        pairs.push((e1, e2));
    }
    Ok(AlignmentSeeds::new(pairs))
}

fn read_lines(path: &Path) -> io::Result<io::Lines<io::BufReader<std::fs::File>>> {
    Ok(io::BufReader::new(std::fs::File::open(path)?).lines())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\t', "\\t").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn bad(line: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed TSV line: {line:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KgBuilder;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sdea_kg_io_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn toy() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        b.rel_triple("ronaldo", "playsFor", "madrid");
        b.attr_triple("ronaldo", "comment", "born in\tMadeira\nPortugal");
        b.build()
    }

    #[test]
    fn kg_round_trip() {
        let d = tmpdir();
        let kg = toy();
        let rel = d.join("rel.tsv");
        let attr = d.join("attr.tsv");
        save_kg(&kg, &rel, &attr).unwrap();
        let back = load_kg(&rel, &attr).unwrap();
        assert_eq!(back.num_entities(), kg.num_entities());
        assert_eq!(back.rel_triples().len(), 1);
        let v = back.attr_triples()[0].value.clone();
        assert_eq!(v, "born in\tMadeira\nPortugal", "escaping must round-trip");
    }

    #[test]
    fn links_round_trip() {
        let d = tmpdir();
        let kg1 = toy();
        let kg2 = toy();
        let seeds = AlignmentSeeds::new(vec![(
            kg1.find_entity("ronaldo").unwrap(),
            kg2.find_entity("madrid").unwrap(),
        )]);
        let path = d.join("links.tsv");
        save_links(&seeds, &kg1, &kg2, &path).unwrap();
        let back = load_links(&kg1, &kg2, &path).unwrap();
        assert_eq!(back, seeds);
    }

    #[test]
    fn unknown_entity_in_links_is_error() {
        let d = tmpdir();
        let path = d.join("bad_links.tsv");
        std::fs::write(&path, "nosuch\tentity\n").unwrap();
        let kg1 = toy();
        let kg2 = toy();
        assert!(load_links(&kg1, &kg2, &path).is_err());
    }

    #[test]
    fn malformed_line_is_error_not_panic() {
        let d = tmpdir();
        let rel = d.join("malformed_rel.tsv");
        let attr = d.join("empty_attr.tsv");
        std::fs::write(&rel, "only_two\tcolumns\n").unwrap();
        std::fs::write(&attr, "").unwrap();
        assert!(load_kg(&rel, &attr).is_err());
    }
}
