//! Seed alignments (inter-KG ground-truth links) and the paper's
//! train/validation/test split.

use crate::graph::EntityId;
use sdea_tensor::Rng;

/// Ground-truth equivalent entity pairs `(e in KG1, e' in KG2)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlignmentSeeds {
    /// The aligned pairs.
    pub pairs: Vec<(EntityId, EntityId)>,
}

/// A 3-way split of seeds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitSeeds {
    /// Training pairs.
    pub train: Vec<(EntityId, EntityId)>,
    /// Validation pairs (early stopping).
    pub valid: Vec<(EntityId, EntityId)>,
    /// Test pairs (all reported metrics).
    pub test: Vec<(EntityId, EntityId)>,
}

impl AlignmentSeeds {
    /// Wraps a pair list.
    pub fn new(pairs: Vec<(EntityId, EntityId)>) -> Self {
        AlignmentSeeds { pairs }
    }

    /// Number of seed links.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no links.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Splits into train : valid : test with the given integer ratio,
    /// shuffling first. The paper uses 2:1:7 (Section V-A3).
    pub fn split(&self, ratio: (usize, usize, usize), rng: &mut Rng) -> SplitSeeds {
        let (a, b, c) = ratio;
        let total = a + b + c;
        assert!(total > 0, "zero split ratio");
        let mut pairs = self.pairs.clone();
        rng.shuffle(&mut pairs);
        let n = pairs.len();
        let n_train = n * a / total;
        let n_valid = n * b / total;
        let valid_end = n_train + n_valid;
        SplitSeeds {
            train: pairs[..n_train].to_vec(),
            valid: pairs[n_train..valid_end].to_vec(),
            test: pairs[valid_end..].to_vec(),
        }
    }

    /// The paper's split: 2:1:7.
    pub fn split_paper(&self, rng: &mut Rng) -> SplitSeeds {
        self.split((2, 1, 7), rng)
    }
}

impl SplitSeeds {
    /// Total number of pairs across the three splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// True when all splits are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds(n: u32) -> AlignmentSeeds {
        AlignmentSeeds::new((0..n).map(|i| (EntityId(i), EntityId(i + 1000))).collect())
    }

    #[test]
    fn split_ratio_217() {
        let s = seeds(1000);
        let mut rng = Rng::seed_from_u64(1);
        let sp = s.split_paper(&mut rng);
        assert_eq!(sp.train.len(), 200);
        assert_eq!(sp.valid.len(), 100);
        assert_eq!(sp.test.len(), 700);
    }

    #[test]
    fn split_is_a_partition() {
        let s = seeds(137);
        let mut rng = Rng::seed_from_u64(2);
        let sp = s.split_paper(&mut rng);
        assert_eq!(sp.len(), 137);
        let mut all: Vec<_> = sp.train.iter().chain(&sp.valid).chain(&sp.test).cloned().collect();
        all.sort();
        let mut orig = s.pairs.clone();
        orig.sort();
        assert_eq!(all, orig);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let s = seeds(100);
        let sp1 = s.split_paper(&mut Rng::seed_from_u64(7));
        let sp2 = s.split_paper(&mut Rng::seed_from_u64(7));
        assert_eq!(sp1, sp2);
        let sp3 = s.split_paper(&mut Rng::seed_from_u64(8));
        assert_ne!(sp1.train, sp3.train);
    }
}
