//! Entity/relation/attribute stores and triple adjacency.

use std::collections::HashMap;

/// Index of an entity within its [`KnowledgeGraph`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

/// Index of a relation within its [`KnowledgeGraph`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u32);

/// Index of an attribute within its [`KnowledgeGraph`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttributeId(pub u32);

/// A relational triple `(head, relation, tail)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct RelTriple {
    /// Head entity.
    pub head: EntityId,
    /// Relation.
    pub rel: RelationId,
    /// Tail entity.
    pub tail: EntityId,
}

/// An attributed triple `(entity, attribute, value)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrTriple {
    /// Subject entity.
    pub entity: EntityId,
    /// Attribute.
    pub attr: AttributeId,
    /// Literal value.
    pub value: String,
}

/// A knowledge graph per Definition 1 of the paper.
#[derive(Clone, Debug, Default)]
pub struct KnowledgeGraph {
    entity_names: Vec<String>,
    relation_names: Vec<String>,
    attribute_names: Vec<String>,
    rel_triples: Vec<RelTriple>,
    attr_triples: Vec<AttrTriple>,
    // CSR adjacency over *undirected* neighbourhood (out + in), built lazily.
    adj: std::sync::OnceLock<Adjacency>,
    attr_index: std::sync::OnceLock<Vec<Vec<usize>>>,
}

#[derive(Clone, Debug, Default)]
struct Adjacency {
    // neighbor entity + connecting relation + direction (true = outgoing)
    offsets: Vec<usize>,
    entries: Vec<(EntityId, RelationId, bool)>,
}

impl KnowledgeGraph {
    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relation_names.len()
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.attribute_names.len()
    }

    /// All relational triples.
    pub fn rel_triples(&self) -> &[RelTriple] {
        &self.rel_triples
    }

    /// All attributed triples.
    pub fn attr_triples(&self) -> &[AttrTriple] {
        &self.attr_triples
    }

    /// The entity's canonical name/IRI.
    pub fn entity_name(&self, e: EntityId) -> &str {
        &self.entity_names[e.0 as usize]
    }

    /// The relation's name.
    pub fn relation_name(&self, r: RelationId) -> &str {
        &self.relation_names[r.0 as usize]
    }

    /// The attribute's name.
    pub fn attribute_name(&self, a: AttributeId) -> &str {
        &self.attribute_names[a.0 as usize]
    }

    /// Iterates all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entity_names.len() as u32).map(EntityId)
    }

    /// Undirected neighbourhood of `e`: `(neighbor, relation, outgoing)`.
    pub fn neighbors(&self, e: EntityId) -> &[(EntityId, RelationId, bool)] {
        let adj = self.adj.get_or_init(|| self.build_adjacency());
        let i = e.0 as usize;
        &adj.entries[adj.offsets[i]..adj.offsets[i + 1]]
    }

    /// Degree (number of incident relational triples) of `e`.
    pub fn degree(&self, e: EntityId) -> usize {
        self.neighbors(e).len()
    }

    /// Indices (into [`KnowledgeGraph::attr_triples`]) of `e`'s attributes.
    pub fn attr_triples_of(&self, e: EntityId) -> impl Iterator<Item = &AttrTriple> {
        let index = self.attr_index.get_or_init(|| {
            let mut idx = vec![Vec::new(); self.entity_names.len()];
            for (i, t) in self.attr_triples.iter().enumerate() {
                idx[t.entity.0 as usize].push(i);
            }
            idx
        });
        index[e.0 as usize].iter().map(move |&i| &self.attr_triples[i])
    }

    fn build_adjacency(&self) -> Adjacency {
        let n = self.entity_names.len();
        let mut counts = vec![0usize; n];
        for t in &self.rel_triples {
            counts[t.head.0 as usize] += 1;
            counts[t.tail.0 as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut entries = vec![(EntityId(0), RelationId(0), false); offsets[n]];
        let mut cursor = offsets.clone();
        for t in &self.rel_triples {
            let h = t.head.0 as usize;
            entries[cursor[h]] = (t.tail, t.rel, true);
            cursor[h] += 1;
            let ta = t.tail.0 as usize;
            entries[cursor[ta]] = (t.head, t.rel, false);
            cursor[ta] += 1;
        }
        Adjacency { offsets, entries }
    }

    /// Looks up an entity by exact name (linear scan cache-free variant is
    /// avoided: builds a map on first call would need interior mutability,
    /// so this is provided for tests/tools only).
    pub fn find_entity(&self, name: &str) -> Option<EntityId> {
        self.entity_names.iter().position(|n| n == name).map(|i| EntityId(i as u32))
    }
}

/// Incremental builder for a [`KnowledgeGraph`]; interns names to ids.
#[derive(Debug, Default)]
pub struct KgBuilder {
    entity_names: Vec<String>,
    entity_index: HashMap<String, EntityId>,
    relation_names: Vec<String>,
    relation_index: HashMap<String, RelationId>,
    attribute_names: Vec<String>,
    attribute_index: HashMap<String, AttributeId>,
    rel_triples: Vec<RelTriple>,
    attr_triples: Vec<AttrTriple>,
}

impl KgBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an entity by name.
    pub fn entity(&mut self, name: &str) -> EntityId {
        if let Some(&id) = self.entity_index.get(name) {
            return id;
        }
        let id = EntityId(self.entity_names.len() as u32);
        self.entity_names.push(name.to_string());
        self.entity_index.insert(name.to_string(), id);
        id
    }

    /// Interns a relation by name.
    pub fn relation(&mut self, name: &str) -> RelationId {
        if let Some(&id) = self.relation_index.get(name) {
            return id;
        }
        let id = RelationId(self.relation_names.len() as u32);
        self.relation_names.push(name.to_string());
        self.relation_index.insert(name.to_string(), id);
        id
    }

    /// Interns an attribute by name.
    pub fn attribute(&mut self, name: &str) -> AttributeId {
        if let Some(&id) = self.attribute_index.get(name) {
            return id;
        }
        let id = AttributeId(self.attribute_names.len() as u32);
        self.attribute_names.push(name.to_string());
        self.attribute_index.insert(name.to_string(), id);
        id
    }

    /// Adds a relational triple by names.
    pub fn rel_triple(&mut self, head: &str, rel: &str, tail: &str) {
        let t =
            RelTriple { head: self.entity(head), rel: self.relation(rel), tail: self.entity(tail) };
        self.rel_triples.push(t);
    }

    /// Adds a relational triple by pre-interned ids.
    pub fn rel_triple_ids(&mut self, head: EntityId, rel: RelationId, tail: EntityId) {
        debug_assert!((head.0 as usize) < self.entity_names.len());
        debug_assert!((tail.0 as usize) < self.entity_names.len());
        self.rel_triples.push(RelTriple { head, rel, tail });
    }

    /// Adds an attributed triple by names.
    pub fn attr_triple(&mut self, entity: &str, attr: &str, value: &str) {
        let t = AttrTriple {
            entity: self.entity(entity),
            attr: self.attribute(attr),
            value: value.to_string(),
        };
        self.attr_triples.push(t);
    }

    /// Adds an attributed triple by pre-interned ids.
    pub fn attr_triple_ids(&mut self, entity: EntityId, attr: AttributeId, value: String) {
        debug_assert!((entity.0 as usize) < self.entity_names.len());
        self.attr_triples.push(AttrTriple { entity, attr, value });
    }

    /// Number of entities interned so far.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Finalizes into an immutable [`KnowledgeGraph`].
    pub fn build(self) -> KnowledgeGraph {
        KnowledgeGraph {
            entity_names: self.entity_names,
            relation_names: self.relation_names,
            attribute_names: self.attribute_names,
            rel_triples: self.rel_triples,
            attr_triples: self.attr_triples,
            adj: std::sync::OnceLock::new(),
            attr_index: std::sync::OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        b.rel_triple("ronaldo", "playsFor", "madrid");
        b.rel_triple("ronaldo", "bornIn", "portugal");
        b.rel_triple("madrid", "locatedIn", "spain");
        b.attr_triple("ronaldo", "name", "Cristiano Ronaldo");
        b.attr_triple("ronaldo", "birthYear", "1985");
        b.attr_triple("madrid", "name", "Real Madrid");
        b.build()
    }

    #[test]
    fn builder_interns_names() {
        let kg = toy();
        assert_eq!(kg.num_entities(), 4);
        assert_eq!(kg.num_relations(), 3);
        assert_eq!(kg.num_attributes(), 2);
        assert_eq!(kg.rel_triples().len(), 3);
        assert_eq!(kg.attr_triples().len(), 3);
    }

    #[test]
    fn neighbors_are_undirected() {
        let kg = toy();
        let ronaldo = kg.find_entity("ronaldo").unwrap();
        let madrid = kg.find_entity("madrid").unwrap();
        assert_eq!(kg.degree(ronaldo), 2);
        // madrid has one incoming (playsFor) and one outgoing (locatedIn)
        assert_eq!(kg.degree(madrid), 2);
        let dirs: Vec<bool> = kg.neighbors(madrid).iter().map(|&(_, _, d)| d).collect();
        assert!(dirs.contains(&true) && dirs.contains(&false));
    }

    #[test]
    fn attr_triples_of_entity() {
        let kg = toy();
        let ronaldo = kg.find_entity("ronaldo").unwrap();
        let values: Vec<&str> = kg.attr_triples_of(ronaldo).map(|t| t.value.as_str()).collect();
        assert_eq!(values, vec!["Cristiano Ronaldo", "1985"]);
    }

    #[test]
    fn isolated_entity_has_no_neighbors() {
        let mut b = KgBuilder::new();
        let lonely = b.entity("lonely");
        b.rel_triple("a", "r", "b");
        let kg = b.build();
        assert_eq!(kg.degree(lonely), 0);
        assert!(kg.neighbors(lonely).is_empty());
    }

    #[test]
    fn duplicate_interning_returns_same_id() {
        let mut b = KgBuilder::new();
        let e1 = b.entity("x");
        let e2 = b.entity("x");
        assert_eq!(e1, e2);
        let r1 = b.relation("r");
        let r2 = b.relation("r");
        assert_eq!(r1, r2);
    }

    #[test]
    fn names_round_trip() {
        let kg = toy();
        for e in kg.entities() {
            assert_eq!(kg.find_entity(kg.entity_name(e)), Some(e));
        }
    }
}
