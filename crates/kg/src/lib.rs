//! # sdea-kg
//!
//! Knowledge-graph substrate for the SDEA entity-alignment system.
//!
//! Implements Definition 1 of the paper: a KG is
//! `{E, R, A, V, T_r, T_a}` — entities, relations, attributes, values,
//! relational triples and attributed triples. On top of the stores this
//! crate provides CSR-style adjacency ([`graph::KnowledgeGraph::neighbors`]),
//! benchmark statistics (Tables I and VI of the paper), an OpenEA-style TSV
//! interchange format, and seed-alignment handling with the paper's
//! 2:1:7 train/validation/test split.

#![forbid(unsafe_code)]

pub mod alignment;
pub mod graph;
pub mod io;
pub mod stats;

pub use alignment::{AlignmentSeeds, SplitSeeds};
pub use graph::{
    AttrTriple, AttributeId, EntityId, KgBuilder, KnowledgeGraph, RelTriple, RelationId,
};
pub use stats::{DegreeBuckets, KgStatistics, ValueKind};
