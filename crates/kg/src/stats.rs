//! Benchmark statistics: the quantities reported in Table I (dataset
//! statistics), Table VI (degree-range proportions) and the paper's
//! Section V-B1 error analysis (attribute value type mix).

use crate::graph::KnowledgeGraph;

/// Table I row: sizes of a KG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KgStatistics {
    /// Number of entities.
    pub entities: usize,
    /// Number of distinct relations.
    pub relations: usize,
    /// Number of distinct attributes.
    pub attributes: usize,
    /// Number of relational triples.
    pub rel_triples: usize,
    /// Number of attributed triples.
    pub attr_triples: usize,
}

impl KgStatistics {
    /// Computes the Table I row for a KG.
    pub fn of(kg: &KnowledgeGraph) -> Self {
        KgStatistics {
            entities: kg.num_entities(),
            relations: kg.num_relations(),
            attributes: kg.num_attributes(),
            rel_triples: kg.rel_triples().len(),
            attr_triples: kg.attr_triples().len(),
        }
    }
}

/// Table VI row: proportion of entities with degree in 1..=3, 1..=5, 1..=10.
/// (Entities of degree 0 are excluded, matching the paper's ranges that
/// start at 1.)
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeBuckets {
    /// Fraction of entities with 1 <= degree <= 3.
    pub upto3: f64,
    /// Fraction with 1 <= degree <= 5.
    pub upto5: f64,
    /// Fraction with 1 <= degree <= 10.
    pub upto10: f64,
    /// Mean degree over all entities.
    pub mean_degree: f64,
}

impl DegreeBuckets {
    /// Computes degree-range proportions over all entities of a KG.
    pub fn of(kg: &KnowledgeGraph) -> Self {
        let n = kg.num_entities().max(1);
        let mut c3 = 0usize;
        let mut c5 = 0usize;
        let mut c10 = 0usize;
        let mut total = 0usize;
        for e in kg.entities() {
            let d = kg.degree(e);
            total += d;
            if (1..=3).contains(&d) {
                c3 += 1;
            }
            if (1..=5).contains(&d) {
                c5 += 1;
            }
            if (1..=10).contains(&d) {
                c10 += 1;
            }
        }
        DegreeBuckets {
            upto3: c3 as f64 / n as f64,
            upto5: c5 as f64 / n as f64,
            upto10: c10 as f64 / n as f64,
            mean_degree: total as f64 / n as f64,
        }
    }

    /// Computes proportions over the union of two KGs (as the paper reports
    /// a single row per dataset).
    pub fn of_pair(kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) -> Self {
        let a = Self::of(kg1);
        let b = Self::of(kg2);
        let (n1, n2) = (kg1.num_entities() as f64, kg2.num_entities() as f64);
        let total = (n1 + n2).max(1.0);
        DegreeBuckets {
            upto3: (a.upto3 * n1 + b.upto3 * n2) / total,
            upto5: (a.upto5 * n1 + b.upto5 * n2) / total,
            upto10: (a.upto10 * n1 + b.upto10 * n2) / total,
            mean_degree: (a.mean_degree * n1 + b.mean_degree * n2) / total,
        }
    }
}

/// Classification of attribute values for the paper's error analysis
/// ("about 40% of attribute values in this dataset are numerical …
/// 9% identifiers, 23% integers and floats, and 8% dates").
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueKind {
    /// Opaque identifiers (e.g. `Q36`, alphanumeric codes).
    Identifier,
    /// Integers and floats.
    Number,
    /// Dates (`YYYY-MM-DD` and friends).
    Date,
    /// Short text (fewer than 50 words).
    ShortText,
    /// Long text (50+ words) — the paper's "long textual attributes".
    LongText,
}

impl ValueKind {
    /// Classifies a literal value.
    pub fn classify(value: &str) -> ValueKind {
        let v = value.trim();
        if is_date(v) {
            return ValueKind::Date;
        }
        if is_number(v) {
            return ValueKind::Number;
        }
        if is_identifier(v) {
            return ValueKind::Identifier;
        }
        if v.split_whitespace().count() >= 50 {
            ValueKind::LongText
        } else {
            ValueKind::ShortText
        }
    }
}

fn is_number(v: &str) -> bool {
    !v.is_empty() && v.parse::<f64>().is_ok()
}

fn is_date(v: &str) -> bool {
    // YYYY-MM-DD / YYYY/MM/DD / DD.MM.YYYY
    let bytes = v.as_bytes();
    if bytes.len() != 10 {
        return false;
    }
    let digits = |r: std::ops::Range<usize>| v[r].chars().all(|c| c.is_ascii_digit());
    let iso = (bytes[4] == b'-' && bytes[7] == b'-') || (bytes[4] == b'/' && bytes[7] == b'/');
    let dotted = bytes[2] == b'.' && bytes[5] == b'.';
    (iso && digits(0..4) && digits(5..7) && digits(8..10))
        || (dotted && digits(0..2) && digits(3..5) && digits(6..10))
}

fn is_identifier(v: &str) -> bool {
    // Wikidata-style Q123 / single token mixing letters and digits, no spaces
    if v.contains(char::is_whitespace) || v.is_empty() {
        return false;
    }
    let has_digit = v.chars().any(|c| c.is_ascii_digit());
    let has_alpha = v.chars().any(|c| c.is_ascii_alphabetic());
    has_digit && has_alpha && v.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Fraction of attribute triples per [`ValueKind`] for a KG.
pub fn value_kind_mix(kg: &KnowledgeGraph) -> Vec<(ValueKind, f64)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<ValueKind, usize> = BTreeMap::new();
    for t in kg.attr_triples() {
        *counts.entry(ValueKind::classify(&t.value)).or_insert(0) += 1;
    }
    let total = kg.attr_triples().len().max(1) as f64;
    let mut mix: Vec<(ValueKind, f64)> =
        counts.into_iter().map(|(k, c)| (k, c as f64 / total)).collect();
    // Stable sort over the BTreeMap's key order: equal fractions keep a
    // deterministic relative order (a HashMap source made ties flap), and
    // total_cmp keeps the comparator panic-free.
    mix.sort_by(|a, b| b.1.total_cmp(&a.1));
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KgBuilder;

    fn chain(n: usize) -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        for i in 0..n - 1 {
            b.rel_triple(&format!("e{i}"), "r", &format!("e{}", i + 1));
        }
        b.build()
    }

    #[test]
    fn stats_of_counts() {
        let mut b = KgBuilder::new();
        b.rel_triple("a", "r1", "b");
        b.rel_triple("b", "r2", "c");
        b.attr_triple("a", "name", "Alpha");
        let kg = b.build();
        let s = KgStatistics::of(&kg);
        assert_eq!(s.entities, 3);
        assert_eq!(s.relations, 2);
        assert_eq!(s.attributes, 1);
        assert_eq!(s.rel_triples, 2);
        assert_eq!(s.attr_triples, 1);
    }

    #[test]
    fn degree_buckets_chain() {
        // A chain of 5: endpoints degree 1, inner degree 2 -> all <= 3.
        let kg = chain(5);
        let d = DegreeBuckets::of(&kg);
        assert!((d.upto3 - 1.0).abs() < 1e-9);
        assert!((d.upto5 - 1.0).abs() < 1e-9);
        assert!((d.upto10 - 1.0).abs() < 1e-9);
        assert!((d.mean_degree - 8.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn degree_buckets_exclude_isolated() {
        let mut b = KgBuilder::new();
        b.entity("isolated");
        b.rel_triple("a", "r", "b");
        let kg = b.build();
        let d = DegreeBuckets::of(&kg);
        // 2 of 3 entities have degree in 1..=3.
        assert!((d.upto3 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn hub_exceeds_buckets() {
        let mut b = KgBuilder::new();
        for i in 0..20 {
            b.rel_triple("hub", "r", &format!("leaf{i}"));
        }
        let kg = b.build();
        let d = DegreeBuckets::of(&kg);
        // 20 leaves degree-1, hub degree-20: 20/21 within <=10.
        assert!((d.upto10 - 20.0 / 21.0).abs() < 1e-9);
    }

    #[test]
    fn value_kind_classification() {
        assert_eq!(ValueKind::classify("42"), ValueKind::Number);
        assert_eq!(ValueKind::classify("3.25"), ValueKind::Number);
        assert_eq!(ValueKind::classify("1985-02-05"), ValueKind::Date);
        assert_eq!(ValueKind::classify("Q36"), ValueKind::Identifier);
        assert_eq!(ValueKind::classify("Real Madrid"), ValueKind::ShortText);
        let long = "lorem ".repeat(60);
        assert_eq!(ValueKind::classify(&long), ValueKind::LongText);
    }

    #[test]
    fn value_kind_mix_sums_to_one() {
        let mut b = KgBuilder::new();
        b.attr_triple("a", "x", "42");
        b.attr_triple("a", "y", "hello world");
        b.attr_triple("b", "z", "Q7");
        let kg = b.build();
        let mix = value_kind_mix(&kg);
        let total: f64 = mix.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pair_buckets_weighted_average() {
        let kg1 = chain(5);
        let kg2 = chain(5);
        let single = DegreeBuckets::of(&kg1);
        let pair = DegreeBuckets::of_pair(&kg1, &kg2);
        assert!((pair.upto3 - single.upto3).abs() < 1e-9);
    }
}
