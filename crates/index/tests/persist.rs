//! `SDIX` persistence: atomic save/load round-trips bit-for-bit, stale
//! blobs rebuild in place, and corrupt blobs are quarantined to
//! `<path>.corrupt` before a clean rebuild — the same crash discipline as
//! the checkpoint store.

use sdea_index::{IndexConfig, IndexKind, IvfRetriever, Retriever};
use sdea_tensor::{Rng, Tensor};
use std::io;
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdea_index_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn table(n: usize, d: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let centers = Tensor::rand_normal(&[5, d], 1.0, &mut rng);
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let base = centers.row(i % 5);
        data.extend(base.iter().map(|&b| b + 0.2 * rng.normal()));
    }
    Tensor::from_vec(data, &[n, d])
}

fn cfg(quantize: bool) -> IndexConfig {
    IndexConfig { kind: IndexKind::Ivf, nlist: 9, nprobe: 2, quantize }
}

fn same_hits(a: &[Vec<(usize, f32)>], b: &[Vec<(usize, f32)>]) -> bool {
    a.iter().zip(b).all(|(x, y)| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(&(i, s), &(j, t))| i == j && s.to_bits() == t.to_bits())
    })
}

#[test]
fn save_load_round_trips_bitwise() {
    for quantize in [false, true] {
        let dir = test_dir(if quantize { "rt_q" } else { "rt" });
        let path = dir.join("tgt.sdix");
        let emb = table(120, 12, 21);
        let qry = table(15, 12, 22);
        let built = IvfRetriever::build(&emb, &cfg(quantize));
        built.save(&path).unwrap();
        let loaded = IvfRetriever::load(&path, &emb, &cfg(quantize)).unwrap();
        assert_eq!(built.to_bytes(), loaded.to_bytes(), "quantize={quantize}");
        assert!(same_hits(&built.search(&qry, 8), &loaded.search(&qry, 8)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn missing_file_builds_and_saves() {
    let dir = test_dir("fresh");
    let path = dir.join("tgt.sdix");
    let emb = table(80, 8, 23);
    let idx = IvfRetriever::load_or_build(&path, &emb, &cfg(true)).unwrap();
    assert!(path.exists(), "load_or_build must persist a fresh build");
    assert_eq!(idx.len(), 80);
    let again = IvfRetriever::load_or_build(&path, &emb, &cfg(true)).unwrap();
    assert_eq!(idx.to_bytes(), again.to_bytes());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_blob_is_quarantined_and_rebuilt() {
    let dir = test_dir("corrupt");
    let path = dir.join("tgt.sdix");
    let emb = table(90, 8, 24);
    IvfRetriever::build(&emb, &cfg(true)).save(&path).unwrap();

    // Flip one payload byte — load must refuse with InvalidData...
    let mut bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..4], sdea_index::INDEX_KIND, "index blob carries its kind");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();
    let err = IvfRetriever::load(&path, &emb, &cfg(true)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");

    // ...and load_or_build must quarantine the damaged file, then rebuild.
    let idx = IvfRetriever::load_or_build(&path, &emb, &cfg(true)).unwrap();
    let quarantined = dir.join("tgt.sdix.corrupt");
    assert!(quarantined.exists(), "corrupt blob must move to .corrupt");
    assert_eq!(std::fs::read(&quarantined).unwrap(), bytes, "quarantine preserves evidence");
    let reloaded = IvfRetriever::load(&path, &emb, &cfg(true)).unwrap();
    assert_eq!(idx.to_bytes(), reloaded.to_bytes());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_blob_rebuilds_without_quarantine() {
    let dir = test_dir("stale");
    let path = dir.join("tgt.sdix");
    let emb_old = table(70, 8, 25);
    IvfRetriever::build(&emb_old, &cfg(false)).save(&path).unwrap();

    // Same shape, different values: emb_crc catches the swap.
    let emb_new = table(70, 8, 26);
    let err = IvfRetriever::load(&path, &emb_new, &cfg(false)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");

    let idx = IvfRetriever::load_or_build(&path, &emb_new, &cfg(false)).unwrap();
    assert!(!dir.join("tgt.sdix.corrupt").exists(), "stale is not corrupt");
    assert_eq!(idx.len(), 70);
    let reloaded = IvfRetriever::load(&path, &emb_new, &cfg(false)).unwrap();
    assert_eq!(idx.to_bytes(), reloaded.to_bytes());

    // A config change (quantize flips) is also stale, not corrupt.
    let err = IvfRetriever::load(&path, &emb_new, &cfg(true)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_shape_is_reported_as_stale() {
    let dir = test_dir("shape");
    let path = dir.join("tgt.sdix");
    let emb = table(60, 8, 27);
    IvfRetriever::build(&emb, &cfg(false)).save(&path).unwrap();
    let wider = table(60, 16, 27);
    let err = IvfRetriever::load(&path, &wider, &cfg(false)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
