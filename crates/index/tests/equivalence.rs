//! The tentpole guarantee: an [`IvfRetriever`] probing *all* clusters is
//! bitwise-identical to [`ExactRetriever`] — same hit indices, same score
//! bits — at any `SDEA_THREADS` budget, with and without the int8
//! quantized store (which is bypassed entirely at `nprobe = all`).

use sdea_index::{
    build_retriever, ExactRetriever, IndexConfig, IndexKind, IvfRetriever, Retriever,
};
use sdea_tensor::{with_thread_budget, Rng, Tensor};

fn world(n: usize, d: usize, seed: u64) -> (Tensor, Tensor) {
    // Clustered targets + perturbed queries, the aligned-entity shape the
    // index is for. A few degenerate rows keep the edge cases honest.
    let mut rng = Rng::seed_from_u64(seed);
    let centers = Tensor::rand_normal(&[7, d], 1.0, &mut rng);
    let mut tgt = Vec::with_capacity(n * d);
    let mut qry = Vec::with_capacity(n * d);
    for i in 0..n {
        let base = centers.row(i % 7);
        for &b in base {
            tgt.push(b + 0.2 * rng.normal());
            qry.push(b + 0.2 * rng.normal());
        }
    }
    for v in tgt.iter_mut().take(d) {
        *v = 0.0; // an all-zero target row
    }
    (Tensor::from_vec(tgt, &[n, d]), Tensor::from_vec(qry, &[n, d]))
}

fn assert_bitwise_equal(a: &[Vec<(usize, f32)>], b: &[Vec<(usize, f32)>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: query count");
    for (qi, (ha, hb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ha.len(), hb.len(), "{ctx}: hit count for query {qi}");
        for (r, (&(ia, sa), &(ib, sb))) in ha.iter().zip(hb).enumerate() {
            assert_eq!(ia, ib, "{ctx}: index at rank {r} of query {qi}");
            assert_eq!(
                sa.to_bits(),
                sb.to_bits(),
                "{ctx}: score bits at rank {r} of query {qi} ({sa} vs {sb})"
            );
        }
    }
}

#[test]
fn nprobe_all_is_bitwise_identical_to_exact() {
    let (tgt, qry) = world(160, 24, 11);
    let exact = ExactRetriever::new(&tgt);
    for quantize in [false, true] {
        for budget in [1usize, 8] {
            let hits_exact = with_thread_budget(budget, || exact.search(&qry, 10));
            let cfg = IndexConfig { kind: IndexKind::Ivf, nlist: 12, nprobe: 0, quantize };
            let ivf = IvfRetriever::build(&tgt, &cfg);
            let hits_ivf = with_thread_budget(budget, || ivf.search(&qry, 10));
            let ctx = format!("quantize={quantize} budget={budget}");
            assert_bitwise_equal(&hits_exact, &hits_ivf, &ctx);
        }
    }
}

#[test]
fn nprobe_at_least_nlist_also_bypasses() {
    let (tgt, qry) = world(80, 16, 12);
    let exact = ExactRetriever::new(&tgt).search(&qry, 5);
    let cfg = IndexConfig { kind: IndexKind::Ivf, nlist: 8, nprobe: 64, quantize: true };
    let ivf = IvfRetriever::build(&tgt, &cfg).search(&qry, 5);
    assert_bitwise_equal(&exact, &ivf, "nprobe > nlist");
}

#[test]
fn results_are_thread_budget_invariant_when_probing() {
    // Approximate mode (nprobe < nlist) must still be deterministic across
    // budgets — approximation changes *what* is searched, never *when*.
    let (tgt, qry) = world(200, 16, 13);
    let cfg = IndexConfig { kind: IndexKind::Ivf, nlist: 14, nprobe: 3, quantize: true };
    let ivf = IvfRetriever::build(&tgt, &cfg);
    let h1 = with_thread_budget(1, || ivf.search(&qry, 10));
    let h8 = with_thread_budget(8, || ivf.search(&qry, 10));
    assert_bitwise_equal(&h1, &h8, "budget 1 vs 8, nprobe=3");
}

#[test]
fn build_retriever_dispatches_on_kind() {
    let (tgt, qry) = world(60, 8, 14);
    let exact = build_retriever(&tgt, &IndexConfig::default());
    let ivf_all = build_retriever(
        &tgt,
        &IndexConfig { kind: IndexKind::Ivf, nlist: 6, nprobe: 0, quantize: false },
    );
    assert_bitwise_equal(&exact.search(&qry, 7), &ivf_all.search(&qry, 7), "boxed dispatch");
}
