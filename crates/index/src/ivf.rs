//! The IVF backend: deterministic seeded k-means, `nprobe` cluster
//! probing, an optional int8 quantized member scan with exact `f32`
//! re-scoring, and atomic `SDIX` persistence.
//!
//! ## Determinism
//!
//! Everything is bit-identical at any `SDEA_THREADS` budget and across
//! runs: k-means initialization is a seeded Fisher–Yates draw, the
//! assignment step maps rows independently through
//! [`par_map_collect`], centroid updates sum members in ascending row
//! order, and all iteration is over index-sorted `Vec`s (no hash-ordered
//! collections — `sdea-lint` D-HASH-ITER holds by construction). Probed
//! candidates are sorted ascending before ranking so ties break by lower
//! row index, exactly like the exact path.
//!
//! The probe scan itself is cluster-batched: each cluster's member rows
//! are gathered and pre-packed into the matmul microkernel's panel
//! format ([`pack_bt`]) at build, and a search scores all queries
//! probing a cluster with one direct [`matmul_packed`] call (the
//! quantized path dequantizes and packs the block on the fly). The tiled
//! kernels are bit-identical to the single-accumulator reference dot
//! (the `sdea-tensor` property suite's exactness contract), so batching
//! changes throughput, never a single output bit.
//!
//! ## Exactness escape hatch
//!
//! With `nprobe` = all clusters (`IndexConfig::nprobe == 0`, the default)
//! `search` bypasses clustering entirely and runs the same blocked cosine
//! kernel as [`ExactRetriever`](crate::ExactRetriever) — the equivalence
//! suites assert bitwise-identical hits and metrics. Approximation only
//! enters when a caller opts into `nprobe < nlist`.
//!
//! ## `SDIX` blob layout (little-endian, container version 2)
//!
//! Wrapped in the standard blob container (`kind "SDIX" | version |
//! payload_len | crc32 | payload`, see `sdea_tensor::serialize`):
//!
//! ```text
//! u32 n            rows indexed
//! u32 d            embedding width
//! u32 nlist        clusters
//! u8  quantize     0 | 1
//! u32 emb_crc      crc32 of the normalized table's f32 LE bytes
//! tensor centroids [nlist, d]   (write_tensor)
//! u32 × n          cluster assignment per row
//! if quantize:
//!   f32 × d        per-dim scale
//!   f32 × d        per-dim offset
//!   i8  × n·d      codes
//! ```
//!
//! `emb_crc` binds the index to the table it was built from: loading
//! against different embeddings is a mismatch (stale), not corruption.
//! Writes go through `atomic_write_retry` (tmp + fsync + rename);
//! [`IvfRetriever::load_or_build`] quarantines a corrupt file to
//! `<path>.corrupt` and rebuilds, mirroring the checkpoint store.

use crate::{counters, top_k_scored, Hit, IndexConfig, Retriever};
use sdea_tensor::kernels::{matmul_packed, pack_bt};
use sdea_tensor::qkernels::{exact_dot, quantize_rows, QuantParams};
use sdea_tensor::serialize::{
    atomic_write_retry, blob_payload, blob_to_bytes, crc32, read_tensor, write_tensor, WireRead,
    WireWrite,
};
use sdea_tensor::{par_map_collect, EmbeddingShards, Rng, Tensor};
use std::io;
use std::path::Path;

/// Blob kind tag of a persisted IVF index.
pub const INDEX_KIND: &[u8; 4] = b"SDIX";

/// k-means refinement iterations (with early stop on a fixed assignment).
const KMEANS_ITERS: usize = 10;

/// Seed of the k-means initialization draw. Fixed: the index must be a
/// pure function of the table and `IndexConfig`, so rebuilds (e.g. after
/// quarantine) reproduce the identical structure.
const KMEANS_SEED: u64 = 0x5dea_1d8e;

/// Rows sampled per cluster for the streamed k-means training set
/// ([`IvfRetriever::build_from_shards`]). 64 rows per centroid is ample to
/// place it; the full table is then assigned to the trained centroids one
/// shard at a time.
const KMEANS_SAMPLE_PER_LIST: usize = 64;

/// Quantized shortlist size as a multiple of `k`: the int8 scan keeps
/// `RESCORE_MULT · k` candidates for exact `f32` re-scoring, absorbing
/// quantization rank noise around the cut-off.
pub const RESCORE_MULT: usize = 4;

/// Int8 member store: one signed byte per element plus per-dim params.
struct Quant {
    codes: Vec<i8>,
    params: QuantParams,
}

/// IVF retriever over one embedding table.
pub struct IvfRetriever {
    /// The indexed table, rows L2-normalized once at build.
    norm: Tensor,
    /// `[nlist, d]` cluster centroids (L2-normalized).
    centroids: Tensor,
    /// Cluster id per indexed row.
    assign: Vec<u32>,
    /// Member rows per cluster, ascending.
    clusters: Vec<Vec<u32>>,
    /// Each cluster's member rows pre-packed into the microkernel's panel
    /// format ([`pack_bt`]) at build, so a probe calls [`matmul_packed`]
    /// directly with zero per-search packing. Empty for the quantized
    /// path, which dequantizes and packs blocks on the fly from `quant`.
    packed: Vec<Vec<f32>>,
    /// Optional int8 store over `norm`.
    quant: Option<Quant>,
    /// Clusters probed per query; 0 = all (exact bypass).
    nprobe: usize,
}

impl IvfRetriever {
    /// Builds the index over `emb: [n, d]` per `cfg` (its `kind` field is
    /// ignored — callers go through [`crate::build_retriever`]).
    pub fn build(emb: &Tensor, cfg: &IndexConfig) -> Self {
        assert_eq!(emb.rank(), 2, "IvfRetriever expects a rank-2 table");
        let _span = sdea_obs::span("index.build");
        let norm = emb.normalized_view();
        let n = norm.shape()[0];
        let nlist = cfg.effective_nlist(n);
        let (centroids, assign) = kmeans(&norm, nlist);
        let quant = cfg.quantize.then(|| {
            let (codes, params) = quantize_rows(norm.data(), n, norm.shape()[1]);
            Quant { codes, params }
        });
        let clusters = members_of(&assign, nlist);
        let packed = packed_blocks(&norm, &clusters, quant.is_some());
        IvfRetriever { norm, centroids, assign, clusters, packed, quant, nprobe: cfg.nprobe }
    }

    /// Builds the index from a **sharded** embedding table spilled by the
    /// out-of-core path, consuming it one shard at a time: k-means is
    /// trained on a deterministic sample of the rows, then every shard is
    /// normalized, folded into the retriever's table and assigned to its
    /// nearest trained centroid.
    ///
    /// The peak working set is one normalized table plus a single shard —
    /// [`IvfRetriever::build`] instead holds the caller's raw table *and*
    /// its normalized copy at once. The result is a pure function of the
    /// shard contents and `cfg` (shard height never matters), but it is
    /// *not* byte-identical to `build` over the same table: the sampled
    /// k-means sees a different training set, so centroids (and therefore
    /// cluster boundaries) differ. With `nprobe = 0` both are exact and
    /// bitwise-identical to the exact backend anyway.
    pub fn build_from_shards(shards: &EmbeddingShards, cfg: &IndexConfig) -> io::Result<Self> {
        let _span = sdea_obs::span("index.build_from_shards");
        let (n, d) = (shards.len(), shards.dim());
        let nlist = cfg.effective_nlist(n);
        // Deterministic sample, sorted ascending so it can be gathered in
        // one pass over the shards in storage order.
        let sample_n = (nlist * KMEANS_SAMPLE_PER_LIST).min(n);
        let mut order: Vec<usize> = (0..n).collect();
        Rng::seed_from_u64(KMEANS_SEED ^ n as u64).shuffle(&mut order);
        let mut sample_ids = order[..sample_n].to_vec();
        sample_ids.sort_unstable();
        // Assemble the normalized table shard by shard (per-row
        // normalization makes a shard's rows equal the full table's rows
        // bitwise) and pick the sample rows on the way through.
        let mut norm_data = vec![0.0f32; n * d];
        let mut sample_data = Vec::with_capacity(sample_n * d);
        let mut next = 0usize;
        for s in 0..shards.n_shards() {
            let (r0, r1) = shards.shard_range(s);
            let block = shards.read_shard(s)?.normalized_view();
            norm_data[r0 * d..r1 * d].copy_from_slice(block.data());
            while next < sample_ids.len() && sample_ids[next] < r1 {
                sample_data.extend_from_slice(block.row(sample_ids[next] - r0));
                next += 1;
            }
        }
        let norm = Tensor::from_vec(norm_data, &[n, d]);
        let sample = Tensor::from_vec(sample_data, &[sample_n, d]);
        let (centroids, _) = kmeans(&sample, nlist);
        let assign = if nlist == 0 { Vec::new() } else { nearest_centroids(&norm, &centroids) };
        let quant = cfg.quantize.then(|| {
            let (codes, params) = quantize_rows(norm.data(), n, d);
            Quant { codes, params }
        });
        let clusters = members_of(&assign, nlist);
        let packed = packed_blocks(&norm, &clusters, quant.is_some());
        Ok(IvfRetriever { norm, centroids, assign, clusters, packed, quant, nprobe: cfg.nprobe })
    }

    /// Cluster count.
    pub fn nlist(&self) -> usize {
        self.clusters.len()
    }

    /// Sets the probe count (`0` = all clusters / exact). A runtime knob:
    /// it changes which shortlist a search scans, never the built index.
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe;
    }

    /// Bytes held by the member-scan representation: the int8 store when
    /// quantized (codes + per-dim params), else the packed `f32` panels.
    pub fn scan_bytes(&self) -> usize {
        match &self.quant {
            Some(q) => q.codes.len() + 8 * q.params.dim(),
            None => 4 * self.packed.iter().map(Vec::len).sum::<usize>(),
        }
    }

    fn probe_all(&self) -> bool {
        self.nprobe == 0 || self.nprobe >= self.nlist()
    }

    /// Reconstructs cluster `c`'s member block from the int8 store,
    /// element-for-element the same operations as
    /// [`dequantize_row`](sdea_tensor::qkernels::dequantize_row), so
    /// scanning the block is bitwise-identical to scanning dequantized
    /// rows one at a time.
    fn dequant_block(&self, store: &Quant, c: usize) -> Vec<f32> {
        let d = self.dim();
        let mut data = Vec::with_capacity(self.clusters[c].len() * d);
        for &id in &self.clusters[c] {
            let row = &store.codes[id as usize * d..(id as usize + 1) * d];
            for (j, &code) in row.iter().enumerate() {
                data.push(store.params.offset[j] + store.params.scale[j] * code as f32);
            }
        }
        data
    }

    /// Ranks one query's candidate pool `(row id, scan score)`, already
    /// sorted ascending by id so ties break toward the lower row index,
    /// like the exact path. When quantized, the scan scores only pick a
    /// `RESCORE_MULT·k` shortlist that is re-scored exactly in `f32`;
    /// unquantized scan scores already are the exact cosine.
    fn finish_row(&self, q: &[f32], pool: &[(u32, f32)], k: usize) -> Vec<Hit> {
        counters().shortlist_len.add(pool.len() as u64);
        let scores: Vec<f32> = pool.iter().map(|&(_, s)| s).collect();
        match &self.quant {
            Some(_) => {
                let keep = (k.saturating_mul(RESCORE_MULT)).max(k).min(pool.len());
                let mut ids: Vec<u32> =
                    top_k_scored(&scores, keep).into_iter().map(|(i, _)| pool[i].0).collect();
                ids.sort_unstable();
                counters().exact_rescored.add(ids.len() as u64);
                let exact: Vec<f32> =
                    ids.iter().map(|&id| exact_dot(q, self.norm.row(id as usize))).collect();
                top_k_scored(&exact, k).into_iter().map(|(i, s)| (ids[i] as usize, s)).collect()
            }
            None => {
                counters().exact_rescored.add(pool.len() as u64);
                top_k_scored(&scores, k).into_iter().map(|(i, s)| (pool[i].0 as usize, s)).collect()
            }
        }
    }

    // ------------------------------------------------------- persistence

    /// Serializes the built structure (not the `f32` table itself — the
    /// embeddings live in their own checkpoints; `emb_crc` binds the two).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let (n, d) = (self.norm.shape()[0], self.norm.shape()[1]);
        payload.put_u32_le(n as u32);
        payload.put_u32_le(d as u32);
        payload.put_u32_le(self.nlist() as u32);
        payload.put_u8(self.quant.is_some() as u8);
        payload.put_u32_le(table_crc(&self.norm));
        write_tensor(&mut payload, &self.centroids);
        for &a in &self.assign {
            payload.put_u32_le(a);
        }
        if let Some(q) = &self.quant {
            for &s in &q.params.scale {
                payload.put_f32_le(s);
            }
            for &o in &q.params.offset {
                payload.put_f32_le(o);
            }
            payload.put_slice(&q.codes.iter().map(|&c| c as u8).collect::<Vec<u8>>());
        }
        blob_to_bytes(INDEX_KIND, &payload)
    }

    /// Reconstructs an index from `SDIX` bytes against the table it was
    /// built from. Structural damage is `InvalidData` (quarantine-worthy);
    /// a shape/crc/config mismatch with `emb`/`cfg` is `InvalidInput`
    /// (stale — rebuild, don't quarantine).
    pub fn from_bytes(bytes: &[u8], emb: &Tensor, cfg: &IndexConfig) -> io::Result<Self> {
        let corrupt = |m: &str| io::Error::new(io::ErrorKind::InvalidData, format!("SDIX: {m}"));
        let stale = |m: String| io::Error::new(io::ErrorKind::InvalidInput, m);
        let mut buf = blob_payload(bytes, INDEX_KIND)?;
        if buf.remaining() < 4 * 4 + 1 {
            return Err(corrupt("truncated header"));
        }
        let n = buf.get_u32_le() as usize;
        let d = buf.get_u32_le() as usize;
        let nlist = buf.get_u32_le() as usize;
        let quantize = buf.get_u8() != 0;
        let emb_crc = buf.get_u32_le();
        if emb.rank() != 2 || emb.shape() != [n, d] {
            return Err(stale(format!(
                "SDIX: built over a [{n}, {d}] table, embeddings are {:?}",
                emb.shape()
            )));
        }
        if quantize != cfg.quantize || (n > 0 && nlist != cfg.effective_nlist(n)) {
            return Err(stale(format!(
                "SDIX: stored nlist={nlist} quantize={quantize}, config wants nlist={} \
                 quantize={}",
                cfg.effective_nlist(n),
                cfg.quantize
            )));
        }
        let norm = emb.normalized_view();
        if table_crc(&norm) != emb_crc {
            return Err(stale("SDIX: embedding table changed since the index was built".into()));
        }
        let centroids = read_tensor(&mut buf)?;
        if centroids.rank() != 2 || centroids.shape() != [nlist, d] {
            return Err(corrupt("centroid shape mismatch"));
        }
        if buf.remaining() < 4 * n {
            return Err(corrupt("truncated assignments"));
        }
        let mut assign = Vec::with_capacity(n);
        for _ in 0..n {
            let a = buf.get_u32_le();
            if a as usize >= nlist.max(1) {
                return Err(corrupt("assignment out of range"));
            }
            assign.push(a);
        }
        let quant = if quantize {
            if buf.remaining() < 8 * d + n * d {
                return Err(corrupt("truncated quantized store"));
            }
            let mut scale = Vec::with_capacity(d);
            for _ in 0..d {
                scale.push(buf.get_f32_le());
            }
            let mut offset = Vec::with_capacity(d);
            for _ in 0..d {
                offset.push(buf.get_f32_le());
            }
            let mut raw = vec![0u8; n * d];
            buf.copy_to_slice(&mut raw);
            let codes = raw.into_iter().map(|b| b as i8).collect();
            Some(Quant { codes, params: QuantParams { scale, offset } })
        } else {
            None
        };
        if buf.remaining() != 0 {
            return Err(corrupt("trailing bytes"));
        }
        let clusters = members_of(&assign, nlist);
        let packed = packed_blocks(&norm, &clusters, quant.is_some());
        Ok(IvfRetriever { norm, centroids, assign, clusters, packed, quant, nprobe: cfg.nprobe })
    }

    /// Atomically persists the index as an `SDIX` blob.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        atomic_write_retry(path, &self.to_bytes(), "index.save")
    }

    /// Loads an `SDIX` blob built over `emb` under `cfg`.
    pub fn load(path: impl AsRef<Path>, emb: &Tensor, cfg: &IndexConfig) -> io::Result<Self> {
        Self::from_bytes(&std::fs::read(path)?, emb, cfg)
    }

    /// Warm-load path: loads `path` if it holds a valid index for
    /// `emb`/`cfg`; otherwise builds one and persists it. A corrupt blob
    /// is quarantined to `<path>.corrupt` (counter `index.quarantined`)
    /// before the rebuild, mirroring the checkpoint store's
    /// quarantine-and-fall-back discipline; a merely stale blob (different
    /// table or config) is overwritten in place.
    pub fn load_or_build(
        path: impl AsRef<Path>,
        emb: &Tensor,
        cfg: &IndexConfig,
    ) -> io::Result<Self> {
        let path = path.as_ref();
        match Self::load(path, emb, cfg) {
            Ok(idx) => return Ok(idx),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                sdea_obs::add("index.stale_rebuilt", 1);
                eprintln!("note: rebuilding stale index {} ({e})", path.display());
            }
            Err(e) => {
                let mut quarantined = path.as_os_str().to_owned();
                quarantined.push(".corrupt");
                sdea_obs::add("index.quarantined", 1);
                eprintln!(
                    "warning: quarantining corrupt index {} -> {} ({e})",
                    path.display(),
                    Path::new(&quarantined).display()
                );
                std::fs::rename(path, &quarantined)?;
            }
        }
        let idx = Self::build(emb, cfg);
        idx.save(path)?;
        Ok(idx)
    }
}

impl std::fmt::Debug for IvfRetriever {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IvfRetriever")
            .field("n", &self.len())
            .field("d", &self.dim())
            .field("nlist", &self.nlist())
            .field("nprobe", &self.nprobe)
            .field("quantized", &self.quant.is_some())
            .finish()
    }
}

impl Retriever for IvfRetriever {
    fn search(&self, queries: &Tensor, k: usize) -> Vec<Vec<Hit>> {
        assert_eq!(queries.rank(), 2, "search expects rank-2 queries");
        assert_eq!(queries.shape()[1], self.dim(), "embedding width mismatch");
        let (nq, n, d) = (queries.shape()[0], self.len(), self.dim());
        if self.probe_all() {
            // Exact bypass: the same kernel sequence as ExactRetriever, so
            // nprobe = all is bitwise-identical to the exact backend.
            let _span = sdea_obs::span("index.search_exact");
            counters().exact_rescored.add((nq * n) as u64);
            let sim = queries.normalized_view().matmul_t(&self.norm);
            return par_map_collect(nq, n.max(1), |i| top_k_scored(sim.row(i), k));
        }
        let _span = sdea_obs::span("index.search_ivf");
        let q = queries.normalized_view();
        let nlist = self.nlist();
        let nprobe = self.nprobe.min(nlist);
        // Centroid scores for the whole batch in one tiled matmul
        // (bitwise-identical to a per-row dot), then the probe set per
        // query.
        let csim = q.matmul_t(&self.centroids);
        let probed: Vec<Vec<usize>> = par_map_collect(nq, (nlist * d).max(1), |i| {
            top_k_scored(csim.row(i), nprobe).into_iter().map(|(c, _)| c).collect()
        });
        counters().probes.add(probed.iter().map(|p| p.len() as u64).sum());
        // Invert to per-cluster query lists so each populated cluster is
        // scanned with a single tiled matmul over the queries probing it
        // and its contiguous member block (dequantized on the fly for the
        // int8 store — same ops as a per-row dequantize, so bitwise-equal).
        let mut by_cluster: Vec<Vec<usize>> = vec![Vec::new(); nlist];
        for (i, probes) in probed.iter().enumerate() {
            for &c in probes {
                by_cluster[c].push(i);
            }
        }
        let avg_members = n / nlist.max(1) + 1;
        let scan_cost = d * avg_members * (nq * nprobe / nlist.max(1) + 1);
        let cluster_scores: Vec<Option<Vec<f32>>> = par_map_collect(nlist, scan_cost, |c| {
            let queriers = &by_cluster[c];
            let members = &self.clusters[c];
            if queriers.is_empty() || members.is_empty() {
                return None;
            }
            let mut qbuf = Vec::with_capacity(queriers.len() * d);
            for &i in queriers {
                qbuf.extend_from_slice(q.row(i));
            }
            let mut out = vec![0.0f32; queriers.len() * members.len()];
            match &self.quant {
                Some(store) => {
                    let mut panels = Vec::new();
                    pack_bt(&self.dequant_block(store, c), d, members.len(), &mut panels);
                    matmul_packed(
                        &qbuf,
                        &panels,
                        queriers.len(),
                        d,
                        members.len(),
                        1.0,
                        None,
                        &mut out,
                    );
                }
                None => {
                    matmul_packed(
                        &qbuf,
                        &self.packed[c],
                        queriers.len(),
                        d,
                        members.len(),
                        1.0,
                        None,
                        &mut out,
                    );
                }
            }
            Some(out)
        });
        // Serial scatter in ascending cluster order — deterministic no
        // matter how the scan above was scheduled.
        let mut pools: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nq];
        for (c, scores) in cluster_scores.iter().enumerate() {
            let Some(scores) = scores else { continue };
            let m = self.clusters[c].len();
            for (r, &qi) in by_cluster[c].iter().enumerate() {
                let row = &scores[r * m..(r + 1) * m];
                pools[qi].extend(self.clusters[c].iter().zip(row).map(|(&id, &s)| (id, s)));
            }
        }
        // Ids ascend within each cluster segment, so with one probed
        // cluster this is a no-op and the sort is near-free.
        for pool in &mut pools {
            pool.sort_unstable_by_key(|&(id, _)| id);
        }
        let cost = d * (avg_members * nprobe).max(1);
        par_map_collect(nq, cost, |i| self.finish_row(q.row(i), &pools[i], k))
    }

    fn len(&self) -> usize {
        self.norm.shape()[0]
    }

    fn dim(&self) -> usize {
        self.norm.shape()[1]
    }
}

/// CRC-32 of a table's `f32` rows in LE byte order — the binding between a
/// persisted index and the embedding table it was built from.
fn table_crc(t: &Tensor) -> u32 {
    let mut bytes = Vec::with_capacity(4 * t.len());
    for &x in t.data() {
        bytes.put_f32_le(x);
    }
    crc32(&bytes)
}

/// Gathers each cluster's members and packs them into the microkernel
/// panel format for the tiled scan. Skipped (empty) for the quantized
/// path, whose scan blocks come from the int8 store instead.
fn packed_blocks(norm: &Tensor, clusters: &[Vec<u32>], quantized: bool) -> Vec<Vec<f32>> {
    if quantized {
        return Vec::new();
    }
    let d = norm.shape()[1];
    clusters
        .iter()
        .map(|members| {
            let rows: Vec<usize> = members.iter().map(|&i| i as usize).collect();
            let block = norm.gather_rows(&rows);
            let mut panels = Vec::new();
            pack_bt(block.data(), d, members.len(), &mut panels);
            panels
        })
        .collect()
}

/// Nearest-centroid assignment by dot product: strictly-greater wins, so
/// ties break toward the lower centroid index. The k-means refinement loop
/// and the streamed per-shard assignment share this exact kernel, keeping
/// their tie behavior identical. Requires at least one centroid.
fn nearest_centroids(norm: &Tensor, centroids: &Tensor) -> Vec<u32> {
    let (n, d) = (norm.shape()[0], norm.shape()[1]);
    let nlist = centroids.shape()[0];
    par_map_collect(n, (nlist * d).max(1), |i| {
        let row = norm.row(i);
        let mut best = 0u32;
        let mut best_v = f32::NEG_INFINITY;
        for c in 0..nlist {
            let v = exact_dot(row, centroids.row(c));
            if v > best_v {
                best_v = v;
                best = c as u32;
            }
        }
        best
    })
}

/// Ascending member lists per cluster.
fn members_of(assign: &[u32], nlist: usize) -> Vec<Vec<u32>> {
    let mut clusters = vec![Vec::new(); nlist];
    for (i, &a) in assign.iter().enumerate() {
        clusters[a as usize].push(i as u32);
    }
    clusters
}

/// Deterministic spherical k-means over a row-normalized table: seeded
/// Fisher–Yates initialization, dot-product assignment (ties to the lower
/// centroid index), centroid = L2-normalized mean of members summed in
/// ascending row order. Empty clusters keep their previous centroid.
fn kmeans(norm: &Tensor, nlist: usize) -> (Tensor, Vec<u32>) {
    let (n, d) = (norm.shape()[0], norm.shape()[1]);
    if n == 0 || nlist == 0 {
        return (Tensor::zeros(&[0, d]), Vec::new());
    }
    let _span = sdea_obs::span("index.kmeans");
    let mut order: Vec<usize> = (0..n).collect();
    Rng::seed_from_u64(KMEANS_SEED ^ nlist as u64).shuffle(&mut order);
    let mut centroids = norm.gather_rows(&order[..nlist]);
    let mut assign: Vec<u32> = Vec::new();
    for _ in 0..KMEANS_ITERS {
        let next = nearest_centroids(norm, &centroids);
        let converged = next == assign;
        assign = next;
        if converged {
            break;
        }
        let clusters = members_of(&assign, nlist);
        let rows = par_map_collect(nlist, (n / nlist + 1) * d.max(1), |c| {
            if clusters[c].is_empty() {
                return centroids.row(c).to_vec();
            }
            let mut sum = vec![0.0f32; d];
            for &i in &clusters[c] {
                for (s, &x) in sum.iter_mut().zip(norm.row(i as usize)) {
                    *s += x;
                }
            }
            let nrm: f32 = sum.iter().map(|&x| x * x).sum::<f32>().sqrt();
            if nrm > 1e-12 {
                let inv = 1.0 / nrm;
                sum.iter_mut().for_each(|x| *x *= inv);
            }
            sum
        });
        centroids = Tensor::from_vec(rows.concat(), &[nlist, d]);
    }
    (centroids, assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExactRetriever, IndexKind};
    use sdea_tensor::with_thread_budget;

    fn clustered_table(n: usize, d: usize, centers: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        let c = Tensor::rand_normal(&[centers, d], 1.0, &mut rng);
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let base = c.row(i % centers);
            data.extend(base.iter().map(|&b| b + 0.15 * rng.normal()));
        }
        Tensor::from_vec(data, &[n, d])
    }

    fn ivf_cfg(nprobe: usize, quantize: bool) -> IndexConfig {
        IndexConfig { kind: IndexKind::Ivf, nlist: 8, nprobe, quantize }
    }

    #[test]
    fn kmeans_is_thread_budget_invariant() {
        let t = clustered_table(300, 16, 6, 1).normalized_view();
        let (c1, a1) = with_thread_budget(1, || kmeans(&t, 8));
        let (c8, a8) = with_thread_budget(8, || kmeans(&t, 8));
        assert_eq!(a1, a8);
        assert_eq!(c1.data(), c8.data());
    }

    #[test]
    fn every_row_is_assigned_once() {
        let t = clustered_table(120, 8, 5, 2);
        let ivf = IvfRetriever::build(&t, &ivf_cfg(2, false));
        assert_eq!(ivf.assign.len(), 120);
        let total: usize = ivf.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 120);
        for (c, members) in ivf.clusters.iter().enumerate() {
            assert!(members.windows(2).all(|w| w[0] < w[1]), "cluster {c} not ascending");
        }
    }

    #[test]
    fn probing_few_clusters_still_finds_most_neighbours() {
        let t = clustered_table(400, 16, 8, 3);
        let q = clustered_table(50, 16, 8, 99);
        let exact = ExactRetriever::new(&t).search(&q, 10);
        let ivf = IvfRetriever::build(&t, &ivf_cfg(3, false));
        let approx = ivf.search(&q, 10);
        let mut hits = 0usize;
        for (e, a) in exact.iter().zip(&approx) {
            let truth: Vec<usize> = e.iter().map(|&(i, _)| i).collect();
            hits += a.iter().filter(|&&(i, _)| truth.contains(&i)).count();
        }
        let recall = hits as f64 / (50.0 * 10.0);
        assert!(recall > 0.6, "recall@10 {recall} too low for clustered data");
    }

    #[test]
    fn quantized_scan_rescores_exactly() {
        let t = clustered_table(200, 12, 4, 4);
        let q = clustered_table(20, 12, 4, 5);
        let plain = IvfRetriever::build(&t, &ivf_cfg(2, false)).search(&q, 5);
        let quant = IvfRetriever::build(&t, &ivf_cfg(2, true)).search(&q, 5);
        // Same probed clusters; scores of any shared id must be the exact
        // f32 cosine in both (re-scoring discards the quantized value).
        for (p, qh) in plain.iter().zip(&quant) {
            for &(id, s) in qh {
                if let Some(&(_, ps)) = p.iter().find(|&&(pid, _)| pid == id) {
                    assert_eq!(s.to_bits(), ps.to_bits(), "id {id}");
                }
            }
        }
    }

    #[test]
    fn single_row_and_empty_tables() {
        let one = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let q = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let ivf = IvfRetriever::build(&one, &ivf_cfg(1, true));
        let hits = ivf.search(&q, 3);
        assert_eq!(hits[0].len(), 1);
        assert_eq!(hits[0][0].0, 0);

        let empty = Tensor::zeros(&[0, 2]);
        let ivf = IvfRetriever::build(&empty, &ivf_cfg(1, false));
        assert!(ivf.is_empty());
        assert_eq!(ivf.search(&q, 3), vec![Vec::<Hit>::new()]);
    }

    fn spill(t: &Tensor, dir: &std::path::Path, shard_rows: usize) -> EmbeddingShards {
        let (n, d) = (t.shape()[0], t.shape()[1]);
        let shards = EmbeddingShards::open_or_create(dir, n, d, shard_rows, 1).unwrap();
        for s in 0..shards.n_shards() {
            let (r0, r1) = shards.shard_range(s);
            let block = Tensor::from_vec(t.data()[r0 * d..r1 * d].to_vec(), &[r1 - r0, d]);
            shards.write_shard(s, &block).unwrap();
        }
        shards
    }

    fn shards_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sdea_ivf_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_built_index_is_invariant_to_shard_height() {
        let t = clustered_table(150, 8, 4, 7);
        let base = shards_dir("height");
        let cfg = ivf_cfg(2, true);
        let reference = IvfRetriever::build_from_shards(&spill(&t, &base.join("h150"), 150), &cfg)
            .expect("build from one shard");
        for shard_rows in [1usize, 23] {
            let dir = base.join(format!("h{shard_rows}"));
            let idx = IvfRetriever::build_from_shards(&spill(&t, &dir, shard_rows), &cfg)
                .expect("build from shards");
            assert_eq!(idx.assign, reference.assign, "height {shard_rows}");
            assert_eq!(idx.to_bytes(), reference.to_bytes(), "height {shard_rows}");
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn shard_built_index_with_probe_all_matches_exact_bitwise() {
        let t = clustered_table(120, 8, 5, 8);
        let q = clustered_table(15, 8, 5, 88);
        let base = shards_dir("exact");
        let cfg = ivf_cfg(0, false);
        let idx = IvfRetriever::build_from_shards(&spill(&t, &base, 17), &cfg)
            .expect("build from shards");
        let exact = ExactRetriever::new(&t).search(&q, 10);
        for (e, s) in exact.iter().zip(idx.search(&q, 10)) {
            assert_eq!(e.len(), s.len());
            for (&(ei, es), &(si, ss)) in e.iter().zip(&s) {
                assert_eq!(ei, si);
                assert_eq!(es.to_bits(), ss.to_bits());
            }
        }
        // Approximate probing still recalls well from a shard-built index.
        let mut approx = IvfRetriever::build_from_shards(&spill(&t, &base, 17), &ivf_cfg(3, false))
            .expect("build approx");
        approx.set_nprobe(3);
        let hits: usize = exact
            .iter()
            .zip(approx.search(&q, 10))
            .map(|(e, a)| {
                let truth: Vec<usize> = e.iter().map(|&(i, _)| i).collect();
                a.iter().filter(|&&(i, _)| truth.contains(&i)).count()
            })
            .sum();
        assert!(hits as f64 / 150.0 > 0.6, "recall {hits}/150 too low");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn rebuild_is_bit_identical() {
        let t = clustered_table(150, 8, 4, 6);
        let a = IvfRetriever::build(&t, &ivf_cfg(2, true));
        let b = IvfRetriever::build(&t, &ivf_cfg(2, true));
        assert_eq!(a.assign, b.assign);
        assert_eq!(a.centroids.data(), b.centroids.data());
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
