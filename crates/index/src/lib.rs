//! # sdea-index
//!
//! The retrieval abstraction layer: every ranking path in the workspace —
//! negative-candidate generation, bootstrap mutual-nearest pairs, eval
//! top-k / Hits@K / CSLS neighbourhood means — retrieves target entities
//! through the [`Retriever`] trait instead of materializing and scanning a
//! full `n×m` similarity matrix itself.
//!
//! Two interchangeable backends:
//!
//! * [`ExactRetriever`] — a thin wrapper over the blocked cosine matmul
//!   (`normalized_view` + `matmul_t` + per-row top-k). Bit-identical to the
//!   historical `cosine_matrix` + `top_k_rows` path by construction.
//! * [`IvfRetriever`] — IVF-style coarse clustering: a deterministic
//!   seeded k-means over the L2-normalized table assigns every row to one
//!   of `nlist` clusters; a query probes the `nprobe` nearest centroids and
//!   scores only their members. With `quantize`, the member scan runs over
//!   an int8 scalar-quantized store ([`sdea_tensor::qkernels`], ~4x memory
//!   cut) and the quantized shortlist is re-scored exactly in `f32`. With
//!   `nprobe = 0` (= all clusters) the search bypasses to the exact kernel,
//!   so results are bit-identical to [`ExactRetriever`] at any
//!   `SDEA_THREADS` budget — the equivalence suites assert this bitwise.
//!
//! Scores are always cosine similarities; ordering and NaN handling follow
//! the workspace-wide [`desc_nan_last`] total order (ties broken by lower
//! index). Built IVF structures persist as `SDIX` blobs through the same
//! atomic container format as checkpoints (see [`ivf`]).

#![forbid(unsafe_code)]

pub mod exact;
pub mod ivf;

pub use exact::ExactRetriever;
pub use ivf::{IvfRetriever, INDEX_KIND};
use sdea_tensor::{desc_nan_last, Tensor};
use std::cmp::Ordering;
use std::sync::OnceLock;

/// One retrieval result: `(row index into the indexed table, cosine score)`.
pub type Hit = (usize, f32);

/// Which retrieval backend to build.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Exact blocked cosine scan — today's behaviour, bit-for-bit.
    Exact,
    /// IVF coarse clustering with optional int8 quantized member scan.
    Ivf,
}

/// Retrieval configuration, carried by `SdeaConfig::index`.
///
/// The default (`Exact`) reproduces the historical brute-force paths
/// exactly; `Ivf` trades recall for sub-linear candidate scans. Because an
/// approximate index changes which negatives and bootstrap pairs training
/// sees, this struct participates in the checkpoint config fingerprint —
/// it is a result-shaping hyper-parameter, not an execution knob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexConfig {
    /// Backend selector.
    pub kind: IndexKind,
    /// Number of k-means clusters; `0` = auto (`⌈√n⌉`, clamped to `n`).
    pub nlist: usize,
    /// Clusters probed per query; `0` = all (exact search, the default).
    pub nprobe: usize,
    /// Scan cluster members through the int8 quantized store, re-scoring
    /// the shortlist exactly in `f32`. Irrelevant while `nprobe` = all.
    pub quantize: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig { kind: IndexKind::Exact, nlist: 0, nprobe: 0, quantize: false }
    }
}

impl IndexConfig {
    /// The effective cluster count for a table of `n` rows: the configured
    /// `nlist` (clamped to `n`), or `⌈√n⌉` when 0.
    pub fn effective_nlist(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let auto = (n as f64).sqrt().ceil() as usize;
        let raw = if self.nlist == 0 { auto } else { self.nlist };
        raw.clamp(1, n)
    }

    /// The effective probe count against `nlist` clusters; `0` = all.
    pub fn effective_nprobe(&self, nlist: usize) -> usize {
        if self.nprobe == 0 {
            nlist
        } else {
            self.nprobe.min(nlist)
        }
    }
}

/// A nearest-neighbour retriever over one embedding table.
///
/// `search` returns, for every query row, the top-`k` indexed rows by
/// cosine similarity, descending under [`desc_nan_last`] with ties broken
/// by lower index. Queries are raw (un-normalized) embeddings; every
/// backend normalizes the batch once through
/// [`Tensor::normalized_view`]. Implementations parallelize internally on
/// `sdea_tensor::par` and are bit-identical at any thread budget.
pub trait Retriever: Send + Sync {
    /// Top-`k` hits per query row of `queries: [nq, d]`.
    fn search(&self, queries: &Tensor, k: usize) -> Vec<Vec<Hit>>;
    /// Number of indexed rows.
    fn len(&self) -> usize;
    /// Whether the index holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Embedding width of the indexed table.
    fn dim(&self) -> usize;
}

/// Builds the retriever selected by `cfg` over `emb: [n, d]`.
pub fn build_retriever(emb: &Tensor, cfg: &IndexConfig) -> Box<dyn Retriever> {
    match cfg.kind {
        IndexKind::Exact => Box::new(ExactRetriever::new(emb)),
        IndexKind::Ivf => Box::new(IvfRetriever::build(emb, cfg)),
    }
}

/// Indices *and scores* of the `k` largest values of `scores`, descending
/// under [`desc_nan_last`] (NaN ranks worst), ties broken by lower index.
/// `k` is clamped to `scores.len()`.
///
/// This is the workspace's one top-k selection kernel:
/// `sdea_eval::top_k_indices` is this with the scores dropped. Partial
/// selection over a small sorted buffer — `O(len · k)` worst case, which
/// beats a full sort for the small `k` retrieval uses.
pub fn top_k_scored(scores: &[f32], k: usize) -> Vec<Hit> {
    let mut best = Vec::new();
    top_k_scored_into(scores, k, &mut best);
    best
}

/// [`top_k_scored`] writing into a caller-owned buffer (cleared first).
/// Hot per-row loops reuse one selection buffer across thousands of rows
/// instead of allocating a fresh one per row; the result is identical.
pub fn top_k_scored_into(scores: &[f32], k: usize, best: &mut Vec<Hit>) {
    best.clear();
    let k = k.min(scores.len());
    if k == 0 {
        return;
    }
    best.reserve(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        let beats = |t: f32| desc_nan_last(s, t) == Ordering::Less;
        if best.len() < k || beats(best[best.len() - 1].1) {
            let pos = best.iter().position(|&(_, bs)| beats(bs)).unwrap_or(best.len());
            best.insert(pos, (i, s));
            if best.len() > k {
                best.pop();
            }
        }
    }
}

/// Pre-registered observability counters for the retrieval layer, so hot
/// search loops pay one atomic add per event and no registry lock.
pub(crate) struct Counters {
    /// Clusters probed across all IVF queries.
    pub probes: sdea_obs::Counter,
    /// Candidate rows gathered from probed clusters before any re-scoring.
    pub shortlist_len: sdea_obs::Counter,
    /// Rows scored exactly in `f32` (shortlist re-scores and exact scans).
    pub exact_rescored: sdea_obs::Counter,
}

pub(crate) fn counters() -> &'static Counters {
    static C: OnceLock<Counters> = OnceLock::new();
    C.get_or_init(|| Counters {
        probes: sdea_obs::counter("index.probes"),
        shortlist_len: sdea_obs::counter("index.shortlist_len"),
        exact_rescored: sdea_obs::counter("index.exact_rescored"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_scored_orders_and_ties_by_index() {
        let scores = [0.1, 0.9, 0.5, 0.9, -1.0];
        assert_eq!(top_k_scored(&scores, 3), vec![(1, 0.9), (3, 0.9), (2, 0.5)]);
        assert_eq!(top_k_scored(&[1.0, 2.0], 10), vec![(1, 2.0), (0, 1.0)]);
        assert!(top_k_scored(&[], 3).is_empty());
        assert!(top_k_scored(&[1.0], 0).is_empty());
    }

    #[test]
    fn top_k_scored_ranks_nan_last() {
        let scores = [0.2, f32::NAN, 0.9, f32::NAN, -0.5];
        let idx: Vec<usize> = top_k_scored(&scores, 5).into_iter().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![2, 0, 4, 1, 3]);
    }

    #[test]
    fn effective_parameters_clamp() {
        let cfg = IndexConfig { kind: IndexKind::Ivf, nlist: 0, nprobe: 0, quantize: false };
        assert_eq!(cfg.effective_nlist(100), 10);
        assert_eq!(cfg.effective_nlist(0), 0);
        assert_eq!(cfg.effective_nprobe(10), 10, "nprobe 0 probes everything");
        let cfg = IndexConfig { nlist: 64, nprobe: 99, ..cfg };
        assert_eq!(cfg.effective_nlist(16), 16, "nlist clamps to n");
        assert_eq!(cfg.effective_nprobe(8), 8, "nprobe clamps to nlist");
    }

    #[test]
    fn default_config_is_exact() {
        assert_eq!(IndexConfig::default().kind, IndexKind::Exact);
    }
}
