//! The exact backend: blocked cosine matmul + per-row top-k.
//!
//! Operation-for-operation the historical `cosine_matrix` + `top_k_rows`
//! path — the target table is normalized once at construction through the
//! shared [`Tensor::normalized_view`] helper (instead of once per call),
//! queries are normalized once per batch, and the product rides the tiled
//! `matmul_t` kernel. Bit-identity with the pre-refactor path is asserted
//! by the retriever-equivalence suites.

use crate::{counters, top_k_scored, Hit, Retriever};
use sdea_tensor::{par_map_collect, Tensor};

/// Exact cosine retriever over an embedding table.
pub struct ExactRetriever {
    /// The indexed table, rows L2-normalized at construction.
    norm: Tensor,
}

impl ExactRetriever {
    /// Indexes `emb: [n, d]`, normalizing its rows once.
    pub fn new(emb: &Tensor) -> Self {
        assert_eq!(emb.rank(), 2, "ExactRetriever expects a rank-2 table");
        ExactRetriever { norm: emb.normalized_view() }
    }

    /// The normalized table (for callers that also need the raw scores).
    pub fn normalized(&self) -> &Tensor {
        &self.norm
    }
}

impl Retriever for ExactRetriever {
    fn search(&self, queries: &Tensor, k: usize) -> Vec<Vec<Hit>> {
        assert_eq!(queries.rank(), 2, "search expects rank-2 queries");
        assert_eq!(queries.shape()[1], self.dim(), "embedding width mismatch");
        let _span = sdea_obs::span("index.search_exact");
        let (nq, m) = (queries.shape()[0], self.len());
        counters().exact_rescored.add((nq * m) as u64);
        let sim = queries.normalized_view().matmul_t(&self.norm);
        par_map_collect(nq, m.max(1), |i| top_k_scored(sim.row(i), k))
    }

    fn len(&self) -> usize {
        self.norm.shape()[0]
    }

    fn dim(&self) -> usize {
        self.norm.shape()[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_cosine_not_magnitude() {
        // Target 2 points the same way as the query; target 1 is close but
        // off-axis; magnitudes are scrambled to prove normalization.
        let tgt = Tensor::from_vec(vec![0.0, 5.0, 10.0, 1.0, 3.0, 0.0], &[3, 2]);
        let q = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let r = ExactRetriever::new(&tgt);
        let hits = r.search(&q, 2);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][0].0, 2);
        assert_eq!(hits[0][1].0, 1);
        assert!(hits[0][0].1 > hits[0][1].1);
    }

    #[test]
    fn zero_rows_score_zero_not_nan() {
        let tgt = Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.0], &[2, 2]);
        let q = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let hits = ExactRetriever::new(&tgt).search(&q, 2);
        assert!(hits[0].iter().all(|&(_, s)| s == 0.0), "{:?}", hits[0]);
    }

    #[test]
    fn empty_index_returns_empty_hits() {
        let tgt = Tensor::zeros(&[0, 4]);
        let q = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[1, 4]);
        let r = ExactRetriever::new(&tgt);
        assert!(r.is_empty());
        assert_eq!(r.search(&q, 5), vec![Vec::<Hit>::new()]);
    }
}
