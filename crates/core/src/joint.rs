//! Joint entity representation (paper Section III-C, Eq. 16–17).
//!
//! `H_m(e) = MLP([H_a(e); H_r(e)])` and the final embedding
//! `H_ent(e) = [H_r(e); H_a(e); H_m(e)]`. During Algorithm 3 the loss is
//! computed on `[H_r; H_m]` (the trainable parts); `H_a` is frozen.

use sdea_tensor::{init, Graph, ParamId, ParamStore, Rng, Tensor, Var};

/// The joint MLP head.
pub struct JointHead {
    w: ParamId,
    b: ParamId,
}

impl JointHead {
    /// Registers the `[2d -> d]` joint projection.
    pub fn new(d: usize, store: &mut ParamStore, rng: &mut Rng) -> Self {
        JointHead {
            w: store.add("joint.w", init::xavier_uniform(&[2 * d, d], rng)),
            b: store.add("joint.b", Tensor::zeros(&[d])),
        }
    }

    /// `H_m = MLP([H_a; H_r])` (Eq. 16).
    pub fn h_m(&self, g: &Graph, store: &ParamStore, h_a: Var, h_r: Var) -> Var {
        let cat = g.concat_cols(&[h_a, h_r]);
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        g.tanh(g.add_bias(g.matmul(cat, w), b))
    }

    /// The training-time embedding `[H_r; H_m]` (Algorithm 3, line 9).
    pub fn train_embedding(&self, g: &Graph, store: &ParamStore, h_a: Var, h_r: Var) -> Var {
        let h_m = self.h_m(g, store, h_a, h_r);
        g.concat_cols(&[h_r, h_m])
    }

    /// The final embedding `H_ent = [H_r; H_a; H_m]` (Eq. 17).
    pub fn full_embedding(&self, g: &Graph, store: &ParamStore, h_a: Var, h_r: Var) -> Var {
        let h_m = self.h_m(g, store, h_a, h_r);
        g.concat_cols(&[h_r, h_a, h_m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let mut rng = Rng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let head = JointHead::new(8, &mut store, &mut rng);
        let g = Graph::new();
        let ha = g.constant(Tensor::rand_normal(&[3, 8], 1.0, &mut rng));
        let hr = g.constant(Tensor::rand_normal(&[3, 8], 1.0, &mut rng));
        assert_eq!(g.value(head.h_m(&g, &store, ha, hr)).shape(), &[3, 8]);
        assert_eq!(g.value(head.train_embedding(&g, &store, ha, hr)).shape(), &[3, 16]);
        assert_eq!(g.value(head.full_embedding(&g, &store, ha, hr)).shape(), &[3, 24]);
    }

    #[test]
    fn full_embedding_contains_h_a_verbatim() {
        let mut rng = Rng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let head = JointHead::new(4, &mut store, &mut rng);
        let g = Graph::new();
        let ha_t = Tensor::rand_normal(&[2, 4], 1.0, &mut rng);
        let ha = g.constant(ha_t.clone());
        let hr = g.constant(Tensor::rand_normal(&[2, 4], 1.0, &mut rng));
        let full = g.value_cloned(head.full_embedding(&g, &store, ha, hr));
        // columns 4..8 are H_a
        for i in 0..2 {
            for j in 0..4 {
                assert_eq!(full.at2(i, 4 + j), ha_t.at2(i, j));
            }
        }
    }

    #[test]
    fn grads_reach_joint_weights() {
        let mut rng = Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let head = JointHead::new(4, &mut store, &mut rng);
        let g = Graph::new();
        let ha = g.constant(Tensor::rand_normal(&[2, 4], 1.0, &mut rng));
        let hr = g.constant(Tensor::rand_normal(&[2, 4], 1.0, &mut rng));
        let emb = head.train_embedding(&g, &store, ha, hr);
        let loss = g.mean_all(g.square(emb));
        g.backward(loss);
        assert_eq!(g.accumulate_param_grads(&mut store), 2);
    }
}
