//! The attribute embedding module (paper Section III-A and Algorithm 2).
//!
//! `H_a(e) = MLP(BERT("[CLS]" || S(e)))` — Eq. 5–7 — where the transformer
//! is our pre-trained [`sdea_lm::TransformerLm`]. [`AttrModule::fit`]
//! implements Algorithm 2: per epoch, embed all entities, regenerate the
//! nearest-neighbour candidate set, then fine-tune the transformer + MLP
//! end-to-end with the margin ranking loss (Eq. 18), early-stopping on
//! validation Hits@1.

use crate::candidates::CandidateSet;
use crate::checkpoint::{self, Checkpointer};
use crate::config::{Pooling, SdeaConfig};
use crate::loss::margin_ranking_loss;
use sdea_eval::evaluate_ranking_blocked;
use sdea_kg::EntityId;
use sdea_lm::{MlmPretrainer, TokenBatch, TransformerLm};
use sdea_tensor::{
    init, Adam, CsrMatrix, EmbeddingShards, GradClip, Graph, Optimizer, ParamId, ParamStore, Rng,
    Tensor, Var,
};
use sdea_text::{Tokenizer, WordPieceTrainer};
use std::sync::Arc;

/// Progress record of one fine-tuning run.
#[derive(Clone, Debug, Default)]
pub struct AttrFitReport {
    /// Mean margin loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation Hits@1 per epoch.
    pub valid_hits1: Vec<f64>,
    /// Epoch whose checkpoint was restored.
    pub best_epoch: usize,
}

/// The attribute embedding module: tokenizer + pre-trained transformer +
/// projection MLP.
pub struct AttrModule {
    /// All trainable weights (LM + head).
    pub store: ParamStore,
    lm: TransformerLm,
    tokenizer: Tokenizer,
    mlp_w: ParamId,
    mlp_b: ParamId,
    /// Per-token-id inverse document frequency over the build corpus
    /// (used by [`crate::config::Pooling::IdfMean`]).
    idf: Vec<f32>,
    cfg: SdeaConfig,
}

impl AttrModule {
    /// Builds the module: trains a WordPiece vocabulary on `corpus`,
    /// pre-trains the transformer with masked-LM (the paper's "pre-trained
    /// BERT"), and attaches the `hidden -> embed_dim` projection.
    pub fn build(cfg: &SdeaConfig, corpus: &[String], rng: &mut Rng) -> Self {
        let _span = sdea_obs::span("attr.build");
        let vocab =
            WordPieceTrainer::new(cfg.vocab_budget).train(corpus.iter().map(|s| s.as_str()));
        let tokenizer = Tokenizer::new(vocab);
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(cfg.lm_config(tokenizer.vocab().len()), &mut store, rng);

        // --- masked-LM pre-training ---
        // Token/position embeddings stay frozen during MLM: with a tiny
        // model, distributional training would collapse the identity of
        // anchor tokens (all years become alike), destroying the lexical
        // signal entity alignment depends on. The encoder blocks still
        // learn contextual processing. (A 110M-parameter BERT does not
        // have this problem; see DESIGN.md.)
        if cfg.mlm_epochs > 0 && !corpus.is_empty() {
            store.set_trainable(lm.token_embedding_id(), false);
            store.set_trainable(lm.position_embedding_id(), false);
            let mut order: Vec<usize> = (0..corpus.len()).collect();
            rng.shuffle(&mut order);
            order.truncate(cfg.mlm_corpus_cap);
            let rows: Vec<(Vec<u32>, Vec<u8>)> = order
                .iter()
                .map(|&i| {
                    let e = tokenizer.encode(&corpus[i], cfg.max_seq);
                    (e.ids, e.mask)
                })
                .collect();
            let pre = MlmPretrainer::new(&lm, &mut store, rng);
            pre.pretrain(
                &lm,
                &mut store,
                &rows,
                tokenizer.vocab(),
                cfg.mlm_epochs,
                cfg.mlm_batch,
                cfg.mlm_lr,
                rng,
            );
            store.set_trainable(lm.token_embedding_id(), true);
            store.set_trainable(lm.position_embedding_id(), true);
        }

        let mlp_w =
            store.add("attr.mlp.w", init::xavier_uniform(&[cfg.lm_hidden, cfg.embed_dim], rng));
        let mlp_b = store.add("attr.mlp.b", Tensor::zeros(&[cfg.embed_dim]));

        // IDF over the corpus for weighted pooling.
        let v = tokenizer.vocab().len();
        let mut df = vec![0.0f32; v];
        let mut n_docs = 0.0f32;
        for line in corpus {
            let ids = tokenizer.text_to_ids(line);
            let set: std::collections::BTreeSet<u32> = ids.into_iter().collect();
            for t in set {
                df[t as usize] += 1.0;
            }
            n_docs += 1.0;
        }
        let idf: Vec<f32> =
            df.iter().map(|&d| ((n_docs + 1.0) / (d + 1.0)).ln().max(0.05)).collect();
        AttrModule { store, lm, tokenizer, mlp_w, mlp_b, idf, cfg: cfg.clone() }
    }

    /// The trained tokenizer.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Pre-tokenizes all entity attribute sequences of a KG.
    pub fn token_cache(&self, sequences: &[String]) -> Vec<Vec<u32>> {
        sequences.iter().map(|s| self.tokenizer.text_to_ids(s)).collect()
    }

    /// The module's configuration (persisted by [`crate::encoder_io`]).
    pub fn config(&self) -> &SdeaConfig {
        &self.cfg
    }

    /// The per-token-id IDF table (persisted by [`crate::encoder_io`]).
    pub fn idf(&self) -> &[f32] {
        &self.idf
    }

    // --- query-time entry points (online serving) ---------------------

    /// Tokenizes one free-text query — the cacheable half of
    /// [`AttrModule::embed_one`]. Serving layers keep these rows warm
    /// across requests instead of re-running the subword pass.
    pub fn tokenize_query(&self, text: &str) -> Vec<u32> {
        self.tokenizer.text_to_ids(text)
    }

    /// Embeds pre-tokenized query rows in eval mode: `H_a` as
    /// `[rows.len(), embed_dim]`. Each row's embedding is independent of
    /// the batch it rides in (fixed-length padding, per-row pooling), so a
    /// serving batcher may coalesce arbitrary concurrent queries and still
    /// return bitwise-identical vectors — pinned by the serve-layer
    /// determinism suite.
    pub fn embed_token_rows(&self, rows: &[Vec<u32>]) -> Tensor {
        let idx: Vec<usize> = (0..rows.len()).collect();
        // Eval-mode forwards draw no randomness; see `embed_rows`.
        let mut rng = Rng::seed_from_u64(0);
        self.embed_rows(rows, &idx, &mut rng)
    }

    /// Embeds a batch of free-text queries (tokenize + embed in one call).
    pub fn embed_batch(&self, texts: &[String]) -> Tensor {
        let rows: Vec<Vec<u32>> = texts.iter().map(|t| self.tokenize_query(t)).collect();
        self.embed_token_rows(&rows)
    }

    /// Embeds one free-text query: `H_a` as `[1, embed_dim]`.
    pub fn embed_one(&self, text: &str) -> Tensor {
        self.embed_token_rows(std::slice::from_ref(&self.tokenize_query(text)))
    }

    /// Rebuilds a module from persisted parts (see [`crate::encoder_io`]):
    /// re-registers the transformer + MLP parameters deterministically by
    /// name, then overwrites every tensor from `saved`. Fails (typed, no
    /// panic) when the saved store disagrees with the architecture `cfg`
    /// implies, or the IDF table does not cover the vocabulary.
    pub fn from_parts(
        cfg: SdeaConfig,
        tokenizer: Tokenizer,
        saved: &ParamStore,
        idf: Vec<f32>,
    ) -> Result<Self, String> {
        let vocab_len = tokenizer.vocab().len();
        cfg.lm_config(vocab_len).validate()?;
        if idf.len() != vocab_len {
            return Err(format!(
                "idf table has {} entries for a {vocab_len}-token vocabulary",
                idf.len()
            ));
        }
        let mut store = ParamStore::new();
        // Throwaway init: registration fixes names and shapes, then the
        // saved store overwrites every value by name.
        let mut init_rng = Rng::seed_from_u64(0);
        let lm = TransformerLm::new(cfg.lm_config(vocab_len), &mut store, &mut init_rng);
        let mlp_w = store.add(
            "attr.mlp.w",
            init::xavier_uniform(&[cfg.lm_hidden, cfg.embed_dim], &mut init_rng),
        );
        let mlp_b = store.add("attr.mlp.b", Tensor::zeros(&[cfg.embed_dim]));
        store.restore_from_named(saved)?;
        Ok(AttrModule { store, lm, tokenizer, mlp_w, mlp_b, idf, cfg })
    }

    /// Forward pass on a batch of token rows: returns `H_a` as `[b, d]`.
    fn embed_batch_var(
        &self,
        g: &Graph,
        cache: &[Vec<u32>],
        ids: &[EntityId],
        training: bool,
        rng: &mut Rng,
    ) -> Var {
        let rows: Vec<sdea_text::Encoded> = ids
            .iter()
            .map(|&e| self.tokenizer.encode_ids(&cache[e.0 as usize], self.cfg.max_seq))
            .collect();
        let batch = TokenBatch::from_encoded(&rows);
        let (embedded, final_hidden) =
            self.lm.forward_layers(g, &self.store, &batch, training, rng);
        // Layer mix: average of the embedding-layer states (identity
        // preserving) and the final contextual states. A deep pre-trained
        // BERT keeps token identity through its residual stream; a small
        // MLM-trained encoder does not, so we tap both ends explicitly.
        let hidden = g.scale(g.add(embedded, final_hidden), 0.5);
        let pooled = match self.cfg.pooling {
            Pooling::Cls => self.lm.cls_states(g, hidden, &batch),
            Pooling::Mean | Pooling::IdfMean => {
                // (Weighted) masked mean over token states via a constant
                // sparse averaging matrix [b, b*s].
                let (b, s) = (batch.b, batch.s);
                let idf_weight = |tok: u32| -> f32 {
                    if self.cfg.pooling == Pooling::IdfMean {
                        self.idf.get(tok as usize).copied().unwrap_or(1.0)
                    } else {
                        1.0
                    }
                };
                let mut triplets = Vec::with_capacity(b * s);
                for i in 0..b {
                    let mut total = 0.0f32;
                    for j in 0..s {
                        if batch.mask[i * s + j] == 1 && j > 0 {
                            total += idf_weight(batch.ids[i * s + j]);
                        }
                    }
                    if total <= 0.0 {
                        // only [CLS] present (empty attribute sequence)
                        triplets.push((i, i * s, 1.0));
                        continue;
                    }
                    for j in 1..s {
                        if batch.mask[i * s + j] == 1 {
                            let w = idf_weight(batch.ids[i * s + j]) / total;
                            triplets.push((i, i * s + j, w));
                        }
                    }
                }
                let avg = Arc::new(CsrMatrix::from_triplets(b, b * s, &triplets));
                g.spmm(avg, hidden)
            }
        };
        let w = g.param(&self.store, self.mlp_w);
        let b = g.param(&self.store, self.mlp_b);
        let out = g.add_bias(g.matmul(pooled, w), b);
        if self.cfg.normalize_embeddings {
            g.l2_normalize_rows(out)
        } else {
            out
        }
    }

    /// Embeds every entity (rows = entity ids) in eval mode. Batches fan
    /// out across the thread budget; each worker builds its own tape, so
    /// results land in entity order and are identical at any thread count.
    pub fn embed_all(&self, cache: &[Vec<u32>], rng: &mut Rng) -> Tensor {
        let rows: Vec<usize> = (0..cache.len()).collect();
        self.embed_rows(cache, &rows, rng)
    }

    /// Embeds only the given `cache` rows, in `rows` order, viewing the
    /// shared token cache by index instead of copying token rows into a
    /// temporary sub-cache (the per-epoch candidate regeneration in
    /// [`AttrModule::fit`] used to clone every source row each round).
    pub fn embed_rows(&self, cache: &[Vec<u32>], rows: &[usize], rng: &mut Rng) -> Tensor {
        let _span = sdea_obs::span("embed_all");
        // Eval-mode forwards draw no randomness (asserted by the
        // `embed_all_is_deterministic_in_eval` test), so the caller's RNG
        // is left untouched and each worker carries a private
        // deterministically-seeded RNG purely to satisfy the signature.
        let _ = rng;
        let n = rows.len();
        let d = self.cfg.embed_dim;
        let batch = 64usize;
        let n_batches = n.div_ceil(batch);
        let parts = sdea_tensor::par_map_collect(n_batches, 1 << 20, |bi| {
            let start = bi * batch;
            let end = (start + batch).min(n);
            let ids: Vec<EntityId> = rows[start..end].iter().map(|&r| EntityId(r as u32)).collect();
            let mut batch_rng = Rng::seed_from_u64(0x5dea_0000 ^ bi as u64);
            let g = Graph::new();
            let v = self.embed_batch_var(&g, cache, &ids, false, &mut batch_rng);
            g.value_cloned(v)
        });
        let mut out = Tensor::zeros(&[n, d]);
        for (bi, t) in parts.iter().enumerate() {
            let start = bi * batch * d;
            out.data_mut()[start..start + t.data().len()].copy_from_slice(t.data());
        }
        out
    }

    /// Out-of-core [`AttrModule::embed_all`]: embeds `cfg.embed_shard_rows`
    /// entities at a time (0 = all in one shard) and spills each completed
    /// window to `dir` as an atomic checksummed shard
    /// ([`sdea_tensor::shards`]), so only one window of rows plus its tape
    /// is ever live. Every shard write is a checkpoint: a run killed
    /// mid-table reopens the directory (same geometry and `fingerprint`)
    /// and re-embeds only the missing shards. Because eval-mode per-row
    /// embeddings are independent of batch and shard composition (pinned
    /// by `query_entry_points_match_bulk_path_bitwise`), the assembled
    /// table is bit-identical to the in-memory path at any shard height
    /// and thread budget.
    pub fn embed_all_spill(
        &self,
        cache: &[Vec<u32>],
        rng: &mut Rng,
        dir: &std::path::Path,
        fingerprint: u64,
    ) -> std::io::Result<EmbeddingShards> {
        let _span = sdea_obs::span("embed_all_spill");
        let n = cache.len();
        let d = self.cfg.embed_dim;
        let shard_rows =
            if self.cfg.embed_shard_rows == 0 { n.max(1) } else { self.cfg.embed_shard_rows };
        let shards = EmbeddingShards::open_or_create(dir, n, d, shard_rows, fingerprint)?;
        let missing = shards.missing();
        sdea_obs::add("attr.shards_resumed", (shards.n_shards() - missing.len()) as u64);
        for s in missing {
            let (start, end) = shards.shard_range(s);
            let rows: Vec<usize> = (start..end).collect();
            let window = self.embed_rows(cache, &rows, rng);
            shards.write_shard(s, &window)?;
        }
        Ok(shards)
    }

    /// Algorithm 2: fine-tunes the module on seed alignments.
    ///
    /// `cache1`/`cache2` are the token caches of KG1/KG2 (row = entity id);
    /// `train`/`valid` are seed pairs `(e in KG1, e' in KG2)`.
    #[allow(clippy::too_many_arguments)]
    pub fn fit(
        &mut self,
        cache1: &[Vec<u32>],
        cache2: &[Vec<u32>],
        train: &[(EntityId, EntityId)],
        valid: &[(EntityId, EntityId)],
        rng: &mut Rng,
    ) -> AttrFitReport {
        self.fit_resumable(cache1, cache2, train, valid, rng, None)
    }

    /// [`AttrModule::fit`] with checkpoint/resume support. With a
    /// [`Checkpointer`], the loop restores the latest intact attribute-
    /// stage [`crate::checkpoint::StageState`] (weights, Adam moments, RNG
    /// stream, early-stopping bookkeeping) and continues from its epoch —
    /// bit-identically to the uninterrupted run — and writes a new state
    /// every `checkpoint_every` epochs. Checkpoint write failures are
    /// reported and training continues: a failed checkpoint never kills a
    /// healthy run.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_resumable(
        &mut self,
        cache1: &[Vec<u32>],
        cache2: &[Vec<u32>],
        train: &[(EntityId, EntityId)],
        valid: &[(EntityId, EntityId)],
        rng: &mut Rng,
        mut ckpt: Option<&mut Checkpointer>,
    ) -> AttrFitReport {
        let _span = sdea_obs::span("attr.fit");
        let cfg = self.cfg.clone();
        let mut opt = Adam::new(cfg.attr_lr).with_clip(GradClip::GlobalNorm(1.0));
        let mut report = AttrFitReport::default();
        let mut best_hits;
        let mut best_snapshot;
        let mut strikes = 0usize;
        let mut start_epoch = 0usize;
        let resume = ckpt.as_mut().and_then(|c| c.latest_stage_state(checkpoint::Stage::Attr));
        match resume {
            Some(st) if self.store.restore_from_named(&st.store).is_ok() => {
                opt.set_state(st.adam_t, st.adam_m, st.adam_v);
                *rng = Rng::from_state(st.rng);
                best_hits = st.best_hits;
                best_snapshot = st.best_snapshot;
                strikes = st.strikes as usize;
                report.epoch_losses = st.epoch_losses;
                report.valid_hits1 = st.valid_hits1;
                report.best_epoch = st.best_epoch as usize;
                start_epoch = st.next_epoch as usize;
                sdea_obs::add("ckpt.stage_resumes", 1);
            }
            other => {
                if other.is_some() {
                    // Checksums passed but names/shapes disagree with the
                    // deterministically rebuilt model — should be ruled out
                    // by the config fingerprint; surface and start fresh.
                    eprintln!("attr checkpoint incompatible with rebuilt model; starting fresh");
                }
                // The pre-trained state itself is the first early-stopping
                // candidate: if fine-tuning only hurts (possible with few
                // seeds), it is rolled back entirely.
                best_hits = self.validate(cache1, cache2, valid, rng);
                best_snapshot = self.store.snapshot();
            }
        }
        let n_targets = cache2.len();
        let sources: Vec<EntityId> = train.iter().map(|&(e, _)| e).collect();
        // Only the train sources' embeddings are needed for candidate
        // generation (Algorithm 2 line 4); embedding the rest of KG1 every
        // epoch would be wasted work. The sources are embedded as an index
        // view into `cache1` — no token rows are copied per epoch.
        let src_rows: Vec<usize> = sources.iter().map(|e| e.0 as usize).collect();
        // One pool for the whole fine-tuning run: tape buffers freed by one
        // batch's backward are re-used by the next batch's forward.
        let pool = sdea_tensor::BufferPool::new();

        for epoch in start_epoch..cfg.attr_epochs {
            let _span = sdea_obs::span("epoch");
            // Lines 2–4: embed, regenerate candidates.
            let cands = {
                let _span = sdea_obs::span("candidates");
                let emb2_all = self.embed_all(cache2, rng);
                let src_emb = self.embed_rows(cache1, &src_rows, rng);
                CandidateSet::generate_with(
                    &sources,
                    &src_emb,
                    &emb2_all,
                    cfg.n_candidates,
                    &cfg.index,
                )
            };

            // Lines 5–10: margin-loss updates over shuffled train pairs.
            let mut order: Vec<usize> = (0..train.len()).collect();
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            let mut steps = 0usize;
            for chunk in order.chunks(cfg.attr_batch) {
                let anchors: Vec<EntityId> = chunk.iter().map(|&i| train[i].0).collect();
                let pos: Vec<EntityId> = chunk.iter().map(|&i| train[i].1).collect();
                let neg: Vec<EntityId> = chunk
                    .iter()
                    .map(|&i| cands.sample_negative(train[i].0, train[i].1, n_targets, rng))
                    .collect();
                let g = Graph::with_pool(std::rc::Rc::clone(&pool));
                let ha = self.embed_batch_var(&g, cache1, &anchors, true, rng);
                let hp = self.embed_batch_var(&g, cache2, &pos, true, rng);
                let hn = self.embed_batch_var(&g, cache2, &neg, true, rng);
                let loss = margin_ranking_loss(&g, ha, hp, hn, cfg.margin);
                let lv = g.value_cloned(loss).item();
                g.backward(loss);
                g.accumulate_param_grads(&mut self.store);
                opt.step(&mut self.store);
                epoch_loss += lv as f64;
                steps += 1;
                sdea_obs::add("attr.steps", 1);
                sdea_obs::record("attr.batch_loss", lv as f64);
            }
            report.epoch_losses.push((epoch_loss / steps.max(1) as f64) as f32);
            sdea_obs::add("attr.epochs", 1);

            // Line 11: validation Hits@1; early stopping (Section V-A3).
            let hits1 = {
                let _span = sdea_obs::span("validate");
                self.validate(cache1, cache2, valid, rng)
            };
            report.valid_hits1.push(hits1);
            let mut stop = false;
            if hits1 > best_hits {
                best_hits = hits1;
                best_snapshot = self.store.snapshot();
                report.best_epoch = epoch;
                strikes = 0;
            } else {
                strikes += 1;
                if strikes >= cfg.patience {
                    sdea_obs::add("attr.early_stops", 1);
                    stop = true;
                }
            }
            if let Some(c) = ckpt.as_mut() {
                if c.due(epoch) && !stop {
                    let (t, m, v) = opt.state();
                    let state = checkpoint::StageState {
                        next_epoch: (epoch + 1) as u32,
                        rng: rng.state(),
                        store: self.store.clone(),
                        adam_t: t,
                        adam_m: m.to_vec(),
                        adam_v: v.to_vec(),
                        best_snapshot: best_snapshot.clone(),
                        best_hits,
                        best_loss: f64::INFINITY,
                        strikes: strikes as u32,
                        epoch_losses: report.epoch_losses.clone(),
                        valid_hits1: report.valid_hits1.clone(),
                        best_epoch: report.best_epoch as u32,
                    };
                    if let Err(e) = c.record_stage_epoch(checkpoint::Stage::Attr, &state) {
                        eprintln!("attr checkpoint at epoch {epoch} failed: {e}; continuing");
                    }
                }
            }
            if stop {
                break;
            }
        }
        self.store.restore(&best_snapshot);
        report
    }

    /// Validation Hits@1 of the current weights.
    pub fn validate(
        &self,
        cache1: &[Vec<u32>],
        cache2: &[Vec<u32>],
        valid: &[(EntityId, EntityId)],
        rng: &mut Rng,
    ) -> f64 {
        if valid.is_empty() {
            return 0.0;
        }
        let emb2_all = self.embed_all(cache2, rng);
        // embed only the validation sources, viewed in place
        let src_rows: Vec<usize> = valid.iter().map(|&(e, _)| e.0 as usize).collect();
        let src_emb = self.embed_rows(cache1, &src_rows, rng);
        let gold: Vec<usize> = valid.iter().map(|&(_, e)| e.0 as usize).collect();
        // Blocked: only an `eval_block_rows × n2` similarity slab is ever
        // resident, bit-identical to the materialized matrix path.
        evaluate_ranking_blocked(&src_emb, &emb2_all, &gold, self.cfg.eval_block_rows).hits1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A micro "two KGs" setup where aligned entities share anchor tokens.
    fn toy() -> (Vec<String>, Vec<String>, Vec<(EntityId, EntityId)>) {
        let n = 24usize;
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        let mut pairs = Vec::new();
        for i in 0..n {
            // Same "birth year" anchor on both sides, different phrasing.
            s1.push(format!("person alpha{i} born {}", 1900 + i));
            s2.push(format!("celui beta{i} naissance {}", 1900 + i));
            pairs.push((EntityId(i as u32), EntityId(i as u32)));
        }
        (s1, s2, pairs)
    }

    #[test]
    fn build_and_embed_shapes() {
        let (s1, _, _) = toy();
        let mut rng = Rng::seed_from_u64(1);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.mlm_epochs = 0;
        let module = AttrModule::build(&cfg, &s1, &mut rng);
        let cache = module.token_cache(&s1);
        let emb = module.embed_all(&cache, &mut rng);
        assert_eq!(emb.shape(), &[s1.len(), cfg.embed_dim]);
        assert!(emb.all_finite());
    }

    #[test]
    fn fit_improves_validation_hits() {
        let (s1, s2, pairs) = toy();
        let mut rng = Rng::seed_from_u64(2);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.attr_epochs = 6;
        cfg.mlm_epochs = 1;
        let corpus: Vec<String> = s1.iter().chain(&s2).cloned().collect();
        let mut module = AttrModule::build(&cfg, &corpus, &mut rng);
        let cache1 = module.token_cache(&s1);
        let cache2 = module.token_cache(&s2);
        let train = &pairs[..16];
        let valid = &pairs[16..];
        let before = module.validate(&cache1, &cache2, valid, &mut rng);
        let report = module.fit(&cache1, &cache2, train, valid, &mut rng);
        let after = module.validate(&cache1, &cache2, valid, &mut rng);
        assert!(
            after >= before,
            "fine-tuning should not hurt validation: {before} -> {after} ({report:?})"
        );
        assert!(!report.epoch_losses.is_empty());
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn query_entry_points_match_bulk_path_bitwise() {
        let (s1, _, _) = toy();
        let mut rng = Rng::seed_from_u64(5);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.mlm_epochs = 0;
        let module = AttrModule::build(&cfg, &s1, &mut rng);
        let cache = module.token_cache(&s1);
        let bulk = module.embed_all(&cache, &mut rng);
        // Batch query path over the same texts.
        assert_eq!(module.embed_batch(&s1), bulk);
        // Single-query path matches its bulk row exactly.
        let one = module.embed_one(&s1[3]);
        assert_eq!(one.row(0), bulk.row(3));
        // Warm token-cache path (tokenize once, embed later).
        let rows: Vec<Vec<u32>> = s1.iter().map(|t| module.tokenize_query(t)).collect();
        assert_eq!(module.embed_token_rows(&rows), bulk);
    }

    #[test]
    fn embed_all_is_deterministic_in_eval() {
        let (s1, _, _) = toy();
        let mut rng = Rng::seed_from_u64(3);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.mlm_epochs = 0;
        let module = AttrModule::build(&cfg, &s1, &mut rng);
        let cache = module.token_cache(&s1);
        let a = module.embed_all(&cache, &mut rng);
        let b = module.embed_all(&cache, &mut rng);
        assert_eq!(a, b);
    }

    fn spill_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sdea_attr_spill_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The tentpole equivalence: the out-of-core spill path must assemble a
    /// table bit-identical to the in-memory `embed_all` at every shard
    /// height (1, a ragged 7, one-shard-for-everything) and thread budget.
    #[test]
    fn spilled_embedding_matches_in_memory_bitwise() {
        use sdea_tensor::with_thread_budget;
        let (s1, _, _) = toy();
        let mut rng = Rng::seed_from_u64(11);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.mlm_epochs = 0;
        let module = AttrModule::build(&cfg, &s1, &mut rng);
        let cache = module.token_cache(&s1);
        let reference = module.embed_all(&cache, &mut rng);
        let base = spill_dir("equiv");
        for threads in [1usize, 8] {
            for shard_rows in [1usize, 7, 0] {
                // Rebuild from the same seed with only the execution knob
                // changed: identical weights, different spill geometry.
                let mut knob_cfg = cfg.clone();
                knob_cfg.embed_shard_rows = shard_rows;
                let module = AttrModule::build(&knob_cfg, &s1, &mut Rng::seed_from_u64(11));
                let dir = base.join(format!("t{threads}_h{shard_rows}"));
                let spilled = with_thread_budget(threads, || {
                    module.embed_all_spill(&cache, &mut rng, &dir, 42).expect("spill")
                });
                assert!(spilled.is_complete());
                let assembled = spilled.to_tensor().expect("assemble");
                assert_eq!(
                    assembled.data(),
                    reference.data(),
                    "threads {threads} shard_rows {shard_rows}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    /// Kill-and-resume: shard writes are atomic, so a run killed mid-table
    /// leaves a *subset of complete shards* (no partial file — pinned by
    /// the fault-injection suite in `sdea_tensor::shards`). Simulate that
    /// state by deleting two shards of a finished spill, then resume: only
    /// the missing shards are re-embedded (surviving files are untouched
    /// byte-for-byte) and the assembled table is bit-identical.
    #[test]
    fn interrupted_spill_resumes_to_identical_bytes() {
        let (s1, _, _) = toy();
        let mut rng = Rng::seed_from_u64(13);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.mlm_epochs = 0;
        cfg.embed_shard_rows = 7; // 24 rows -> shards of 7,7,7,3
        let module = AttrModule::build(&cfg, &s1, &mut rng);
        let cache = module.token_cache(&s1);
        let reference = module.embed_all(&cache, &mut rng);
        let dir = spill_dir("resume");
        let first = module.embed_all_spill(&cache, &mut rng, &dir, 7).expect("first spill");
        assert_eq!(first.n_shards(), 4);
        // "Kill" after shards 0 and 2 landed: drop 1 and 3.
        let survivor = dir.join("shard_000000.sdes");
        let survivor_bytes = std::fs::read(&survivor).expect("read survivor");
        for s in [1usize, 3] {
            std::fs::remove_file(dir.join(format!("shard_{s:06}.sdes"))).expect("simulate kill");
        }
        let resumed = module.embed_all_spill(&cache, &mut rng, &dir, 7).expect("resume");
        assert!(resumed.is_complete());
        assert_eq!(
            std::fs::read(&survivor).expect("re-read survivor"),
            survivor_bytes,
            "resume must not rewrite surviving shards"
        );
        assert_eq!(resumed.to_tensor().expect("assemble").data(), reference.data());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
