//! Persistence for trained SDEA models.
//!
//! A trained [`crate::SdeaModel`]'s value is its embedding tables; saving
//! them lets alignment be served (ranking, stable matching, incremental
//! queries) without re-training. The format reuses the tensor crate's
//! checkpoint container.

use crate::pipeline::SdeaModel;
use sdea_tensor::serialize::{load_store, save_store};
use sdea_tensor::{ParamId, ParamStore};
use std::io;
use std::path::Path;

const KEYS: [&str; 4] = ["sdea.h_a1", "sdea.h_a2", "sdea.ent1", "sdea.ent2"];

/// Saves the model's embedding tables to `path`.
pub fn save_model(model: &SdeaModel, path: impl AsRef<Path>) -> io::Result<()> {
    let mut store = ParamStore::new();
    store.add(KEYS[0], model.h_a1.clone());
    store.add(KEYS[1], model.h_a2.clone());
    store.add(KEYS[2], model.ent1.clone());
    store.add(KEYS[3], model.ent2.clone());
    save_store(&store, path)
}

/// Loads embedding tables saved by [`save_model`]. Training reports are
/// not persisted and come back empty.
pub fn load_model(path: impl AsRef<Path>) -> io::Result<SdeaModel> {
    let store = load_store(path)?;
    if store.len() != 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected 4 tables, found {}", store.len()),
        ));
    }
    for (i, key) in KEYS.iter().enumerate() {
        if store.name(ParamId(i)) != *key {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("table {i} is {:?}, expected {key:?}", store.name(ParamId(i))),
            ));
        }
    }
    Ok(SdeaModel {
        h_a1: store.value(ParamId(0)).clone(),
        h_a2: store.value(ParamId(1)).clone(),
        ent1: store.value(ParamId(2)).clone(),
        ent2: store.value(ParamId(3)).clone(),
        attr_report: Default::default(),
        rel_report: Default::default(),
        rel_stage: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_tensor::{Rng, Tensor};

    fn fake_model(seed: u64) -> SdeaModel {
        let mut rng = Rng::seed_from_u64(seed);
        let d = 8;
        SdeaModel {
            h_a1: Tensor::rand_normal(&[5, d], 1.0, &mut rng),
            h_a2: Tensor::rand_normal(&[6, d], 1.0, &mut rng),
            ent1: Tensor::rand_normal(&[5, 3 * d], 1.0, &mut rng),
            ent2: Tensor::rand_normal(&[6, 3 * d], 1.0, &mut rng),
            attr_report: Default::default(),
            rel_report: Default::default(),
            rel_stage: None,
        }
    }

    #[test]
    fn round_trip() {
        let model = fake_model(1);
        let dir = std::env::temp_dir().join(format!("sdea_model_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.sdt");
        save_model(&model, &path).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back.h_a1, model.h_a1);
        assert_eq!(back.ent2, model.ent2);
        // loaded model still ranks
        let test = vec![(sdea_kg::EntityId(0), sdea_kg::EntityId(0))];
        let m = back.test_metrics(&test);
        assert!(m.mrr > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("sdea_model_io_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.sdt");
        // a store with the wrong arity
        let mut store = ParamStore::new();
        store.add("x", Tensor::scalar(1.0));
        sdea_tensor::serialize::save_store(&store, &path).unwrap();
        assert!(load_model(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
