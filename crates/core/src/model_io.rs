//! Persistence for trained SDEA models.
//!
//! A trained [`crate::SdeaModel`]'s value is its embedding tables; saving
//! them lets alignment be served (ranking, stable matching, incremental
//! queries) without re-training. The format reuses the tensor crate's
//! checkpoint container.

use crate::pipeline::SdeaModel;
use sdea_tensor::serialize::{load_store, save_store};
use sdea_tensor::{ParamId, ParamStore};
use std::io;
use std::path::Path;

const KEYS: [&str; 4] = ["sdea.h_a1", "sdea.h_a2", "sdea.ent1", "sdea.ent2"];

/// Saves the model's embedding tables to `path`.
pub fn save_model(model: &SdeaModel, path: impl AsRef<Path>) -> io::Result<()> {
    let mut store = ParamStore::new();
    store.add(KEYS[0], model.h_a1.clone());
    store.add(KEYS[1], model.h_a2.clone());
    store.add(KEYS[2], model.ent1.clone());
    store.add(KEYS[3], model.ent2.clone());
    save_store(&store, path)
}

/// Loads embedding tables saved by [`save_model`]. Training reports are
/// not persisted and come back empty.
///
/// Beyond key names and arity, the table shapes are validated so a
/// corrupt or mismatched store fails here with `InvalidData` instead of
/// panicking later inside alignment ranking: every table must be rank-2,
/// the two attribute tables must share one width `d`, and each `ent`
/// table must be `[same rows as its h_a, 3 * d]` (the `[H_r; H_a; H_m]`
/// layout).
pub fn load_model(path: impl AsRef<Path>) -> io::Result<SdeaModel> {
    let store = load_store(path)?;
    if store.len() != 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected 4 tables, found {}", store.len()),
        ));
    }
    for (i, key) in KEYS.iter().enumerate() {
        if store.name(ParamId(i)) != *key {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("table {i} is {:?}, expected {key:?}", store.name(ParamId(i))),
            ));
        }
    }
    validate_shapes(&store)?;
    Ok(SdeaModel {
        h_a1: store.value(ParamId(0)).clone(),
        h_a2: store.value(ParamId(1)).clone(),
        ent1: store.value(ParamId(2)).clone(),
        ent2: store.value(ParamId(3)).clone(),
        attr_report: Default::default(),
        rel_report: Default::default(),
        rel_stage: None,
        attr_module: None,
    })
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Checks the four tables form a consistent model (see [`load_model`]).
fn validate_shapes(store: &sdea_tensor::ParamStore) -> io::Result<()> {
    for (i, key) in KEYS.iter().enumerate() {
        let shape = store.value(ParamId(i)).shape();
        if shape.len() != 2 {
            return Err(invalid(format!("table {key:?} must be rank-2, got {shape:?}")));
        }
    }
    let ha1 = store.value(ParamId(0)).shape().to_vec();
    let ha2 = store.value(ParamId(1)).shape().to_vec();
    let ent1 = store.value(ParamId(2)).shape().to_vec();
    let ent2 = store.value(ParamId(3)).shape().to_vec();
    if ha1[1] != ha2[1] {
        return Err(invalid(format!(
            "attribute tables disagree on embedding width: h_a1 {ha1:?} vs h_a2 {ha2:?}"
        )));
    }
    let d3 = 3 * ha1[1];
    for (ent, ha, ent_key, ha_key) in
        [(&ent1, &ha1, KEYS[2], KEYS[0]), (&ent2, &ha2, KEYS[3], KEYS[1])]
    {
        if ent[0] != ha[0] {
            return Err(invalid(format!(
                "{ent_key:?} has {} rows but {ha_key:?} has {} — entity counts disagree",
                ent[0], ha[0]
            )));
        }
        if ent[1] != d3 {
            return Err(invalid(format!(
                "{ent_key:?} width {} is not 3 x attribute width {} ([H_r; H_a; H_m] layout)",
                ent[1], ha[1]
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_tensor::{Rng, Tensor};

    fn fake_model(seed: u64) -> SdeaModel {
        let mut rng = Rng::seed_from_u64(seed);
        let d = 8;
        SdeaModel {
            h_a1: Tensor::rand_normal(&[5, d], 1.0, &mut rng),
            h_a2: Tensor::rand_normal(&[6, d], 1.0, &mut rng),
            ent1: Tensor::rand_normal(&[5, 3 * d], 1.0, &mut rng),
            ent2: Tensor::rand_normal(&[6, 3 * d], 1.0, &mut rng),
            attr_report: Default::default(),
            rel_report: Default::default(),
            rel_stage: None,
            attr_module: None,
        }
    }

    #[test]
    fn round_trip() {
        let model = fake_model(1);
        let dir = std::env::temp_dir().join(format!("sdea_model_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.sdt");
        save_model(&model, &path).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back.h_a1, model.h_a1);
        assert_eq!(back.ent2, model.ent2);
        // loaded model still ranks
        let test = vec![(sdea_kg::EntityId(0), sdea_kg::EntityId(0))];
        let m = back.test_metrics(&test);
        assert!(m.mrr > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression: a store with the right keys and arity but inconsistent
    /// shapes used to load fine and panic later in `test_metrics`; it must
    /// be rejected at load time with `InvalidData`.
    #[test]
    fn inconsistent_shapes_are_rejected() {
        let dir = std::env::temp_dir().join(format!("sdea_model_io_shape_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shape.sdt");
        let mut rng = Rng::seed_from_u64(2);
        // (mutator, description) pairs: each corrupts one shape invariant
        // of the d = 8 `fake_model`.
        type Mutator = fn(&mut SdeaModel, &mut Rng);
        let cases: [(Mutator, &str); 4] = [
            (|m, r| m.ent1 = Tensor::rand_normal(&[5, 2 * 8], 1.0, r), "ent1 width != 3d"),
            (|m, r| m.ent2 = Tensor::rand_normal(&[4, 3 * 8], 1.0, r), "ent2 rows != h_a2 rows"),
            (|m, r| m.h_a2 = Tensor::rand_normal(&[6, 7], 1.0, r), "h_a widths disagree"),
            (|m, r| m.h_a1 = Tensor::rand_normal(&[5 * 8], 1.0, r), "h_a1 not rank-2"),
        ];
        for (mutate, what) in cases {
            let mut model = fake_model(1);
            mutate(&mut model, &mut rng);
            save_model(&model, &path).unwrap();
            let err = match load_model(&path) {
                Ok(_) => panic!("loaded a model with {what}"),
                Err(e) => e,
            };
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{what}");
        }
        // Sanity: the unmutated model still round-trips after all that.
        save_model(&fake_model(1), &path).unwrap();
        assert!(load_model(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("sdea_model_io_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.sdt");
        // a store with the wrong arity
        let mut store = ParamStore::new();
        store.add("x", Tensor::scalar(1.0));
        sdea_tensor::serialize::save_store(&store, &path).unwrap();
        assert!(load_model(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
