//! Candidate generation (`GenCandidates` in Algorithms 2 and 3): for each
//! source entity, the top-k most similar target entities under the current
//! embeddings. Negatives sampled from this set are *hard* negatives, which
//! is what makes the margin loss effective.

use sdea_index::{build_retriever, IndexConfig, Retriever};
use sdea_kg::EntityId;
use sdea_tensor::{Rng, Tensor};

/// Top-k candidate lists for a set of source entities.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    /// `candidates[i]` = target entity ids ranked by similarity.
    lists: Vec<Vec<EntityId>>,
    /// Source ids in the same order as `lists`.
    sources: Vec<EntityId>,
    index_of: std::collections::HashMap<EntityId, usize>,
}

impl CandidateSet {
    /// Builds candidate lists from embeddings with the default (exact)
    /// retrieval backend — bit-identical to the historical full-matrix
    /// `cosine_matrix` + `top_k_rows` scan.
    ///
    /// `src_emb`: `[n_src, d]` embeddings of `sources`;
    /// `tgt_emb`: `[n_tgt, d]` embeddings of ALL target entities (row = id).
    pub fn generate(sources: &[EntityId], src_emb: &Tensor, tgt_emb: &Tensor, k: usize) -> Self {
        Self::generate_with(sources, src_emb, tgt_emb, k, &IndexConfig::default())
    }

    /// [`CandidateSet::generate`] through the retrieval backend selected by
    /// `index` (`SdeaConfig::index`): exact, or IVF with an optional int8
    /// quantized member scan.
    pub fn generate_with(
        sources: &[EntityId],
        src_emb: &Tensor,
        tgt_emb: &Tensor,
        k: usize,
        index: &IndexConfig,
    ) -> Self {
        let retr = build_retriever(tgt_emb, index);
        Self::from_retriever(sources, src_emb, retr.as_ref(), k)
    }

    /// Builds candidate lists from an already-built [`Retriever`] over the
    /// target table (row = entity id), for callers that amortize one index
    /// across many candidate generations.
    pub fn from_retriever(
        sources: &[EntityId],
        src_emb: &Tensor,
        retr: &dyn Retriever,
        k: usize,
    ) -> Self {
        assert_eq!(src_emb.shape()[0], sources.len());
        let _span = sdea_obs::span("candidates.generate");
        let lists = retr
            .search(src_emb, k)
            .into_iter()
            .map(|row| row.into_iter().map(|(j, _)| EntityId(j as u32)).collect())
            .collect();
        let index_of = sources.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        CandidateSet { lists, sources: sources.to_vec(), index_of }
    }

    /// The candidate list of a source entity.
    pub fn of(&self, source: EntityId) -> &[EntityId] {
        &self.lists[self.index_of[&source]]
    }

    /// Samples a negative for `(source, gold)`: a random candidate of
    /// `source` that is not `gold` (Algorithm 2 line 6). Falls back to a
    /// uniformly random target when every candidate equals the gold.
    ///
    /// Degenerate case: when the target side has at most one entity there
    /// is no entity other than the gold to draw, so the gold itself is
    /// returned (its margin-loss contribution is zero) and the
    /// `candidates.no_negative` warning counter is incremented — the
    /// uniform-fallback loop would otherwise rejection-sample forever.
    pub fn sample_negative(
        &self,
        source: EntityId,
        gold: EntityId,
        n_targets: usize,
        rng: &mut Rng,
    ) -> EntityId {
        let list = self.of(source);
        // Rejection-sample directly against the candidate slice — candidate
        // lists rarely contain the gold more than once, so this terminates
        // in one or two draws without allocating a filtered copy.
        if list.iter().any(|&c| c != gold) {
            loop {
                let c = *rng.choose(list);
                if c != gold {
                    return c;
                }
            }
        }
        if n_targets <= 1 {
            sdea_obs::add("candidates.no_negative", 1);
            return gold;
        }
        loop {
            let c = EntityId(rng.below(n_targets) as u32);
            if c != gold {
                return c;
            }
        }
    }

    /// The sources covered by this set.
    pub fn sources(&self) -> &[EntityId] {
        &self.sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb(rows: &[[f32; 2]]) -> Tensor {
        Tensor::from_vec(rows.iter().flatten().copied().collect(), &[rows.len(), 2])
    }

    #[test]
    fn candidates_ranked_by_similarity() {
        let sources = vec![EntityId(0)];
        let src = emb(&[[1.0, 0.0]]);
        let tgt = emb(&[[0.0, 1.0], [1.0, 0.1], [1.0, 0.0]]);
        let cs = CandidateSet::generate(&sources, &src, &tgt, 2);
        assert_eq!(cs.of(EntityId(0)), &[EntityId(2), EntityId(1)]);
    }

    #[test]
    fn negative_never_equals_gold() {
        let sources = vec![EntityId(5)];
        let src = emb(&[[1.0, 0.0]]);
        let tgt = emb(&[[1.0, 0.0], [0.9, 0.1], [0.8, 0.0]]);
        let cs = CandidateSet::generate(&sources, &src, &tgt, 3);
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..50 {
            let neg = cs.sample_negative(EntityId(5), EntityId(0), 3, &mut rng);
            assert_ne!(neg, EntityId(0));
        }
    }

    /// Regression: `n_targets == 1` with the sole target being the gold
    /// used to spin forever in the uniform-fallback loop (`below(1)` only
    /// ever returns 0). The degenerate guard must terminate and return the
    /// gold, since no true negative exists.
    #[test]
    fn single_target_equal_to_gold_terminates() {
        let sources = vec![EntityId(0)];
        let src = emb(&[[1.0, 0.0]]);
        let tgt = emb(&[[1.0, 0.0]]);
        let cs = CandidateSet::generate(&sources, &src, &tgt, 3);
        let mut rng = Rng::seed_from_u64(3);
        let neg = cs.sample_negative(EntityId(0), EntityId(0), 1, &mut rng);
        assert_eq!(neg, EntityId(0), "degenerate case must return the gold");
    }

    #[test]
    fn fallback_when_all_candidates_are_gold() {
        let sources = vec![EntityId(0)];
        let src = emb(&[[1.0, 0.0]]);
        let tgt = emb(&[[1.0, 0.0], [0.0, 1.0]]);
        let cs = CandidateSet::generate(&sources, &src, &tgt, 1);
        // Only candidate is the gold; must fall back to the other target.
        let mut rng = Rng::seed_from_u64(2);
        let neg = cs.sample_negative(EntityId(0), EntityId(0), 2, &mut rng);
        assert_eq!(neg, EntityId(1));
    }
}
