//! The relation embedding module (paper Section III-B, Eq. 8–15).
//!
//! Input: the (frozen) attribute embeddings of an entity's neighbours,
//! as a padded sequence. A bidirectional GRU produces entity-specific
//! neighbour states `h_t` (forward + backward outputs summed, as in the
//! paper); a global attention vector `ĥ = MLP(h_n)` scores each neighbour
//! by inner product, and `H_r = Σ_t α_t h_t`.
//!
//! Note on Eq. 9: the paper's formula as printed (`h̃ = φ(Wx) + U(r⊙h+b)`)
//! places the candidate-state nonlinearity oddly; it cites the standard
//! GRU of Cho et al. [33], which we implement:
//! `h̃ = φ(W_h x + U_h (r ⊙ h) + b_h)`.
//!
//! [`RelVariant`] provides the ablation switches used by the bench
//! harness: mean pooling instead of attention, and attention directly over
//! attribute embeddings without the BiGRU.

use sdea_tensor::{init, Graph, ParamId, ParamStore, Rng, Tensor, Var};

/// Which aggregation the module uses (Full = the paper's design).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RelVariant {
    /// BiGRU + attention (the paper).
    Full,
    /// BiGRU + uniform mean pooling (ablation: no attention).
    MeanPool,
    /// Attention directly over neighbour attribute embeddings
    /// (ablation: no BiGRU context).
    NoGru,
}

struct GruDir {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
}

/// The relation embedding module.
pub struct RelModule {
    fwd: GruDir,
    bwd: GruDir,
    att_w: ParamId,
    att_b: ParamId,
    d: usize,
    variant: RelVariant,
}

/// A padded neighbour batch: `rows[i]` = attr-table row indices of entity
/// i's neighbours (already capped); all rows padded to the max length.
#[derive(Clone, Debug)]
pub struct NeighborBatch {
    /// Padded neighbour indices, row-major `[b, t_max]` (pad = 0).
    pub indices: Vec<usize>,
    /// 1.0 for real neighbours, 0.0 for padding, `[b, t_max]`.
    pub mask: Vec<f32>,
    /// Batch size.
    pub b: usize,
    /// Padded sequence length (>= 1).
    pub t: usize,
}

impl NeighborBatch {
    /// Builds a padded batch from ragged neighbour lists. Empty lists are
    /// padded to length 1 with a zero mask (their `H_r` is then the zero
    /// vector — callers usually substitute the entity itself instead).
    pub fn from_lists(lists: &[Vec<usize>]) -> Self {
        let b = lists.len();
        let t = lists.iter().map(|l| l.len()).max().unwrap_or(0).max(1);
        let mut indices = vec![0usize; b * t];
        let mut mask = vec![0.0f32; b * t];
        for (i, l) in lists.iter().enumerate() {
            for (j, &n) in l.iter().enumerate() {
                indices[i * t + j] = n;
                mask[i * t + j] = 1.0;
            }
        }
        NeighborBatch { indices, mask, b, t }
    }

    fn col_indices(&self, j: usize) -> Vec<usize> {
        (0..self.b).map(|i| self.indices[i * self.t + j]).collect()
    }

    fn col_mask(&self, j: usize) -> Tensor {
        Tensor::from_vec((0..self.b).map(|i| self.mask[i * self.t + j]).collect(), &[self.b])
    }
}

impl RelModule {
    /// Registers all weights (`d` = attribute embedding dim = GRU width).
    pub fn new(d: usize, variant: RelVariant, store: &mut ParamStore, rng: &mut Rng) -> Self {
        let dir = |tag: &str, store: &mut ParamStore, rng: &mut Rng| GruDir {
            wz: store.add(format!("rel.{tag}.wz"), init::xavier_uniform(&[d, d], rng)),
            uz: store.add(format!("rel.{tag}.uz"), init::xavier_uniform(&[d, d], rng)),
            bz: store.add(format!("rel.{tag}.bz"), Tensor::zeros(&[d])),
            wr: store.add(format!("rel.{tag}.wr"), init::xavier_uniform(&[d, d], rng)),
            ur: store.add(format!("rel.{tag}.ur"), init::xavier_uniform(&[d, d], rng)),
            br: store.add(format!("rel.{tag}.br"), Tensor::zeros(&[d])),
            wh: store.add(format!("rel.{tag}.wh"), init::xavier_uniform(&[d, d], rng)),
            uh: store.add(format!("rel.{tag}.uh"), init::xavier_uniform(&[d, d], rng)),
            bh: store.add(format!("rel.{tag}.bh"), Tensor::zeros(&[d])),
        };
        let fwd = dir("fwd", store, rng);
        let bwd = dir("bwd", store, rng);
        let att_w = store.add("rel.att.w", init::xavier_uniform(&[d, d], rng));
        let att_b = store.add("rel.att.b", Tensor::zeros(&[d]));
        RelModule { fwd, bwd, att_w, att_b, d, variant }
    }

    /// The module's variant.
    pub fn variant(&self) -> RelVariant {
        self.variant
    }

    /// One masked GRU step (Eq. 8–11): positions with mask 0 keep their
    /// previous state.
    fn gru_step(
        &self,
        g: &Graph,
        store: &ParamStore,
        dir: &GruDir,
        x: Var,
        h: Var,
        mask_col: Var,
    ) -> Var {
        let lin = |w: ParamId, u: ParamId, b: ParamId, rh: Var| {
            let wv = g.param(store, w);
            let uv = g.param(store, u);
            let bv = g.param(store, b);
            g.add_bias(g.add(g.matmul(x, wv), g.matmul(rh, uv)), bv)
        };
        let z = g.sigmoid(lin(dir.wz, dir.uz, dir.bz, h)); // update gate, Eq. 10
        let r = g.sigmoid(lin(dir.wr, dir.ur, dir.br, h)); // reset gate, Eq. 8
        let rh = g.mul(r, h);
        let h_tilde = g.tanh(lin(dir.wh, dir.uh, dir.bh, rh)); // Eq. 9
        let one_minus_z = g.one_minus(z);
        let h_new = g.add(g.mul(one_minus_z, h), g.mul(z, h_tilde)); // Eq. 11
                                                                     // masked update
        let inv_mask = g.one_minus(mask_col);
        let keep = g.mul_col(h, inv_mask);
        let upd = g.mul_col(h_new, mask_col);
        g.add(keep, upd)
    }

    /// Computes the attention weights `α_t` (Eq. 14) for a batch, as a
    /// `[b, t]` tensor (padded positions get ≈0). Used to inspect which
    /// neighbours the trained model attends to — the paper's central
    /// mechanism claim is that general-concept hubs receive low weight.
    pub fn attention_weights(
        &self,
        g: &Graph,
        store: &ParamStore,
        attr_table: Var,
        batch: &NeighborBatch,
    ) -> Tensor {
        let (_, alpha) = self.forward_with_attention(g, store, attr_table, batch);
        alpha.unwrap_or_else(|| {
            // MeanPool variant: uniform weights over valid neighbours.
            let (b, t) = (batch.b, batch.t);
            let mut w = Tensor::zeros(&[b, t]);
            for i in 0..b {
                let valid: f32 = batch.mask[i * t..(i + 1) * t].iter().sum();
                for j in 0..t {
                    if batch.mask[i * t + j] > 0.0 {
                        w.row_mut(i)[j] = 1.0 / valid.max(1.0);
                    }
                }
            }
            w
        })
    }

    /// Forward pass: `H_r` for a batch, `[b, d]` (Eq. 15).
    ///
    /// `attr_table` is a tape node holding the `[n, d]` attribute
    /// embeddings (a constant during Algorithm 3, per the paper's two-stage
    /// training).
    pub fn forward(
        &self,
        g: &Graph,
        store: &ParamStore,
        attr_table: Var,
        batch: &NeighborBatch,
    ) -> Var {
        self.forward_with_attention(g, store, attr_table, batch).0
    }

    fn forward_with_attention(
        &self,
        g: &Graph,
        store: &ParamStore,
        attr_table: Var,
        batch: &NeighborBatch,
    ) -> (Var, Option<Tensor>) {
        let (b, t) = (batch.b, batch.t);
        let zero = g.constant(Tensor::zeros(&[b, self.d]));
        // per-step inputs
        let xs: Vec<Var> =
            (0..t).map(|j| g.gather_rows(attr_table, &batch.col_indices(j))).collect();
        let masks: Vec<Var> = (0..t).map(|j| g.constant(batch.col_mask(j))).collect();

        let outputs: Vec<Var>;
        let h_n: Var;
        match self.variant {
            RelVariant::Full | RelVariant::MeanPool => {
                // forward direction
                let mut h = zero;
                let mut fwd_states = Vec::with_capacity(t);
                for j in 0..t {
                    h = self.gru_step(g, store, &self.fwd, xs[j], h, masks[j]);
                    fwd_states.push(h);
                }
                // backward direction
                let mut hb = zero;
                let mut bwd_states = vec![zero; t];
                for j in (0..t).rev() {
                    hb = self.gru_step(g, store, &self.bwd, xs[j], hb, masks[j]);
                    bwd_states[j] = hb;
                }
                // h_t = fwd_t + bwd_t (paper: "the sum of h→ and h←")
                outputs = (0..t).map(|j| g.add(fwd_states[j], bwd_states[j])).collect();
                // h_n: final forward state (last valid, thanks to masking)
                // plus final backward state.
                h_n = g.add(fwd_states[t - 1], bwd_states[0]);
            }
            RelVariant::NoGru => {
                outputs = xs.clone();
                // mean of valid inputs as the global context
                h_n = masked_mean(g, &xs, &masks, zero);
            }
        }

        match self.variant {
            RelVariant::MeanPool => (masked_mean_v(g, &outputs, &masks, zero), None),
            RelVariant::Full | RelVariant::NoGru => {
                // attention (Eq. 12–14)
                let aw = g.param(store, self.att_w);
                let ab = g.param(store, self.att_b);
                let h_hat = g.tanh(g.add_bias(g.matmul(h_n, aw), ab)); // Eq. 12
                let scores: Vec<Var> = outputs.iter().map(|&o| g.rows_dot(o, h_hat)).collect(); // Eq. 13
                let score_mat = g.stack_cols(&scores);
                // mask out padding with a large negative bias
                let bias = {
                    let mut m = Tensor::zeros(&[b, t]);
                    for (v, &mk) in m.data_mut().iter_mut().zip(batch.mask.iter()) {
                        if mk == 0.0 {
                            *v = -1e9;
                        }
                    }
                    g.constant(m)
                };
                let alpha = g.softmax_lastdim(g.add(score_mat, bias)); // Eq. 14
                                                                       // H_r = sum_t alpha_t * h_t (Eq. 15). The fold seeds from
                                                                       // the first step (a NeighborBatch always carries t >= 1
                                                                       // slots), with the shape-correct `zero` as the fallback —
                                                                       // no panic-capable accumulator unwrap on the forward path.
                let mut terms = outputs.iter().enumerate().map(|(j, &o)| {
                    let a_j = g.select_col(alpha, j);
                    g.mul_col(o, a_j)
                });
                let mut acc = terms.next().unwrap_or(zero);
                for term in terms {
                    acc = g.add(acc, term);
                }
                (acc, Some(g.value_cloned(alpha)))
            }
        }
    }
}

/// Masked mean over a list of `[b,d]` step tensors; `empty` is the
/// shape-correct result for a (structurally impossible) zero-step list.
fn masked_mean(g: &Graph, xs: &[Var], masks: &[Var], empty: Var) -> Var {
    masked_mean_v(g, xs, masks, empty)
}

fn masked_mean_v(g: &Graph, xs: &[Var], masks: &[Var], empty: Var) -> Var {
    // Seed the two folds from the first step so the accumulators are never
    // panic-capable options (a NeighborBatch always carries t >= 1 slots;
    // `empty` covers the unreachable case without an unwrap).
    let mut it = xs.iter().zip(masks);
    let Some((&x0, &m0)) = it.next() else {
        return empty;
    };
    let mut num = g.mul_col(x0, m0);
    let mut den = m0;
    for (&x, &m) in it {
        num = g.add(num, g.mul_col(x, m));
        den = g.add(den, m);
    }
    // 1 / max(den, 1): implemented via reciprocal on (den + tiny) after
    // clamping zeros to one (zero-neighbour rows produce zero output).
    let inv = g.recip_clamped(den);
    g.mul_col(num, inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(variant: RelVariant) -> (RelModule, ParamStore, Rng) {
        let mut rng = Rng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let m = RelModule::new(16, variant, &mut store, &mut rng);
        (m, store, rng)
    }

    fn table(n: usize, rng: &mut Rng) -> Tensor {
        Tensor::rand_normal(&[n, 16], 0.5, rng)
    }

    #[test]
    fn forward_shape_all_variants() {
        for v in [RelVariant::Full, RelVariant::MeanPool, RelVariant::NoGru] {
            let (m, store, mut rng) = setup(v);
            let tbl = table(10, &mut rng);
            let batch = NeighborBatch::from_lists(&[vec![1, 2, 3], vec![4], vec![5, 6]]);
            let g = Graph::new();
            let t = g.constant(tbl);
            let out = m.forward(&g, &store, t, &batch);
            assert_eq!(g.value(out).shape(), &[3, 16], "{v:?}");
            assert!(g.value(out).all_finite());
        }
    }

    #[test]
    fn padding_is_invisible() {
        // An entity with 2 neighbours must embed identically whether the
        // batch pads to length 2 or 5.
        let (m, store, mut rng) = setup(RelVariant::Full);
        let tbl = table(10, &mut rng);
        let short = NeighborBatch::from_lists(&[vec![1, 2], vec![3, 4]]);
        let long = NeighborBatch::from_lists(&[vec![1, 2], vec![3, 4, 5, 6, 7]]);
        let ga = Graph::new();
        let ta = ga.constant(tbl.clone());
        let a = ga.value_cloned(m.forward(&ga, &store, ta, &short));
        let gb = Graph::new();
        let tb = gb.constant(tbl);
        let b = gb.value_cloned(m.forward(&gb, &store, tb, &long));
        for (x, y) in a.row(0).iter().zip(b.row(0)) {
            assert!((x - y).abs() < 1e-4, "padding changed row 0: {x} vs {y}");
        }
    }

    #[test]
    fn empty_neighbor_list_gives_zero() {
        let (m, store, mut rng) = setup(RelVariant::MeanPool);
        let tbl = table(4, &mut rng);
        let batch = NeighborBatch::from_lists(&[vec![]]);
        let g = Graph::new();
        let t = g.constant(tbl);
        let out = g.value_cloned(m.forward(&g, &store, t, &batch));
        assert!(out.data().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn attention_weights_sum_to_one_over_valid_neighbors() {
        for v in [RelVariant::Full, RelVariant::NoGru, RelVariant::MeanPool] {
            let (m, store, mut rng) = setup(v);
            let tbl = table(10, &mut rng);
            let batch = NeighborBatch::from_lists(&[vec![1, 2, 3], vec![4], vec![]]);
            let g = Graph::new();
            let t = g.constant(tbl);
            let w = m.attention_weights(&g, &store, t, &batch);
            assert_eq!(w.shape(), &[3, 3], "{v:?}");
            // rows with neighbours sum to ~1; padded positions ~0
            let s0: f32 = w.row(0).iter().sum();
            assert!((s0 - 1.0).abs() < 1e-4, "{v:?} row0 {s0}");
            let s1: f32 = w.row(1).iter().sum();
            assert!((s1 - 1.0).abs() < 1e-4, "{v:?} row1 {s1}");
            assert!(w.row(1)[1] < 1e-4 && w.row(1)[2] < 1e-4, "{v:?} padding weighted");
        }
    }

    #[test]
    fn gradients_flow_to_gru_and_attention() {
        let (m, mut store, mut rng) = setup(RelVariant::Full);
        let tbl = table(10, &mut rng);
        let batch = NeighborBatch::from_lists(&[vec![1, 2, 3], vec![4, 5]]);
        let g = Graph::new();
        let t = g.constant(tbl);
        let out = m.forward(&g, &store, t, &batch);
        let loss = g.mean_all(g.square(out));
        g.backward(loss);
        let n = g.accumulate_param_grads(&mut store);
        assert!(n >= 18, "all GRU dirs + attention should receive grads, got {n}");
        assert!(store.grad_norm() > 0.0);
    }

    #[test]
    fn attention_downweights_after_training_signal() {
        // Sanity: outputs differ between Full and MeanPool (the attention
        // path is live).
        let (mf, sf, mut rng) = setup(RelVariant::Full);
        let tbl = table(10, &mut rng);
        let batch = NeighborBatch::from_lists(&[vec![1, 2, 3]]);
        let g1 = Graph::new();
        let t1 = g1.constant(tbl.clone());
        let full = g1.value_cloned(mf.forward(&g1, &sf, t1, &batch));
        let (mm, sm, _) = setup(RelVariant::MeanPool);
        let g2 = Graph::new();
        let t2 = g2.constant(tbl);
        let mean = g2.value_cloned(mm.forward(&g2, &sm, t2, &batch));
        assert_ne!(full, mean);
    }

    #[test]
    fn neighbor_order_affects_gru_but_not_nogru_mean() {
        let (m, store, mut rng) = setup(RelVariant::NoGru);
        let tbl = table(10, &mut rng);
        let a = NeighborBatch::from_lists(&[vec![1, 2, 3]]);
        let b = NeighborBatch::from_lists(&[vec![3, 1, 2]]);
        let ga = Graph::new();
        let ta = ga.constant(tbl.clone());
        let ea = ga.value_cloned(m.forward(&ga, &store, ta, &a));
        let gb = Graph::new();
        let tb = gb.constant(tbl);
        let eb = gb.value_cloned(m.forward(&gb, &store, tb, &b));
        // NoGru attention is permutation-equivariant: same set of
        // neighbours => same weighted sum.
        for (x, y) in ea.data().iter().zip(eb.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
