//! Alignment inference (paper Section IV-B): cosine ranking over final
//! embeddings, plus the Gale–Shapley stable matching the paper applies to
//! boost 1-1 alignment ("we improve Hits@1 on JA-EN from 84.8% to 89.8%
//! when applying the stable matching algorithm").

use sdea_eval::{
    argsort_rows_desc, cosine_matrix, desc_nan_last, evaluate_ranking, AlignmentMetrics,
    SimilarityMatrix,
};
use sdea_tensor::Tensor;
use std::cmp::Ordering;

/// Result of aligning a set of source entities against all targets.
#[derive(Clone, Debug)]
pub struct AlignmentResult {
    /// Similarity matrix `[n_src, n_tgt]`.
    pub sim: SimilarityMatrix,
    /// Gold target column per source row.
    pub gold: Vec<usize>,
}

impl AlignmentResult {
    /// Ranks targets for each source by cosine similarity of embeddings.
    pub fn rank(src_emb: &Tensor, tgt_emb: &Tensor, gold: Vec<usize>) -> Self {
        let sim = cosine_matrix(src_emb, tgt_emb);
        AlignmentResult { sim, gold }
    }

    /// Hits@K / MRR metrics.
    pub fn metrics(&self) -> AlignmentMetrics {
        evaluate_ranking(&self.sim, &self.gold)
    }

    /// Hits@1 after 1-1 stable matching (only Hits@1 is defined for a
    /// matching, as in the paper's CEA rows).
    pub fn stable_matching_hits1(&self) -> f64 {
        let matched = stable_matching(&self.sim);
        let n = self.gold.len().max(1) as f64;
        let correct = matched.iter().zip(&self.gold).filter(|&(&m, &g)| m == Some(g)).count();
        correct as f64 / n
    }
}

/// Gale–Shapley stable matching on a similarity matrix: rows propose to
/// columns in preference order; columns keep their best proposer. Returns
/// the matched column per row (`None` only when columns < rows).
///
/// Column preference uses the NaN-last total order ([`desc_nan_last`]): a
/// NaN-scoring incumbent is displaced by any real-scoring proposer. (The
/// previous raw `>` comparison made a NaN incumbent undisplaceable, since
/// `x > NaN` is always false.) Ties keep the incumbent, which — together
/// with the index-ordered preference lists — keeps the matching
/// deterministic.
pub fn stable_matching(sim: &SimilarityMatrix) -> Vec<Option<usize>> {
    let (n, m) = (sim.shape()[0], sim.shape()[1]);
    // Preference lists (descending similarity), computed once with the
    // parallel row-wise argsort; the proposal loop below is inherently
    // sequential and stays serial.
    let prefs: Vec<Vec<usize>> = argsort_rows_desc(sim);
    let mut next_choice = vec![0usize; n];
    let mut col_holder: Vec<Option<usize>> = vec![None; m];
    let mut row_match: Vec<Option<usize>> = vec![None; n];
    let mut free: Vec<usize> = (0..n).collect();
    while let Some(r) = free.pop() {
        // r proposes to its best not-yet-tried column.
        while next_choice[r] < m {
            let c = prefs[r][next_choice[r]];
            next_choice[r] += 1;
            match col_holder[c] {
                None => {
                    col_holder[c] = Some(r);
                    row_match[r] = Some(c);
                    break;
                }
                Some(current) => {
                    // column prefers the higher-similarity proposer
                    // (NaN-last total order; ties keep the incumbent)
                    let keep_new =
                        desc_nan_last(sim.at2(r, c), sim.at2(current, c)) == Ordering::Less;
                    if keep_new {
                        col_holder[c] = Some(r);
                        row_match[r] = Some(c);
                        row_match[current] = None;
                        free.push(current);
                        break;
                    }
                }
            }
        }
    }
    row_match
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(rows: &[&[f32]]) -> SimilarityMatrix {
        let m = rows[0].len();
        Tensor::from_vec(rows.iter().flat_map(|r| r.iter().copied()).collect(), &[rows.len(), m])
    }

    #[test]
    fn stable_matching_resolves_conflict() {
        // Both rows prefer column 0, but row 1 is a better match for it;
        // row 0 must settle for column 1.
        let s = sim(&[&[0.8, 0.7], &[0.9, 0.1]]);
        let m = stable_matching(&s);
        assert_eq!(m, vec![Some(1), Some(0)]);
    }

    #[test]
    fn stable_matching_has_no_blocking_pair() {
        // Random-ish matrix; verify stability: no (r, c) both preferring
        // each other over their matches.
        let data: Vec<f32> = (0..64).map(|i| ((i * 2654435761u64 % 97) as f32) / 97.0).collect();
        let s = Tensor::from_vec(data, &[8, 8]);
        let m = stable_matching(&s);
        for r in 0..8 {
            let rc = m[r].unwrap();
            for c in 0..8 {
                if c == rc {
                    continue;
                }
                let holder = m.iter().position(|&x| x == Some(c));
                let r_prefers_c = s.at2(r, c) > s.at2(r, rc);
                let c_prefers_r = match holder {
                    Some(h) => s.at2(r, c) > s.at2(h, c),
                    None => true,
                };
                assert!(!(r_prefers_c && c_prefers_r), "blocking pair ({r},{c})");
            }
        }
    }

    #[test]
    fn matching_is_injective() {
        let data: Vec<f32> = (0..30).map(|i| ((i * 31 % 17) as f32) / 17.0).collect();
        let s = Tensor::from_vec(data, &[5, 6]);
        let m = stable_matching(&s);
        let assigned: Vec<usize> = m.iter().flatten().copied().collect();
        let set: std::collections::HashSet<_> = assigned.iter().collect();
        assert_eq!(set.len(), assigned.len(), "columns assigned at most once");
        assert_eq!(assigned.len(), 5, "all rows matched when m >= n");
    }

    #[test]
    fn stable_matching_can_beat_greedy_hits1() {
        // Greedy argmax sends both rows to column 0 (row 0 wrongly);
        // matching forces the correct 1-1 assignment.
        let s = sim(&[&[0.8, 0.7], &[0.9, 0.1]]);
        let result = AlignmentResult { sim: s, gold: vec![1, 0] };
        let greedy = result.metrics().hits1;
        let matched = result.stable_matching_hits1();
        assert!(matched > greedy, "matching {matched} vs greedy {greedy}");
        assert_eq!(matched, 1.0);
    }

    #[test]
    fn nan_incumbent_is_displaced() {
        // free.pop() processes row 1 first: it proposes to column 0 with a
        // NaN score and holds it. Row 0 (real score 0.3) must displace it.
        // The old `>` comparison kept the NaN holder forever (0.3 > NaN is
        // false), silently corrupting the matching.
        let s = sim(&[&[0.3], &[f32::NAN]]);
        let m = stable_matching(&s);
        assert_eq!(m, vec![Some(0), None]);
    }

    #[test]
    fn nan_rows_never_panic_and_matching_stays_injective() {
        let s = sim(&[
            &[f32::NAN, 0.2, f32::NAN],
            &[0.9, f32::NAN, 0.1],
            &[f32::NAN, f32::NAN, f32::NAN],
        ]);
        let m = stable_matching(&s);
        let assigned: Vec<usize> = m.iter().flatten().copied().collect();
        let set: std::collections::HashSet<_> = assigned.iter().collect();
        assert_eq!(set.len(), assigned.len(), "columns assigned at most once");
        // Real scores win their columns: row 0 -> col 1, row 1 -> col 0.
        assert_eq!(m[0], Some(1));
        assert_eq!(m[1], Some(0));
    }

    #[test]
    fn rank_uses_cosine() {
        let src = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let tgt = Tensor::from_vec(vec![0.0, 1.0, 2.0, 0.0], &[2, 2]);
        let r = AlignmentResult::rank(&src, &tgt, vec![1]);
        let m = r.metrics();
        assert_eq!(m.hits1, 1.0);
    }
}
