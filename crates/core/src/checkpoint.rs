//! Crash-safe checkpoint/resume for the two-stage pipeline.
//!
//! ## Layout
//!
//! A checkpoint directory holds one `manifest.sdm` plus the artifact files
//! it references. Every file is a checksummed blob container (see
//! [`sdea_tensor::serialize`]) written atomically, so a crash at any
//! instant leaves the directory describing a consistent earlier state:
//! the manifest is only rewritten *after* the artifacts it points at are
//! durably on disk.
//!
//! * `attr_ep*.ckpt` / `rel_ep*.ckpt` — [`StageState`] snapshots taken at
//!   fine-tuning epoch boundaries (every `checkpoint_every` epochs; the
//!   last two per stage are kept).
//! * `attr_done.ckpt` — the attribute-stage boundary artifact: both `H_a`
//!   tables plus the stage report. Once present, resume skips Algorithm 2
//!   (and the tokenizer/LM build feeding it) entirely.
//! * `train_pairs.ckpt` — the bootstrap-round boundary artifact: the
//!   (possibly augmented) training pair list the relation stage trains on.
//!
//! ## Resume determinism
//!
//! The pipeline derives all four RNG streams from `cfg.seed` in a fixed
//! order, and model construction is deterministic given its stream — so a
//! resumed run only needs the *mid-stage* state a checkpoint captures: the
//! parameter values (restored by name into a freshly rebuilt, identically
//! laid out store), the Adam moments, the consuming stream's RNG state,
//! and the early-stopping bookkeeping. Replaying the remaining epochs from
//! that state is bit-identical to the uninterrupted run at any thread
//! budget (asserted by `tests/checkpoint_resume.rs`).
//!
//! ## Fault tolerance
//!
//! Loads that fail verification quarantine the file (renamed to
//! `<name>.corrupt`, counted in `ckpt.quarantined`) and fall back to the
//! previous record; a checkpoint *write* failure after bounded retries is
//! reported and training continues — a failed checkpoint never kills a
//! healthy run. A manifest whose config fingerprint disagrees with the
//! current run is a hard `InvalidData` error: silently mixing
//! configurations would produce wrong weights.

use crate::attr_module::AttrFitReport;
use crate::config::SdeaConfig;
use crate::rel_module::RelVariant;
use sdea_kg::EntityId;
use sdea_tensor::serialize::{
    atomic_write_retry, blob_payload, blob_to_bytes, read_tensor, store_from_bytes, store_to_bytes,
    write_tensor, WireRead, WireWrite,
};
use sdea_tensor::{ParamStore, Tensor};
use std::io;
use std::path::{Path, PathBuf};

/// Blob kind of the checkpoint manifest.
pub const MANIFEST_KIND: &[u8; 4] = b"SDMF";
/// Blob kind of a [`StageState`] epoch snapshot.
pub const STAGE_KIND: &[u8; 4] = b"SDSS";
/// Blob kind of the attribute-stage boundary artifact.
pub const ATTR_DONE_KIND: &[u8; 4] = b"SDAD";
/// Blob kind of the training-pair (bootstrap boundary) artifact.
pub const PAIRS_KIND: &[u8; 4] = b"SDTP";

/// Which fine-tuning stage a checkpoint belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Algorithm 2 (attribute-module fine-tuning).
    Attr,
    /// Algorithm 3 (relation-stage training).
    Rel,
    /// Cross-encoder reranker fine-tuning.
    Rerank,
}

impl Stage {
    fn prefix(self) -> &'static str {
        match self {
            Stage::Attr => "attr",
            Stage::Rel => "rel",
            Stage::Rerank => "rerank",
        }
    }

    /// Fault-injection site name of this stage's epoch-checkpoint write.
    pub fn fault_site(self) -> &'static str {
        match self {
            Stage::Attr => "stage.attr.write",
            Stage::Rel => "stage.rel.write",
            Stage::Rerank => "stage.rerank.write",
        }
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum RecordKind {
    AttrEpoch = 0,
    AttrDone = 1,
    TrainPairs = 2,
    RelEpoch = 3,
    RerankEpoch = 4,
}

impl RecordKind {
    fn from_u8(v: u8) -> Option<RecordKind> {
        Some(match v {
            0 => RecordKind::AttrEpoch,
            1 => RecordKind::AttrDone,
            2 => RecordKind::TrainPairs,
            3 => RecordKind::RelEpoch,
            4 => RecordKind::RerankEpoch,
            _ => return None,
        })
    }

    fn of_stage(stage: Stage) -> RecordKind {
        match stage {
            Stage::Attr => RecordKind::AttrEpoch,
            Stage::Rel => RecordKind::RelEpoch,
            Stage::Rerank => RecordKind::RerankEpoch,
        }
    }
}

#[derive(Clone, Debug)]
struct Record {
    kind: RecordKind,
    epoch: u32,
    file: String,
}

/// Everything a fine-tuning loop needs to continue bit-identically from an
/// epoch boundary. `next_epoch` epochs are already complete; the RNG state
/// is captured *after* the last completed epoch's draws.
pub struct StageState {
    /// First epoch the resumed loop should run.
    pub next_epoch: u32,
    /// State of the stream the loop consumes (shuffles + negatives).
    pub rng: [u64; 4],
    /// Live parameter values (restored into the rebuilt model by name).
    pub store: ParamStore,
    /// Adam step count.
    pub adam_t: u64,
    /// Adam first moments (positional — layouts match because model
    /// construction is deterministic).
    pub adam_m: Vec<Tensor>,
    /// Adam second moments.
    pub adam_v: Vec<Tensor>,
    /// Early-stopping best-weights snapshot (positional).
    pub best_snapshot: Vec<Tensor>,
    /// Best validation Hits@1 so far.
    pub best_hits: f64,
    /// Best mean training loss so far (the no-validation fallback).
    pub best_loss: f64,
    /// Validations without improvement.
    pub strikes: u32,
    /// Per-epoch mean losses so far.
    pub epoch_losses: Vec<f32>,
    /// Per-epoch validation Hits@1 so far.
    pub valid_hits1: Vec<f64>,
    /// Best epoch so far.
    pub best_epoch: u32,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn need(buf: &&[u8], n: usize, what: &str) -> io::Result<()> {
    if buf.remaining() < n {
        return Err(bad(&format!("truncated checkpoint field: {what}")));
    }
    Ok(())
}

fn write_tensor_list(buf: &mut Vec<u8>, ts: &[Tensor]) {
    buf.put_u32_le(ts.len() as u32);
    for t in ts {
        write_tensor(buf, t);
    }
}

fn read_tensor_list(buf: &mut &[u8], what: &str) -> io::Result<Vec<Tensor>> {
    need(buf, 4, what)?;
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_tensor(buf)?);
    }
    Ok(out)
}

fn write_report_fields(buf: &mut Vec<u8>, losses: &[f32], hits: &[f64], best_epoch: u32) {
    buf.put_u32_le(losses.len() as u32);
    for &l in losses {
        buf.put_f32_le(l);
    }
    buf.put_u32_le(hits.len() as u32);
    for &h in hits {
        buf.put_f64_le(h);
    }
    buf.put_u32_le(best_epoch);
}

fn read_report_fields(buf: &mut &[u8]) -> io::Result<(Vec<f32>, Vec<f64>, u32)> {
    need(buf, 4, "loss-curve length")?;
    let n = buf.get_u32_le() as usize;
    need(buf, n * 4, "loss curve")?;
    let losses = (0..n).map(|_| buf.get_f32_le()).collect();
    need(buf, 4, "hits-curve length")?;
    let n = buf.get_u32_le() as usize;
    need(buf, n * 8, "hits curve")?;
    let hits = (0..n).map(|_| buf.get_f64_le()).collect();
    need(buf, 4, "best epoch")?;
    Ok((losses, hits, buf.get_u32_le()))
}

fn stage_state_bytes(st: &StageState) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u32_le(st.next_epoch);
    for &s in &st.rng {
        buf.put_u64_le(s);
    }
    let store = store_to_bytes(&st.store);
    buf.put_u64_le(store.len() as u64);
    buf.put_slice(&store);
    buf.put_u64_le(st.adam_t);
    write_tensor_list(&mut buf, &st.adam_m);
    write_tensor_list(&mut buf, &st.adam_v);
    write_tensor_list(&mut buf, &st.best_snapshot);
    buf.put_f64_le(st.best_hits);
    buf.put_f64_le(st.best_loss);
    buf.put_u32_le(st.strikes);
    write_report_fields(&mut buf, &st.epoch_losses, &st.valid_hits1, st.best_epoch);
    blob_to_bytes(STAGE_KIND, &buf)
}

fn stage_state_from_bytes(bytes: &[u8]) -> io::Result<StageState> {
    let mut buf = blob_payload(bytes, STAGE_KIND)?;
    need(&buf, 4 + 32, "epoch + rng state")?;
    let next_epoch = buf.get_u32_le();
    let mut rng = [0u64; 4];
    for s in &mut rng {
        *s = buf.get_u64_le();
    }
    need(&buf, 8, "store length")?;
    let store_len = buf.get_u64_le() as usize;
    need(&buf, store_len, "store blob")?;
    let store = store_from_bytes(&buf[..store_len])?;
    buf = &buf[store_len..];
    need(&buf, 8, "adam step count")?;
    let adam_t = buf.get_u64_le();
    let adam_m = read_tensor_list(&mut buf, "adam m")?;
    let adam_v = read_tensor_list(&mut buf, "adam v")?;
    let best_snapshot = read_tensor_list(&mut buf, "best snapshot")?;
    need(&buf, 8 + 8 + 4, "early-stop state")?;
    let best_hits = buf.get_f64_le();
    let best_loss = buf.get_f64_le();
    let strikes = buf.get_u32_le();
    let (epoch_losses, valid_hits1, best_epoch) = read_report_fields(&mut buf)?;
    Ok(StageState {
        next_epoch,
        rng,
        store,
        adam_t,
        adam_m,
        adam_v,
        best_snapshot,
        best_hits,
        best_loss,
        strikes,
        epoch_losses,
        valid_hits1,
        best_epoch,
    })
}

fn attr_done_bytes(h_a1: &Tensor, h_a2: &Tensor, report: &AttrFitReport) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tensor(&mut buf, h_a1);
    write_tensor(&mut buf, h_a2);
    write_report_fields(
        &mut buf,
        &report.epoch_losses,
        &report.valid_hits1,
        report.best_epoch as u32,
    );
    blob_to_bytes(ATTR_DONE_KIND, &buf)
}

fn attr_done_from_bytes(bytes: &[u8]) -> io::Result<(Tensor, Tensor, AttrFitReport)> {
    let mut buf = blob_payload(bytes, ATTR_DONE_KIND)?;
    let h_a1 = read_tensor(&mut buf)?;
    let h_a2 = read_tensor(&mut buf)?;
    let (epoch_losses, valid_hits1, best_epoch) = read_report_fields(&mut buf)?;
    Ok((h_a1, h_a2, AttrFitReport { epoch_losses, valid_hits1, best_epoch: best_epoch as usize }))
}

fn pairs_bytes(pairs: &[(EntityId, EntityId)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + pairs.len() * 8);
    buf.put_u32_le(pairs.len() as u32);
    for &(a, b) in pairs {
        buf.put_u32_le(a.0);
        buf.put_u32_le(b.0);
    }
    blob_to_bytes(PAIRS_KIND, &buf)
}

fn pairs_from_bytes(bytes: &[u8]) -> io::Result<Vec<(EntityId, EntityId)>> {
    let mut buf = blob_payload(bytes, PAIRS_KIND)?;
    need(&buf, 4, "pair count")?;
    let n = buf.get_u32_le() as usize;
    need(&buf, n * 8, "pair list")?;
    Ok((0..n).map(|_| (EntityId(buf.get_u32_le()), EntityId(buf.get_u32_le()))).collect())
}

/// FNV-1a 64 fingerprint of everything that shapes the computation: every
/// hyper-parameter except execution knobs (`threads`, `obs`, and the
/// checkpoint fields themselves — results are identical across those), the
/// ablation variant, the dataset dimensions, and the bootstrap threshold.
/// A manifest written under a different fingerprint must not be resumed.
pub fn config_fingerprint(
    cfg: &SdeaConfig,
    variant: RelVariant,
    dims: (usize, usize),
    split_sizes: (usize, usize),
    bootstrap_threshold: Option<f32>,
) -> u64 {
    let canon = format!(
        "v={:?};n1={};n2={};tr={};va={};boot={:?};vb={};lh={};ll={};lhd={};lf={};ms={};ed={};me={};\
         mc={};mb={};mlr={:08x};mg={:08x};ae={};ab={};alr={:08x};re={};rb={};rlr={:08x};nc={};pa={};\
         mn={};dr={:08x};po={:?};nz={};seed={};ix={:?};ixl={};ixp={};ixq={}",
        variant,
        dims.0,
        dims.1,
        split_sizes.0,
        split_sizes.1,
        bootstrap_threshold.map(f32::to_bits),
        cfg.vocab_budget,
        cfg.lm_hidden,
        cfg.lm_layers,
        cfg.lm_heads,
        cfg.lm_ffn,
        cfg.max_seq,
        cfg.embed_dim,
        cfg.mlm_epochs,
        cfg.mlm_corpus_cap,
        cfg.mlm_batch,
        cfg.mlm_lr.to_bits(),
        cfg.margin.to_bits(),
        cfg.attr_epochs,
        cfg.attr_batch,
        cfg.attr_lr.to_bits(),
        cfg.rel_epochs,
        cfg.rel_batch,
        cfg.rel_lr.to_bits(),
        cfg.n_candidates,
        cfg.patience,
        cfg.max_neighbors,
        cfg.dropout.to_bits(),
        cfg.pooling,
        cfg.normalize_embeddings,
        cfg.seed,
        // The retrieval backend shapes which negatives and bootstrap pairs
        // training sees (IVF with nprobe < nlist is approximate), so it is
        // a result-shaping hyper-parameter, not an execution knob.
        cfg.index.kind,
        cfg.index.nlist,
        cfg.index.nprobe,
        cfg.index.quantize,
    );
    // Appended (rather than inlined above) so fingerprints of rerank-off
    // runs written before the reranker existed stay resumable: with the
    // default `enabled=false` the suffix is constant, and any rerank knob
    // only separates runs once the stage is actually on.
    let canon = if cfg.rerank.enabled {
        format!(
            "{canon};rr=1;rrk={};rra={:08x};rre={};rrb={};rrlr={:08x};rrn={}",
            cfg.rerank.k,
            cfg.rerank.alpha.to_bits(),
            cfg.rerank.epochs,
            cfg.rerank.batch,
            cfg.rerank.lr.to_bits(),
            cfg.rerank.negatives,
        )
    } else {
        canon
    };
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in canon.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Manages a checkpoint directory: the manifest, its artifact files, and
/// the quarantine-and-fall-back load path.
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    fingerprint: u64,
    records: Vec<Record>,
    every: usize,
}

/// Epoch checkpoints kept per stage (the newest, plus one fallback).
const KEEP_PER_STAGE: usize = 2;

impl Checkpointer {
    /// Opens (or initializes) a checkpoint directory. A well-formed
    /// existing manifest resumes; a corrupt one is quarantined and the run
    /// starts fresh; a manifest written under a different
    /// [`config_fingerprint`] is an `InvalidData` error.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64, every: usize) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut me = Checkpointer { dir, fingerprint, records: Vec::new(), every };
        let path = me.manifest_path();
        if path.exists() {
            match me.load_manifest(&path) {
                Ok(records) => {
                    if !records.is_empty() {
                        sdea_obs::add("ckpt.resumes", 1);
                    }
                    me.records = records;
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    if e.to_string().contains("fingerprint") {
                        return Err(e);
                    }
                    quarantine(&path);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(me)
    }

    /// Epochs between mid-stage checkpoints (0 = stage boundaries only).
    pub fn every(&self) -> usize {
        self.every
    }

    /// Whether epoch `epoch` (0-based, just completed) should checkpoint.
    pub fn due(&self, epoch: usize) -> bool {
        self.every > 0 && (epoch + 1).is_multiple_of(self.every)
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.sdm")
    }

    fn load_manifest(&self, path: &Path) -> io::Result<Vec<Record>> {
        let bytes = std::fs::read(path)?;
        let mut buf = blob_payload(&bytes, MANIFEST_KIND)?;
        need(&buf, 8 + 4, "manifest header")?;
        let fp = buf.get_u64_le();
        if fp != self.fingerprint {
            return Err(bad(&format!(
                "checkpoint fingerprint mismatch: directory {} was written by a run with a \
                 different configuration/dataset (found {fp:#018x}, expected {:#018x}); \
                 point --resume at a matching checkpoint or use a fresh directory",
                self.dir.display(),
                self.fingerprint
            )));
        }
        let n = buf.get_u32_le() as usize;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            need(&buf, 1 + 4 + 4, "manifest record")?;
            let kind = RecordKind::from_u8(buf.get_u8())
                .ok_or_else(|| bad("unknown manifest record kind"))?;
            let epoch = buf.get_u32_le();
            let name_len = buf.get_u32_le() as usize;
            need(&buf, name_len, "manifest record name")?;
            let mut name = vec![0u8; name_len];
            buf.copy_to_slice(&mut name);
            let file =
                String::from_utf8(name).map_err(|_| bad("manifest file name is not UTF-8"))?;
            records.push(Record { kind, epoch, file });
        }
        Ok(records)
    }

    fn write_manifest(&self) -> io::Result<()> {
        let mut buf = Vec::new();
        buf.put_u64_le(self.fingerprint);
        buf.put_u32_le(self.records.len() as u32);
        for r in &self.records {
            buf.put_u8(r.kind as u8);
            buf.put_u32_le(r.epoch);
            buf.put_u32_le(r.file.len() as u32);
            buf.put_slice(r.file.as_bytes());
        }
        atomic_write_retry(
            self.manifest_path(),
            &blob_to_bytes(MANIFEST_KIND, &buf),
            "manifest.write",
        )
    }

    /// Commits `record` after its file landed: appends it, drops `prune`d
    /// records from the manifest, persists the manifest, and only then
    /// deletes the pruned files (a crash in between leaves orphans, never
    /// dangling references).
    fn commit(&mut self, record: Record, prune: impl Fn(&Record) -> bool) -> io::Result<()> {
        let mut pruned: Vec<Record> = Vec::new();
        self.records.retain(|r| {
            let drop = prune(r);
            if drop {
                pruned.push(r.clone());
            }
            !drop
        });
        self.records.push(record);
        self.write_manifest()?;
        for r in pruned {
            let _ = std::fs::remove_file(self.dir.join(&r.file));
        }
        Ok(())
    }

    /// Writes a [`StageState`] epoch checkpoint and commits it, keeping the
    /// last [`KEEP_PER_STAGE`] per stage.
    pub fn record_stage_epoch(&mut self, stage: Stage, state: &StageState) -> io::Result<()> {
        let _span = sdea_obs::span("ckpt.stage_write");
        let file = format!("{}_ep{:05}.ckpt", stage.prefix(), state.next_epoch);
        atomic_write_retry(self.dir.join(&file), &stage_state_bytes(state), stage.fault_site())?;
        sdea_obs::add("ckpt.stage_writes", 1);
        let kind = RecordKind::of_stage(stage);
        let keep: Vec<String> = self
            .records
            .iter()
            .filter(|r| r.kind == kind)
            .rev()
            .take(KEEP_PER_STAGE - 1)
            .map(|r| r.file.clone())
            .collect();
        self.commit(Record { kind, epoch: state.next_epoch, file }, |r| {
            r.kind == kind && !keep.contains(&r.file)
        })
    }

    /// Writes the attribute-stage boundary artifact; the stage's epoch
    /// checkpoints are obsolete afterwards and are pruned with it.
    pub fn record_attr_done(
        &mut self,
        h_a1: &Tensor,
        h_a2: &Tensor,
        report: &AttrFitReport,
    ) -> io::Result<()> {
        let file = "attr_done.ckpt".to_string();
        atomic_write_retry(
            self.dir.join(&file),
            &attr_done_bytes(h_a1, h_a2, report),
            "artifact.write",
        )?;
        self.commit(Record { kind: RecordKind::AttrDone, epoch: 0, file }, |r| {
            matches!(r.kind, RecordKind::AttrEpoch | RecordKind::AttrDone)
        })
    }

    /// Writes the bootstrap-boundary training-pair artifact.
    pub fn record_train_pairs(&mut self, pairs: &[(EntityId, EntityId)]) -> io::Result<()> {
        let file = "train_pairs.ckpt".to_string();
        atomic_write_retry(self.dir.join(&file), &pairs_bytes(pairs), "artifact.write")?;
        self.commit(Record { kind: RecordKind::TrainPairs, epoch: 0, file }, |r| {
            r.kind == RecordKind::TrainPairs
        })
    }

    /// Loads a record's file through `parse`, walking same-kind records
    /// newest-first and quarantining any file that fails verification.
    fn load_latest<T>(
        &mut self,
        kind: RecordKind,
        parse: impl Fn(&[u8]) -> io::Result<T>,
    ) -> Option<T> {
        loop {
            let idx = self.records.iter().rposition(|r| r.kind == kind)?;
            let path = self.dir.join(&self.records[idx].file);
            match std::fs::read(&path).and_then(|bytes| parse(&bytes)) {
                Ok(v) => {
                    sdea_obs::add("ckpt.loads", 1);
                    return Some(v);
                }
                Err(e) => {
                    eprintln!(
                        "checkpoint {} failed verification ({e}); quarantining and falling back",
                        path.display()
                    );
                    quarantine(&path);
                    self.records.remove(idx);
                }
            }
        }
    }

    /// Latest loadable [`StageState`] of `stage`, if any.
    pub fn latest_stage_state(&mut self, stage: Stage) -> Option<StageState> {
        let _span = sdea_obs::span("ckpt.stage_load");
        self.load_latest(RecordKind::of_stage(stage), stage_state_from_bytes)
    }

    /// The attribute-stage boundary artifact, if present and intact.
    pub fn attr_done(&mut self) -> Option<(Tensor, Tensor, AttrFitReport)> {
        self.load_latest(RecordKind::AttrDone, attr_done_from_bytes)
    }

    /// The bootstrap-boundary training pairs, if present and intact.
    pub fn train_pairs(&mut self) -> Option<Vec<(EntityId, EntityId)>> {
        self.load_latest(RecordKind::TrainPairs, pairs_from_bytes)
    }
}

/// Renames a failed file to `<name>.corrupt` (best-effort) so it is never
/// read again but stays available for postmortem.
fn quarantine(path: &Path) {
    sdea_obs::add("ckpt.quarantined", 1);
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".corrupt");
    let _ = std::fs::rename(path, path.with_file_name(name));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_tensor::Rng;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdea_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fake_state(seed: u64, next_epoch: u32) -> StageState {
        let mut rng = Rng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        store.add("a.w", Tensor::rand_normal(&[3, 4], 1.0, &mut rng));
        store.add_frozen("a.b", Tensor::rand_normal(&[4], 1.0, &mut rng));
        let m = vec![Tensor::rand_normal(&[3, 4], 0.1, &mut rng), Tensor::zeros(&[4])];
        let v = vec![Tensor::rand_normal(&[3, 4], 0.1, &mut rng), Tensor::zeros(&[4])];
        let snap = store.snapshot();
        StageState {
            next_epoch,
            rng: rng.state(),
            store,
            adam_t: 17,
            adam_m: m,
            adam_v: v,
            best_snapshot: snap,
            best_hits: 0.25,
            best_loss: 0.75,
            strikes: 2,
            epoch_losses: vec![0.9, 0.7],
            valid_hits1: vec![0.1, 0.25],
            best_epoch: 1,
        }
    }

    #[test]
    fn stage_state_round_trip_is_exact() {
        let st = fake_state(1, 2);
        let back = stage_state_from_bytes(&stage_state_bytes(&st)).unwrap();
        assert_eq!(back.next_epoch, st.next_epoch);
        assert_eq!(back.rng, st.rng);
        assert_eq!(back.store.snapshot(), st.store.snapshot());
        assert_eq!(back.store.name(sdea_tensor::ParamId(0)), "a.w");
        assert!(!back.store.is_trainable(sdea_tensor::ParamId(1)));
        assert_eq!(back.adam_t, st.adam_t);
        assert_eq!(back.adam_m, st.adam_m);
        assert_eq!(back.adam_v, st.adam_v);
        assert_eq!(back.best_snapshot, st.best_snapshot);
        assert_eq!(back.best_hits, st.best_hits);
        assert_eq!(back.best_loss, st.best_loss);
        assert_eq!(back.strikes, st.strikes);
        assert_eq!(back.epoch_losses, st.epoch_losses);
        assert_eq!(back.valid_hits1, st.valid_hits1);
        assert_eq!(back.best_epoch, st.best_epoch);
    }

    #[test]
    fn artifacts_round_trip() {
        let mut rng = Rng::seed_from_u64(2);
        let h1 = Tensor::rand_normal(&[5, 4], 1.0, &mut rng);
        let h2 = Tensor::rand_normal(&[6, 4], 1.0, &mut rng);
        let report =
            AttrFitReport { epoch_losses: vec![0.5], valid_hits1: vec![0.3], best_epoch: 0 };
        let attr_bytes = attr_done_bytes(&h1, &h2, &report);
        assert_eq!(&attr_bytes[..4], ATTR_DONE_KIND, "boundary artifact carries its kind");
        let (b1, b2, br) = attr_done_from_bytes(&attr_bytes).unwrap();
        assert_eq!(b1, h1);
        assert_eq!(b2, h2);
        assert_eq!(br.epoch_losses, report.epoch_losses);
        assert_eq!(br.valid_hits1, report.valid_hits1);

        let pairs = vec![(EntityId(0), EntityId(3)), (EntityId(9), EntityId(1))];
        let pb = pairs_bytes(&pairs);
        assert_eq!(&pb[..4], PAIRS_KIND, "pair artifact carries its kind");
        assert_eq!(pairs_from_bytes(&pb).unwrap(), pairs);
    }

    #[test]
    fn manifest_round_trip_and_pruning() {
        let dir = test_dir("manifest");
        let mut c = Checkpointer::open(&dir, 42, 1).unwrap();
        for ep in 1..=4u32 {
            c.record_stage_epoch(Stage::Rel, &fake_state(ep as u64, ep)).unwrap();
        }
        // Only the last KEEP_PER_STAGE records (and files) survive.
        let rel: Vec<u32> =
            c.records.iter().filter(|r| r.kind == RecordKind::RelEpoch).map(|r| r.epoch).collect();
        assert_eq!(rel, vec![3, 4]);
        assert!(!dir.join("rel_ep00001.ckpt").exists());
        assert!(dir.join("rel_ep00004.ckpt").exists());

        // A re-opened checkpointer sees the same records and loads the
        // newest state.
        let mut c2 = Checkpointer::open(&dir, 42, 1).unwrap();
        let st = c2.latest_stage_state(Stage::Rel).unwrap();
        assert_eq!(st.next_epoch, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_invalid_data() {
        let dir = test_dir("fp");
        let mut c = Checkpointer::open(&dir, 1, 1).unwrap();
        c.record_train_pairs(&[(EntityId(0), EntityId(0))]).unwrap();
        let err = Checkpointer::open(&dir, 2, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_epoch_checkpoint_quarantines_and_falls_back() {
        let dir = test_dir("fallback");
        let mut c = Checkpointer::open(&dir, 7, 1).unwrap();
        c.record_stage_epoch(Stage::Rel, &fake_state(1, 1)).unwrap();
        c.record_stage_epoch(Stage::Rel, &fake_state(2, 2)).unwrap();
        // Corrupt the newest file on disk.
        let newest = dir.join("rel_ep00002.ckpt");
        let mut bytes = std::fs::read(&newest).unwrap();
        assert_eq!(&bytes[..4], STAGE_KIND, "epoch snapshot carries its kind");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();

        let mut c2 = Checkpointer::open(&dir, 7, 1).unwrap();
        let st = c2.latest_stage_state(Stage::Rel).unwrap();
        assert_eq!(st.next_epoch, 1, "fell back to the previous good checkpoint");
        assert!(dir.join("rel_ep00002.ckpt.corrupt").exists(), "corrupt file quarantined");
        assert!(!newest.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_quarantines_and_starts_fresh() {
        let dir = test_dir("badman");
        let mut c = Checkpointer::open(&dir, 7, 1).unwrap();
        c.record_train_pairs(&[(EntityId(1), EntityId(2))]).unwrap();
        let manifest = dir.join("manifest.sdm");
        let mut bytes = std::fs::read(&manifest).unwrap();
        assert_eq!(&bytes[..4], MANIFEST_KIND, "manifest carries its kind");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&manifest, &bytes).unwrap();

        let mut c2 = Checkpointer::open(&dir, 7, 1).unwrap();
        assert!(c2.train_pairs().is_none(), "fresh start after quarantine");
        assert!(dir.join("manifest.sdm.corrupt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Every single-byte corruption of a stage checkpoint is rejected with
    /// `InvalidData` — the property-level acceptance criterion, at the
    /// checkpoint (not just store) layer.
    #[test]
    fn any_byte_flip_in_stage_state_is_rejected() {
        let bytes = stage_state_bytes(&fake_state(3, 5));
        // Exhaustive over the header + stride through the payload (full
        // exhaustive is covered for stores in sdea-tensor).
        let positions = (0..bytes.len().min(64)).chain((64..bytes.len()).step_by(97));
        for i in positions {
            let mut c = bytes.clone();
            c[i] ^= 0x01;
            match stage_state_from_bytes(&c) {
                Ok(_) => panic!("flip at byte {i} accepted"),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData, "byte {i}"),
            }
        }
    }

    #[test]
    fn fingerprint_separates_configs_and_ignores_execution_knobs() {
        let cfg = SdeaConfig::test_tiny();
        let base = config_fingerprint(&cfg, RelVariant::Full, (10, 10), (4, 2), None);
        let mut other = cfg.clone();
        other.rel_lr *= 2.0;
        assert_ne!(base, config_fingerprint(&other, RelVariant::Full, (10, 10), (4, 2), None));
        assert_ne!(base, config_fingerprint(&cfg, RelVariant::NoGru, (10, 10), (4, 2), None));
        assert_ne!(base, config_fingerprint(&cfg, RelVariant::Full, (11, 10), (4, 2), None));
        assert_ne!(base, config_fingerprint(&cfg, RelVariant::Full, (10, 10), (4, 2), Some(0.9)));
        // The retrieval backend shapes results: any index field separates.
        let mut ivf = cfg.clone();
        ivf.index =
            sdea_index::IndexConfig { kind: sdea_index::IndexKind::Ivf, ..ivf.index.clone() };
        let ivf_base = config_fingerprint(&ivf, RelVariant::Full, (10, 10), (4, 2), None);
        assert_ne!(base, ivf_base);
        let mut probed = ivf.clone();
        probed.index.nprobe = 4;
        assert_ne!(ivf_base, config_fingerprint(&probed, RelVariant::Full, (10, 10), (4, 2), None));
        // Rerank off: knob values are inert, so checkpoints written before
        // the reranker existed (or by rerank-off runs) stay resumable.
        let mut rr = cfg.clone();
        rr.rerank.k = 99;
        assert_eq!(base, config_fingerprint(&rr, RelVariant::Full, (10, 10), (4, 2), None));
        // Rerank on: the stage and each knob separate fingerprints.
        rr.rerank.enabled = true;
        let on = config_fingerprint(&rr, RelVariant::Full, (10, 10), (4, 2), None);
        assert_ne!(base, on);
        rr.rerank.alpha = 0.25;
        assert_ne!(on, config_fingerprint(&rr, RelVariant::Full, (10, 10), (4, 2), None));
        let mut knobs = cfg.clone();
        knobs.threads = 8;
        knobs.obs = false;
        knobs.checkpoint_every = 5;
        knobs.checkpoint_dir = Some("elsewhere".into());
        knobs.embed_shard_rows = 3;
        knobs.eval_block_rows = 7;
        assert_eq!(base, config_fingerprint(&knobs, RelVariant::Full, (10, 10), (4, 2), None));
    }
}
