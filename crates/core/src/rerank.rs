//! Cross-encoder reranking of stage-1 candidate shortlists.
//!
//! The bi-encoder pipeline scores a pair by the cosine of two embeddings
//! computed *without seeing each other* — fast (one forward per entity,
//! then an index lookup) but blind to token-level interactions between the
//! two attribute sequences. The [`CrossEncoder`] closes that gap at the
//! price the literature pays for it: a full transformer forward **per
//! pair**, affordable only on a shortlist. Each pair is encoded BERT-style
//! as `[CLS] a [SEP] b [SEP]` with segment embeddings
//! ([`sdea_text::Tokenizer::encode_pair_ids`], `LmConfig::segments == 2`),
//! the transformer is warm-started from the fine-tuned attribute encoder,
//! and a 2-logit match/no-match head reads the pooled `[CLS]` state.
//!
//! **Scoring.** The autograd graph has no `log` op, so the head trains as
//! two logits `(z0, z1)` under log-softmax + NLL — exactly binary cross
//! entropy — and at inference the match probability is
//! `sigmoid(z1 - z0)` (algebraically the same posterior). The final
//! preference score fuses both stages:
//! `alpha * cosine + (1 - alpha) * sigmoid(head)`; entities outside the
//! shortlist keep their pure `alpha * cosine` score, so the head only ever
//! *adds* evidence for candidates stage 1 already surfaced.
//!
//! **Determinism.** Pair scoring runs in eval mode in fixed 64-row chunks
//! over `sdea_tensor::par`: every pair is padded to the same `max_seq` and
//! pooled per row, so its score is bitwise identical alone, permuted, or
//! batched alongside any other pairs, at any thread budget (pinned by
//! `tests/rerank_property.rs`). Training consumes one seeded RNG stream
//! and checkpoints on the stage protocol ([`crate::checkpoint`], stage
//! `Rerank`), so a killed-and-resumed fit is bit-identical to an
//! uninterrupted one.

use crate::attr_module::AttrModule;
use crate::candidates::CandidateSet;
use crate::checkpoint::{self, Checkpointer};
use crate::config::SdeaConfig;
use sdea_index::{Hit, Retriever};
use sdea_kg::EntityId;
use sdea_lm::{TokenBatch, TransformerLm};
use sdea_tensor::serialize::{
    atomic_write_retry, blob_payload, blob_to_bytes, store_from_bytes, store_to_bytes, WireRead,
    WireWrite,
};
use sdea_tensor::{
    desc_nan_last, init, Adam, GradClip, Graph, Optimizer, ParamId, ParamStore, Rng, Tensor, Var,
};
use sdea_text::{EncodedPair, Tokenizer, Vocab};
use std::io;
use std::path::Path;

/// Progress record of one reranker fine-tuning run.
#[derive(Clone, Debug, Default)]
pub struct RerankFitReport {
    /// Mean NLL per epoch.
    pub epoch_losses: Vec<f32>,
    /// Reranked validation Hits@1 per epoch.
    pub valid_hits1: Vec<f64>,
    /// Epoch whose snapshot was restored.
    pub best_epoch: usize,
}

/// The cross-encoder reranker: pair tokenizer + warm-started transformer +
/// match/no-match head.
pub struct CrossEncoder {
    /// All weights (transformer, segment table, pair head).
    pub store: ParamStore,
    lm: TransformerLm,
    tokenizer: Tokenizer,
    head_w: ParamId,
    head_b: ParamId,
    cfg: SdeaConfig,
}

/// Rows per eval-mode scoring chunk (matches the embed path's batching;
/// per-pair scores are independent of the chunking either way).
const SCORE_CHUNK: usize = 64;

impl CrossEncoder {
    /// Builds a cross-encoder warm-started from a fine-tuned attribute
    /// encoder: same tokenizer, same transformer architecture plus a
    /// 2-entry segment table, every same-named/shaped `lm.*` weight copied
    /// from the bi-encoder. Only the segment table and the head start
    /// fresh from `rng`.
    pub fn from_encoder(module: &AttrModule, rng: &mut Rng) -> Self {
        let cfg = module.config().clone();
        let tokenizer = module.tokenizer().clone();
        let mut lm_cfg = cfg.lm_config(tokenizer.vocab().len());
        lm_cfg.segments = 2;
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(lm_cfg, &mut store, rng);
        let head_w = store.add("rerank.head.w", init::xavier_uniform(&[cfg.lm_hidden, 2], rng));
        let head_b = store.add("rerank.head.b", Tensor::zeros(&[2]));
        let mut ce = CrossEncoder { store, lm, tokenizer, head_w, head_b, cfg };
        ce.warm_start(&module.store);
        ce
    }

    /// Copies every donor parameter whose name and shape match ours.
    /// `restore_from_named` is deliberately not used: it is strict about
    /// the *full* name set, and this store legitimately has parameters the
    /// bi-encoder lacks (`lm.seg_emb`, the head) and lacks ones it has
    /// (`attr.mlp.*`).
    fn warm_start(&mut self, donor: &ParamStore) {
        let by_name: std::collections::BTreeMap<String, sdea_tensor::ParamId> =
            donor.ids().map(|id| (donor.name(id).to_string(), id)).collect();
        let mine: Vec<ParamId> = self.store.ids().collect();
        let mut copied = 0u64;
        for id in mine {
            let name = self.store.name(id).to_string();
            if let Some(&src) = by_name.get(&name) {
                if donor.value(src).shape() == self.store.value(id).shape() {
                    *self.store.value_mut(id) = donor.value(src).clone();
                    copied += 1;
                }
            }
        }
        sdea_obs::add("rerank.warm_started_params", copied);
    }

    /// Rebuilds a cross-encoder from persisted parts: re-registers the
    /// transformer + head deterministically by name, then overwrites every
    /// tensor from `saved`. Typed failure on any architecture mismatch.
    pub fn from_parts(
        cfg: SdeaConfig,
        tokenizer: Tokenizer,
        saved: &ParamStore,
    ) -> Result<Self, String> {
        let mut lm_cfg = cfg.lm_config(tokenizer.vocab().len());
        lm_cfg.segments = 2;
        lm_cfg.validate()?;
        let mut store = ParamStore::new();
        let mut init_rng = Rng::seed_from_u64(0);
        let lm = TransformerLm::new(lm_cfg, &mut store, &mut init_rng);
        let head_w =
            store.add("rerank.head.w", init::xavier_uniform(&[cfg.lm_hidden, 2], &mut init_rng));
        let head_b = store.add("rerank.head.b", Tensor::zeros(&[2]));
        store.restore_from_named(saved)?;
        Ok(CrossEncoder { store, lm, tokenizer, head_w, head_b, cfg })
    }

    /// The pair tokenizer (shared with the bi-encoder it came from).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// The configuration the encoder was built under.
    pub fn config(&self) -> &SdeaConfig {
        &self.cfg
    }

    /// Encodes one token-id pair at the model's fixed length.
    fn encode_pair(&self, a: &[u32], b: &[u32]) -> EncodedPair {
        self.tokenizer.encode_pair_ids(a, b, self.cfg.max_seq)
    }

    /// Pair logits `[b, 2]` on the graph (shared by training and scoring).
    fn pair_logits(&self, g: &Graph, batch: &TokenBatch, training: bool, rng: &mut Rng) -> Var {
        let hidden = self.lm.forward(g, &self.store, batch, training, rng);
        let cls = self.lm.cls_states(g, hidden, batch);
        let w = g.param(&self.store, self.head_w);
        let b = g.param(&self.store, self.head_b);
        g.add_bias(g.matmul(cls, w), b)
    }

    /// Match probability `sigmoid(z1 - z0)` per pair, in eval mode.
    /// `queries[i]` is scored against `cands[i]`. Chunked over the thread
    /// budget; each pair's probability is independent of every other pair
    /// in the call (order- and padding-invariant, bitwise).
    pub fn score_pairs(&self, queries: &[Vec<u32>], cands: &[Vec<u32>]) -> Vec<f32> {
        assert_eq!(queries.len(), cands.len(), "score_pairs length mismatch");
        let _span = sdea_obs::span("rerank.score_pairs");
        sdea_obs::add("rerank.pairs_scored", queries.len() as u64);
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        let n_chunks = n.div_ceil(SCORE_CHUNK);
        let parts = sdea_tensor::par_map_collect(n_chunks, 1 << 20, |ci| {
            let start = ci * SCORE_CHUNK;
            let end = (start + SCORE_CHUNK).min(n);
            let rows: Vec<EncodedPair> =
                (start..end).map(|i| self.encode_pair(&queries[i], &cands[i])).collect();
            let batch = TokenBatch::from_encoded_pairs(&rows);
            // Eval-mode forwards draw no randomness; the RNG only
            // satisfies the signature (mirrors `AttrModule::embed_rows`).
            let mut chunk_rng = Rng::seed_from_u64(0x5dea_ce00 ^ ci as u64);
            let g = Graph::new();
            let logits = self.pair_logits(&g, &batch, false, &mut chunk_rng);
            let v = g.value_cloned(logits);
            (0..batch.b)
                .map(|i| {
                    let z0 = v.data()[i * 2];
                    let z1 = v.data()[i * 2 + 1];
                    sigmoid(z1 - z0)
                })
                .collect::<Vec<f32>>()
        });
        parts.into_iter().flatten().collect()
    }

    /// Reranks stage-1 shortlists: fuses each hit's cosine with the pair
    /// head (`alpha * cosine + (1 - alpha) * sigmoid(head)`) and re-sorts
    /// descending under [`desc_nan_last`], ties broken by lower candidate
    /// index — the same order contract as [`Retriever::search`].
    /// `cand_tokens` is the target side's token cache (row = entity id).
    pub fn rerank_hits(
        &self,
        queries: &[Vec<u32>],
        cand_tokens: &[Vec<u32>],
        hits: &[Vec<Hit>],
        alpha: f32,
    ) -> Vec<Vec<Hit>> {
        assert_eq!(queries.len(), hits.len(), "rerank_hits query/hit mismatch");
        let mut q_flat = Vec::new();
        let mut c_flat = Vec::new();
        for (q, row) in queries.iter().zip(hits) {
            for &(j, _) in row {
                q_flat.push(q.clone());
                c_flat.push(cand_tokens[j].clone());
            }
        }
        let probs = self.score_pairs(&q_flat, &c_flat);
        let mut out = Vec::with_capacity(hits.len());
        let mut off = 0usize;
        for row in hits {
            let mut fused: Vec<Hit> = row
                .iter()
                .zip(&probs[off..off + row.len()])
                .map(|(&(j, cos), &p)| (j, alpha * cos + (1.0 - alpha) * p))
                .collect();
            off += row.len();
            fused.sort_by(|a, b| desc_nan_last(a.1, b.1).then(a.0.cmp(&b.0)));
            out.push(fused);
        }
        out
    }

    /// Fuses the head into a full similarity matrix for stable matching:
    /// every cell becomes `alpha * sim`, and the per-row top-`k` shortlist
    /// cells additionally gain `(1 - alpha) * sigmoid(head)`. Because the
    /// head's contribution is strictly positive, shortlist candidates can
    /// only move *up* relative to the tail — Gale–Shapley preferences see
    /// exactly the fused score the reranked shortlist ranks by.
    pub fn fused_similarity(
        &self,
        sim: &Tensor,
        queries: &[Vec<u32>],
        cand_tokens: &[Vec<u32>],
        k: usize,
        alpha: f32,
    ) -> Tensor {
        assert_eq!(sim.rank(), 2, "fused_similarity expects [n1, n2]");
        let (n1, n2) = (sim.shape()[0], sim.shape()[1]);
        assert_eq!(queries.len(), n1, "fused_similarity query count");
        assert_eq!(cand_tokens.len(), n2, "fused_similarity candidate count");
        let hits: Vec<Vec<Hit>> = (0..n1)
            .map(|i| {
                let row = &sim.data()[i * n2..(i + 1) * n2];
                let mut idx: Vec<usize> = (0..n2).collect();
                idx.sort_by(|&a, &b| desc_nan_last(row[a], row[b]).then(a.cmp(&b)));
                idx.truncate(k.min(n2));
                idx.into_iter().map(|j| (j, row[j])).collect()
            })
            .collect();
        let mut q_flat = Vec::new();
        let mut c_flat = Vec::new();
        for (q, row) in queries.iter().zip(&hits) {
            for &(j, _) in row {
                q_flat.push(q.clone());
                c_flat.push(cand_tokens[j].clone());
            }
        }
        let probs = self.score_pairs(&q_flat, &c_flat);
        let mut out = sim.scale(alpha);
        let mut off = 0usize;
        for (i, row) in hits.iter().enumerate() {
            for (&(j, _), &p) in row.iter().zip(&probs[off..off + row.len()]) {
                out.data_mut()[i * n2 + j] += (1.0 - alpha) * p;
            }
            off += row.len();
        }
        out
    }

    /// Reranked validation Hits@1 over precomputed stage-1 shortlists.
    fn validate_shortlists(
        &self,
        cache1: &[Vec<u32>],
        cache2: &[Vec<u32>],
        valid: &[(EntityId, EntityId)],
        shortlists: &[Vec<Hit>],
        alpha: f32,
    ) -> f64 {
        if valid.is_empty() {
            return 0.0;
        }
        let queries: Vec<Vec<u32>> =
            valid.iter().map(|&(e, _)| cache1[e.0 as usize].clone()).collect();
        let reranked = self.rerank_hits(&queries, cache2, shortlists, alpha);
        let hits = valid
            .iter()
            .zip(&reranked)
            .filter(|(&(_, gold), row)| row.first().is_some_and(|&(j, _)| j == gold.0 as usize))
            .count();
        hits as f64 / valid.len() as f64
    }

    /// Fine-tunes the pair head (and warm-started transformer) on the seed
    /// alignments: each train pair is a positive, plus
    /// `cfg.rerank.negatives` hard negatives per positive drawn
    /// deterministically from its stage-1 shortlist (the shortlist a
    /// mistaken bi-encoder would actually confuse it with). See
    /// [`CrossEncoder::fit_resumable`].
    #[allow(clippy::too_many_arguments)]
    pub fn fit(
        &mut self,
        cache1: &[Vec<u32>],
        cache2: &[Vec<u32>],
        h_a1: &Tensor,
        retr: &dyn Retriever,
        train: &[(EntityId, EntityId)],
        valid: &[(EntityId, EntityId)],
        rng: &mut Rng,
    ) -> RerankFitReport {
        self.fit_resumable(cache1, cache2, h_a1, retr, train, valid, rng, None)
    }

    /// [`CrossEncoder::fit`] with checkpoint/resume on the stage protocol:
    /// with a [`Checkpointer`], the loop restores the latest intact
    /// `Rerank` [`checkpoint::StageState`] (weights, Adam moments, RNG
    /// stream, early-stopping bookkeeping) and continues bit-identically
    /// to the uninterrupted run; a new state lands every
    /// `checkpoint_every` epochs. `h_a1` is the frozen stage-1 table of
    /// KG1 (row = entity id); `retr` indexes the frozen KG2 table, so
    /// shortlists are computed once up front — they cannot drift across
    /// epochs or resumes.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_resumable(
        &mut self,
        cache1: &[Vec<u32>],
        cache2: &[Vec<u32>],
        h_a1: &Tensor,
        retr: &dyn Retriever,
        train: &[(EntityId, EntityId)],
        valid: &[(EntityId, EntityId)],
        rng: &mut Rng,
        mut ckpt: Option<&mut Checkpointer>,
    ) -> RerankFitReport {
        let _span = sdea_obs::span("rerank.fit");
        let rr = self.cfg.rerank.clone();
        let has_valid = !valid.is_empty();
        if !has_valid {
            sdea_obs::add("rerank.no_validation", 1);
        }
        let mut opt = Adam::new(rr.lr).with_clip(GradClip::GlobalNorm(1.0));
        let mut report = RerankFitReport::default();
        let n_targets = cache2.len();

        // Stage-1 shortlists, once: hard-negative pools for train sources,
        // rerank candidates for validation sources.
        let sources: Vec<EntityId> = train.iter().map(|&(e, _)| e).collect();
        let src_rows: Vec<usize> = sources.iter().map(|e| e.0 as usize).collect();
        let cands = {
            let _span = sdea_obs::span("rerank.shortlists");
            CandidateSet::from_retriever(&sources, &h_a1.gather_rows(&src_rows), retr, rr.k)
        };
        let valid_rows: Vec<usize> = valid.iter().map(|&(e, _)| e.0 as usize).collect();
        let valid_shortlists =
            if has_valid { retr.search(&h_a1.gather_rows(&valid_rows), rr.k) } else { Vec::new() };

        let mut best_hits = -1.0f64;
        let mut best_loss = f64::INFINITY;
        let mut best_snapshot = self.store.snapshot();
        let mut strikes = 0usize;
        let mut start_epoch = 0usize;
        let resume = ckpt.as_mut().and_then(|c| c.latest_stage_state(checkpoint::Stage::Rerank));
        if let Some(st) = resume {
            match self.store.restore_from_named(&st.store) {
                Ok(()) => {
                    opt.set_state(st.adam_t, st.adam_m, st.adam_v);
                    *rng = Rng::from_state(st.rng);
                    best_hits = st.best_hits;
                    best_loss = st.best_loss;
                    best_snapshot = st.best_snapshot;
                    strikes = st.strikes as usize;
                    report.epoch_losses = st.epoch_losses;
                    report.valid_hits1 = st.valid_hits1;
                    report.best_epoch = st.best_epoch as usize;
                    start_epoch = st.next_epoch as usize;
                    sdea_obs::add("ckpt.stage_resumes", 1);
                }
                Err(e) => {
                    eprintln!(
                        "rerank checkpoint incompatible with rebuilt model ({e}); starting fresh"
                    )
                }
            }
        }
        if start_epoch == 0 {
            // The warm-started state itself is the first early-stopping
            // candidate: if pair fine-tuning only hurts, it rolls back.
            best_hits =
                self.validate_shortlists(cache1, cache2, valid, &valid_shortlists, rr.alpha);
        }

        let pool = sdea_tensor::BufferPool::new();
        for epoch in start_epoch..rr.epochs {
            let _span = sdea_obs::span("epoch");
            let mut order: Vec<usize> = (0..train.len()).collect();
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            let mut steps = 0usize;
            for chunk in order.chunks(rr.batch.max(1)) {
                let mut rows: Vec<EncodedPair> =
                    Vec::with_capacity(chunk.len() * (1 + rr.negatives));
                let mut labels: Vec<usize> = Vec::with_capacity(rows.capacity());
                for &i in chunk {
                    let (a, gold) = train[i];
                    let q = &cache1[a.0 as usize];
                    rows.push(self.encode_pair(q, &cache2[gold.0 as usize]));
                    labels.push(1);
                    for _ in 0..rr.negatives {
                        let neg = cands.sample_negative(a, gold, n_targets, rng);
                        rows.push(self.encode_pair(q, &cache2[neg.0 as usize]));
                        labels.push(0);
                    }
                }
                let batch = TokenBatch::from_encoded_pairs(&rows);
                let g = Graph::with_pool(std::rc::Rc::clone(&pool));
                let logits = self.pair_logits(&g, &batch, true, rng);
                let logp = g.log_softmax_lastdim(logits);
                let loss = g.nll_mean(logp, &labels);
                let lv = g.value_cloned(loss).item();
                g.backward(loss);
                g.accumulate_param_grads(&mut self.store);
                opt.step(&mut self.store);
                epoch_loss += lv as f64;
                steps += 1;
                sdea_obs::add("rerank.steps", 1);
                sdea_obs::record("rerank.batch_loss", lv as f64);
            }
            let mean_loss = epoch_loss / steps.max(1) as f64;
            report.epoch_losses.push(mean_loss as f32);
            sdea_obs::add("rerank.epochs", 1);

            let hits1 = if has_valid {
                let _span = sdea_obs::span("validate");
                self.validate_shortlists(cache1, cache2, valid, &valid_shortlists, rr.alpha)
            } else {
                0.0
            };
            report.valid_hits1.push(hits1);
            let improved = if has_valid { hits1 > best_hits } else { mean_loss < best_loss };
            let mut stop = false;
            if improved {
                best_hits = hits1;
                best_loss = mean_loss;
                best_snapshot = self.store.snapshot();
                report.best_epoch = epoch;
                strikes = 0;
            } else {
                strikes += 1;
                if strikes >= self.cfg.patience {
                    sdea_obs::add("rerank.early_stops", 1);
                    stop = true;
                }
            }
            if let Some(c) = ckpt.as_mut() {
                if c.due(epoch) && !stop {
                    let (t, m, v) = opt.state();
                    let state = checkpoint::StageState {
                        next_epoch: (epoch + 1) as u32,
                        rng: rng.state(),
                        store: self.store.clone(),
                        adam_t: t,
                        adam_m: m.to_vec(),
                        adam_v: v.to_vec(),
                        best_snapshot: best_snapshot.clone(),
                        best_hits,
                        best_loss,
                        strikes: strikes as u32,
                        epoch_losses: report.epoch_losses.clone(),
                        valid_hits1: report.valid_hits1.clone(),
                        best_epoch: report.best_epoch as u32,
                    };
                    if let Err(e) = c.record_stage_epoch(checkpoint::Stage::Rerank, &state) {
                        eprintln!("rerank checkpoint at epoch {epoch} failed: {e}; continuing");
                    }
                }
            }
            if stop {
                break;
            }
        }
        self.store.restore(&best_snapshot);
        report
    }
}

/// Plain (non-graph) logistic function; inference-only, so it needs no
/// autograd support.
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

// --- persistence (`SDCE` blob, mirroring `crate::encoder_io`) -----------

/// Blob kind tag of the persisted cross-encoder.
pub const CROSS_ENCODER_KIND: &[u8; 4] = b"SDCE";

/// Payload layout version (bump on layout changes).
const CROSS_ENCODER_VERSION: u32 = 1;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("SDCE: {}", msg.into()))
}

fn need(buf: &&[u8], n: usize, what: &str) -> io::Result<()> {
    if buf.remaining() < n {
        Err(invalid(format!("truncated {what}")))
    } else {
        Ok(())
    }
}

/// Serializes the cross-encoder to bytes (blob container included).
pub fn cross_encoder_to_bytes(ce: &CrossEncoder) -> Vec<u8> {
    let cfg = ce.config();
    let mut p: Vec<u8> = Vec::new();
    p.put_u32_le(CROSS_ENCODER_VERSION);
    p.put_u64_le(cfg.seed);
    for v in [cfg.lm_hidden, cfg.lm_layers, cfg.lm_heads, cfg.lm_ffn, cfg.max_seq] {
        p.put_u32_le(v as u32);
    }
    p.put_f32_le(cfg.dropout);
    p.put_u32_le(cfg.rerank.k as u32);
    p.put_f32_le(cfg.rerank.alpha);
    // Vocabulary: non-special subwords in id order (specials implicit).
    let subwords: Vec<&str> =
        ce.tokenizer().vocab().iter().filter(|&(id, _)| id >= 5).map(|(_, t)| t).collect();
    p.put_u32_le(subwords.len() as u32);
    for sw in subwords {
        p.put_u32_le(sw.len() as u32);
        p.put_slice(sw.as_bytes());
    }
    let store = store_to_bytes(&ce.store);
    p.put_u64_le(store.len() as u64);
    p.put_slice(&store);
    blob_to_bytes(CROSS_ENCODER_KIND, &p)
}

/// Rebuilds a cross-encoder from [`cross_encoder_to_bytes`] output. Every
/// failure — corruption, version skew, architecture mismatch — is a typed
/// `InvalidData` error, never a panic.
pub fn cross_encoder_from_bytes(bytes: &[u8]) -> io::Result<CrossEncoder> {
    let mut buf = blob_payload(bytes, CROSS_ENCODER_KIND)?;
    need(&buf, 4, "version")?;
    let version = buf.get_u32_le();
    if version != CROSS_ENCODER_VERSION {
        return Err(invalid(format!("unsupported cross-encoder version {version}")));
    }
    need(&buf, 8 + 5 * 4 + 4 + 4 + 4, "config scalars")?;
    let mut cfg = SdeaConfig { seed: buf.get_u64_le(), ..SdeaConfig::default() };
    cfg.lm_hidden = buf.get_u32_le() as usize;
    cfg.lm_layers = buf.get_u32_le() as usize;
    cfg.lm_heads = buf.get_u32_le() as usize;
    cfg.lm_ffn = buf.get_u32_le() as usize;
    cfg.max_seq = buf.get_u32_le() as usize;
    cfg.dropout = buf.get_f32_le();
    cfg.rerank.enabled = true;
    cfg.rerank.k = buf.get_u32_le() as usize;
    cfg.rerank.alpha = buf.get_f32_le();
    need(&buf, 4, "subword count")?;
    let n_subwords = buf.get_u32_le() as usize;
    let mut subwords = Vec::with_capacity(n_subwords.min(1 << 20));
    for i in 0..n_subwords {
        need(&buf, 4, "subword length")?;
        let len = buf.get_u32_le() as usize;
        need(&buf, len, "subword bytes")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        let sw = String::from_utf8(raw).map_err(|_| invalid(format!("subword {i} not UTF-8")))?;
        subwords.push(sw);
    }
    need(&buf, 8, "store length")?;
    let store_len = buf.get_u64_le() as usize;
    need(&buf, store_len, "weight store")?;
    let store = store_from_bytes(&buf[..store_len])?;
    let tokenizer = Tokenizer::new(Vocab::new(subwords));
    CrossEncoder::from_parts(cfg, tokenizer, &store).map_err(invalid)
}

/// Atomically writes the cross-encoder to `path` (fault site
/// `rerank.save`).
pub fn save_cross_encoder(ce: &CrossEncoder, path: impl AsRef<Path>) -> io::Result<()> {
    atomic_write_retry(path, &cross_encoder_to_bytes(ce), "rerank.save")
}

/// Loads a cross-encoder written by [`save_cross_encoder`].
pub fn load_cross_encoder(path: impl AsRef<Path>) -> io::Result<CrossEncoder> {
    cross_encoder_from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_index::ExactRetriever;

    /// Two toy "KGs" whose aligned entities share anchor tokens, as in the
    /// attr_module tests, plus a trained bi-encoder over them.
    type Toy = (AttrModule, Vec<Vec<u32>>, Vec<Vec<u32>>, Vec<(EntityId, EntityId)>);

    fn toy() -> Toy {
        let n = 24usize;
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        let mut pairs = Vec::new();
        for i in 0..n {
            s1.push(format!("person alpha{i} born {}", 1900 + i));
            s2.push(format!("celui beta{i} naissance {}", 1900 + i));
            pairs.push((EntityId(i as u32), EntityId(i as u32)));
        }
        let mut rng = Rng::seed_from_u64(21);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.mlm_epochs = 0;
        let corpus: Vec<String> = s1.iter().chain(&s2).cloned().collect();
        let module = AttrModule::build(&cfg, &corpus, &mut rng);
        let cache1 = module.token_cache(&s1);
        let cache2 = module.token_cache(&s2);
        (module, cache1, cache2, pairs)
    }

    #[test]
    fn warm_start_copies_lm_weights() {
        let (module, ..) = toy();
        let mut rng = Rng::seed_from_u64(1);
        let ce = CrossEncoder::from_encoder(&module, &mut rng);
        // Every lm.* weight the bi-encoder has must be bitwise shared.
        let donor_names: std::collections::BTreeMap<String, Tensor> = module
            .store
            .ids()
            .map(|id| (module.store.name(id).to_string(), module.store.value(id).clone()))
            .collect();
        let mut checked = 0;
        let ids: Vec<ParamId> = ce.store.ids().collect();
        for id in ids {
            let name = ce.store.name(id);
            if let Some(donor) = donor_names.get(name) {
                assert_eq!(ce.store.value(id), donor, "{name} not warm-started");
                checked += 1;
            }
        }
        assert!(checked > 4, "warm start matched only {checked} params");
        // The extras exist and were not in the donor.
        assert!(ce.store.ids().any(|id| ce.store.name(id) == "lm.seg_emb"));
        assert!(ce.store.ids().any(|id| ce.store.name(id) == "rerank.head.w"));
        assert!(!donor_names.contains_key("lm.seg_emb"));
    }

    #[test]
    fn score_pairs_shapes_and_range() {
        let (module, cache1, cache2, _) = toy();
        let mut rng = Rng::seed_from_u64(2);
        let ce = CrossEncoder::from_encoder(&module, &mut rng);
        let probs = ce.score_pairs(&cache1[..5], &cache2[..5]);
        assert_eq!(probs.len(), 5);
        assert!(probs.iter().all(|p| p.is_finite() && *p > 0.0 && *p < 1.0), "{probs:?}");
        assert!(ce.score_pairs(&[], &[]).is_empty());
    }

    #[test]
    fn rerank_hits_orders_by_fused_score() {
        let (module, cache1, cache2, _) = toy();
        let mut rng = Rng::seed_from_u64(3);
        let ce = CrossEncoder::from_encoder(&module, &mut rng);
        let hits = vec![vec![(0usize, 0.9f32), (1, 0.8), (2, 0.7)]];
        let queries = vec![cache1[0].clone()];
        // alpha = 1.0: the head contributes nothing, stage-1 order holds.
        let same = ce.rerank_hits(&queries, &cache2, &hits, 1.0);
        assert_eq!(same[0].iter().map(|&(j, _)| j).collect::<Vec<_>>(), vec![0, 1, 2]);
        // Scores stay sorted under the contract at any alpha.
        let fused = ce.rerank_hits(&queries, &cache2, &hits, 0.5);
        assert_eq!(fused[0].len(), 3);
        for w in fused[0].windows(2) {
            assert_ne!(desc_nan_last(w[0].1, w[1].1), std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn fit_improves_reranked_validation() {
        let (module, cache1, cache2, pairs) = toy();
        let mut rng = Rng::seed_from_u64(4);
        let h_a1 = module.embed_all(&cache1, &mut rng);
        let h_a2 = module.embed_all(&cache2, &mut rng);
        let retr = ExactRetriever::new(&h_a2);
        let mut ce = CrossEncoder::from_encoder(&module, &mut rng);
        let train = &pairs[..16];
        let valid = &pairs[16..];
        let report = ce.fit(&cache1, &cache2, &h_a1, &retr, train, valid, &mut rng);
        assert!(!report.epoch_losses.is_empty());
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(!report.valid_hits1.is_empty());
        // The restored snapshot never scores below the warm-started state
        // (epoch 0's baseline is the first early-stopping candidate).
        let shortlists =
            retr.search(&h_a1.gather_rows(&[16, 17, 18, 19, 20, 21, 22, 23]), ce.cfg.rerank.k);
        let after =
            ce.validate_shortlists(&cache1, &cache2, valid, &shortlists, ce.cfg.rerank.alpha);
        let fresh = CrossEncoder::from_encoder(&module, &mut Rng::seed_from_u64(4));
        let before =
            fresh.validate_shortlists(&cache1, &cache2, valid, &shortlists, ce.cfg.rerank.alpha);
        assert!(after >= before, "rerank fit regressed: {before} -> {after} ({report:?})");
    }

    #[test]
    fn fit_is_deterministic() {
        let (module, cache1, cache2, pairs) = toy();
        let mut rng = Rng::seed_from_u64(5);
        let h_a1 = module.embed_all(&cache1, &mut rng);
        let h_a2 = module.embed_all(&cache2, &mut rng);
        let retr = ExactRetriever::new(&h_a2);
        let run = |seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let mut ce = CrossEncoder::from_encoder(&module, &mut rng);
            ce.fit(&cache1, &cache2, &h_a1, &retr, &pairs[..16], &pairs[16..], &mut rng);
            ce.store.snapshot()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let (module, cache1, cache2, pairs) = toy();
        let mut rng = Rng::seed_from_u64(6);
        let h_a1 = module.embed_all(&cache1, &mut rng);
        let h_a2 = module.embed_all(&cache2, &mut rng);
        let retr = ExactRetriever::new(&h_a2);
        let fp = 0x5dce;

        // Uninterrupted reference.
        let mut ce_ref = CrossEncoder::from_encoder(&module, &mut Rng::seed_from_u64(7));
        let mut rng_ref = Rng::seed_from_u64(8);
        ce_ref.fit(&cache1, &cache2, &h_a1, &retr, &pairs[..16], &pairs[16..], &mut rng_ref);

        // Run epochs 0..2 with checkpoints, then "die" and resume fresh.
        let dir = std::env::temp_dir().join(format!("sdea_rerank_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ce_a = CrossEncoder::from_encoder(&module, &mut Rng::seed_from_u64(7));
        let mut truncated = ce_a.cfg.clone();
        truncated.rerank.epochs = 2;
        ce_a.cfg = truncated;
        let mut ck = Checkpointer::open(&dir, fp, 1).expect("open ckpt");
        let mut rng_a = Rng::seed_from_u64(8);
        ce_a.fit_resumable(
            &cache1,
            &cache2,
            &h_a1,
            &retr,
            &pairs[..16],
            &pairs[16..],
            &mut rng_a,
            Some(&mut ck),
        );
        drop(ck);
        let mut ce_b = CrossEncoder::from_encoder(&module, &mut Rng::seed_from_u64(7));
        let mut ck = Checkpointer::open(&dir, fp, 1).expect("reopen ckpt");
        let mut rng_b = Rng::seed_from_u64(999); // overwritten by the resume
        ce_b.fit_resumable(
            &cache1,
            &cache2,
            &h_a1,
            &retr,
            &pairs[..16],
            &pairs[16..],
            &mut rng_b,
            Some(&mut ck),
        );
        assert_eq!(ce_b.store.snapshot(), ce_ref.store.snapshot(), "resume diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sdce_round_trip_preserves_scores_bitwise() {
        let (module, cache1, cache2, _) = toy();
        let mut rng = Rng::seed_from_u64(10);
        let ce = CrossEncoder::from_encoder(&module, &mut rng);
        let bytes = cross_encoder_to_bytes(&ce);
        let loaded = cross_encoder_from_bytes(&bytes).expect("round trip");
        assert_eq!(
            ce.score_pairs(&cache1[..4], &cache2[..4]),
            loaded.score_pairs(&cache1[..4], &cache2[..4]),
        );
        assert_eq!(loaded.config().rerank.k, ce.config().rerank.k);
    }

    #[test]
    fn sdce_corruption_is_a_typed_error() {
        let (module, ..) = toy();
        let mut rng = Rng::seed_from_u64(11);
        let ce = CrossEncoder::from_encoder(&module, &mut rng);
        let good = cross_encoder_to_bytes(&ce);
        assert_eq!(&good[..4], CROSS_ENCODER_KIND, "cross-encoder blob carries its kind");
        let mut bad_bytes = good.clone();
        let mid = bad_bytes.len() / 2;
        bad_bytes[mid] ^= 0xFF;
        let err = cross_encoder_from_bytes(&bad_bytes).err().expect("corrupt blob must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncation never panics.
        for cut in (0..good.len()).step_by(good.len() / 8 + 1) {
            let _ = cross_encoder_from_bytes(&good[..cut]);
        }
    }

    #[test]
    fn fused_similarity_respects_alpha_extremes() {
        let (module, cache1, cache2, _) = toy();
        let mut rng = Rng::seed_from_u64(12);
        let ce = CrossEncoder::from_encoder(&module, &mut rng);
        let n = 6usize;
        let sim = Tensor::rand_normal(&[n, n], 1.0, &mut rng);
        let q: Vec<Vec<u32>> = cache1[..n].to_vec();
        let c: Vec<Vec<u32>> = cache2[..n].to_vec();
        // alpha = 1: bitwise the stage-1 matrix.
        assert_eq!(ce.fused_similarity(&sim, &q, &c, 3, 1.0), sim);
        // Fused cells outside the shortlist keep alpha * sim exactly.
        let fused = ce.fused_similarity(&sim, &q, &c, 2, 0.5);
        let mut boosted = 0;
        for i in 0..n {
            for j in 0..n {
                let base = 0.5 * sim.data()[i * n + j];
                let got = fused.data()[i * n + j];
                if got != base {
                    assert!(got > base, "head must only add evidence");
                    boosted += 1;
                }
            }
        }
        assert_eq!(boosted, n * 2, "exactly top-k cells per row boosted");
    }
}
