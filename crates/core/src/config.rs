//! SDEA hyper-parameters.

use sdea_index::IndexConfig;
use sdea_lm::LmConfig;

/// Configuration of the full SDEA pipeline.
///
/// Paper values (Section V-A3) with our CPU-scale defaults in parentheses:
/// BERT max input 128 (40), attribute batch size 8 (8), relation batch size
/// 256 (128), early-stopping patience 5 validations (5), split 2:1:7 (same).
#[derive(Clone, Debug)]
pub struct SdeaConfig {
    /// Subword vocabulary budget for the trained tokenizer.
    pub vocab_budget: usize,
    /// Transformer hidden width.
    pub lm_hidden: usize,
    /// Transformer layers.
    pub lm_layers: usize,
    /// Attention heads.
    pub lm_heads: usize,
    /// Feed-forward width.
    pub lm_ffn: usize,
    /// Max token sequence length for attribute sequences.
    pub max_seq: usize,
    /// Dimension of `H_a` / `H_r` / `H_m` (each).
    pub embed_dim: usize,
    /// MLM pre-training epochs over the (subsampled) corpus.
    pub mlm_epochs: usize,
    /// MLM corpus subsample cap (sentences).
    pub mlm_corpus_cap: usize,
    /// MLM batch size.
    pub mlm_batch: usize,
    /// MLM learning rate.
    pub mlm_lr: f32,
    /// Margin β of the ranking loss (Eq. 18).
    pub margin: f32,
    /// Attribute-module fine-tuning epochs (upper bound).
    pub attr_epochs: usize,
    /// Attribute-module batch size (pairs per step).
    pub attr_batch: usize,
    /// Attribute-module learning rate.
    pub attr_lr: f32,
    /// Relation-module training epochs (upper bound).
    pub rel_epochs: usize,
    /// Relation-module batch size (pairs per step).
    pub rel_batch: usize,
    /// Relation-module learning rate.
    pub rel_lr: f32,
    /// Number of nearest-neighbour candidates for negative sampling.
    pub n_candidates: usize,
    /// Early-stopping patience (validations without improvement).
    pub patience: usize,
    /// Cap on neighbours fed to the BiGRU.
    pub max_neighbors: usize,
    /// Dropout used during fine-tuning.
    pub dropout: f32,
    /// Pool the transformer output by `[CLS]` (the paper, suited to a deep
    /// pre-trained BERT) or by masked mean over token states (better for
    /// the shallow from-scratch LM used here — see DESIGN.md).
    pub pooling: Pooling,
    /// L2-normalize `H_a` rows (keeps the margin-loss geometry bounded).
    pub normalize_embeddings: bool,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread budget for the fork-join layer (`sdea_tensor::par`);
    /// 0 defers to the `SDEA_THREADS` environment variable, then the
    /// hardware parallelism. Results are identical at any setting.
    // fingerprint: excluded(execution knob; results identical at any thread count)
    pub threads: usize,
    /// Enables the `sdea_obs` instrumentation layer (span timers, counters,
    /// run reports). `false` force-disables it for this process regardless
    /// of `SDEA_OBS`; observability never changes any computed tensor
    /// either way.
    // fingerprint: excluded(instrumentation toggle; never changes computed tensors)
    pub obs: bool,
    /// Checkpoint directory for crash-safe training. `None` (the default)
    /// disables checkpointing; `Some(dir)` writes stage-boundary and
    /// epoch checkpoints there and **resumes** from them when the
    /// directory already holds a manifest written under an identical
    /// configuration. A resumed run is bit-identical to an uninterrupted
    /// one (see `crate::checkpoint`).
    // fingerprint: excluded(storage location; a resumed run is bit-identical)
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Fine-tuning epochs between mid-stage checkpoints (both stages);
    /// 0 checkpoints only at stage boundaries. Ignored without
    /// `checkpoint_dir`. Like `threads`/`obs`, this never changes results.
    // fingerprint: excluded(checkpoint cadence; never changes results)
    pub checkpoint_every: usize,
    /// Rows per spilled embedding shard when the final `H_a` tables stream
    /// through the out-of-core path (`AttrModule::embed_all_spill`); 0
    /// means one shard holding the whole table. Execution knob: per-row
    /// embeddings are independent of batch and shard composition, so any
    /// value yields bit-identical tables (pinned by the equivalence
    /// suites) and this never enters the config fingerprint.
    // fingerprint: excluded(spill granularity; shard composition never changes tables)
    pub embed_shard_rows: usize,
    /// Query rows per block in blocked evaluation (`sdea_eval`'s
    /// `evaluate_ranking_blocked` family); 0 evaluates all queries in one
    /// block. Execution knob: blocked evaluation is bit-identical to the
    /// materialized-matrix path at any value, only the peak memory of the
    /// similarity block changes.
    // fingerprint: excluded(blocking factor; bit-identical to the materialized path)
    pub eval_block_rows: usize,
    /// Retrieval backend for every ranking path (candidate generation,
    /// bootstrap mutual-nearest pairs). The default exact backend is
    /// bit-identical to the historical full-matrix scans; an IVF backend
    /// with `nprobe < nlist` changes which negatives and bootstrap pairs
    /// training sees, so — unlike `threads`/`obs` — this participates in
    /// the checkpoint config fingerprint.
    pub index: IndexConfig,
    /// Cross-encoder reranking stage (off by default). When enabled it
    /// fine-tunes a pair classifier on the seed alignments and rescores
    /// only the stage-1 top-`k` shortlist at eval/serve time; disabled, the
    /// pipeline is bit-identical to a build without the feature. Like
    /// `index`, the knobs shape results and enter the checkpoint config
    /// fingerprint.
    pub rerank: RerankConfig,
}

/// Hyper-parameters of the cross-encoder reranking stage.
#[derive(Clone, Debug, PartialEq)]
pub struct RerankConfig {
    /// Train and apply the reranker at all.
    pub enabled: bool,
    /// Shortlist size rescored per query (stage-1 candidates).
    pub k: usize,
    /// Score-fusion weight: `alpha * cosine + (1 - alpha) * sigmoid(head)`.
    pub alpha: f32,
    /// Fine-tuning epochs (upper bound; early stopping applies).
    pub epochs: usize,
    /// Pairs per optimizer step.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Hard negatives sampled from the shortlist per positive pair.
    pub negatives: usize,
}

impl Default for RerankConfig {
    fn default() -> Self {
        RerankConfig {
            enabled: false,
            k: 10,
            alpha: 0.5,
            epochs: 6,
            batch: 8,
            lr: 3e-4,
            negatives: 2,
        }
    }
}

impl RerankConfig {
    /// Overlays the `SDEA_RERANK*` environment twins onto `self`:
    /// `SDEA_RERANK` (bool), `SDEA_RERANK_K`, `SDEA_RERANK_ALPHA`,
    /// `SDEA_RERANK_EPOCHS`, `SDEA_RERANK_BATCH`, `SDEA_RERANK_LR`,
    /// `SDEA_RERANK_NEGATIVES`. Malformed values abort startup
    /// ([`sdea_obs::env`]); unset keeps the current values.
    pub fn apply_env(&mut self) {
        use sdea_obs::env::{bool_or_exit, die, parse_or_exit};
        if let Some(b) = bool_or_exit("SDEA_RERANK") {
            self.enabled = b;
        }
        if let Some(k) = parse_or_exit::<usize>("SDEA_RERANK_K", "a positive shortlist size") {
            if k == 0 {
                die("SDEA_RERANK_K is 0: expected a positive shortlist size");
            }
            self.k = k;
        }
        if let Some(a) = parse_or_exit::<f32>("SDEA_RERANK_ALPHA", "a fusion weight in [0,1]") {
            if !(0.0..=1.0).contains(&a) {
                die(&format!("invalid SDEA_RERANK_ALPHA={a}: expected a fusion weight in [0,1]"));
            }
            self.alpha = a;
        }
        if let Some(e) = parse_or_exit::<usize>("SDEA_RERANK_EPOCHS", "an epoch count") {
            self.epochs = e;
        }
        if let Some(b) = parse_or_exit::<usize>("SDEA_RERANK_BATCH", "a positive batch size") {
            if b == 0 {
                die("SDEA_RERANK_BATCH is 0: expected a positive batch size");
            }
            self.batch = b;
        }
        if let Some(lr) = parse_or_exit::<f32>("SDEA_RERANK_LR", "a positive learning rate") {
            if !lr.is_finite() || lr <= 0.0 {
                die(&format!("invalid SDEA_RERANK_LR={lr}: expected a positive learning rate"));
            }
            self.lr = lr;
        }
        if let Some(n) =
            parse_or_exit::<usize>("SDEA_RERANK_NEGATIVES", "a hard-negative count per positive")
        {
            self.negatives = n;
        }
    }
}

/// Sequence pooling strategy of the attribute module.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Pooling {
    /// `[CLS]` hidden state (paper Eq. 6).
    Cls,
    /// Uniform mean over non-padding token states.
    Mean,
    /// IDF-weighted mean over non-padding token states (SIF-style).
    /// Rare, discriminative tokens — names, dates — dominate the pooled
    /// vector, which is what a large fine-tuned BERT learns to do with its
    /// `[CLS]` attention; our small model gets it as an inductive bias.
    IdfMean,
}

impl Default for SdeaConfig {
    fn default() -> Self {
        SdeaConfig {
            // Small subword vocabulary: coarse (word-level) pieces make
            // transliterated name pairs share no tokens; ~300 forces 2-4
            // character pieces, the granularity cross-lingual anchors need.
            vocab_budget: 300,
            lm_hidden: 128,
            lm_layers: 2,
            lm_heads: 4,
            lm_ffn: 256,
            max_seq: 96,
            embed_dim: 128,
            // MLM pre-training is implemented and tested, but defaults to
            // off: at this model scale the distributional objective
            // collapses the identity of anchor tokens (years, names) that
            // alignment depends on — measured in EXPERIMENTS.md. The
            // identity-residual initialization plays the role of the
            // pre-trained checkpoint instead (see DESIGN.md).
            mlm_epochs: 0,
            mlm_corpus_cap: 3000,
            mlm_batch: 16,
            mlm_lr: 2e-3,
            margin: 0.5,
            attr_epochs: 12,
            attr_batch: 8,
            attr_lr: 3e-4,
            rel_epochs: 40,
            rel_batch: 128,
            rel_lr: 2e-3,
            n_candidates: 20,
            patience: 5,
            max_neighbors: 12,
            dropout: 0.1,
            pooling: Pooling::IdfMean,
            normalize_embeddings: true,
            seed: 0,
            threads: 0,
            obs: true,
            checkpoint_dir: None,
            checkpoint_every: 1,
            embed_shard_rows: 2048,
            eval_block_rows: 512,
            index: IndexConfig::default(),
            rerank: RerankConfig::default(),
        }
    }
}

impl SdeaConfig {
    /// A configuration for unit tests: tiny but end-to-end functional.
    pub fn test_tiny() -> Self {
        SdeaConfig {
            vocab_budget: 400,
            lm_hidden: 32,
            lm_layers: 1,
            lm_heads: 2,
            lm_ffn: 64,
            max_seq: 24,
            embed_dim: 32,
            mlm_epochs: 0,
            mlm_corpus_cap: 300,
            mlm_batch: 8,
            mlm_lr: 2e-3,
            margin: 0.5,
            attr_epochs: 3,
            attr_batch: 8,
            attr_lr: 1e-3,
            rel_epochs: 10,
            rel_batch: 64,
            rel_lr: 2e-3,
            n_candidates: 8,
            patience: 3,
            max_neighbors: 8,
            dropout: 0.0,
            pooling: Pooling::IdfMean,
            normalize_embeddings: true,
            seed: 7,
            threads: 0,
            obs: true,
            checkpoint_dir: None,
            checkpoint_every: 1,
            embed_shard_rows: 2048,
            eval_block_rows: 512,
            index: IndexConfig::default(),
            rerank: RerankConfig { k: 5, epochs: 3, negatives: 2, ..RerankConfig::default() },
        }
    }

    /// The transformer configuration induced by this SDEA configuration.
    pub fn lm_config(&self, vocab_size: usize) -> LmConfig {
        LmConfig {
            vocab_size,
            hidden: self.lm_hidden,
            layers: self.lm_layers,
            heads: self.lm_heads,
            ffn: self.lm_ffn,
            max_seq: self.max_seq,
            dropout: self.dropout,
            ln_eps: 1e-5,
            identity_residual_init: true,
            segments: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lm_config_is_valid() {
        let cfg = SdeaConfig::default();
        assert!(cfg.lm_config(1000).validate().is_ok());
        assert!(SdeaConfig::test_tiny().lm_config(100).validate().is_ok());
    }
}
