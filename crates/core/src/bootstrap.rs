//! Bootstrapped seed augmentation (extension).
//!
//! BootEA showed that semi-supervised self-training — promoting confident
//! predictions to training data — lifts alignment accuracy; the paper
//! credits its TransE-family wins partly to this. The same idea composes
//! with SDEA: after the attribute stage, mutual-nearest entity pairs with
//! high `H_a` cosine become additional (noisy) seeds for the relation
//! stage. Exposed through [`crate::SdeaPipeline::run_bootstrapped`].

use sdea_eval::{argmax_cols, argmax_rows, cosine_matrix};
use sdea_kg::EntityId;
use sdea_tensor::Tensor;

/// Mutual-nearest pairs above a cosine threshold between two embedding
/// tables (rows = entity ids).
pub fn mutual_nearest_pairs(
    emb1: &Tensor,
    emb2: &Tensor,
    threshold: f32,
) -> Vec<(EntityId, EntityId)> {
    let sim = cosine_matrix(emb1, emb2);
    let (n, m) = (sim.shape()[0], sim.shape()[1]);
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // Both argmax passes ride the blocked parallel scans in sdea-eval.
    let best_row = argmax_rows(&sim);
    let best_col = argmax_cols(&sim);
    (0..n)
        .filter_map(|i| {
            let j = best_row[i];
            (sim.at2(i, j) >= threshold && best_col[j] == i)
                .then_some((EntityId(i as u32), EntityId(j as u32)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_tensor::Rng;

    #[test]
    fn identical_tables_pair_everything() {
        let mut rng = Rng::seed_from_u64(1);
        let e = Tensor::rand_normal(&[8, 6], 1.0, &mut rng);
        let pairs = mutual_nearest_pairs(&e, &e, 0.99);
        assert_eq!(pairs.len(), 8);
        assert!(pairs.iter().all(|&(a, b)| a.0 == b.0));
    }

    #[test]
    fn threshold_filters_low_confidence() {
        let mut rng = Rng::seed_from_u64(2);
        // unrelated random tables: expected cosines well below 0.95
        let a = Tensor::rand_normal(&[10, 16], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[10, 16], 1.0, &mut rng);
        let pairs = mutual_nearest_pairs(&a, &b, 0.95);
        assert!(pairs.len() <= 2, "random tables should rarely pass 0.95: {pairs:?}");
    }

    #[test]
    fn mutuality_is_required() {
        // row 0 prefers col 0, but col 0 prefers row 1 -> (0,0) must not pair
        let a = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.05], &[2, 2]);
        let b = Tensor::from_vec(vec![1.0, 0.02], &[1, 2]);
        let pairs = mutual_nearest_pairs(&a, &b, 0.0);
        // only one column; it pairs with its best row only
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1, EntityId(0));
    }
}
