//! Bootstrapped seed augmentation (extension).
//!
//! BootEA showed that semi-supervised self-training — promoting confident
//! predictions to training data — lifts alignment accuracy; the paper
//! credits its TransE-family wins partly to this. The same idea composes
//! with SDEA: after the attribute stage, mutual-nearest entity pairs with
//! high `H_a` cosine become additional (noisy) seeds for the relation
//! stage. Exposed through [`crate::SdeaPipeline::run_bootstrapped`].

use sdea_index::{build_retriever, IndexConfig};
use sdea_kg::EntityId;
use sdea_tensor::Tensor;

/// Mutual-nearest pairs above a cosine threshold between two embedding
/// tables (rows = entity ids), with the default (exact) retrieval backend.
pub fn mutual_nearest_pairs(
    emb1: &Tensor,
    emb2: &Tensor,
    threshold: f32,
) -> Vec<(EntityId, EntityId)> {
    mutual_nearest_pairs_with(emb1, emb2, threshold, &IndexConfig::default())
}

/// [`mutual_nearest_pairs`] through the retrieval backend selected by
/// `index` (`SdeaConfig::index`).
///
/// Each side's nearest neighbour comes from a top-1 search against the
/// other side's index. Cosine is symmetric and both matmul orientations
/// accumulate in ascending feature order, so the two directions see
/// bitwise-equal scores; the mutual filter is therefore order-independent.
/// With an approximate (IVF, `nprobe < nlist`) backend a pair is kept only
/// when the two shortlists agree, which can drop — never fabricate —
/// mutual pairs.
pub fn mutual_nearest_pairs_with(
    emb1: &Tensor,
    emb2: &Tensor,
    threshold: f32,
    index: &IndexConfig,
) -> Vec<(EntityId, EntityId)> {
    let (n, m) = (emb1.shape()[0], emb2.shape()[0]);
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let _span = sdea_obs::span("bootstrap.mutual_nearest");
    let fwd = build_retriever(emb2, index).search(emb1, 1);
    let bwd = build_retriever(emb1, index).search(emb2, 1);
    (0..n)
        .filter_map(|i| {
            let &(j, score) = fwd[i].first()?;
            let &(back, _) = bwd[j].first()?;
            (score >= threshold && back == i).then_some((EntityId(i as u32), EntityId(j as u32)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_tensor::Rng;

    #[test]
    fn identical_tables_pair_everything() {
        let mut rng = Rng::seed_from_u64(1);
        let e = Tensor::rand_normal(&[8, 6], 1.0, &mut rng);
        let pairs = mutual_nearest_pairs(&e, &e, 0.99);
        assert_eq!(pairs.len(), 8);
        assert!(pairs.iter().all(|&(a, b)| a.0 == b.0));
    }

    #[test]
    fn threshold_filters_low_confidence() {
        let mut rng = Rng::seed_from_u64(2);
        // unrelated random tables: expected cosines well below 0.95
        let a = Tensor::rand_normal(&[10, 16], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[10, 16], 1.0, &mut rng);
        let pairs = mutual_nearest_pairs(&a, &b, 0.95);
        assert!(pairs.len() <= 2, "random tables should rarely pass 0.95: {pairs:?}");
    }

    #[test]
    fn mutuality_is_required() {
        // row 0 prefers col 0, but col 0 prefers row 1 -> (0,0) must not pair
        let a = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.05], &[2, 2]);
        let b = Tensor::from_vec(vec![1.0, 0.02], &[1, 2]);
        let pairs = mutual_nearest_pairs(&a, &b, 0.0);
        // only one column; it pairs with its best row only
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1, EntityId(0));
    }
}
