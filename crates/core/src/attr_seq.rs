//! Algorithm 1 — KG transformation: attribute triples to token sequences.
//!
//! A fixed random order `Ô(A)` of the KG's attributes is drawn once; every
//! entity's attribute values are concatenated in that order (entities thus
//! share a consistent "contextual relationship between attribute values",
//! Section III-A1) and tokenized.

use sdea_kg::{AttributeId, EntityId, KnowledgeGraph};
use sdea_tensor::Rng;
use sdea_text::Tokenizer;

/// Produces and caches entity attribute sequences for one KG.
#[derive(Clone, Debug)]
pub struct AttrSequencer {
    /// Position of each attribute in `Ô(A)`.
    order: Vec<usize>,
    /// Raw text sequence per entity (Algorithm 1's `S(e_i)`).
    sequences: Vec<String>,
}

impl AttrSequencer {
    /// Runs Algorithm 1 on a KG: draws `Ô(A)` with `rng` and builds
    /// `S(e_i)` for every entity.
    pub fn new(kg: &KnowledgeGraph, rng: &mut Rng) -> Self {
        let mut order: Vec<usize> = (0..kg.num_attributes()).collect();
        rng.shuffle(&mut order);
        // rank of each attribute in the shuffled order
        let mut rank = vec![0usize; kg.num_attributes()];
        for (pos, &a) in order.iter().enumerate() {
            rank[a] = pos;
        }
        Self::with_rank(kg, rank)
    }

    /// Builds sequences with an explicit attribute ranking (used by the
    /// attribute-order ablation).
    pub fn with_rank(kg: &KnowledgeGraph, rank: Vec<usize>) -> Self {
        assert_eq!(rank.len(), kg.num_attributes());
        let mut sequences = Vec::with_capacity(kg.num_entities());
        let mut buf: Vec<(usize, &str)> = Vec::new();
        for e in kg.entities() {
            buf.clear();
            for t in kg.attr_triples_of(e) {
                buf.push((rank[t.attr.0 as usize], &t.value));
            }
            // stable by (rank, original encounter order)
            buf.sort_by_key(|&(r, _)| r);
            let mut s = String::new();
            for (i, (_, v)) in buf.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                s.push_str(v);
            }
            sequences.push(s);
        }
        AttrSequencer { order: rank, sequences }
    }

    /// The sequence `S(e)` of an entity.
    pub fn sequence(&self, e: EntityId) -> &str {
        &self.sequences[e.0 as usize]
    }

    /// All sequences (indexed by entity id).
    pub fn sequences(&self) -> &[String] {
        &self.sequences
    }

    /// The rank of an attribute in `Ô(A)`.
    pub fn rank_of(&self, a: AttributeId) -> usize {
        self.order[a.0 as usize]
    }

    /// Tokenizes every sequence once (subword ids without specials) for
    /// cheap re-encoding at different batch shapes.
    pub fn tokenize_all(&self, tok: &Tokenizer) -> Vec<Vec<u32>> {
        self.sequences.iter().map(|s| tok.text_to_ids(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_kg::KgBuilder;

    fn kg() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        b.attr_triple("e1", "name", "Fabian Wendelin Bruskewitz");
        b.attr_triple("e1", "workPlace", "Roman Catholic Church");
        b.attr_triple("e1", "nationality", "American");
        b.attr_triple("e2", "nationality", "Portuguese");
        b.attr_triple("e2", "name", "Cristiano Ronaldo");
        b.build()
    }

    #[test]
    fn paper_fig4_example_order() {
        // Force order [name, nationality, workPlace] as in Fig. 4.
        let kg = kg();
        let name = kg.attr_triples()[0].attr;
        let wp = kg.attr_triples()[1].attr;
        let nat = kg.attr_triples()[2].attr;
        let mut rank = vec![0usize; 3];
        rank[name.0 as usize] = 0;
        rank[nat.0 as usize] = 1;
        rank[wp.0 as usize] = 2;
        let seq = AttrSequencer::with_rank(&kg, rank);
        assert_eq!(
            seq.sequence(kg.find_entity("e1").unwrap()),
            "Fabian Wendelin Bruskewitz American Roman Catholic Church"
        );
    }

    #[test]
    fn all_entities_share_the_same_order() {
        let kg = kg();
        let mut rng = Rng::seed_from_u64(3);
        let seq = AttrSequencer::new(&kg, &mut rng);
        let e1 = kg.find_entity("e1").unwrap();
        let e2 = kg.find_entity("e2").unwrap();
        let s1 = seq.sequence(e1);
        let s2 = seq.sequence(e2);
        // e1 and e2 both have name + nationality; their relative order must
        // agree across entities.
        let n1 = s1.find("Fabian").unwrap();
        let a1 = s1.find("American").unwrap();
        let n2 = s2.find("Cristiano").unwrap();
        let a2 = s2.find("Portuguese").unwrap();
        assert_eq!(n1 < a1, n2 < a2, "attribute order differs between entities");
    }

    #[test]
    fn entity_without_attributes_gets_empty_sequence() {
        let mut b = KgBuilder::new();
        b.entity("lonely");
        b.attr_triple("other", "name", "X");
        let kg = b.build();
        let mut rng = Rng::seed_from_u64(1);
        let seq = AttrSequencer::new(&kg, &mut rng);
        assert_eq!(seq.sequence(kg.find_entity("lonely").unwrap()), "");
    }

    #[test]
    fn order_is_rng_dependent_but_reproducible() {
        let kg = kg();
        let a = AttrSequencer::new(&kg, &mut Rng::seed_from_u64(5));
        let b = AttrSequencer::new(&kg, &mut Rng::seed_from_u64(5));
        assert_eq!(a.sequences(), b.sequences());
    }
}
