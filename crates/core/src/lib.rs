//! # sdea-core
//!
//! SDEA — *Semantics Driven embedding learning for effective Entity
//! Alignment* (Zhong et al., ICDE 2022) — the paper's primary contribution.
//!
//! The pipeline (paper Fig. 3):
//!
//! 1. **Attribute sequences** ([`attr_seq`], Algorithm 1): all attribute
//!    values of an entity are concatenated in one globally fixed attribute
//!    order into a token sequence.
//! 2. **Attribute embedding module** ([`attr_module`], Eq. 5–7): a
//!    pre-trained transformer encodes the sequence; the `[CLS]` state passes
//!    through an MLP to give `H_a(e)`. Fine-tuned with a margin-based
//!    ranking loss over seed alignments, negatives drawn from a
//!    nearest-neighbour candidate set (Algorithm 2).
//! 3. **Relation embedding module** ([`rel_module`], Eq. 8–15): a BiGRU
//!    runs over the attribute embeddings of an entity's neighbours; a
//!    global attention vector scores each neighbour and `H_r(e)` is the
//!    attention-weighted sum.
//! 4. **Joint representation** ([`joint`], Eq. 16–17):
//!    `H_m = MLP([H_a; H_r])`, final `H_ent = [H_r; H_a; H_m]`; the relation
//!    stage trains on `[H_r; H_m]` with the same loss (Algorithm 3).
//! 5. **Alignment** ([`align`]): cosine ranking of target entities, with
//!    optional Gale–Shapley stable matching for 1-1 output.
//!
//! [`pipeline::SdeaPipeline`] wires everything end-to-end against any pair
//! of [`sdea_kg::KnowledgeGraph`]s with seed alignments.

#![forbid(unsafe_code)]

pub mod align;
pub mod attr_module;
pub mod attr_seq;
pub mod bootstrap;
pub mod candidates;
pub mod checkpoint;
pub mod config;
pub mod encoder_io;
pub mod joint;
pub mod loss;
pub mod model_io;
pub mod numeric;
pub mod pipeline;
pub mod rel_module;
pub mod rerank;
pub mod trainer;

pub use align::{stable_matching, AlignmentResult};
pub use attr_module::AttrModule;
pub use attr_seq::AttrSequencer;
pub use candidates::CandidateSet;
pub use checkpoint::Checkpointer;
pub use config::SdeaConfig;
pub use pipeline::{SdeaModel, SdeaPipeline};
pub use rel_module::RelModule;
pub use rerank::CrossEncoder;
