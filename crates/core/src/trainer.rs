//! Algorithm 3 — model training with pre-trained attribute embeddings.
//!
//! The attribute embeddings `H_a` are frozen (the paper separates the two
//! stages for GPU-memory reasons; the separation is part of the method).
//! The relation module and the joint MLP train with the margin ranking
//! loss computed on `[H_r; H_m]`, candidates generated **once** up front
//! from `H_a` (Algorithm 3 line 1), early stopping on validation Hits@1.

use crate::candidates::CandidateSet;
use crate::checkpoint::{self, Checkpointer};
use crate::config::SdeaConfig;
use crate::joint::JointHead;
use crate::loss::margin_ranking_loss;
use crate::rel_module::{NeighborBatch, RelModule, RelVariant};
use sdea_eval::evaluate_ranking_blocked;
use sdea_kg::{EntityId, KnowledgeGraph};
use sdea_tensor::{Adam, GradClip, Graph, Optimizer, ParamStore, Rng, Tensor};

/// Progress record of the relation-stage training.
#[derive(Clone, Debug, Default)]
pub struct RelFitReport {
    /// Mean margin loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation Hits@1 (on full `H_ent`) per epoch.
    pub valid_hits1: Vec<f64>,
    /// Best epoch restored.
    pub best_epoch: usize,
}

/// The trained relation stage: module + joint head + their weights.
pub struct RelStage {
    /// Relation module (BiGRU + attention).
    pub rel: RelModule,
    /// Joint MLP head.
    pub joint: JointHead,
    /// Weights of both.
    pub store: ParamStore,
    /// Neighbour lists per entity for KG1/KG2 (attr-table row indices).
    pub neigh1: Vec<Vec<usize>>,
    /// Neighbour lists for KG2.
    pub neigh2: Vec<Vec<usize>>,
}

/// Builds capped neighbour lists for every entity. Entities without
/// neighbours fall back to themselves (their own attribute embedding),
/// so `H_r` degrades gracefully to attribute information.
pub fn neighbor_lists(kg: &KnowledgeGraph, cap: usize) -> Vec<Vec<usize>> {
    kg.entities()
        .map(|e| {
            let mut l: Vec<usize> = kg.neighbors(e).iter().map(|&(n, _, _)| n.0 as usize).collect();
            l.truncate(cap);
            if l.is_empty() {
                l.push(e.0 as usize);
            }
            l
        })
        .collect()
}

impl RelStage {
    /// Registers the relation module and joint head.
    pub fn new(
        cfg: &SdeaConfig,
        variant: RelVariant,
        kg1: &KnowledgeGraph,
        kg2: &KnowledgeGraph,
        rng: &mut Rng,
    ) -> Self {
        let mut store = ParamStore::new();
        let rel = RelModule::new(cfg.embed_dim, variant, &mut store, rng);
        let joint = JointHead::new(cfg.embed_dim, &mut store, rng);
        RelStage {
            rel,
            joint,
            store,
            neigh1: neighbor_lists(kg1, cfg.max_neighbors),
            neigh2: neighbor_lists(kg2, cfg.max_neighbors),
        }
    }

    /// Computes the full `H_ent` for the given entities of one side.
    /// `h_a` is the side's complete attribute embedding table.
    pub fn full_embeddings(&self, h_a: &Tensor, side1: bool, ids: &[EntityId]) -> Tensor {
        let neigh = if side1 { &self.neigh1 } else { &self.neigh2 };
        let d3 = 3 * h_a.shape()[1];
        let mut out = Tensor::zeros(&[ids.len(), d3]);
        let batch_size = 256usize;
        let mut start = 0usize;
        while start < ids.len() {
            let end = (start + batch_size).min(ids.len());
            let lists: Vec<Vec<usize>> =
                ids[start..end].iter().map(|e| neigh[e.0 as usize].clone()).collect();
            let rows: Vec<usize> = ids[start..end].iter().map(|e| e.0 as usize).collect();
            let g = Graph::new();
            let table = g.constant(h_a.clone());
            let nb = NeighborBatch::from_lists(&lists);
            let h_r = self.rel.forward(&g, &self.store, table, &nb);
            let h_a_batch = g.constant(h_a.gather_rows(&rows));
            let full = self.joint.full_embedding(&g, &self.store, h_a_batch, h_r);
            let v = g.value(full);
            out.data_mut()[start * d3..end * d3].copy_from_slice(v.data());
            start = end;
        }
        out
    }

    /// Algorithm 3: trains the relation module + joint head.
    ///
    /// Early stopping tracks validation Hits@1 when `valid` is non-empty.
    /// With **no validation pairs** the best epoch is chosen by training
    /// loss instead — previously an empty `valid` made `validate` return a
    /// constant 0.0, so the epoch-0 snapshot stayed "best" forever and all
    /// training after the first epoch was silently thrown away. The
    /// `rel.no_validation` warning counter records that the fallback ran.
    #[allow(clippy::too_many_arguments)]
    pub fn fit(
        &mut self,
        cfg: &SdeaConfig,
        h_a1: &Tensor,
        h_a2: &Tensor,
        train: &[(EntityId, EntityId)],
        valid: &[(EntityId, EntityId)],
        rng: &mut Rng,
    ) -> RelFitReport {
        self.fit_resumable(cfg, h_a1, h_a2, train, valid, rng, None)
    }

    /// [`RelStage::fit`] with checkpoint/resume support. With a
    /// [`Checkpointer`], the loop restores the latest intact relation-stage
    /// [`crate::checkpoint::StageState`] (weights, Adam moments, RNG
    /// stream, early-stopping bookkeeping) and continues from its epoch —
    /// bit-identically to the uninterrupted run — and writes a new state
    /// every `checkpoint_every` epochs. Candidates are regenerated, not
    /// checkpointed: they derive deterministically from the frozen `H_a`
    /// tables. Checkpoint write failures are reported and training
    /// continues.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_resumable(
        &mut self,
        cfg: &SdeaConfig,
        h_a1: &Tensor,
        h_a2: &Tensor,
        train: &[(EntityId, EntityId)],
        valid: &[(EntityId, EntityId)],
        rng: &mut Rng,
        mut ckpt: Option<&mut Checkpointer>,
    ) -> RelFitReport {
        let _span = sdea_obs::span("rel.fit");
        let has_valid = !valid.is_empty();
        if !has_valid {
            sdea_obs::add("rel.no_validation", 1);
        }
        let mut opt = Adam::new(cfg.rel_lr).with_clip(GradClip::GlobalNorm(2.0));
        let mut report = RelFitReport::default();
        // Line 1: candidates once, from the pre-trained attribute
        // embeddings.
        let sources: Vec<EntityId> = train.iter().map(|&(e, _)| e).collect();
        let src_rows: Vec<usize> = sources.iter().map(|e| e.0 as usize).collect();
        let cands = {
            let _span = sdea_obs::span("candidates");
            CandidateSet::generate_with(
                &sources,
                &h_a1.gather_rows(&src_rows),
                h_a2,
                cfg.n_candidates,
                &cfg.index,
            )
        };
        let n_targets = h_a2.shape()[0];

        let mut best_hits = -1.0f64;
        let mut best_loss = f64::INFINITY;
        let mut best_snapshot = self.store.snapshot();
        let mut strikes = 0usize;
        let mut start_epoch = 0usize;
        let resume = ckpt.as_mut().and_then(|c| c.latest_stage_state(checkpoint::Stage::Rel));
        if let Some(st) = resume {
            match self.store.restore_from_named(&st.store) {
                Ok(()) => {
                    opt.set_state(st.adam_t, st.adam_m, st.adam_v);
                    *rng = Rng::from_state(st.rng);
                    best_hits = st.best_hits;
                    best_loss = st.best_loss;
                    best_snapshot = st.best_snapshot;
                    strikes = st.strikes as usize;
                    report.epoch_losses = st.epoch_losses;
                    report.valid_hits1 = st.valid_hits1;
                    report.best_epoch = st.best_epoch as usize;
                    start_epoch = st.next_epoch as usize;
                    sdea_obs::add("ckpt.stage_resumes", 1);
                }
                Err(e) => {
                    eprintln!(
                        "rel checkpoint incompatible with rebuilt model ({e}); starting fresh"
                    )
                }
            }
        }
        // One pool across all batches of the run: tape buffers freed by one
        // step's backward feed the next step's forward.
        let pool = sdea_tensor::BufferPool::new();
        for epoch in start_epoch..cfg.rel_epochs {
            let _span = sdea_obs::span("epoch");
            let mut order: Vec<usize> = (0..train.len()).collect();
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            let mut steps = 0usize;
            for chunk in order.chunks(cfg.rel_batch) {
                let anchors: Vec<EntityId> = chunk.iter().map(|&i| train[i].0).collect();
                let pos: Vec<EntityId> = chunk.iter().map(|&i| train[i].1).collect();
                let neg: Vec<EntityId> = chunk
                    .iter()
                    .map(|&i| cands.sample_negative(train[i].0, train[i].1, n_targets, rng))
                    .collect();
                let g = Graph::with_pool(std::rc::Rc::clone(&pool));
                let t1 = g.constant(h_a1.clone());
                let t2 = g.constant(h_a2.clone());
                let emb = |g: &Graph,
                           table: sdea_tensor::Var,
                           h_a: &Tensor,
                           neigh: &[Vec<usize>],
                           ids: &[EntityId]| {
                    let lists: Vec<Vec<usize>> =
                        ids.iter().map(|e| neigh[e.0 as usize].clone()).collect();
                    let nb = NeighborBatch::from_lists(&lists);
                    let h_r = self.rel.forward(g, &self.store, table, &nb);
                    let rows: Vec<usize> = ids.iter().map(|e| e.0 as usize).collect();
                    let h_a_batch = g.constant(h_a.gather_rows(&rows));
                    // Loss embedding: [H_r; H_m] (Algorithm 3 line 9)
                    self.joint.train_embedding(g, &self.store, h_a_batch, h_r)
                };
                let ea = emb(&g, t1, h_a1, &self.neigh1, &anchors);
                let ep = emb(&g, t2, h_a2, &self.neigh2, &pos);
                let en = emb(&g, t2, h_a2, &self.neigh2, &neg);
                let loss = margin_ranking_loss(&g, ea, ep, en, cfg.margin);
                let lv = g.value_cloned(loss).item();
                g.backward(loss);
                g.accumulate_param_grads(&mut self.store);
                opt.step(&mut self.store);
                epoch_loss += lv as f64;
                steps += 1;
                sdea_obs::add("rel.steps", 1);
                sdea_obs::record("rel.batch_loss", lv as f64);
            }
            let mean_loss = epoch_loss / steps.max(1) as f64;
            report.epoch_losses.push(mean_loss as f32);
            sdea_obs::add("rel.epochs", 1);

            // Line 12: validation on the full embedding. Without validation
            // pairs, fall back to best-epoch-by-training-loss so early
            // stopping never discards trained weights.
            let hits1 = if has_valid {
                let _span = sdea_obs::span("validate");
                self.validate(h_a1, h_a2, valid, cfg.eval_block_rows)
            } else {
                0.0
            };
            report.valid_hits1.push(hits1);
            let improved = if has_valid { hits1 > best_hits } else { mean_loss < best_loss };
            let mut stop = false;
            if improved {
                best_hits = hits1;
                best_loss = mean_loss;
                best_snapshot = self.store.snapshot();
                report.best_epoch = epoch;
                strikes = 0;
            } else {
                strikes += 1;
                if strikes >= cfg.patience {
                    sdea_obs::add("rel.early_stops", 1);
                    stop = true;
                }
            }
            if let Some(c) = ckpt.as_mut() {
                if c.due(epoch) && !stop {
                    let (t, m, v) = opt.state();
                    let state = checkpoint::StageState {
                        next_epoch: (epoch + 1) as u32,
                        rng: rng.state(),
                        store: self.store.clone(),
                        adam_t: t,
                        adam_m: m.to_vec(),
                        adam_v: v.to_vec(),
                        best_snapshot: best_snapshot.clone(),
                        best_hits,
                        best_loss,
                        strikes: strikes as u32,
                        epoch_losses: report.epoch_losses.clone(),
                        valid_hits1: report.valid_hits1.clone(),
                        best_epoch: report.best_epoch as u32,
                    };
                    if let Err(e) = c.record_stage_epoch(checkpoint::Stage::Rel, &state) {
                        eprintln!("rel checkpoint at epoch {epoch} failed: {e}; continuing");
                    }
                }
            }
            if stop {
                break;
            }
        }
        self.store.restore(&best_snapshot);
        report
    }

    /// Validation Hits@1 on the full `H_ent`. The similarity scan runs in
    /// blocks of `block_rows` query rows (`0` = one block), so only an
    /// `block_rows × n2` slab is ever resident — bit-identical to the
    /// materialized matrix path at any block size.
    pub fn validate(
        &self,
        h_a1: &Tensor,
        h_a2: &Tensor,
        valid: &[(EntityId, EntityId)],
        block_rows: usize,
    ) -> f64 {
        if valid.is_empty() {
            return 0.0;
        }
        let sources: Vec<EntityId> = valid.iter().map(|&(e, _)| e).collect();
        let all_targets: Vec<EntityId> = (0..h_a2.shape()[0] as u32).map(EntityId).collect();
        let src = self.full_embeddings(h_a1, true, &sources);
        let tgt = self.full_embeddings(h_a2, false, &all_targets);
        let gold: Vec<usize> = valid.iter().map(|&(_, e)| e.0 as usize).collect();
        evaluate_ranking_blocked(&src, &tgt, &gold, block_rows).hits1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_kg::KgBuilder;

    /// Builds twin star-shaped KGs whose attribute embeddings are synthetic
    /// and already informative; checks the relation stage trains.
    fn twin_kgs(n: usize) -> (KnowledgeGraph, KnowledgeGraph) {
        let mk = |tag: &str| {
            let mut b = KgBuilder::new();
            for i in 0..n {
                // ring so everyone has neighbours
                b.rel_triple(&format!("{tag}{i}"), "r", &format!("{tag}{}", (i + 1) % n));
            }
            b.build()
        };
        (mk("a"), mk("b"))
    }

    fn synthetic_h_a(n: usize, d: usize, noise: f32, seed: u64) -> (Tensor, Tensor) {
        let mut rng = Rng::seed_from_u64(seed);
        let base = Tensor::rand_normal(&[n, d], 1.0, &mut rng);
        let n1 = Tensor::rand_normal(&[n, d], noise, &mut rng);
        let n2 = Tensor::rand_normal(&[n, d], noise, &mut rng);
        (base.add(&n1), base.add(&n2))
    }

    #[test]
    fn rel_stage_end_to_end_improves_or_holds() {
        let n = 40;
        let (kg1, kg2) = twin_kgs(n);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.embed_dim = 16;
        cfg.rel_epochs = 8;
        let (h1, h2) = synthetic_h_a(n, 16, 0.4, 3);
        let mut rng = Rng::seed_from_u64(4);
        let mut stage = RelStage::new(&cfg, RelVariant::Full, &kg1, &kg2, &mut rng);
        let pairs: Vec<(EntityId, EntityId)> =
            (0..n as u32).map(|i| (EntityId(i), EntityId(i))).collect();
        let train = &pairs[..24];
        let valid = &pairs[24..];
        let before = stage.validate(&h1, &h2, valid, cfg.eval_block_rows);
        let report = stage.fit(&cfg, &h1, &h2, train, valid, &mut rng);
        let after = stage.validate(&h1, &h2, valid, cfg.eval_block_rows);
        assert!(after >= before * 0.9, "rel stage regressed: {before} -> {after}");
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    /// Regression: with an empty validation set, `fit` used to see a
    /// constant 0.0 from `validate`, mark epoch 0 as "best" forever, and
    /// restore the epoch-0 snapshot after `patience` strikes — silently
    /// discarding all training. The fix falls back to best-epoch-by-
    /// training-loss; this asserts the trained weights are kept.
    #[test]
    fn empty_validation_keeps_trained_weights() {
        let n = 40;
        let (kg1, kg2) = twin_kgs(n);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.embed_dim = 16;
        cfg.rel_epochs = 8;
        cfg.patience = 2;
        // Noisy twins + a wide margin keep the hinge active from epoch 0
        // (with easy data the loss is already 0.0 and no epoch improves).
        cfg.margin = 2.0;
        let (h1, h2) = synthetic_h_a(n, 16, 1.0, 3);
        let pairs: Vec<(EntityId, EntityId)> =
            (0..n as u32).map(|i| (EntityId(i), EntityId(i))).collect();

        // Reference run truncated after one epoch: its final weights are
        // exactly the epoch-0 snapshot the buggy code used to restore
        // (training is deterministic given the same seed and config).
        let mut cfg_one = cfg.clone();
        cfg_one.rel_epochs = 1;
        let mut rng_a = Rng::seed_from_u64(4);
        let mut stage_a = RelStage::new(&cfg_one, RelVariant::Full, &kg1, &kg2, &mut rng_a);
        stage_a.fit(&cfg_one, &h1, &h2, &pairs, &[], &mut rng_a);
        let epoch0_weights = stage_a.store.snapshot();

        let before = sdea_obs::snapshot().counters.get("rel.no_validation").copied().unwrap_or(0);
        let mut rng_b = Rng::seed_from_u64(4);
        let mut stage_b = RelStage::new(&cfg, RelVariant::Full, &kg1, &kg2, &mut rng_b);
        let report = stage_b.fit(&cfg, &h1, &h2, &pairs, &[], &mut rng_b);

        // Training loss decreased past epoch 0 and a later epoch won.
        assert!(report.best_epoch > 0, "best epoch stuck at 0: {report:?}");
        let first = report.epoch_losses[0];
        let best = report.epoch_losses[report.best_epoch];
        assert!(best < first, "training loss did not decrease: {report:?}");
        // The restored weights differ from the epoch-0 snapshot.
        let final_weights = stage_b.store.snapshot();
        assert_eq!(final_weights.len(), epoch0_weights.len());
        assert!(
            final_weights.iter().zip(&epoch0_weights).any(|(a, b)| a != b),
            "fit with empty validation restored the epoch-0 snapshot"
        );
        // The fallback was surfaced, not silent.
        if sdea_obs::enabled() {
            let after =
                sdea_obs::snapshot().counters.get("rel.no_validation").copied().unwrap_or(0);
            assert!(after > before, "rel.no_validation warning counter not incremented");
        }
    }

    #[test]
    fn neighbor_lists_fall_back_to_self() {
        let mut b = KgBuilder::new();
        b.entity("lonely");
        b.rel_triple("x", "r", "y");
        let kg = b.build();
        let lists = neighbor_lists(&kg, 5);
        let lonely = kg.find_entity("lonely").unwrap();
        assert_eq!(lists[lonely.0 as usize], vec![lonely.0 as usize]);
    }

    #[test]
    fn neighbor_lists_are_capped() {
        let mut b = KgBuilder::new();
        for i in 0..20 {
            b.rel_triple("hub", "r", &format!("leaf{i}"));
        }
        let kg = b.build();
        let lists = neighbor_lists(&kg, 4);
        let hub = kg.find_entity("hub").unwrap();
        assert_eq!(lists[hub.0 as usize].len(), 4);
    }

    #[test]
    fn full_embeddings_shape() {
        let (kg1, kg2) = twin_kgs(10);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.embed_dim = 8;
        let (h1, _h2) = synthetic_h_a(10, 8, 0.1, 5);
        let mut rng = Rng::seed_from_u64(6);
        let stage = RelStage::new(&cfg, RelVariant::Full, &kg1, &kg2, &mut rng);
        let ids: Vec<EntityId> = (0..10u32).map(EntityId).collect();
        let emb = stage.full_embeddings(&h1, true, &ids);
        assert_eq!(emb.shape(), &[10, 24]);
        assert!(emb.all_finite());
    }
}
