//! End-to-end SDEA pipeline: tokenizer + LM pre-training, Algorithm 2,
//! Algorithm 3, final alignment — the whole of the paper's Fig. 3 behind
//! one call.

use crate::align::AlignmentResult;
use crate::attr_module::{AttrFitReport, AttrModule};
use crate::attr_seq::AttrSequencer;
use crate::config::SdeaConfig;
use crate::rel_module::RelVariant;
use crate::trainer::{RelFitReport, RelStage};
use sdea_eval::AlignmentMetrics;
use sdea_kg::{EntityId, KnowledgeGraph, SplitSeeds};
use sdea_tensor::{Rng, Tensor};

/// Everything the pipeline needs as input.
pub struct SdeaPipeline<'a> {
    /// First knowledge graph (source side).
    pub kg1: &'a KnowledgeGraph,
    /// Second knowledge graph (target side).
    pub kg2: &'a KnowledgeGraph,
    /// Seed alignment split (2:1:7 in the paper).
    pub split: &'a SplitSeeds,
    /// Unlabeled pre-training corpus (typically
    /// [`sdea_synth::corpus::dataset_corpus`], or any text).
    pub corpus: &'a [String],
    /// Hyper-parameters.
    pub cfg: SdeaConfig,
    /// Relation-module variant (for ablations; `Full` = the paper).
    pub variant: RelVariant,
}

/// A trained SDEA model with cached embeddings.
pub struct SdeaModel {
    /// Attribute embeddings of every KG1 entity.
    pub h_a1: Tensor,
    /// Attribute embeddings of every KG2 entity.
    pub h_a2: Tensor,
    /// Full `H_ent` table for KG1.
    pub ent1: Tensor,
    /// Full `H_ent` table for KG2.
    pub ent2: Tensor,
    /// Attribute-stage training report.
    pub attr_report: AttrFitReport,
    /// Relation-stage training report.
    pub rel_report: RelFitReport,
    /// The trained relation stage (for attention introspection). Absent on
    /// models loaded from disk.
    pub rel_stage: Option<crate::trainer::RelStage>,
}

impl SdeaModel {
    /// Ranks targets for the given test pairs using the full embeddings
    /// (SDEA row of the paper's tables).
    pub fn align_test(&self, test: &[(EntityId, EntityId)]) -> AlignmentResult {
        let rows: Vec<usize> = test.iter().map(|&(e, _)| e.0 as usize).collect();
        let gold: Vec<usize> = test.iter().map(|&(_, e)| e.0 as usize).collect();
        AlignmentResult::rank(&self.ent1.gather_rows(&rows), &self.ent2, gold)
    }

    /// Ranks using only the attribute embeddings (the paper's
    /// "SDEA w/o rel." ablation row).
    pub fn align_test_attr_only(&self, test: &[(EntityId, EntityId)]) -> AlignmentResult {
        let rows: Vec<usize> = test.iter().map(|&(e, _)| e.0 as usize).collect();
        let gold: Vec<usize> = test.iter().map(|&(_, e)| e.0 as usize).collect();
        AlignmentResult::rank(&self.h_a1.gather_rows(&rows), &self.h_a2, gold)
    }

    /// Convenience: metrics of the full model on test pairs.
    pub fn test_metrics(&self, test: &[(EntityId, EntityId)]) -> AlignmentMetrics {
        self.align_test(test).metrics()
    }
}

impl<'a> SdeaPipeline<'a> {
    /// Runs the full pipeline. Deterministic given `cfg.seed`.
    pub fn run(&self) -> SdeaModel {
        self.execute(None)
    }

    /// Semi-supervised variant (extension): after the attribute stage,
    /// augments the training seeds with mutual-nearest entity pairs whose
    /// `H_a` cosine exceeds `threshold` (BootEA-style bootstrapping applied
    /// to SDEA), then trains the relation stage on the augmented set.
    pub fn run_bootstrapped(&self, threshold: f32) -> SdeaModel {
        self.execute(Some(threshold))
    }

    fn execute(&self, bootstrap_threshold: Option<f32>) -> SdeaModel {
        // The budget is process-wide; 0 keeps whatever SDEA_THREADS or the
        // hardware dictates. Observability is likewise process-wide: the
        // config can only force it off (the default `true` defers to the
        // `SDEA_OBS` environment variable).
        if self.cfg.threads != 0 {
            sdea_tensor::set_thread_budget(self.cfg.threads);
        }
        if !self.cfg.obs {
            sdea_obs::set_enabled(false);
        }
        let _span = sdea_obs::span("pipeline");
        let mut rng = Rng::seed_from_u64(self.cfg.seed);
        let mut seq_rng = rng.split();
        let mut build_rng = rng.split();
        let mut fit_rng = rng.split();
        let mut rel_rng = rng.split();

        // Algorithm 1 on both KGs (each KG draws its own attribute order).
        let (seq1, seq2) = {
            let _span = sdea_obs::span("sequencing");
            (AttrSequencer::new(self.kg1, &mut seq_rng), AttrSequencer::new(self.kg2, &mut seq_rng))
        };

        // Pre-trained transformer + projection; Algorithm 2.
        let (attr_report, h_a1, h_a2) = {
            let _span = sdea_obs::span("attr_stage");
            let mut attr = AttrModule::build(&self.cfg, self.corpus, &mut build_rng);
            let cache1 = attr.token_cache(seq1.sequences());
            let cache2 = attr.token_cache(seq2.sequences());
            let attr_report =
                attr.fit(&cache1, &cache2, &self.split.train, &self.split.valid, &mut fit_rng);
            let h_a1 = attr.embed_all(&cache1, &mut fit_rng);
            let h_a2 = attr.embed_all(&cache2, &mut fit_rng);
            (attr_report, h_a1, h_a2)
        };

        // Optional bootstrapping: confident mutual-nearest pairs under the
        // attribute embeddings become extra (noisy) training seeds.
        let mut train = self.split.train.clone();
        if let Some(threshold) = bootstrap_threshold {
            let _span = sdea_obs::span("bootstrap");
            let known1: std::collections::HashSet<EntityId> =
                self.split.train.iter().map(|&(a, _)| a).collect();
            let known2: std::collections::HashSet<EntityId> =
                self.split.train.iter().map(|&(_, b)| b).collect();
            for (a, b) in crate::bootstrap::mutual_nearest_pairs(&h_a1, &h_a2, threshold) {
                if !known1.contains(&a) && !known2.contains(&b) {
                    train.push((a, b));
                }
            }
            sdea_obs::add(
                "pipeline.bootstrap_pairs",
                (train.len() - self.split.train.len()) as u64,
            );
        }

        // Algorithm 3.
        let (stage, rel_report) = {
            let _span = sdea_obs::span("rel_stage");
            let mut stage =
                RelStage::new(&self.cfg, self.variant, self.kg1, self.kg2, &mut rel_rng);
            let rel_report =
                stage.fit(&self.cfg, &h_a1, &h_a2, &train, &self.split.valid, &mut rel_rng);
            (stage, rel_report)
        };

        // Final embedding tables.
        let (ent1, ent2) = {
            let _span = sdea_obs::span("final_embed");
            let ids1: Vec<EntityId> = (0..self.kg1.num_entities() as u32).map(EntityId).collect();
            let ids2: Vec<EntityId> = (0..self.kg2.num_entities() as u32).map(EntityId).collect();
            (stage.full_embeddings(&h_a1, true, &ids1), stage.full_embeddings(&h_a2, false, &ids2))
        };

        SdeaModel { h_a1, h_a2, ent1, ent2, attr_report, rel_report, rel_stage: Some(stage) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_synth::{generate, DatasetProfile};

    /// Full end-to-end smoke test on a miniature DBP15K-style dataset.
    /// This is the system's most important invariant: the pipeline must
    /// beat random ranking by a wide margin.
    #[test]
    fn end_to_end_beats_random() {
        let ds = generate(&DatasetProfile::dbp15k_fr_en(80, 42));
        let mut split_rng = Rng::seed_from_u64(1);
        let split = ds.seeds.split_paper(&mut split_rng);
        let corpus = sdea_synth::corpus::dataset_corpus(&ds);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.attr_epochs = 5;
        cfg.rel_epochs = 6;
        let pipeline = SdeaPipeline {
            kg1: ds.kg1(),
            kg2: ds.kg2(),
            split: &split,
            corpus: &corpus,
            cfg,
            variant: RelVariant::Full,
        };
        let model = pipeline.run();
        let metrics = model.test_metrics(&split.test);
        let random_h1 = 1.0 / ds.kg2().num_entities() as f64;
        // The test config is deliberately tiny (1 MLM epoch, 32-dim model,
        // 16 train pairs); at bench scale SDEA reaches far higher — here we
        // only require a decisive margin over chance.
        assert!(
            metrics.hits1 > 8.0 * random_h1,
            "SDEA H@1 {:.3} not better than random {:.5}",
            metrics.hits1,
            random_h1
        );
        assert!(metrics.mrr > 0.05, "MRR {:.3}", metrics.mrr);
        // ablation path also works
        let attr_only = model.align_test_attr_only(&split.test).metrics();
        assert!(attr_only.hits1 >= 0.0 && attr_only.hits10 <= 1.0);
    }
}
