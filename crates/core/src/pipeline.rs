//! End-to-end SDEA pipeline: tokenizer + LM pre-training, Algorithm 2,
//! Algorithm 3, final alignment — the whole of the paper's Fig. 3 behind
//! one call.

use crate::align::AlignmentResult;
use crate::attr_module::{AttrFitReport, AttrModule};
use crate::attr_seq::AttrSequencer;
use crate::checkpoint::{config_fingerprint, Checkpointer};
use crate::config::SdeaConfig;
use crate::rel_module::RelVariant;
use crate::trainer::{RelFitReport, RelStage};
use sdea_eval::AlignmentMetrics;
use sdea_kg::{EntityId, KnowledgeGraph, SplitSeeds};
use sdea_tensor::{Rng, Tensor};

/// Everything the pipeline needs as input.
pub struct SdeaPipeline<'a> {
    /// First knowledge graph (source side).
    pub kg1: &'a KnowledgeGraph,
    /// Second knowledge graph (target side).
    pub kg2: &'a KnowledgeGraph,
    /// Seed alignment split (2:1:7 in the paper).
    pub split: &'a SplitSeeds,
    /// Unlabeled pre-training corpus (typically
    /// [`sdea_synth::corpus::dataset_corpus`], or any text).
    pub corpus: &'a [String],
    /// Hyper-parameters.
    pub cfg: SdeaConfig,
    /// Relation-module variant (for ablations; `Full` = the paper).
    pub variant: RelVariant,
}

/// A trained SDEA model with cached embeddings.
pub struct SdeaModel {
    /// Attribute embeddings of every KG1 entity.
    pub h_a1: Tensor,
    /// Attribute embeddings of every KG2 entity.
    pub h_a2: Tensor,
    /// Full `H_ent` table for KG1.
    pub ent1: Tensor,
    /// Full `H_ent` table for KG2.
    pub ent2: Tensor,
    /// Attribute-stage training report.
    pub attr_report: AttrFitReport,
    /// Relation-stage training report.
    pub rel_report: RelFitReport,
    /// The trained relation stage (for attention introspection). Absent on
    /// models loaded from disk.
    pub rel_stage: Option<crate::trainer::RelStage>,
    /// The trained attribute encoder (for query-time serving; persist with
    /// [`crate::encoder_io::save_encoder`]). Absent on models loaded from
    /// disk and on runs resumed past the attribute stage (the stage
    /// boundary artifact carries only the embedding tables).
    pub attr_module: Option<crate::attr_module::AttrModule>,
}

impl SdeaModel {
    /// Ranks targets for the given test pairs using the full embeddings
    /// (SDEA row of the paper's tables).
    pub fn align_test(&self, test: &[(EntityId, EntityId)]) -> AlignmentResult {
        let rows: Vec<usize> = test.iter().map(|&(e, _)| e.0 as usize).collect();
        let gold: Vec<usize> = test.iter().map(|&(_, e)| e.0 as usize).collect();
        AlignmentResult::rank(&self.ent1.gather_rows(&rows), &self.ent2, gold)
    }

    /// Ranks using only the attribute embeddings (the paper's
    /// "SDEA w/o rel." ablation row).
    pub fn align_test_attr_only(&self, test: &[(EntityId, EntityId)]) -> AlignmentResult {
        let rows: Vec<usize> = test.iter().map(|&(e, _)| e.0 as usize).collect();
        let gold: Vec<usize> = test.iter().map(|&(_, e)| e.0 as usize).collect();
        AlignmentResult::rank(&self.h_a1.gather_rows(&rows), &self.h_a2, gold)
    }

    /// Convenience: metrics of the full model on test pairs.
    pub fn test_metrics(&self, test: &[(EntityId, EntityId)]) -> AlignmentMetrics {
        self.align_test(test).metrics()
    }
}

impl<'a> SdeaPipeline<'a> {
    /// Runs the full pipeline. Deterministic given `cfg.seed`.
    ///
    /// Panics on checkpoint-directory errors; use [`SdeaPipeline::try_run`]
    /// to handle them (the only fallible part — a run without
    /// `cfg.checkpoint_dir` cannot fail).
    pub fn run(&self) -> SdeaModel {
        self.try_execute(None).expect("SDEA pipeline failed")
    }

    /// Semi-supervised variant (extension): after the attribute stage,
    /// augments the training seeds with mutual-nearest entity pairs whose
    /// `H_a` cosine exceeds `threshold` (BootEA-style bootstrapping applied
    /// to SDEA), then trains the relation stage on the augmented set.
    pub fn run_bootstrapped(&self, threshold: f32) -> SdeaModel {
        self.try_execute(Some(threshold)).expect("SDEA pipeline failed")
    }

    /// [`SdeaPipeline::run`], surfacing checkpoint-directory errors (an
    /// unwritable directory, or a manifest written under a different
    /// configuration) instead of panicking.
    pub fn try_run(&self) -> std::io::Result<SdeaModel> {
        self.try_execute(None)
    }

    /// [`SdeaPipeline::run_bootstrapped`], surfacing checkpoint errors.
    pub fn try_run_bootstrapped(&self, threshold: f32) -> std::io::Result<SdeaModel> {
        self.try_execute(Some(threshold))
    }

    fn try_execute(&self, bootstrap_threshold: Option<f32>) -> std::io::Result<SdeaModel> {
        // The budget is process-wide; 0 keeps whatever SDEA_THREADS or the
        // hardware dictates. Observability is likewise process-wide: the
        // config can only force it off (the default `true` defers to the
        // `SDEA_OBS` environment variable).
        if self.cfg.threads != 0 {
            sdea_tensor::set_thread_budget(self.cfg.threads);
        }
        if !self.cfg.obs {
            sdea_obs::set_enabled(false);
        }
        let _span = sdea_obs::span("pipeline");
        let mut rng = Rng::seed_from_u64(self.cfg.seed);
        let mut seq_rng = rng.split();
        let mut build_rng = rng.split();
        let mut fit_rng = rng.split();
        let mut rel_rng = rng.split();

        // Crash-safe checkpointing (see `crate::checkpoint`). The stream
        // splits above stay unconditional: a resumed run re-derives every
        // stream from the seed, then overwrites the consuming stream from
        // the checkpoint, so skipped stages never shift later ones.
        let fingerprint = config_fingerprint(
            &self.cfg,
            self.variant,
            (self.kg1.num_entities(), self.kg2.num_entities()),
            (self.split.train.len(), self.split.valid.len()),
            bootstrap_threshold,
        );
        let mut ckpt = match &self.cfg.checkpoint_dir {
            Some(dir) => Some(Checkpointer::open(dir, fingerprint, self.cfg.checkpoint_every)?),
            None => None,
        };

        // Algorithms 1 + 2. A checkpointed attribute-stage boundary
        // artifact carries both `H_a` tables exactly (f32 bits round-trip),
        // so resume skips sequencing, the tokenizer/LM build, fine-tuning
        // and embedding outright — everything downstream only consumes the
        // tables, never `seq_rng`/`build_rng`/`fit_rng`.
        let done = ckpt.as_mut().and_then(|c| c.attr_done());
        let (attr_report, h_a1, h_a2, attr_module) = match done {
            Some((h_a1, h_a2, attr_report)) => (attr_report, h_a1, h_a2, None),
            None => {
                let (seq1, seq2) = {
                    let _span = sdea_obs::span("sequencing");
                    (
                        AttrSequencer::new(self.kg1, &mut seq_rng),
                        AttrSequencer::new(self.kg2, &mut seq_rng),
                    )
                };
                let _span = sdea_obs::span("attr_stage");
                let mut attr = AttrModule::build(&self.cfg, self.corpus, &mut build_rng);
                let cache1 = attr.token_cache(seq1.sequences());
                let cache2 = attr.token_cache(seq2.sequences());
                let attr_report = attr.fit_resumable(
                    &cache1,
                    &cache2,
                    &self.split.train,
                    &self.split.valid,
                    &mut fit_rng,
                    ckpt.as_mut(),
                );
                // With a checkpoint directory, the final tables go through
                // the out-of-core spill path: each embedded window lands on
                // disk as an atomic shard, so a run killed mid-table
                // resumes at the first missing shard instead of re-embedding
                // everything. Bit-identical to the in-memory path (per-row
                // embeddings are independent of shard composition), and a
                // spill failure degrades to in-memory like every other
                // checkpoint write failure — it never kills a healthy run.
                let spill = |cache: &[Vec<u32>], sub: &str, rng: &mut Rng| {
                    match &self
                    .cfg
                    .checkpoint_dir
                {
                    Some(dir) => attr
                        .embed_all_spill(cache, rng, &dir.join(sub), fingerprint)
                        .and_then(|s| s.to_tensor())
                        .unwrap_or_else(|e| {
                            eprintln!("warning: embedding spill to {sub} failed ({e}); continuing in memory");
                            sdea_obs::add("ckpt.write_failures", 1);
                            attr.embed_all(cache, rng)
                        }),
                    None => attr.embed_all(cache, rng),
                }
                };
                let h_a1 = spill(&cache1, "h_a1_shards", &mut fit_rng);
                let h_a2 = spill(&cache2, "h_a2_shards", &mut fit_rng);
                if let Some(c) = ckpt.as_mut() {
                    if let Err(e) = c.record_attr_done(&h_a1, &h_a2, &attr_report) {
                        eprintln!("warning: attribute-stage checkpoint failed ({e}); continuing");
                        sdea_obs::add("ckpt.write_failures", 1);
                    }
                }
                (attr_report, h_a1, h_a2, Some(attr))
            }
        };

        // Optional bootstrapping: confident mutual-nearest pairs under the
        // attribute embeddings become extra (noisy) training seeds. The
        // augmented list is checkpointed so a resumed relation stage trains
        // on the identical pair sequence.
        let saved_pairs = ckpt.as_mut().and_then(|c| c.train_pairs());
        let train = match saved_pairs {
            Some(pairs) => pairs,
            None => {
                let mut train = self.split.train.clone();
                if let Some(threshold) = bootstrap_threshold {
                    let _span = sdea_obs::span("bootstrap");
                    let known1: std::collections::HashSet<EntityId> =
                        self.split.train.iter().map(|&(a, _)| a).collect();
                    let known2: std::collections::HashSet<EntityId> =
                        self.split.train.iter().map(|&(_, b)| b).collect();
                    for (a, b) in crate::bootstrap::mutual_nearest_pairs_with(
                        &h_a1,
                        &h_a2,
                        threshold,
                        &self.cfg.index,
                    ) {
                        if !known1.contains(&a) && !known2.contains(&b) {
                            train.push((a, b));
                        }
                    }
                    sdea_obs::add(
                        "pipeline.bootstrap_pairs",
                        (train.len() - self.split.train.len()) as u64,
                    );
                }
                if let Some(c) = ckpt.as_mut() {
                    if let Err(e) = c.record_train_pairs(&train) {
                        eprintln!("warning: training-pair checkpoint failed ({e}); continuing");
                        sdea_obs::add("ckpt.write_failures", 1);
                    }
                }
                train
            }
        };

        // Algorithm 3. The stage is always rebuilt (deterministic given
        // `rel_rng`); a mid-stage checkpoint then restores weights, Adam
        // moments and the stream state inside `fit_resumable`.
        let (stage, rel_report) = {
            let _span = sdea_obs::span("rel_stage");
            let mut stage =
                RelStage::new(&self.cfg, self.variant, self.kg1, self.kg2, &mut rel_rng);
            let rel_report = stage.fit_resumable(
                &self.cfg,
                &h_a1,
                &h_a2,
                &train,
                &self.split.valid,
                &mut rel_rng,
                ckpt.as_mut(),
            );
            (stage, rel_report)
        };

        // Final embedding tables.
        let (ent1, ent2) = {
            let _span = sdea_obs::span("final_embed");
            let ids1: Vec<EntityId> = (0..self.kg1.num_entities() as u32).map(EntityId).collect();
            let ids2: Vec<EntityId> = (0..self.kg2.num_entities() as u32).map(EntityId).collect();
            (stage.full_embeddings(&h_a1, true, &ids1), stage.full_embeddings(&h_a2, false, &ids2))
        };

        Ok(SdeaModel {
            h_a1,
            h_a2,
            ent1,
            ent2,
            attr_report,
            rel_report,
            rel_stage: Some(stage),
            attr_module,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_synth::{generate, DatasetProfile};

    /// Full end-to-end smoke test on a miniature DBP15K-style dataset.
    /// This is the system's most important invariant: the pipeline must
    /// beat random ranking by a wide margin.
    #[test]
    fn end_to_end_beats_random() {
        let ds = generate(&DatasetProfile::dbp15k_fr_en(80, 42));
        let mut split_rng = Rng::seed_from_u64(1);
        let split = ds.seeds.split_paper(&mut split_rng);
        let corpus = sdea_synth::corpus::dataset_corpus(&ds);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.attr_epochs = 5;
        cfg.rel_epochs = 6;
        let pipeline = SdeaPipeline {
            kg1: ds.kg1(),
            kg2: ds.kg2(),
            split: &split,
            corpus: &corpus,
            cfg,
            variant: RelVariant::Full,
        };
        let model = pipeline.run();
        let metrics = model.test_metrics(&split.test);
        let random_h1 = 1.0 / ds.kg2().num_entities() as f64;
        // The test config is deliberately tiny (1 MLM epoch, 32-dim model,
        // 16 train pairs); at bench scale SDEA reaches far higher — here we
        // only require a decisive margin over chance.
        assert!(
            metrics.hits1 > 8.0 * random_h1,
            "SDEA H@1 {:.3} not better than random {:.5}",
            metrics.hits1,
            random_h1
        );
        assert!(metrics.mrr > 0.05, "MRR {:.3}", metrics.mrr);
        // ablation path also works
        let attr_only = model.align_test_attr_only(&split.test).metrics();
        assert!(attr_only.hits1 >= 0.0 && attr_only.hits10 <= 1.0);
    }

    /// A run resumed from an existing checkpoint directory (attribute stage
    /// complete, relation stage mid-flight) reproduces the uncheckpointed
    /// run bit-for-bit — the resume determinism contract at the pipeline
    /// level. The kill-based variant lives in `tests/checkpoint_resume.rs`.
    #[test]
    fn resumed_run_is_bit_identical() {
        let ds = generate(&DatasetProfile::dbp15k_fr_en(40, 9));
        let mut split_rng = Rng::seed_from_u64(1);
        let split = ds.seeds.split_paper(&mut split_rng);
        let corpus = sdea_synth::corpus::dataset_corpus(&ds);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.attr_epochs = 2;
        cfg.rel_epochs = 4;
        let pipeline = |cfg: SdeaConfig| SdeaPipeline {
            kg1: ds.kg1(),
            kg2: ds.kg2(),
            split: &split,
            corpus: &corpus,
            cfg,
            variant: RelVariant::Full,
        };
        let clean = pipeline(cfg.clone()).run();

        let dir = std::env::temp_dir().join(format!("sdea_pipe_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        cfg.checkpoint_dir = Some(dir.clone());
        let first = pipeline(cfg.clone()).try_run().unwrap();
        assert_eq!(first.ent1, clean.ent1, "checkpoint writes must not change results");

        // Drop the newest rel checkpoint so the resumed run actually has
        // epochs left to replay, then resume: attr stage is skipped via the
        // boundary artifact, rel stage restores the fallback checkpoint.
        let mut rel_ckpts: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().into_string().unwrap())
            .filter(|n| n.starts_with("rel_ep"))
            .collect();
        rel_ckpts.sort();
        assert!(rel_ckpts.len() >= 2, "expected two retained rel checkpoints: {rel_ckpts:?}");
        std::fs::remove_file(dir.join(rel_ckpts.last().unwrap())).unwrap();
        let resumed = pipeline(cfg).try_run().unwrap();
        assert_eq!(resumed.ent1, clean.ent1);
        assert_eq!(resumed.ent2, clean.ent2);
        assert_eq!(resumed.h_a1, clean.h_a1);
        assert_eq!(resumed.attr_report.epoch_losses, clean.attr_report.epoch_losses);
        assert_eq!(resumed.rel_report.epoch_losses, clean.rel_report.epoch_losses);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
