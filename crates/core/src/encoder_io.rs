//! Persistence for the trained attribute encoder (query-time model).
//!
//! [`crate::model_io`] persists a trained model's embedding *tables*, which
//! answers "rank this known entity". Online serving must also answer "rank
//! this unseen attribute text", which needs the encoder itself: tokenizer
//! vocabulary, transformer + MLP weights, IDF table and the config scalars
//! the embed path depends on. This module packs all of that into one
//! `SDQE` blob (same checksummed container as every other artifact) and
//! rebuilds a working [`AttrModule`] from it via [`AttrModule::from_parts`].
//!
//! The master `seed` rides along in the config: a serving process re-derives
//! the KG attribute sequences exactly as the training pipeline did
//! (`Rng::seed_from_u64(seed)` → first split → [`crate::AttrSequencer`]),
//! so a served embedding of a known entity is bitwise identical to the
//! persisted table row.

use crate::attr_module::AttrModule;
use crate::config::{Pooling, SdeaConfig};
use sdea_tensor::serialize::{
    atomic_write_retry, blob_payload, blob_to_bytes, store_from_bytes, store_to_bytes, WireRead,
    WireWrite,
};
use sdea_text::{Tokenizer, Vocab};
use std::io;
use std::path::Path;

/// Blob kind tag of the persisted query encoder.
pub const ENCODER_KIND: &[u8; 4] = b"SDQE";

/// Payload layout version (bump on layout changes).
const ENCODER_VERSION: u32 = 1;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("SDQE: {}", msg.into()))
}

fn need(buf: &&[u8], n: usize, what: &str) -> io::Result<()> {
    if buf.remaining() < n {
        Err(invalid(format!("truncated {what}")))
    } else {
        Ok(())
    }
}

fn pooling_tag(p: Pooling) -> u8 {
    match p {
        Pooling::Cls => 0,
        Pooling::Mean => 1,
        Pooling::IdfMean => 2,
    }
}

fn pooling_from_tag(t: u8) -> io::Result<Pooling> {
    match t {
        0 => Ok(Pooling::Cls),
        1 => Ok(Pooling::Mean),
        2 => Ok(Pooling::IdfMean),
        other => Err(invalid(format!("unknown pooling tag {other}"))),
    }
}

/// Serializes the encoder to bytes (blob container included).
pub fn encoder_to_bytes(module: &AttrModule) -> Vec<u8> {
    let cfg = module.config();
    let mut p: Vec<u8> = Vec::new();
    p.put_u32_le(ENCODER_VERSION);
    p.put_u64_le(cfg.seed);
    for v in [
        cfg.vocab_budget,
        cfg.lm_hidden,
        cfg.lm_layers,
        cfg.lm_heads,
        cfg.lm_ffn,
        cfg.max_seq,
        cfg.embed_dim,
    ] {
        p.put_u32_le(v as u32);
    }
    p.put_f32_le(cfg.dropout);
    p.put_u8(pooling_tag(cfg.pooling));
    p.put_u8(cfg.normalize_embeddings as u8);
    // Vocabulary: non-special subwords in id order (specials are implicit).
    let subwords: Vec<&str> =
        module.tokenizer().vocab().iter().filter(|&(id, _)| id >= 5).map(|(_, t)| t).collect();
    p.put_u32_le(subwords.len() as u32);
    for sw in subwords {
        p.put_u32_le(sw.len() as u32);
        p.put_slice(sw.as_bytes());
    }
    // IDF table.
    let idf = module.idf();
    p.put_u32_le(idf.len() as u32);
    for &v in idf {
        p.put_f32_le(v);
    }
    // All weights, nested as a named store.
    let store = store_to_bytes(&module.store);
    p.put_u64_le(store.len() as u64);
    p.put_slice(&store);
    blob_to_bytes(ENCODER_KIND, &p)
}

/// Rebuilds an encoder from [`encoder_to_bytes`] output. Every failure —
/// corruption, version skew, architecture mismatch — is a typed
/// `InvalidData` error, never a panic (a serving process hits this at
/// startup).
pub fn encoder_from_bytes(bytes: &[u8]) -> io::Result<AttrModule> {
    let mut buf = blob_payload(bytes, ENCODER_KIND)?;
    need(&buf, 4, "version")?;
    let version = buf.get_u32_le();
    if version != ENCODER_VERSION {
        return Err(invalid(format!("unsupported encoder version {version}")));
    }
    need(&buf, 8 + 7 * 4 + 4 + 2, "config scalars")?;
    let mut cfg = SdeaConfig { seed: buf.get_u64_le(), ..SdeaConfig::default() };
    cfg.vocab_budget = buf.get_u32_le() as usize;
    cfg.lm_hidden = buf.get_u32_le() as usize;
    cfg.lm_layers = buf.get_u32_le() as usize;
    cfg.lm_heads = buf.get_u32_le() as usize;
    cfg.lm_ffn = buf.get_u32_le() as usize;
    cfg.max_seq = buf.get_u32_le() as usize;
    cfg.embed_dim = buf.get_u32_le() as usize;
    cfg.dropout = buf.get_f32_le();
    cfg.pooling = pooling_from_tag(buf.get_u8())?;
    cfg.normalize_embeddings = buf.get_u8() != 0;
    need(&buf, 4, "subword count")?;
    let n_subwords = buf.get_u32_le() as usize;
    let mut subwords = Vec::with_capacity(n_subwords.min(1 << 20));
    for i in 0..n_subwords {
        need(&buf, 4, "subword length")?;
        let len = buf.get_u32_le() as usize;
        need(&buf, len, "subword bytes")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        let sw = String::from_utf8(raw).map_err(|_| invalid(format!("subword {i} not UTF-8")))?;
        subwords.push(sw);
    }
    need(&buf, 4, "idf count")?;
    let n_idf = buf.get_u32_le() as usize;
    need(&buf, n_idf * 4, "idf table")?;
    let mut idf = Vec::with_capacity(n_idf);
    for _ in 0..n_idf {
        idf.push(buf.get_f32_le());
    }
    need(&buf, 8, "store length")?;
    let store_len = buf.get_u64_le() as usize;
    need(&buf, store_len, "weight store")?;
    let store = store_from_bytes(&buf[..store_len])?;
    let tokenizer = Tokenizer::new(Vocab::new(subwords));
    AttrModule::from_parts(cfg, tokenizer, &store, idf).map_err(invalid)
}

/// Atomically writes the encoder to `path` (fault site `encoder.save`).
pub fn save_encoder(module: &AttrModule, path: impl AsRef<Path>) -> io::Result<()> {
    atomic_write_retry(path, &encoder_to_bytes(module), "encoder.save")
}

/// Loads an encoder written by [`save_encoder`].
pub fn load_encoder(path: impl AsRef<Path>) -> io::Result<AttrModule> {
    encoder_from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_tensor::Rng;

    fn toy_module() -> AttrModule {
        let corpus: Vec<String> =
            (0..20).map(|i| format!("entity nine{i} founded {} in place{i}", 1900 + i)).collect();
        let mut rng = Rng::seed_from_u64(11);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.mlm_epochs = 0;
        AttrModule::build(&cfg, &corpus, &mut rng)
    }

    #[test]
    fn round_trip_preserves_embeddings_bitwise() {
        let module = toy_module();
        let bytes = encoder_to_bytes(&module);
        let loaded = encoder_from_bytes(&bytes).unwrap();
        let texts: Vec<String> =
            vec!["entity nine3 founded 1903".into(), "never seen query text".into(), "".into()];
        assert_eq!(module.embed_batch(&texts), loaded.embed_batch(&texts));
        assert_eq!(loaded.config().seed, module.config().seed);
        assert_eq!(loaded.idf(), module.idf());
    }

    #[test]
    fn save_load_file_round_trip() {
        let module = toy_module();
        let dir = std::env::temp_dir().join(format!("sdea_encio_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("encoder.sdqe");
        save_encoder(&module, &path).unwrap();
        let loaded = load_encoder(&path).unwrap();
        assert_eq!(module.embed_one("entity nine7"), loaded.embed_one("entity nine7"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let module = toy_module();
        let mut bytes = encoder_to_bytes(&module);
        assert_eq!(&bytes[..4], ENCODER_KIND, "encoder blob carries its kind");
        // Wrong magic.
        assert!(encoder_from_bytes(&bytes[1..]).is_err());
        // Flip a payload byte: checksum catches it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = encoder_from_bytes(&bytes).err().expect("corrupt blob must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Truncation at every eighth prefix length parses or errors, never
        // panics.
        let good = encoder_to_bytes(&module);
        for cut in (0..good.len()).step_by(good.len() / 8 + 1) {
            let _ = encoder_from_bytes(&good[..cut]);
        }
    }

    #[test]
    fn from_parts_rejects_mismatched_architecture() {
        let module = toy_module();
        let mut cfg = module.config().clone();
        cfg.lm_hidden = module.config().lm_hidden * 2; // store shapes disagree
        let tok = module.tokenizer().clone();
        let idf = module.idf().to_vec();
        assert!(AttrModule::from_parts(cfg, tok, &module.store, idf).is_err());
    }
}
