//! Numeric-aware matching — the paper's first future-work direction
//! (Section III-A remarks: BERT "may not work well for numeric values";
//! "handling the numeric values separately" is proposed as the remedy,
//! and the D-W error analysis blames numerals for much of the remaining
//! error).
//!
//! This module extracts each entity's numeric attribute profile (numbers,
//! years inside dates, unit-normalized quantities) and scores pairs by
//! tolerant profile overlap; the score can be blended into any similarity
//! matrix as an extra channel.

use sdea_eval::SimilarityMatrix;
use sdea_kg::{EntityId, KnowledgeGraph};

/// Per-entity sorted numeric profiles.
#[derive(Clone, Debug)]
pub struct NumericProfiles {
    profiles: Vec<Vec<f64>>,
}

/// Extracts every number appearing in a literal (handles `1985-02-05`,
/// `05.02.1985`, `1.85`, `185`, `12,345` loosely).
pub fn extract_numbers(value: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = value.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_ascii_digit() {
            cur.push(c);
        } else if c == '.'
            && !cur.is_empty()
            && !cur.contains('.')
            && chars.peek().is_some_and(|n| n.is_ascii_digit())
        {
            // Decimal point — but only one per number: "05.02.1985" is two
            // numbers (5.02 and 1985), not an unparseable three-part literal.
            cur.push('.');
        } else if !cur.is_empty() {
            if let Ok(v) = cur.trim_end_matches('.').parse::<f64>() {
                out.push(v);
            }
            cur.clear();
        }
    }
    if let Ok(v) = cur.trim_end_matches('.').parse::<f64>() {
        out.push(v);
    }
    out
}

impl NumericProfiles {
    /// Builds profiles for every entity of a KG.
    pub fn of(kg: &KnowledgeGraph) -> Self {
        let mut profiles = vec![Vec::new(); kg.num_entities()];
        for e in kg.entities() {
            let p = &mut profiles[e.0 as usize];
            for t in kg.attr_triples_of(e) {
                p.extend(extract_numbers(&t.value));
            }
            p.sort_by(|a, b| a.total_cmp(b));
        }
        NumericProfiles { profiles }
    }

    /// An entity's profile.
    pub fn profile(&self, e: EntityId) -> &[f64] {
        &self.profiles[e.0 as usize]
    }

    /// Tolerant overlap score in `[0,1]`: the fraction of the smaller
    /// profile that finds a counterpart within relative tolerance `tol`
    /// (greedy two-pointer over the sorted profiles). Unit differences
    /// (1.85 m vs 185 cm) are bridged by also accepting ×100 / ÷100
    /// counterparts.
    pub fn overlap(&self, a: EntityId, other: &NumericProfiles, b: EntityId, tol: f64) -> f64 {
        let pa = self.profile(a);
        let pb = other.profile(b);
        if pa.is_empty() || pb.is_empty() {
            return 0.0;
        }
        let close = |x: f64, y: f64| -> bool {
            let rel = |p: f64, q: f64| (p - q).abs() <= tol * p.abs().max(q.abs()).max(1.0);
            rel(x, y) || rel(x * 100.0, y) || rel(x, y * 100.0)
        };
        let (small, large) = if pa.len() <= pb.len() { (pa, pb) } else { (pb, pa) };
        let mut used = vec![false; large.len()];
        let mut matched = 0usize;
        for &x in small {
            if let Some(j) = large.iter().enumerate().position(|(j, &y)| !used[j] && close(x, y)) {
                used[j] = true;
                matched += 1;
            }
        }
        matched as f64 / small.len() as f64
    }
}

/// Blends a numeric-overlap channel into an existing similarity matrix:
/// `sim' = (1 − w)·sim + w·overlap`, for the given source rows.
pub fn blend_numeric_channel(
    sim: &SimilarityMatrix,
    kg1: &KnowledgeGraph,
    kg2: &KnowledgeGraph,
    src_rows: &[usize],
    weight: f32,
    tol: f64,
) -> SimilarityMatrix {
    assert_eq!(sim.shape()[0], src_rows.len());
    let p1 = NumericProfiles::of(kg1);
    let p2 = NumericProfiles::of(kg2);
    let m = sim.shape()[1];
    let mut out = sim.clone();
    for (i, &r) in src_rows.iter().enumerate() {
        let row = &mut out.data_mut()[i * m..(i + 1) * m];
        for (j, cell) in row.iter_mut().enumerate() {
            let ov = p1.overlap(EntityId(r as u32), &p2, EntityId(j as u32), tol) as f32;
            *cell = (1.0 - weight) * *cell + weight * ov;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_kg::KgBuilder;

    #[test]
    fn extract_numbers_variants() {
        assert_eq!(extract_numbers("1985-02-05"), vec![1985.0, 2.0, 5.0]);
        assert_eq!(extract_numbers("05.02.1985"), vec![5.02, 1985.0]);
        assert_eq!(extract_numbers("1.85"), vec![1.85]);
        assert_eq!(extract_numbers("no numbers here"), Vec::<f64>::new());
        assert_eq!(extract_numbers("abc123def45"), vec![123.0, 45.0]);
    }

    #[test]
    fn unit_mismatch_is_bridged() {
        let mut b1 = KgBuilder::new();
        b1.attr_triple("p", "height", "185");
        let kg1 = b1.build();
        let mut b2 = KgBuilder::new();
        b2.attr_triple("q", "heightValue", "1.85");
        let kg2 = b2.build();
        let p1 = NumericProfiles::of(&kg1);
        let p2 = NumericProfiles::of(&kg2);
        let s = p1.overlap(EntityId(0), &p2, EntityId(0), 0.01);
        assert!(s > 0.99, "185 cm should match 1.85 m, got {s}");
    }

    #[test]
    fn overlap_discriminates() {
        let mut b1 = KgBuilder::new();
        b1.attr_triple("p", "birth", "1985-02-05");
        let kg1 = b1.build();
        let mut b2 = KgBuilder::new();
        b2.attr_triple("same", "dob", "05.02.1985");
        b2.attr_triple("other", "dob", "12.11.1955");
        let kg2 = b2.build();
        let p1 = NumericProfiles::of(&kg1);
        let p2 = NumericProfiles::of(&kg2);
        let same = p1.overlap(EntityId(0), &p2, kg2.find_entity("same").unwrap(), 0.01);
        let other = p1.overlap(EntityId(0), &p2, kg2.find_entity("other").unwrap(), 0.01);
        assert!(same > other, "same {same} vs other {other}");
    }

    #[test]
    fn empty_profiles_score_zero() {
        let mut b = KgBuilder::new();
        b.attr_triple("p", "name", "no digits");
        let kg = b.build();
        let p = NumericProfiles::of(&kg);
        assert_eq!(p.overlap(EntityId(0), &p, EntityId(0), 0.01), 0.0);
    }

    #[test]
    fn blend_preserves_shape_and_range() {
        let mut b1 = KgBuilder::new();
        b1.attr_triple("a", "x", "1985");
        b1.attr_triple("b", "x", "2001");
        let kg1 = b1.build();
        let mut b2 = KgBuilder::new();
        b2.attr_triple("c", "y", "1985");
        b2.attr_triple("d", "y", "1777");
        let kg2 = b2.build();
        let sim = sdea_tensor::Tensor::zeros(&[2, 2]);
        let blended = blend_numeric_channel(&sim, &kg1, &kg2, &[0, 1], 0.5, 0.01);
        assert_eq!(blended.shape(), &[2, 2]);
        // a (1985) matches c (1985) but not d
        assert!(blended.at2(0, 0) > blended.at2(0, 1));
    }
}
