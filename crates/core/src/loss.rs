//! The margin-based ranking loss of Eq. 18:
//!
//! `L = Σ max(0, ρ(H(e), H'(e')) − ρ(H(e), H'(e'')) + β)`
//!
//! with `ρ` the `l2` distance, `e'` the aligned entity and `e''` a sampled
//! negative.

use sdea_tensor::{Graph, Var};

/// Squared `l2` distance per row of two `[n,d]` batches, as a `[n]` vector.
pub fn row_sq_distance(g: &Graph, a: Var, b: Var) -> Var {
    let diff = g.sub(a, b);
    let sq = g.square(diff);
    g.rows_sum(sq)
}

/// `l2` distance (non-squared) per row. The paper's ρ; we add a small
/// epsilon inside the square root for gradient stability at zero.
pub fn row_distance(g: &Graph, a: Var, b: Var) -> Var {
    let sq = row_sq_distance(g, a, b);
    g.sqrt_eps(sq, 1e-9)
}

/// Mean margin ranking loss over a batch:
/// `mean(relu(ρ(anchor, pos) − ρ(anchor, neg) + margin))`.
///
/// `anchor`, `pos`, `neg` are `[n,d]` embedding batches.
pub fn margin_ranking_loss(g: &Graph, anchor: Var, pos: Var, neg: Var, margin: f32) -> Var {
    let d_pos = row_distance(g, anchor, pos);
    let d_neg = row_distance(g, anchor, neg);
    let gap = g.add_scalar(g.sub(d_pos, d_neg), margin);
    let hinge = g.relu(gap);
    g.mean_all(hinge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_tensor::Tensor;

    #[test]
    fn loss_zero_when_separated_beyond_margin() {
        let g = Graph::new();
        let anchor = g.leaf(Tensor::from_vec(vec![0.0, 0.0], &[1, 2]), false);
        let pos = g.leaf(Tensor::from_vec(vec![0.1, 0.0], &[1, 2]), false);
        let neg = g.leaf(Tensor::from_vec(vec![10.0, 0.0], &[1, 2]), false);
        let loss = margin_ranking_loss(&g, anchor, pos, neg, 1.0);
        assert!(g.value_cloned(loss).item().abs() < 1e-6);
    }

    #[test]
    fn loss_positive_when_negative_is_closer() {
        let g = Graph::new();
        let anchor = g.leaf(Tensor::from_vec(vec![0.0, 0.0], &[1, 2]), false);
        let pos = g.leaf(Tensor::from_vec(vec![5.0, 0.0], &[1, 2]), false);
        let neg = g.leaf(Tensor::from_vec(vec![0.5, 0.0], &[1, 2]), false);
        let loss = margin_ranking_loss(&g, anchor, pos, neg, 1.0);
        // 5 - 0.5 + 1 = 5.5
        assert!((g.value_cloned(loss).item() - 5.5).abs() < 1e-5);
    }

    #[test]
    fn gradient_pulls_positive_closer() {
        let g = Graph::new();
        let anchor = g.leaf(Tensor::from_vec(vec![0.0, 0.0], &[1, 2]), false);
        let pos = g.leaf(Tensor::from_vec(vec![2.0, 0.0], &[1, 2]), true);
        let neg = g.leaf(Tensor::from_vec(vec![1.0, 0.0], &[1, 2]), true);
        let loss = margin_ranking_loss(&g, anchor, pos, neg, 1.0);
        g.backward(loss);
        let gp = g.grad(pos).unwrap();
        let gn = g.grad(neg).unwrap();
        // Moving pos toward anchor (-x direction) decreases loss -> positive
        // gradient on pos x; moving neg away increases distance -> negative
        // gradient on neg x.
        assert!(gp.data()[0] > 0.0, "pos grad {:?}", gp.data());
        assert!(gn.data()[0] < 0.0, "neg grad {:?}", gn.data());
    }

    #[test]
    fn distance_matches_euclid() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![0.0, 0.0, 3.0, 4.0], &[2, 2]), false);
        let b = g.leaf(Tensor::from_vec(vec![3.0, 4.0, 3.0, 4.0], &[2, 2]), false);
        let d = row_distance(&g, a, b);
        let v = g.value_cloned(d);
        assert!((v.data()[0] - 5.0).abs() < 1e-4);
        assert!(v.data()[1].abs() < 1e-3);
    }
}
