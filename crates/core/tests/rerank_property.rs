//! Property tests for the cross-encoder's batching contract.
//!
//! `CrossEncoder::score_pairs` promises that a pair's match probability is
//! a function of that pair alone — **bitwise** — because every pair is
//! padded to the model's fixed `max_seq` and all pooling is per row. These
//! properties pin the contract the serving batcher and the blocked
//! evaluator both lean on: scores survive permutation, batch composition
//! (scored alone vs alongside any other pairs, longer or shorter), and
//! chunk-boundary placement, at the bit level.

use proptest::prelude::*;
use sdea_core::attr_module::AttrModule;
use sdea_core::{CrossEncoder, SdeaConfig};
use sdea_tensor::Rng;
use std::sync::OnceLock;

/// One warm-started cross-encoder shared by every case (building the toy
/// encoder is the expensive part; the properties only exercise scoring).
fn ce() -> &'static CrossEncoder {
    static CE: OnceLock<CrossEncoder> = OnceLock::new();
    CE.get_or_init(|| {
        let corpus: Vec<String> =
            (0..12).map(|i| format!("entity name{i} value {} tag {}", 100 * i, 1900 + i)).collect();
        let mut rng = Rng::seed_from_u64(77);
        let mut cfg = SdeaConfig::test_tiny();
        cfg.mlm_epochs = 0;
        let module = AttrModule::build(&cfg, &corpus, &mut rng);
        CrossEncoder::from_encoder(&module, &mut rng)
    })
}

/// Arbitrary token bodies: real (non-special) ids from the toy vocabulary,
/// any length from empty to past the pair budget (so truncation paths are
/// exercised too).
fn token_body() -> impl Strategy<Value = Vec<u32>> {
    // The toy vocab always has more than 10 subwords; ids 5.. are real.
    prop::collection::vec(5u32..10, 0..20)
}

fn pairs(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(Vec<u32>, Vec<u32>)>> {
    prop::collection::vec((token_body(), token_body()), n)
}

fn score_all(ps: &[(Vec<u32>, Vec<u32>)]) -> Vec<f32> {
    let q: Vec<Vec<u32>> = ps.iter().map(|(a, _)| a.clone()).collect();
    let c: Vec<Vec<u32>> = ps.iter().map(|(_, b)| b.clone()).collect();
    ce().score_pairs(&q, &c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Permuting a batch permutes the scores — bitwise.
    #[test]
    fn scores_are_order_invariant(ps in pairs(2..7), rot in 1usize..6) {
        let base = score_all(&ps);
        let n = ps.len();
        let rot = rot % n.max(1);
        let permuted: Vec<_> = (0..n).map(|i| ps[(i + rot) % n].clone()).collect();
        let got = score_all(&permuted);
        for i in 0..n {
            prop_assert_eq!(
                got[i].to_bits(),
                base[(i + rot) % n].to_bits(),
                "pair {} moved by rotation {}", i, rot
            );
        }
    }

    /// A pair scores identically alone and inside any batch — including
    /// batches whose other pairs are longer (more real tokens), i.e.
    /// padding alongside longer pairs changes nothing, bitwise.
    #[test]
    fn scores_are_batch_composition_invariant(ps in pairs(2..7), long_len in 10usize..20) {
        let batched = score_all(&ps);
        for (i, p) in ps.iter().enumerate() {
            let alone = score_all(std::slice::from_ref(p));
            prop_assert_eq!(alone[0].to_bits(), batched[i].to_bits(), "pair {} alone", i);
            // Same pair next to a maximally long neighbour.
            let long: Vec<u32> = (0..long_len as u32).map(|t| 5 + t % 5).collect();
            let padded = score_all(&[p.clone(), (long.clone(), long)]);
            prop_assert_eq!(padded[0].to_bits(), batched[i].to_bits(), "pair {} padded", i);
        }
    }

    /// Duplicating a pair inside one call gives bitwise-equal rows for the
    /// duplicates (no position-in-batch dependence).
    #[test]
    fn duplicate_pairs_score_identically(p in (token_body(), token_body()), n in 2usize..5) {
        let batch: Vec<_> = (0..n).map(|_| p.clone()).collect();
        let scores = score_all(&batch);
        for w in scores.windows(2) {
            prop_assert_eq!(w[0].to_bits(), w[1].to_bits());
        }
    }
}

/// Chunk boundaries (64 rows) are part of the contract too: a batch long
/// enough to span two scoring chunks still equals per-pair singleton
/// scoring. Plain test — one fixed case is enough and proptest shrinkage
/// on 70-row inputs is wasteful.
#[test]
fn scores_cross_chunk_boundaries_bitwise() {
    let ps: Vec<(Vec<u32>, Vec<u32>)> = (0..70)
        .map(|i| {
            let a: Vec<u32> = (0..(i % 7)).map(|t| 5 + (i + t) % 5).collect();
            let b: Vec<u32> = (0..(i % 5)).map(|t| 5 + (i * 3 + t) % 5).collect();
            (a, b)
        })
        .collect();
    let batched = score_all(&ps);
    assert_eq!(batched.len(), 70);
    for (i, p) in ps.iter().enumerate() {
        let alone = score_all(std::slice::from_ref(p));
        assert_eq!(alone[0].to_bits(), batched[i].to_bits(), "pair {i} vs chunked batch");
    }
}
