//! Thread-budget invariance of the core pipeline stages that fan out
//! through the fork-join layer: batched entity embedding, candidate
//! generation and bootstrap pair mining.

use sdea_core::bootstrap::mutual_nearest_pairs;
use sdea_core::{AttrModule, CandidateSet, SdeaConfig};
use sdea_kg::EntityId;
use sdea_tensor::{with_thread_budget, Rng, Tensor};

fn toy_corpus(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("entity epsilon{i} born {} in zeta{}", 1900 + i % 90, i % 13)).collect()
}

#[test]
fn embed_all_bitwise_equal_across_budgets() {
    let corpus = toy_corpus(150); // > 2 batches of 64
    let mut rng = Rng::seed_from_u64(1);
    let mut cfg = SdeaConfig::test_tiny();
    cfg.mlm_epochs = 0;
    let module = AttrModule::build(&cfg, &corpus, &mut rng);
    let cache = module.token_cache(&corpus);
    let serial = with_thread_budget(1, || module.embed_all(&cache, &mut Rng::seed_from_u64(9)));
    let par = with_thread_budget(8, || module.embed_all(&cache, &mut Rng::seed_from_u64(9)));
    assert_eq!(serial, par);
    assert_eq!(serial.shape(), &[150, cfg.embed_dim]);
}

#[test]
fn embed_all_does_not_consume_caller_rng() {
    let corpus = toy_corpus(70);
    let mut rng = Rng::seed_from_u64(2);
    let mut cfg = SdeaConfig::test_tiny();
    cfg.mlm_epochs = 0;
    let module = AttrModule::build(&cfg, &corpus, &mut rng);
    let cache = module.token_cache(&corpus);
    let mut r1 = Rng::seed_from_u64(42);
    let mut r2 = Rng::seed_from_u64(42);
    let _ = module.embed_all(&cache, &mut r1);
    assert_eq!(r1.next_u64(), r2.next_u64(), "eval embedding must not advance the RNG");
}

#[test]
fn candidate_generation_budget_invariant() {
    let mut rng = Rng::seed_from_u64(3);
    let src = Tensor::rand_normal(&[120, 32], 1.0, &mut rng);
    let tgt = Tensor::rand_normal(&[400, 32], 1.0, &mut rng);
    let sources: Vec<EntityId> = (0..120u32).map(EntityId).collect();
    let serial = with_thread_budget(1, || CandidateSet::generate(&sources, &src, &tgt, 15));
    let par = with_thread_budget(8, || CandidateSet::generate(&sources, &src, &tgt, 15));
    for &s in &sources {
        assert_eq!(serial.of(s), par.of(s), "source {s:?}");
    }
}

#[test]
fn bootstrap_pairs_budget_invariant() {
    let mut rng = Rng::seed_from_u64(4);
    let base = Tensor::rand_normal(&[300, 24], 1.0, &mut rng);
    // Perturbed copy: plenty of confident mutual-nearest pairs plus noise.
    let noise = Tensor::rand_normal(&[300, 24], 0.05, &mut rng);
    let other = base.add(&noise);
    let serial = with_thread_budget(1, || mutual_nearest_pairs(&base, &other, 0.8));
    let par = with_thread_budget(8, || mutual_nearest_pairs(&base, &other, 0.8));
    assert_eq!(serial, par);
    assert!(!serial.is_empty(), "perturbed copies should produce confident pairs");
}
