//! BERT-INT representative (Tang et al., IJCAI 2020).
//!
//! BERT-INT's *basic unit* embeds the entity **name** (or description)
//! with a fine-tuned BERT; an *interaction unit* compares attribute values
//! pairwise. We reuse the exact same mini-LM stack as SDEA, but feed it
//! names only — reproducing the paper's diagnosis that BERT-INT "has a
//! strong dependency on entity name" and therefore "does not even work" on
//! OpenEA D-W where names are Wikidata ids (Table V).

use crate::method::{AlignmentMethod, MethodInput};
use sdea_core::align::AlignmentResult;
use sdea_core::attr_module::AttrModule;
use sdea_core::SdeaConfig;
use sdea_kg::KnowledgeGraph;
use sdea_tensor::{Rng, Tensor};
use std::collections::HashSet;

/// The BERT-INT representative.
pub struct BertInt {
    /// LM/fine-tuning configuration (attribute-module part is reused).
    pub cfg: SdeaConfig,
    /// Weight of the name-embedding channel (interaction gets `1 − w`).
    pub name_weight: f32,
}

impl Default for BertInt {
    fn default() -> Self {
        // max_seq 16: names are short
        let cfg = SdeaConfig { max_seq: 16, attr_epochs: 10, ..SdeaConfig::default() };
        BertInt { cfg, name_weight: 0.8 }
    }
}

fn name_sequences(kg: &KnowledgeGraph) -> Vec<String> {
    kg.entities().map(|e| kg.entity_name(e).replace('_', " ")).collect()
}

/// Subword-set Jaccard similarity of attribute values — the interaction
/// unit's pairwise value comparison, collapsed to its set form.
fn value_token_sets(kg: &KnowledgeGraph, tok: &sdea_text::Tokenizer) -> Vec<Vec<u32>> {
    kg.entities()
        .map(|e| {
            let mut set: HashSet<u32> = HashSet::new();
            for t in kg.attr_triples_of(e) {
                for id in tok.text_to_ids(&t.value) {
                    set.insert(id);
                }
            }
            let mut v: Vec<u32> = set.into_iter().collect(); // lint: sorted (next line)
            v.sort_unstable();
            v
        })
        .collect()
}

fn jaccard(a: &[u32], b: &[u32]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f32 / (a.len() + b.len() - inter).max(1) as f32
}

impl AlignmentMethod for BertInt {
    fn name(&self) -> &'static str {
        "BERT-INT*"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let mut cfg = self.cfg.clone();
        cfg.seed = input.seed ^ 0x000F;
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let mut module = AttrModule::build(&cfg, input.corpus, &mut rng);
        let seq1 = name_sequences(input.kg1);
        let seq2 = name_sequences(input.kg2);
        let cache1 = module.token_cache(&seq1);
        let cache2 = module.token_cache(&seq2);
        module.fit(&cache1, &cache2, &input.split.train, &input.split.valid, &mut rng);
        let e1 = module.embed_all(&cache1, &mut rng);
        let e2 = module.embed_all(&cache2, &mut rng);
        let rows: Vec<usize> = input.split.test.iter().map(|&(e, _)| e.0 as usize).collect();
        let gold: Vec<usize> = input.split.test.iter().map(|&(_, e)| e.0 as usize).collect();
        let mut sim = sdea_eval::cosine_matrix(&e1.gather_rows(&rows), &e2);

        // interaction unit: attribute-value token overlap
        let sets1 = value_token_sets(input.kg1, module.tokenizer());
        let sets2 = value_token_sets(input.kg2, module.tokenizer());
        let w = self.name_weight;
        let m = sim.shape()[1];
        for (i, &r) in rows.iter().enumerate() {
            let row = &mut sim.data_mut()[i * m..(i + 1) * m];
            let sa = &sets1[r];
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = w * *cell + (1.0 - w) * jaccard(sa, &sets2[j]);
            }
        }
        AlignmentResult { sim, gold }
    }
}

/// Keeps the unused-import lint quiet for Tensor in doc positions.
#[allow(dead_code)]
fn _t(_: Tensor) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::testkit::assert_beats_random;

    fn quick() -> BertInt {
        let mut b = BertInt::default();
        b.cfg.lm_hidden = 64;
        b.cfg.embed_dim = 64;
        b.cfg.lm_layers = 1;
        b.cfg.vocab_budget = 800;
        b.cfg.attr_epochs = 3;
        b
    }

    #[test]
    fn jaccard_properties() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard(&[], &[]), 0.0);
        let j = jaccard(&[1, 2, 3, 4], &[3, 4, 5]);
        assert!((j - 2.0 / 5.0).abs() < 1e-6);
    }

    #[test]
    fn bert_int_beats_random_on_literal_names() {
        assert_beats_random(&quick(), 5.0);
    }
}
