//! The common interface every baseline implements.

use sdea_core::align::AlignmentResult;
use sdea_kg::{KnowledgeGraph, SplitSeeds};

/// Everything a method may use: the two KGs, the seed split, the unlabeled
/// corpus (literal methods), and a seed for reproducibility.
pub struct MethodInput<'a> {
    /// First KG (source side).
    pub kg1: &'a KnowledgeGraph,
    /// Second KG (target side).
    pub kg2: &'a KnowledgeGraph,
    /// 2:1:7 seed split. Methods may train on `train`, tune on `valid`,
    /// and are evaluated on `test`.
    pub split: &'a SplitSeeds,
    /// Unlabeled text corpus (attribute values of both KGs).
    pub corpus: &'a [String],
    /// Master seed.
    pub seed: u64,
}

/// A baseline entity-alignment method.
pub trait AlignmentMethod {
    /// The method's display name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Trains on the input and returns the ranking of all KG2 entities for
    /// each test source entity.
    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult;
}

/// Helper: the gold target column per test source (KG2 entity ids are the
/// similarity-matrix columns).
pub fn test_gold(input: &MethodInput<'_>) -> Vec<usize> {
    input.split.test.iter().map(|&(_, e)| e.0 as usize).collect()
}

/// Helper: test source entity ids as row indices.
pub fn test_rows(input: &MethodInput<'_>) -> Vec<usize> {
    input.split.test.iter().map(|&(e, _)| e.0 as usize).collect()
}

#[cfg(test)]
pub(crate) mod testkit {
    use super::*;
    use sdea_kg::{AlignmentSeeds, SplitSeeds};
    use sdea_synth::{generate, DatasetProfile, GeneratedDataset};
    use sdea_tensor::Rng;

    /// A small dataset every baseline test can share.
    pub fn tiny_dataset(links: usize, seed: u64) -> (GeneratedDataset, SplitSeeds, Vec<String>) {
        let ds = generate(&DatasetProfile::dbp15k_fr_en(links, seed));
        let mut rng = Rng::seed_from_u64(seed);
        let split = ds.seeds.split_paper(&mut rng);
        let corpus = sdea_synth::corpus::dataset_corpus(&ds);
        (ds, split, corpus)
    }

    /// Random-chance Hits@1 for the dataset.
    pub fn chance(ds: &GeneratedDataset) -> f64 {
        1.0 / ds.kg2().num_entities() as f64
    }

    /// Asserts a method clearly beats random ranking on the tiny dataset.
    pub fn assert_beats_random(method: &dyn AlignmentMethod, factor: f64) {
        let (ds, split, corpus) = tiny_dataset(120, 33);
        let input =
            MethodInput { kg1: ds.kg1(), kg2: ds.kg2(), split: &split, corpus: &corpus, seed: 33 };
        let result = method.align(&input);
        let m = result.metrics();
        let c = chance(&ds);
        assert!(
            m.hits1 > factor * c || m.hits10 > factor * 5.0 * c,
            "{} too weak: H@1 {:.3} H@10 {:.3} (chance {:.4})",
            method.name(),
            m.hits1,
            m.hits10,
            c
        );
        assert!(m.mrr > 0.0 && m.mrr <= 1.0);
    }

    /// Keeps `AlignmentSeeds` import used.
    #[allow(dead_code)]
    fn _touch(_: AlignmentSeeds) {}
}
