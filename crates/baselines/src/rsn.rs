//! RSN4EA-style path baseline: a recurrent skipping network over cross-KG
//! random walks. A GRU consumes `(entity + relation)` steps; the output at
//! each step is the hidden state *plus a residual skip from the subject
//! entity* (RSN's signature), trained to score the true next entity above
//! sampled negatives. Alignment information travels along walks that cross
//! KGs through merged training seeds.

use crate::emb::{rank_test, UnionSpace};
use crate::method::{AlignmentMethod, MethodInput};
use crate::walks::{generate_walks, Walk};
use sdea_core::align::AlignmentResult;
use sdea_tensor::{init, Adam, GradClip, Graph, Optimizer, ParamId, ParamStore, Rng, Tensor, Var};

/// Hyper-parameters of the RSN baseline.
#[derive(Clone, Debug)]
pub struct RsnParams {
    /// Embedding / hidden width.
    pub dim: usize,
    /// Number of walks sampled.
    pub n_walks: usize,
    /// Walk length in hops.
    pub hops: usize,
    /// Training epochs over the walk set.
    pub epochs: usize,
    /// Batch size (walks per step).
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Ranking margin.
    pub margin: f32,
}

impl Default for RsnParams {
    fn default() -> Self {
        RsnParams { dim: 64, n_walks: 4000, hops: 4, epochs: 6, batch: 64, lr: 5e-3, margin: 1.0 }
    }
}

/// The RSN4EA representative.
#[derive(Default)]
pub struct Rsn4Ea(pub RsnParams);

struct RsnModel {
    ent: ParamId,
    rel: ParamId,
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
}

impl RsnModel {
    fn new(n_rows: usize, n_rels: usize, d: usize, store: &mut ParamStore, rng: &mut Rng) -> Self {
        RsnModel {
            ent: store.add("rsn.ent", Tensor::rand_normal(&[n_rows, d], 0.3, rng)),
            rel: store.add("rsn.rel", Tensor::rand_normal(&[n_rels, d], 0.3, rng)),
            wz: store.add("rsn.wz", init::xavier_uniform(&[d, d], rng)),
            uz: store.add("rsn.uz", init::xavier_uniform(&[d, d], rng)),
            bz: store.add("rsn.bz", Tensor::zeros(&[d])),
            wr: store.add("rsn.wr", init::xavier_uniform(&[d, d], rng)),
            ur: store.add("rsn.ur", init::xavier_uniform(&[d, d], rng)),
            br: store.add("rsn.br", Tensor::zeros(&[d])),
            wh: store.add("rsn.wh", init::xavier_uniform(&[d, d], rng)),
            uh: store.add("rsn.uh", init::xavier_uniform(&[d, d], rng)),
            bh: store.add("rsn.bh", Tensor::zeros(&[d])),
        }
    }

    /// Margin loss over a batch of equal-length walks.
    fn batch_loss(
        &self,
        g: &Graph,
        store: &ParamStore,
        walks: &[&Walk],
        margin: f32,
        n_rows: usize,
        rng: &mut Rng,
    ) -> Var {
        let d = store.value(self.bz).len();
        let b = walks.len();
        let hops = walks[0].relations.len();
        let ent = g.param(store, self.ent);
        let rel = g.param(store, self.rel);
        let mut h = g.constant(Tensor::zeros(&[b, d]));
        let mut losses: Vec<Var> = Vec::with_capacity(hops);
        for t in 0..hops {
            let e_rows: Vec<usize> = walks.iter().map(|w| w.entities[t]).collect();
            let r_rows: Vec<usize> = walks.iter().map(|w| w.relations[t]).collect();
            let next_rows: Vec<usize> = walks.iter().map(|w| w.entities[t + 1]).collect();
            let neg_rows: Vec<usize> = (0..b).map(|_| rng.below(n_rows)).collect();
            let e_emb = g.gather_rows(ent, &e_rows);
            let r_emb = g.gather_rows(rel, &r_rows);
            let x = g.add(e_emb, r_emb);
            // GRU step
            let lin = |w: ParamId, u: ParamId, bias: ParamId, hh: Var| {
                let wv = g.param(store, w);
                let uv = g.param(store, u);
                let bv = g.param(store, bias);
                g.add_bias(g.add(g.matmul(x, wv), g.matmul(hh, uv)), bv)
            };
            let z = g.sigmoid(lin(self.wz, self.uz, self.bz, h));
            let r_gate = g.sigmoid(lin(self.wr, self.ur, self.br, h));
            let rh = g.mul(r_gate, h);
            let h_tilde = g.tanh(lin(self.wh, self.uh, self.bh, rh));
            h = g.add(g.mul(g.one_minus(z), h), g.mul(z, h_tilde));
            // residual skip from the subject entity (RSN)
            let out = g.add(h, e_emb);
            let pos = g.rows_dot(out, g.gather_rows(ent, &next_rows));
            let neg = g.rows_dot(out, g.gather_rows(ent, &neg_rows));
            let hinge = g.relu(g.add_scalar(g.sub(neg, pos), margin));
            losses.push(g.mean_all(hinge));
        }
        let mut total = losses[0];
        for &l in &losses[1..] {
            total = g.add(total, l);
        }
        g.scale(total, 1.0 / hops as f32)
    }
}

impl AlignmentMethod for Rsn4Ea {
    fn name(&self) -> &'static str {
        "RSN4EA"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let p = &self.0;
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x0008);
        let space = UnionSpace::new(input.kg1, input.kg2, &input.split.train);
        let (_, n_rels) = space.union_triples(input.kg1, input.kg2);
        let walks = generate_walks(input.kg1, input.kg2, &space, p.n_walks, p.hops, &mut rng);
        // group by exact hop count so batches are rectangular
        let full: Vec<&Walk> = walks.iter().filter(|w| w.relations.len() == p.hops).collect();
        let mut store = ParamStore::new();
        let model = RsnModel::new(space.n_rows(), n_rels, p.dim, &mut store, &mut rng);
        let mut opt = Adam::new(p.lr).with_clip(GradClip::GlobalNorm(2.0));
        if !full.is_empty() {
            let mut order: Vec<usize> = (0..full.len()).collect();
            for _ in 0..p.epochs {
                rng.shuffle(&mut order);
                for chunk in order.chunks(p.batch) {
                    let batch: Vec<&Walk> = chunk.iter().map(|&i| full[i]).collect();
                    let g = Graph::new();
                    let loss =
                        model.batch_loss(&g, &store, &batch, p.margin, space.n_rows(), &mut rng);
                    g.backward(loss);
                    g.accumulate_param_grads(&mut store);
                    opt.step(&mut store);
                }
            }
        }
        let table = store.value(model.ent).clone();
        let (e1, e2) =
            space.split_tables(&table, input.kg1.num_entities(), input.kg2.num_entities());
        rank_test(&e1, &e2, &input.split.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::testkit::assert_beats_random;

    #[test]
    fn rsn_beats_random_on_tiny_dataset() {
        let p = RsnParams { n_walks: 1500, epochs: 4, dim: 32, ..RsnParams::default() };
        assert_beats_random(&Rsn4Ea(p), 2.0);
    }
}
