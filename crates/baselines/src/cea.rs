//! CEA — Collective Entity Alignment (Zeng et al., ICDE 2020).
//!
//! CEA fuses three similarity channels — structural embeddings, semantic
//! name embeddings, and Levenshtein string similarity — then (the "CEA"
//! row, vs "CEA (Emb)") applies Gale–Shapley stable matching for a
//! collective 1-1 assignment, which only yields Hits@1.

use crate::features::{name_embeddings, name_similarity_matrix};
use crate::gnn::{gcn_adjacency, GnnParams};
use crate::method::{AlignmentMethod, MethodInput};
use sdea_core::align::AlignmentResult;
use sdea_core::loss::margin_ranking_loss;
use sdea_eval::cosine_matrix;
use sdea_tensor::{init, Adam, GradClip, Graph, Optimizer, ParamStore, Rng, Tensor};
use std::sync::Arc;

/// The CEA feature fusion (embedding variant; the harness applies stable
/// matching on top for the full "CEA" row).
pub struct Cea {
    /// GCN parameters for the structural channel.
    pub params: GnnParams,
    /// Channel weights: (structural, semantic, string).
    pub weights: (f32, f32, f32),
}

impl Default for Cea {
    fn default() -> Self {
        // the paper's fusion favours the literal channels
        Cea { params: GnnParams::default(), weights: (0.3, 0.3, 0.4) }
    }
}

impl AlignmentMethod for Cea {
    fn name(&self) -> &'static str {
        "CEA (Emb)"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let p = &self.params;
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x000E);
        let (n1, n2) = (input.kg1.num_entities(), input.kg2.num_entities());
        // structural channel: shared-weight GCN over learnable features
        let adj1 = gcn_adjacency(input.kg1);
        let adj2 = gcn_adjacency(input.kg2);
        let mut store = ParamStore::new();
        let feat1 = store.add("cea.feat1", Tensor::rand_normal(&[n1, p.in_dim], 0.3, &mut rng));
        let feat2 = store.add("cea.feat2", Tensor::rand_normal(&[n2, p.in_dim], 0.3, &mut rng));
        let w1 = store.add("cea.w1", init::xavier_uniform(&[p.in_dim, p.dim], &mut rng));
        let w2 = store.add("cea.w2", init::xavier_uniform(&[p.dim, p.dim], &mut rng));
        let forward = |g: &Graph, store: &ParamStore, adj: &Arc<sdea_tensor::CsrMatrix>, f| {
            let x = g.param(store, f);
            let wa = g.param(store, w1);
            let wb = g.param(store, w2);
            let h = g.relu(g.spmm(Arc::clone(adj), g.matmul(x, wa)));
            g.spmm(Arc::clone(adj), g.matmul(h, wb))
        };
        let mut opt = Adam::new(p.lr).with_clip(GradClip::GlobalNorm(2.0));
        for _ in 0..p.epochs {
            let g = Graph::new();
            let z1 = forward(&g, &store, &adj1, feat1);
            let z2 = forward(&g, &store, &adj2, feat2);
            let rows_a: Vec<usize> = input.split.train.iter().map(|&(e, _)| e.0 as usize).collect();
            let rows_p: Vec<usize> = input.split.train.iter().map(|&(_, e)| e.0 as usize).collect();
            let rows_n: Vec<usize> = (0..input.split.train.len()).map(|_| rng.below(n2)).collect();
            let loss = margin_ranking_loss(
                &g,
                g.gather_rows(z1, &rows_a),
                g.gather_rows(z2, &rows_p),
                g.gather_rows(z2, &rows_n),
                p.margin,
            );
            g.backward(loss);
            g.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        let g = Graph::new();
        let z1 = g.value_cloned(forward(&g, &store, &adj1, feat1));
        let z2 = g.value_cloned(forward(&g, &store, &adj2, feat2));

        let rows: Vec<usize> = input.split.test.iter().map(|&(e, _)| e.0 as usize).collect();
        let gold: Vec<usize> = input.split.test.iter().map(|&(_, e)| e.0 as usize).collect();
        let sim_struct = cosine_matrix(&z1.gather_rows(&rows), &z2);
        // semantic channel: trigram name embeddings
        let ne1 = name_embeddings(input.kg1, 128);
        let ne2 = name_embeddings(input.kg2, 128);
        let sim_sem = cosine_matrix(&ne1.gather_rows(&rows), &ne2);
        // string channel
        let sim_str = name_similarity_matrix(input.kg1, input.kg2, &rows);
        // Per-row standardization of each channel before fusion (CEA's
        // adaptive feature fusion): an uninformative channel (e.g. name
        // similarity over opaque Q-ids) becomes flat noise instead of
        // drowning the informative ones.
        let (ws, wm, wl) = self.weights;
        let mut sim_struct = sim_struct;
        let mut sim_sem = sim_sem;
        let mut sim_str = sim_str;
        for s in [&mut sim_struct, &mut sim_sem, &mut sim_str] {
            standardize_rows(s);
        }
        let mut sim = sim_struct;
        for ((s, &m_), &l) in sim.data_mut().iter_mut().zip(sim_sem.data()).zip(sim_str.data()) {
            *s = ws * *s + wm * m_ + wl * l;
        }
        AlignmentResult { sim, gold }
    }
}

/// In-place per-row z-scoring; all-constant rows become all-zero.
fn standardize_rows(t: &mut sdea_tensor::Tensor) {
    let d = t.shape()[1];
    for row in t.data_mut().chunks_mut(d) {
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let std = var.sqrt();
        if std > 1e-9 {
            row.iter_mut().for_each(|v| *v = (*v - mean) / std);
        } else {
            row.iter_mut().for_each(|v| *v = 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::testkit::{assert_beats_random, tiny_dataset};

    fn quick() -> Cea {
        let mut c = Cea::default();
        c.params.epochs = 20;
        c.params.in_dim = 32;
        c.params.dim = 32;
        c
    }

    #[test]
    fn cea_beats_random_strongly_on_literal_names() {
        assert_beats_random(&quick(), 10.0);
    }

    #[test]
    fn stable_matching_does_not_hurt_hits1() {
        let (ds, split, corpus) = tiny_dataset(120, 44);
        let input =
            MethodInput { kg1: ds.kg1(), kg2: ds.kg2(), split: &split, corpus: &corpus, seed: 44 };
        let result = quick().align(&input);
        let emb_h1 = result.metrics().hits1;
        let matched_h1 = result.stable_matching_hits1();
        assert!(
            matched_h1 + 0.05 >= emb_h1,
            "stable matching should not collapse: {matched_h1} vs {emb_h1}"
        );
    }
}
