//! Name-initialized GCN baselines — the RDGCN / HGCN representatives.
//!
//! Both papers initialize entity features from pre-trained word vectors of
//! the entity *names* (GloVe), propagate through graph convolutions with
//! highway gates, and fine-tune with the seed margin loss. Our stand-in
//! for the word vectors is the character-trigram hash embedding of
//! [`crate::features::name_embeddings`] — literally-similar names land
//! close, ciphered/Q-id names do not, reproducing the strong dependency on
//! name alignability the paper demonstrates (Tables IV vs V).
//!
//! `RDGCN*` = name-init GCN; `HGCN*` = the same plus highway gates.

use crate::emb::rank_test;
use crate::features::word_hash_embeddings;
use crate::gnn::{gcn_adjacency, GnnParams};
use crate::method::{AlignmentMethod, MethodInput};
use sdea_core::align::AlignmentResult;
use sdea_core::loss::margin_ranking_loss;
use sdea_tensor::{
    init, Adam, CsrMatrix, GradClip, Graph, Optimizer, ParamId, ParamStore, Rng, Tensor, Var,
};
use std::sync::Arc;

/// The name-initialized GCN aligner.
pub struct NameGcn {
    /// Shared GNN parameters.
    pub params: GnnParams,
    /// Use highway gates between layers (HGCN) or plain residuals (RDGCN).
    pub highway: bool,
}

impl NameGcn {
    /// RDGCN representative.
    pub fn rdgcn() -> Self {
        NameGcn { params: GnnParams::default(), highway: false }
    }

    /// HGCN representative.
    pub fn hgcn() -> Self {
        NameGcn { params: GnnParams::default(), highway: true }
    }
}

struct Layer {
    w: ParamId,
    gate_w: ParamId,
    gate_b: ParamId,
}

fn layer_forward(
    g: &Graph,
    store: &ParamStore,
    adj: &Arc<CsrMatrix>,
    x: Var,
    layer: &Layer,
    highway: bool,
) -> Var {
    let w = g.param(store, layer.w);
    let h = g.relu(g.spmm(Arc::clone(adj), g.matmul(x, w)));
    if highway {
        // highway gate: y = T ⊙ h + (1 − T) ⊙ x
        let gw = g.param(store, layer.gate_w);
        let gb = g.param(store, layer.gate_b);
        let t = g.sigmoid(g.add_bias(g.matmul(x, gw), gb));
        g.add(g.mul(t, h), g.mul(g.one_minus(t), x))
    } else {
        // plain residual mix
        g.scale(g.add(h, x), 0.5)
    }
}

impl AlignmentMethod for NameGcn {
    fn name(&self) -> &'static str {
        if self.highway {
            "HGCN*"
        } else {
            "RDGCN*"
        }
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let p = &self.params;
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x000D);
        let d = p.dim;
        // Name features are FIXED (pre-trained vectors in the papers).
        // Word-level hashing mirrors GloVe: identical words match exactly,
        // any spelling difference yields an unrelated vector.
        let f1 = word_hash_embeddings(input.kg1, d);
        let f2 = word_hash_embeddings(input.kg2, d);
        let adj1 = gcn_adjacency(input.kg1);
        let adj2 = gcn_adjacency(input.kg2);
        let mut store = ParamStore::new();
        let layers: Vec<Layer> = (0..2)
            .map(|i| Layer {
                w: store.add(format!("ngcn.{i}.w"), init::xavier_uniform(&[d, d], &mut rng)),
                gate_w: store.add(format!("ngcn.{i}.gw"), init::xavier_uniform(&[d, d], &mut rng)),
                gate_b: store.add(format!("ngcn.{i}.gb"), Tensor::full(&[d], -1.0)),
            })
            .collect();
        let forward = |g: &Graph, store: &ParamStore, adj: &Arc<CsrMatrix>, feat: &Tensor| {
            let mut x = g.constant(feat.clone());
            for layer in &layers {
                x = layer_forward(g, store, adj, x, layer, self.highway);
            }
            x
        };
        let n2 = input.kg2.num_entities();
        let mut opt = Adam::new(p.lr).with_clip(GradClip::GlobalNorm(2.0));
        for _ in 0..p.epochs {
            let g = Graph::new();
            let z1 = forward(&g, &store, &adj1, &f1);
            let z2 = forward(&g, &store, &adj2, &f2);
            let rows_a: Vec<usize> = input.split.train.iter().map(|&(e, _)| e.0 as usize).collect();
            let rows_p: Vec<usize> = input.split.train.iter().map(|&(_, e)| e.0 as usize).collect();
            let rows_n: Vec<usize> = (0..input.split.train.len()).map(|_| rng.below(n2)).collect();
            let anchor = g.gather_rows(z1, &rows_a);
            let pos = g.gather_rows(z2, &rows_p);
            let neg = g.gather_rows(z2, &rows_n);
            let loss = margin_ranking_loss(&g, anchor, pos, neg, p.margin);
            g.backward(loss);
            g.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        let g = Graph::new();
        let z1 = g.value_cloned(forward(&g, &store, &adj1, &f1));
        let z2 = g.value_cloned(forward(&g, &store, &adj2, &f2));
        // concatenate the raw name features (both papers keep the literal
        // signal alongside the propagated one)
        let e1 = Tensor::concat_cols(&[&z1, &f1]);
        let e2 = Tensor::concat_cols(&[&z2, &f2]);
        rank_test(&e1, &e2, &input.split.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::testkit::{assert_beats_random, tiny_dataset};
    use crate::method::MethodInput;

    #[test]
    fn rdgcn_beats_random_on_literal_names() {
        let mut m = NameGcn::rdgcn();
        m.params.epochs = 20;
        m.params.dim = 48;
        assert_beats_random(&m, 5.0);
    }

    #[test]
    fn hgcn_beats_random_on_literal_names() {
        let mut m = NameGcn::hgcn();
        m.params.epochs = 20;
        m.params.dim = 48;
        assert_beats_random(&m, 5.0);
    }

    #[test]
    fn name_methods_collapse_on_qid_names() {
        // OpenEA D-W profile: W side has opaque Q ids -> name features are
        // uninformative; the method must do far worse than on FR-EN.
        use sdea_synth::{generate, DatasetProfile};
        use sdea_tensor::Rng;
        let ds = generate(&DatasetProfile::openea_d_w(120, 33));
        let mut rng = Rng::seed_from_u64(33);
        let split = ds.seeds.split_paper(&mut rng);
        let corpus = sdea_synth::corpus::dataset_corpus(&ds);
        let input =
            MethodInput { kg1: ds.kg1(), kg2: ds.kg2(), split: &split, corpus: &corpus, seed: 33 };
        let mut m = NameGcn::rdgcn();
        m.params.epochs = 15;
        m.params.dim = 48;
        let dw = m.align(&input).metrics();

        let (ds2, split2, corpus2) = tiny_dataset(120, 33);
        let input2 = MethodInput {
            kg1: ds2.kg1(),
            kg2: ds2.kg2(),
            split: &split2,
            corpus: &corpus2,
            seed: 33,
        };
        let fr = m.align(&input2).metrics();
        assert!(
            fr.hits1 > dw.hits1 + 0.1,
            "name method should collapse on Q-ids: FR-EN {:.2} vs D-W {:.2}",
            fr.hits1,
            dw.hits1
        );
    }
}
