//! The GNN family of baselines (paper Table II, rows 9–13).
//!
//! * **GCN** — structure-only: learnable input features propagated by two
//!   symmetric-normalized graph-convolution layers with *shared weights*
//!   across the KGs, margin loss on seeds (= the paper's "GCN" row, the
//!   structure-only variant of GCN-Align).
//! * **GCN-Align** — adds an attribute channel: multi-hot attribute
//!   features through their own GCN; the two channels' similarities
//!   combine.
//! * **MuGNN\*/KECG\*** — GAT-based representatives: graph attention
//!   computes structural neighbour weights; KECG\* additionally trains a
//!   TransE objective on the same embeddings (its joint-model design).
//! * **HMAN** — GCN topology channel + feed-forward channels over
//!   attribute and relation multi-hot features (the configuration the
//!   benchmark study uses when descriptions are unavailable).

use crate::emb::rank_test;
use crate::features::attr_multihot;
use crate::method::{AlignmentMethod, MethodInput};
use sdea_core::align::AlignmentResult;
use sdea_core::loss::margin_ranking_loss;
use sdea_eval::cosine_matrix;
use sdea_kg::KnowledgeGraph;
use sdea_tensor::{
    init, Adam, CsrMatrix, GradClip, Graph, Optimizer, ParamId, ParamStore, Rng, Tensor, Var,
};
use std::sync::Arc;

/// Hyper-parameters of the GNN baselines.
#[derive(Clone, Debug)]
pub struct GnnParams {
    /// Input feature width (learnable features).
    pub in_dim: usize,
    /// Hidden/output width.
    pub dim: usize,
    /// Training epochs (full-batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Ranking margin.
    pub margin: f32,
    /// Negatives per positive seed.
    pub negs: usize,
}

impl Default for GnnParams {
    fn default() -> Self {
        GnnParams { in_dim: 64, dim: 64, epochs: 60, lr: 1e-2, margin: 1.0, negs: 5 }
    }
}

/// Sym-normalized adjacency with self loops.
pub fn gcn_adjacency(kg: &KnowledgeGraph) -> Arc<CsrMatrix> {
    let n = kg.num_entities();
    let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(kg.rel_triples().len() * 2 + n);
    for t in kg.rel_triples() {
        triplets.push((t.head.0 as usize, t.tail.0 as usize, 1.0));
        triplets.push((t.tail.0 as usize, t.head.0 as usize, 1.0));
    }
    for i in 0..n {
        triplets.push((i, i, 1.0));
    }
    let mut adj = CsrMatrix::from_triplets(n, n, &triplets);
    adj.sym_normalize();
    Arc::new(adj)
}

/// A two-layer GCN with shared weights over both KGs and learnable input
/// features, trained with the seed margin loss. Returns final embeddings.
struct GcnCore {
    feat1: ParamId,
    feat2: ParamId,
    w1: ParamId,
    w2: ParamId,
}

impl GcnCore {
    fn new(n1: usize, n2: usize, p: &GnnParams, store: &mut ParamStore, rng: &mut Rng) -> Self {
        GcnCore {
            feat1: store.add("gcn.feat1", Tensor::rand_normal(&[n1, p.in_dim], 0.3, rng)),
            feat2: store.add("gcn.feat2", Tensor::rand_normal(&[n2, p.in_dim], 0.3, rng)),
            w1: store.add("gcn.w1", init::xavier_uniform(&[p.in_dim, p.dim], rng)),
            w2: store.add("gcn.w2", init::xavier_uniform(&[p.dim, p.dim], rng)),
        }
    }

    fn forward(&self, g: &Graph, store: &ParamStore, adj: &Arc<CsrMatrix>, feat: ParamId) -> Var {
        let x = g.param(store, feat);
        let w1 = g.param(store, self.w1);
        let w2 = g.param(store, self.w2);
        let h = g.relu(g.spmm(Arc::clone(adj), g.matmul(x, w1)));
        g.spmm(Arc::clone(adj), g.matmul(h, w2))
    }
}

/// Shared training loop: full-batch forward on both KGs, margin loss on
/// train seeds with sampled negatives.
#[allow(clippy::too_many_arguments)]
fn train_seed_margin(
    store: &mut ParamStore,
    p: &GnnParams,
    rng: &mut Rng,
    mut forward: impl FnMut(&Graph, &ParamStore) -> (Var, Var),
    train: &[(sdea_kg::EntityId, sdea_kg::EntityId)],
    n2: usize,
) {
    let mut opt = Adam::new(p.lr).with_clip(GradClip::GlobalNorm(2.0));
    for _ in 0..p.epochs {
        let g = Graph::new();
        let (z1, z2) = forward(&g, store);
        let rows_a: Vec<usize> = train.iter().map(|&(e, _)| e.0 as usize).collect();
        let rows_p: Vec<usize> = train.iter().map(|&(_, e)| e.0 as usize).collect();
        let mut loss_acc: Option<Var> = None;
        for _ in 0..p.negs {
            let rows_n: Vec<usize> = (0..train.len()).map(|_| rng.below(n2)).collect();
            let anchor = g.gather_rows(z1, &rows_a);
            let pos = g.gather_rows(z2, &rows_p);
            let neg = g.gather_rows(z2, &rows_n);
            let l = margin_ranking_loss(&g, anchor, pos, neg, p.margin);
            loss_acc = Some(match loss_acc {
                Some(acc) => g.add(acc, l),
                None => l,
            });
        }
        let loss = loss_acc.expect("negs >= 1");
        g.backward(loss);
        g.accumulate_param_grads(store);
        opt.step(store);
    }
}

/// GCN (structure only).
#[derive(Default)]
pub struct Gcn(pub GnnParams);

impl AlignmentMethod for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let p = &self.0;
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x0009);
        let (n1, n2) = (input.kg1.num_entities(), input.kg2.num_entities());
        let adj1 = gcn_adjacency(input.kg1);
        let adj2 = gcn_adjacency(input.kg2);
        let mut store = ParamStore::new();
        let core = GcnCore::new(n1, n2, p, &mut store, &mut rng);
        train_seed_margin(
            &mut store,
            p,
            &mut rng,
            |g, store| {
                (
                    core.forward(g, store, &adj1, core.feat1),
                    core.forward(g, store, &adj2, core.feat2),
                )
            },
            &input.split.train,
            n2,
        );
        // final embeddings
        let g = Graph::new();
        let z1 = g.value_cloned(core.forward(&g, &store, &adj1, core.feat1));
        let z2 = g.value_cloned(core.forward(&g, &store, &adj2, core.feat2));
        rank_test(&z1, &z2, &input.split.test)
    }
}

/// GCN-Align: structure channel + attribute channel.
pub struct GcnAlign {
    /// Shared parameters.
    pub params: GnnParams,
    /// Weight of the structure channel.
    pub struct_weight: f32,
}

impl Default for GcnAlign {
    fn default() -> Self {
        GcnAlign { params: GnnParams::default(), struct_weight: 0.7 }
    }
}

impl AlignmentMethod for GcnAlign {
    fn name(&self) -> &'static str {
        "GCN-Align"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let p = &self.params;
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x000A);
        let (n1, n2) = (input.kg1.num_entities(), input.kg2.num_entities());
        let adj1 = gcn_adjacency(input.kg1);
        let adj2 = gcn_adjacency(input.kg2);
        // structure channel
        let mut store = ParamStore::new();
        let core = GcnCore::new(n1, n2, p, &mut store, &mut rng);
        train_seed_margin(
            &mut store,
            p,
            &mut rng,
            |g, store| {
                (
                    core.forward(g, store, &adj1, core.feat1),
                    core.forward(g, store, &adj2, core.feat2),
                )
            },
            &input.split.train,
            n2,
        );
        let g = Graph::new();
        let z1 = g.value_cloned(core.forward(&g, &store, &adj1, core.feat1));
        let z2 = g.value_cloned(core.forward(&g, &store, &adj2, core.feat2));

        // attribute channel: multi-hot propagated by one GCN layer with a
        // trained projection
        let (a1, a2) = attr_multihot(input.kg1, input.kg2);
        let width = a1.shape()[1];
        let mut astore = ParamStore::new();
        let aw = astore.add("gcnalign.attr.w", init::xavier_uniform(&[width, p.dim], &mut rng));
        let a1c = a1.clone();
        let a2c = a2.clone();
        let adj1c = Arc::clone(&adj1);
        let adj2c = Arc::clone(&adj2);
        train_seed_margin(
            &mut astore,
            p,
            &mut rng,
            move |g, store| {
                let w = g.param(store, aw);
                let x1 = g.constant(a1c.clone());
                let x2 = g.constant(a2c.clone());
                (
                    g.spmm(Arc::clone(&adj1c), g.matmul(x1, w)),
                    g.spmm(Arc::clone(&adj2c), g.matmul(x2, w)),
                )
            },
            &input.split.train,
            n2,
        );
        let g2m = Graph::new();
        let w = g2m.param(&astore, aw);
        let av1 = g2m.value_cloned(g2m.spmm(Arc::clone(&adj1), g2m.matmul(g2m.constant(a1), w)));
        let av2 = g2m.value_cloned(g2m.spmm(Arc::clone(&adj2), g2m.matmul(g2m.constant(a2), w)));

        let rows: Vec<usize> = input.split.test.iter().map(|&(e, _)| e.0 as usize).collect();
        let gold: Vec<usize> = input.split.test.iter().map(|&(_, e)| e.0 as usize).collect();
        let sim_s = cosine_matrix(&z1.gather_rows(&rows), &z2);
        let sim_a = cosine_matrix(&av1.gather_rows(&rows), &av2);
        let ws = self.struct_weight;
        let sim = sim_s.zip(&sim_a, |s, a| ws * s + (1.0 - ws) * a);
        AlignmentResult { sim, gold }
    }
}

// --------------------------------------------------------------- GAT

/// Padded neighbour lists (incl. self) for GAT layers.
fn gat_neighbors(kg: &KnowledgeGraph, cap: usize) -> Vec<Vec<usize>> {
    kg.entities()
        .map(|e| {
            let mut l = vec![e.0 as usize];
            l.extend(kg.neighbors(e).iter().take(cap).map(|&(n, _, _)| n.0 as usize));
            l
        })
        .collect()
}

/// One GAT layer over padded neighbour lists.
#[allow(clippy::too_many_arguments)]
fn gat_layer(
    g: &Graph,
    store: &ParamStore,
    x: Var,
    w: ParamId,
    a_self: ParamId,
    a_nbr: ParamId,
    neigh: &[Vec<usize>],
) -> Var {
    let wh = g.matmul(x, g.param(store, w));
    let asv = g.param(store, a_self); // [d,1]
    let anv = g.param(store, a_nbr); // [d,1]
    let n = neigh.len();
    let t_max = neigh.iter().map(|l| l.len()).max().unwrap_or(1);
    let s_self = g.reshape(g.matmul(wh, asv), &[n]);
    let s_nbr_all = g.reshape(g.matmul(wh, anv), &[n]);
    // leaky relu helper
    let leaky = |g: &Graph, v: Var| {
        let pos = g.relu(v);
        let negpart = g.relu(g.neg(v));
        g.sub(pos, g.scale(negpart, 0.2))
    };
    let mut score_cols: Vec<Var> = Vec::with_capacity(t_max);
    let mut mask = Tensor::zeros(&[n, t_max]);
    let mut col_indices: Vec<Vec<usize>> = Vec::with_capacity(t_max);
    for t in 0..t_max {
        let idx: Vec<usize> = neigh.iter().map(|l| if t < l.len() { l[t] } else { 0 }).collect();
        for (i, l) in neigh.iter().enumerate() {
            if t >= l.len() {
                mask.row_mut(i)[t] = -1e9;
            }
        }
        // s_self[i] + s_nbr[j(t,i)]
        let s_j = g.gather_rows_vec(s_nbr_all, &idx);
        let sum = g.add(s_self, s_j);
        score_cols.push(leaky(g, sum));
        col_indices.push(idx);
    }
    let scores = g.stack_cols(&score_cols);
    let alpha = g.softmax_lastdim(g.add(scores, g.constant(mask)));
    let mut acc: Option<Var> = None;
    for (t, idx) in col_indices.iter().enumerate() {
        let nb = g.gather_rows(wh, idx);
        let a_t = g.select_col(alpha, t);
        let term = g.mul_col(nb, a_t);
        acc = Some(match acc {
            Some(s) => g.add(s, term),
            None => term,
        });
    }
    g.relu(acc.expect("t_max >= 1"))
}

/// GAT-based structure baseline (MuGNN* when `transe_joint` is false,
/// KECG* when true).
pub struct GatAligner {
    /// Shared parameters.
    pub params: GnnParams,
    /// Add a TransE objective on the same embeddings (KECG's joint model).
    pub transe_joint: bool,
    /// Neighbour cap per node.
    pub cap: usize,
}

impl GatAligner {
    /// MuGNN representative (GAT only).
    pub fn mugnn() -> Self {
        GatAligner { params: GnnParams::default(), transe_joint: false, cap: 10 }
    }

    /// KECG representative (GAT + TransE joint loss).
    pub fn kecg() -> Self {
        GatAligner { params: GnnParams::default(), transe_joint: true, cap: 10 }
    }
}

impl AlignmentMethod for GatAligner {
    fn name(&self) -> &'static str {
        if self.transe_joint {
            "KECG*"
        } else {
            "MuGNN*"
        }
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let p = &self.params;
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x000B);
        let (n1, n2) = (input.kg1.num_entities(), input.kg2.num_entities());
        let neigh1 = gat_neighbors(input.kg1, self.cap);
        let neigh2 = gat_neighbors(input.kg2, self.cap);
        let mut store = ParamStore::new();
        let feat1 = store.add("gat.feat1", Tensor::rand_normal(&[n1, p.in_dim], 0.3, &mut rng));
        let feat2 = store.add("gat.feat2", Tensor::rand_normal(&[n2, p.in_dim], 0.3, &mut rng));
        let w = store.add("gat.w", init::xavier_uniform(&[p.in_dim, p.dim], &mut rng));
        let a_self = store.add("gat.a_self", init::xavier_uniform(&[p.dim, 1], &mut rng));
        let a_nbr = store.add("gat.a_nbr", init::xavier_uniform(&[p.dim, 1], &mut rng));
        let n_rels = input.kg1.num_relations() + input.kg2.num_relations();
        let rel = store.add("gat.rel", Tensor::rand_normal(&[n_rels.max(1), p.dim], 0.3, &mut rng));
        // union triples in per-KG row spaces for the joint TransE term
        let triples1: Vec<(usize, usize, usize)> = input
            .kg1
            .rel_triples()
            .iter()
            .map(|t| (t.head.0 as usize, t.rel.0 as usize, t.tail.0 as usize))
            .collect();
        let off = input.kg1.num_relations();
        let triples2: Vec<(usize, usize, usize)> = input
            .kg2
            .rel_triples()
            .iter()
            .map(|t| (t.head.0 as usize, off + t.rel.0 as usize, t.tail.0 as usize))
            .collect();

        let mut opt = Adam::new(p.lr).with_clip(GradClip::GlobalNorm(2.0));
        for _ in 0..p.epochs {
            let g = Graph::new();
            let x1 = g.param(&store, feat1);
            let x2 = g.param(&store, feat2);
            let z1 = gat_layer(&g, &store, x1, w, a_self, a_nbr, &neigh1);
            let z2 = gat_layer(&g, &store, x2, w, a_self, a_nbr, &neigh2);
            let rows_a: Vec<usize> = input.split.train.iter().map(|&(e, _)| e.0 as usize).collect();
            let rows_p: Vec<usize> = input.split.train.iter().map(|&(_, e)| e.0 as usize).collect();
            let rows_n: Vec<usize> = (0..input.split.train.len()).map(|_| rng.below(n2)).collect();
            let anchor = g.gather_rows(z1, &rows_a);
            let pos = g.gather_rows(z2, &rows_p);
            let neg = g.gather_rows(z2, &rows_n);
            let mut loss = margin_ranking_loss(&g, anchor, pos, neg, p.margin);
            if self.transe_joint {
                let relv = g.param(&store, rel);
                let mut add_transe = |z: Var, triples: &[(usize, usize, usize)]| {
                    if triples.is_empty() {
                        return None;
                    }
                    let take = triples.len().min(256);
                    let sample: Vec<(usize, usize, usize)> =
                        (0..take).map(|_| triples[rng.below(triples.len())]).collect();
                    let hs: Vec<usize> = sample.iter().map(|&(h, _, _)| h).collect();
                    let rs: Vec<usize> = sample.iter().map(|&(_, r, _)| r).collect();
                    let ts: Vec<usize> = sample.iter().map(|&(_, _, t)| t).collect();
                    let h = g.gather_rows(z, &hs);
                    let r = g.gather_rows(relv, &rs);
                    let t = g.gather_rows(z, &ts);
                    let diff = g.sub(g.add(h, r), t);
                    Some(g.mean_all(g.square(diff)))
                };
                if let Some(l1) = add_transe(z1, &triples1) {
                    loss = g.add(loss, g.scale(l1, 0.3));
                }
                if let Some(l2) = add_transe(z2, &triples2) {
                    loss = g.add(loss, g.scale(l2, 0.3));
                }
            }
            g.backward(loss);
            g.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        // final embeddings
        let g = Graph::new();
        let x1 = g.param(&store, feat1);
        let x2 = g.param(&store, feat2);
        let z1 = g.value_cloned(gat_layer(&g, &store, x1, w, a_self, a_nbr, &neigh1));
        let z2 = g.value_cloned(gat_layer(&g, &store, x2, w, a_self, a_nbr, &neigh2));
        rank_test(&z1, &z2, &input.split.test)
    }
}

/// HMAN: GCN topology channel + FNN channels over attribute and relation
/// multi-hot features.
#[derive(Default)]
pub struct Hman(pub GnnParams);

/// Relation multi-hot: 1 if the entity has an incident edge of that
/// relation (union feature axis).
fn rel_multihot(kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) -> (Tensor, Tensor) {
    let width = kg1.num_relations() + kg2.num_relations();
    let build = |kg: &KnowledgeGraph, offset: usize| -> Tensor {
        let mut t = Tensor::zeros(&[kg.num_entities(), width.max(1)]);
        for e in kg.entities() {
            for &(_, r, _) in kg.neighbors(e) {
                t.row_mut(e.0 as usize)[offset + r.0 as usize] = 1.0;
            }
        }
        t
    };
    (build(kg1, 0), build(kg2, kg1.num_relations()))
}

impl AlignmentMethod for Hman {
    fn name(&self) -> &'static str {
        "HMAN"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let p = &self.0;
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x000C);
        let (n1, n2) = (input.kg1.num_entities(), input.kg2.num_entities());
        let adj1 = gcn_adjacency(input.kg1);
        let adj2 = gcn_adjacency(input.kg2);
        // topology channel (GCN)
        let mut store = ParamStore::new();
        let core = GcnCore::new(n1, n2, p, &mut store, &mut rng);
        train_seed_margin(
            &mut store,
            p,
            &mut rng,
            |g, store| {
                (
                    core.forward(g, store, &adj1, core.feat1),
                    core.forward(g, store, &adj2, core.feat2),
                )
            },
            &input.split.train,
            n2,
        );
        let gf = Graph::new();
        let z1 = gf.value_cloned(core.forward(&gf, &store, &adj1, core.feat1));
        let z2 = gf.value_cloned(core.forward(&gf, &store, &adj2, core.feat2));

        // feature channels: FNN over attr + rel multi-hot
        let (a1, a2) = attr_multihot(input.kg1, input.kg2);
        let (r1, r2) = rel_multihot(input.kg1, input.kg2);
        let f1 = Tensor::concat_cols(&[&a1, &r1]);
        let f2 = Tensor::concat_cols(&[&a2, &r2]);
        let width = f1.shape()[1];
        let mut fstore = ParamStore::new();
        let fw = fstore.add("hman.fnn.w", init::xavier_uniform(&[width, p.dim], &mut rng));
        let fb = fstore.add("hman.fnn.b", Tensor::zeros(&[p.dim]));
        let f1c = f1.clone();
        let f2c = f2.clone();
        train_seed_margin(
            &mut fstore,
            p,
            &mut rng,
            move |g, store| {
                let w = g.param(store, fw);
                let b = g.param(store, fb);
                let x1 = g.constant(f1c.clone());
                let x2 = g.constant(f2c.clone());
                (g.tanh(g.add_bias(g.matmul(x1, w), b)), g.tanh(g.add_bias(g.matmul(x2, w), b)))
            },
            &input.split.train,
            n2,
        );
        let gf2 = Graph::new();
        let w = gf2.param(&fstore, fw);
        let b = gf2.param(&fstore, fb);
        let fv1 = gf2.value_cloned(gf2.tanh(gf2.add_bias(gf2.matmul(gf2.constant(f1), w), b)));
        let fv2 = gf2.value_cloned(gf2.tanh(gf2.add_bias(gf2.matmul(gf2.constant(f2), w), b)));

        // concatenate channels
        let e1 = Tensor::concat_cols(&[&z1, &fv1]);
        let e2 = Tensor::concat_cols(&[&z2, &fv2]);
        rank_test(&e1, &e2, &input.split.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::testkit::assert_beats_random;

    fn quick(p: &mut GnnParams) {
        p.epochs = 25;
        p.in_dim = 32;
        p.dim = 32;
    }

    #[test]
    fn gcn_beats_random() {
        let mut p = GnnParams::default();
        quick(&mut p);
        assert_beats_random(&Gcn(p), 3.0);
    }

    #[test]
    fn gcn_align_beats_random() {
        let mut p = GnnParams::default();
        quick(&mut p);
        assert_beats_random(&GcnAlign { params: p, struct_weight: 0.7 }, 3.0);
    }

    #[test]
    fn gat_runs_and_beats_random() {
        let mut m = GatAligner::mugnn();
        quick(&mut m.params);
        m.params.epochs = 15;
        assert_beats_random(&m, 2.0);
    }

    #[test]
    fn kecg_runs() {
        let mut m = GatAligner::kecg();
        quick(&mut m.params);
        m.params.epochs = 12;
        assert_beats_random(&m, 2.0);
    }

    #[test]
    fn hman_beats_random() {
        let mut p = GnnParams::default();
        quick(&mut p);
        assert_beats_random(&Hman(p), 3.0);
    }

    #[test]
    fn adjacency_is_symmetric_normalized() {
        let mut b = sdea_kg::KgBuilder::new();
        b.rel_triple("a", "r", "b");
        b.rel_triple("b", "r", "c");
        let kg = b.build();
        let adj = gcn_adjacency(&kg);
        // D^{-1/2} A D^{-1/2} is symmetric with entries in (0, 1] and
        // diagonal 1/deg(i) (self-loop weight scaled by both endpoints).
        let dense: Vec<Vec<f32>> = (0..3)
            .map(|r| {
                let mut row = vec![0.0f32; 3];
                for (c, v) in adj.row_entries(r) {
                    row[c] = v;
                }
                row
            })
            .collect();
        for (r, row) in dense.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert!((v - dense[c][r]).abs() < 1e-6, "symmetry ({r},{c})");
                assert!((0.0..=1.0 + 1e-6).contains(&v));
            }
        }
        // b has degree 3 (a, c, self) -> diagonal 1/3
        assert!((dense[1][1] - 1.0 / 3.0).abs() < 1e-5, "diag {}", dense[1][1]);
    }
}
