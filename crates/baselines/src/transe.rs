//! The TransE family of baselines (paper Table II, rows 1–7).
//!
//! All share a translational scoring core `||h + r − t||²` trained with a
//! margin loss and uniform head/tail corruption, using hand-derived SGD
//! updates (orders of magnitude faster than taping millions of tiny ops).
//! The variants differ exactly where the paper says they differ:
//!
//! * **MTransE** — separate spaces per KG, linear mapping learned from
//!   seeds by ridge regression, *no negative sampling on alignment* (the
//!   paper attributes its weakness to this).
//! * **JAPE-Stru** — one shared space, training seeds merged into single
//!   rows, negative sampling throughout.
//! * **JAPE** — JAPE-Stru plus attribute-correlation embeddings
//!   (skip-gram over attribute co-occurrence) blended into the similarity.
//! * **NAEA** — shared space plus neighbourhood-attention aggregation of
//!   entity representations.
//! * **BootEA** — shared space plus bootstrapped self-training: confident
//!   mutual-nearest pairs are added as soft alignment constraints.
//! * **TransEdge** — contextualized translations
//!   `h + r + α(h⊙t) − t` (edge-centric scoring).
//! * **IPTransE** — adds 2-hop path triples with composed relations
//!   `r₁ + r₂`.

use crate::emb::{normalize_rows, rank_test, UnionSpace};
use crate::features::attr_correlation_embeddings;
use crate::method::{AlignmentMethod, MethodInput};
use sdea_core::align::AlignmentResult;
use sdea_eval::cosine_matrix;
use sdea_tensor::{Rng, Tensor};

/// Shared hyper-parameters of the family.
#[derive(Clone, Debug)]
pub struct TransEParams {
    /// Embedding dimension.
    pub dim: usize,
    /// Training epochs over the triple set.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Margin γ.
    pub margin: f32,
}

impl Default for TransEParams {
    fn default() -> Self {
        TransEParams { dim: 64, epochs: 60, lr: 0.02, margin: 1.0 }
    }
}

/// The translational embedding core.
pub struct TransECore {
    /// Entity rows `[n, d]`.
    pub ent: Tensor,
    /// Relation rows `[m, d]`.
    pub rel: Tensor,
    dim: usize,
}

/// Scoring variants.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum ScoreMode {
    /// Plain TransE.
    Plain,
    /// TransEdge-style context: `h + r + α(h⊙t) − t`.
    EdgeContext(f32),
}

impl TransECore {
    /// Uniform init in `[-6/√d, 6/√d]` (Bordes et al.).
    pub fn new(n_rows: usize, n_rels: usize, dim: usize, rng: &mut Rng) -> Self {
        let bound = 6.0 / (dim as f32).sqrt();
        let mut ent = Tensor::rand_uniform(&[n_rows, dim], -bound, bound, rng);
        let rel = Tensor::rand_uniform(&[n_rels, dim], -bound, bound, rng);
        normalize_rows(&mut ent);
        TransECore { ent, rel, dim }
    }

    fn residual(&self, h: usize, r: usize, t: usize, mode: ScoreMode, out: &mut [f32]) -> f32 {
        let (hv, rv, tv) = (self.ent.row(h), self.rel.row(r), self.ent.row(t));
        let mut d = 0.0f32;
        match mode {
            ScoreMode::Plain => {
                for i in 0..self.dim {
                    out[i] = hv[i] + rv[i] - tv[i];
                    d += out[i] * out[i];
                }
            }
            ScoreMode::EdgeContext(alpha) => {
                for i in 0..self.dim {
                    out[i] = hv[i] + rv[i] + alpha * hv[i] * tv[i] - tv[i];
                    d += out[i] * out[i];
                }
            }
        }
        d
    }

    fn apply_grad(
        &mut self,
        h: usize,
        r: usize,
        t: usize,
        e: &[f32],
        sign: f32,
        lr: f32,
        mode: ScoreMode,
    ) {
        // d(d²)/dh etc.; sign +1 decreases pos distance, -1 increases neg.
        let dim = self.dim;
        match mode {
            ScoreMode::Plain => {
                for (i, &ev) in e.iter().enumerate().take(dim) {
                    let g = 2.0 * ev * sign * lr;
                    self.ent.row_mut(h)[i] -= g;
                    self.rel.row_mut(r)[i] -= g;
                    self.ent.row_mut(t)[i] += g;
                }
            }
            ScoreMode::EdgeContext(alpha) => {
                // cache h,t before mutation
                let hv: Vec<f32> = self.ent.row(h).to_vec();
                let tv: Vec<f32> = self.ent.row(t).to_vec();
                for i in 0..dim {
                    let ge = 2.0 * e[i] * sign * lr;
                    self.ent.row_mut(h)[i] -= ge * (1.0 + alpha * tv[i]);
                    self.rel.row_mut(r)[i] -= ge;
                    self.ent.row_mut(t)[i] -= ge * (alpha * hv[i] - 1.0);
                }
            }
        }
    }

    /// One SGD epoch over the triples with uniform corruption.
    ///
    /// `side_boundary`: when training a union space, corruption samples a
    /// replacement from the corrupted entity's own KG row range (rows below
    /// vs at/above the boundary). Cross-KG corruptions are systematically
    /// far away and would never violate the margin, starving training.
    pub fn epoch(
        &mut self,
        triples: &[(usize, usize, usize)],
        p: &TransEParams,
        mode: ScoreMode,
        side_boundary: Option<usize>,
        rng: &mut Rng,
    ) {
        let n_rows = self.ent.shape()[0];
        let sample_like = |row: usize, rng: &mut Rng| -> usize {
            match side_boundary {
                Some(b) if row < b => rng.below(b),
                Some(b) => b + rng.below(n_rows - b),
                None => rng.below(n_rows),
            }
        };
        let mut e_pos = vec![0.0f32; self.dim];
        let mut e_neg = vec![0.0f32; self.dim];
        let mut order: Vec<usize> = (0..triples.len()).collect();
        rng.shuffle(&mut order);
        for &ti in &order {
            let (h, r, t) = triples[ti];
            // corrupt head or tail
            let corrupt_head = rng.chance(0.5);
            let (nh, nt) =
                if corrupt_head { (sample_like(h, rng), t) } else { (h, sample_like(t, rng)) };
            if (nh, nt) == (h, t) {
                continue;
            }
            let d_pos = self.residual(h, r, t, mode, &mut e_pos);
            let d_neg = self.residual(nh, r, nt, mode, &mut e_neg);
            if p.margin + d_pos - d_neg > 0.0 {
                self.apply_grad(h, r, t, &e_pos, 1.0, p.lr, mode);
                self.apply_grad(nh, r, nt, &e_neg, -1.0, p.lr, mode);
            }
        }
        normalize_rows(&mut self.ent);
    }

    /// One epoch over 2-hop path triples (IPTransE): loss on
    /// `||h + (r₁ + r₂) − t||²` with tail corruption.
    pub fn epoch_paths(
        &mut self,
        paths: &[(usize, usize, usize, usize)], // (h, r1, r2, t)
        p: &TransEParams,
        rng: &mut Rng,
    ) {
        let n_rows = self.ent.shape()[0];
        let dim = self.dim;
        let mut e_pos = vec![0.0f32; dim];
        let mut e_neg = vec![0.0f32; dim];
        for &(h, r1, r2, t) in paths {
            let nt = rng.below(n_rows);
            if nt == t {
                continue;
            }
            let mut d_pos = 0.0;
            let mut d_neg = 0.0;
            for i in 0..dim {
                let rsum = self.rel.row(r1)[i] + self.rel.row(r2)[i];
                e_pos[i] = self.ent.row(h)[i] + rsum - self.ent.row(t)[i];
                e_neg[i] = self.ent.row(h)[i] + rsum - self.ent.row(nt)[i];
                d_pos += e_pos[i] * e_pos[i];
                d_neg += e_neg[i] * e_neg[i];
            }
            if p.margin + d_pos - d_neg > 0.0 {
                for i in 0..dim {
                    let gp = 2.0 * e_pos[i] * p.lr;
                    let gn = 2.0 * e_neg[i] * p.lr;
                    self.ent.row_mut(h)[i] -= gp - gn;
                    self.rel.row_mut(r1)[i] -= gp - gn;
                    self.rel.row_mut(r2)[i] -= gp - gn;
                    self.ent.row_mut(t)[i] += gp;
                    self.ent.row_mut(nt)[i] -= gn;
                }
            }
        }
    }

    /// Pulls row pairs together (soft alignment constraint; used by
    /// BootEA's bootstrapping).
    pub fn align_pull(&mut self, pairs: &[(usize, usize)], lr: f32) {
        let dim = self.dim;
        for &(a, b) in pairs {
            for i in 0..dim {
                let diff = self.ent.row(a)[i] - self.ent.row(b)[i];
                self.ent.row_mut(a)[i] -= lr * diff;
                self.ent.row_mut(b)[i] += lr * diff;
            }
        }
    }

    /// One pass of the *alignment* margin loss over seed pairs — pull the
    /// aligned pair together, push a random negative away when it violates
    /// the margin. Every OpenEA-framework implementation of the TransE
    /// family trains this objective alongside the triple loss; translation
    /// alone cannot couple two disjoint relation schemas through a handful
    /// of merged rows.
    pub fn epoch_alignment(
        &mut self,
        pairs: &[(usize, usize)],
        n_rows: usize,
        p: &TransEParams,
        rng: &mut Rng,
    ) {
        let dim = self.dim;
        for &(a, b) in pairs {
            let neg = rng.below(n_rows);
            if neg == b {
                continue;
            }
            let mut d_pos = 0.0f32;
            let mut d_neg = 0.0f32;
            for i in 0..dim {
                let dp = self.ent.row(a)[i] - self.ent.row(b)[i];
                let dn = self.ent.row(a)[i] - self.ent.row(neg)[i];
                d_pos += dp * dp;
                d_neg += dn * dn;
            }
            if p.margin + d_pos - d_neg > 0.0 {
                for i in 0..dim {
                    let dp = self.ent.row(a)[i] - self.ent.row(b)[i];
                    let dn = self.ent.row(a)[i] - self.ent.row(neg)[i];
                    let g = 2.0 * p.lr;
                    self.ent.row_mut(a)[i] -= g * (dp - dn);
                    self.ent.row_mut(b)[i] += g * dp;
                    self.ent.row_mut(neg)[i] -= g * dn;
                }
            }
        }
    }
}

// ---------------------------------------------------------------- methods

/// MTransE: separate spaces + ridge-regression mapping from seeds.
#[derive(Default)]
pub struct MTransE(pub TransEParams);

impl AlignmentMethod for MTransE {
    fn name(&self) -> &'static str {
        "MTransE"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x0001);
        let space = UnionSpace::disjoint(input.kg1, input.kg2);
        let (triples, n_rels) = space.union_triples(input.kg1, input.kg2);
        let mut core = TransECore::new(space.n_rows(), n_rels, self.0.dim, &mut rng);
        for _ in 0..self.0.epochs {
            core.epoch(
                &triples,
                &self.0,
                ScoreMode::Plain,
                Some(input.kg1.num_entities()),
                &mut rng,
            );
        }
        let (e1, e2) =
            space.split_tables(&core.ent, input.kg1.num_entities(), input.kg2.num_entities());
        // Mapping M: minimize ||X1 M − X2||² + λ||M||² over train seeds.
        let rows1: Vec<usize> = input.split.train.iter().map(|&(e, _)| e.0 as usize).collect();
        let rows2: Vec<usize> = input.split.train.iter().map(|&(_, e)| e.0 as usize).collect();
        let x1 = e1.gather_rows(&rows1);
        let x2 = e2.gather_rows(&rows2);
        let m = crate::features::ridge_regression(&x1, &x2, 0.1);
        let mapped = e1.matmul(&m);
        rank_test(&mapped, &e2, &input.split.test)
    }
}

/// JAPE-Stru: shared space with seed merging.
#[derive(Default)]
pub struct JapeStru(pub TransEParams);

fn shared_space_embeddings(
    input: &MethodInput<'_>,
    p: &TransEParams,
    mode: ScoreMode,
    seed_salt: u64,
) -> (Tensor, Tensor) {
    let mut rng = Rng::seed_from_u64(input.seed ^ seed_salt);
    let space = UnionSpace::new(input.kg1, input.kg2, &input.split.train);
    let (triples, n_rels) = space.union_triples(input.kg1, input.kg2);
    let boundary = input.kg1.num_entities();
    let mut core = TransECore::new(space.n_rows(), n_rels, p.dim, &mut rng);
    for _ in 0..p.epochs {
        core.epoch(&triples, p, mode, Some(boundary), &mut rng);
    }
    space.split_tables(&core.ent, input.kg1.num_entities(), input.kg2.num_entities())
}

impl AlignmentMethod for JapeStru {
    fn name(&self) -> &'static str {
        "JAPE-Stru"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let (e1, e2) = shared_space_embeddings(input, &self.0, ScoreMode::Plain, 0x0002);
        rank_test(&e1, &e2, &input.split.test)
    }
}

/// JAPE: JAPE-Stru + attribute-correlation similarity channel.
pub struct Jape {
    /// Structural parameters.
    pub params: TransEParams,
    /// Weight of the structural channel (attribute gets `1 − w`).
    pub struct_weight: f64,
}

impl Default for Jape {
    fn default() -> Self {
        Jape { params: TransEParams::default(), struct_weight: 0.75 }
    }
}

impl AlignmentMethod for Jape {
    fn name(&self) -> &'static str {
        "JAPE"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let (e1, e2) = shared_space_embeddings(input, &self.params, ScoreMode::Plain, 0x0003);
        let rows: Vec<usize> = input.split.test.iter().map(|&(e, _)| e.0 as usize).collect();
        let gold: Vec<usize> = input.split.test.iter().map(|&(_, e)| e.0 as usize).collect();
        let sim_struct = cosine_matrix(&e1.gather_rows(&rows), &e2);
        let (a1, a2) = attr_correlation_embeddings(input, 32);
        let sim_attr = cosine_matrix(&a1.gather_rows(&rows), &a2);
        let w = self.struct_weight as f32;
        let sim = sim_struct.zip(&sim_attr, |s, a| w * s + (1.0 - w) * a);
        AlignmentResult { sim, gold }
    }
}

/// NAEA: shared space + neighbourhood attention aggregation.
#[derive(Default)]
pub struct Naea(pub TransEParams);

impl AlignmentMethod for Naea {
    fn name(&self) -> &'static str {
        "NAEA"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let (e1, e2) = shared_space_embeddings(input, &self.0, ScoreMode::Plain, 0x0004);
        let agg1 = attention_aggregate(input.kg1, &e1);
        let agg2 = attention_aggregate(input.kg2, &e2);
        rank_test(&agg1, &agg2, &input.split.test)
    }
}

/// `[own ; softmax(own·nbr) -weighted neighbour mean]`.
fn attention_aggregate(kg: &sdea_kg::KnowledgeGraph, emb: &Tensor) -> Tensor {
    let (n, d) = (emb.shape()[0], emb.shape()[1]);
    let mut out = Tensor::zeros(&[n, 2 * d]);
    for e in kg.entities() {
        let i = e.0 as usize;
        let own = emb.row(i);
        out.row_mut(i)[..d].copy_from_slice(own);
        let neigh = kg.neighbors(e);
        if neigh.is_empty() {
            continue;
        }
        // attention over neighbours
        let mut scores: Vec<f32> = neigh
            .iter()
            .map(|&(nb, _, _)| {
                let nv = emb.row(nb.0 as usize);
                own.iter().zip(nv).map(|(&a, &b)| a * b).sum()
            })
            .collect();
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
            sum += *s;
        }
        for (k, &(nb, _, _)) in neigh.iter().enumerate() {
            let w = scores[k] / sum;
            let nv = emb.row(nb.0 as usize);
            for (o, &v) in out.row_mut(i)[d..].iter_mut().zip(nv) {
                *o += w * v;
            }
        }
    }
    out
}

/// BootEA: shared space + bootstrapped alignment constraints.
pub struct BootEa {
    /// Structural parameters.
    pub params: TransEParams,
    /// Epoch interval between bootstrap rounds.
    pub boot_every: usize,
    /// Similarity threshold for accepting a mutual-nearest pair.
    pub threshold: f32,
}

impl Default for BootEa {
    fn default() -> Self {
        BootEa { params: TransEParams::default(), boot_every: 15, threshold: 0.9 }
    }
}

impl AlignmentMethod for BootEa {
    fn name(&self) -> &'static str {
        "BootEA"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x0005);
        let space = UnionSpace::new(input.kg1, input.kg2, &input.split.train);
        let (triples, n_rels) = space.union_triples(input.kg1, input.kg2);
        let mut core = TransECore::new(space.n_rows(), n_rels, self.params.dim, &mut rng);
        let n1 = input.kg1.num_entities();
        let n2 = input.kg2.num_entities();
        let mut boot_pairs: Vec<(usize, usize)> = Vec::new();
        for epoch in 0..self.params.epochs {
            core.epoch(
                &triples,
                &self.params,
                ScoreMode::Plain,
                Some(input.kg1.num_entities()),
                &mut rng,
            );
            if !boot_pairs.is_empty() {
                // gentle pull: bootstrapped labels are noisy
                core.align_pull(&boot_pairs, self.params.lr * 0.5);
            }
            if epoch > 0 && epoch % self.boot_every == 0 {
                let (e1, e2) = space.split_tables(&core.ent, n1, n2);
                boot_pairs = mutual_nearest(&e1, &e2, self.threshold)
                    .into_iter()
                    .map(|(a, b)| (a, n1 + b)) // row of KG2 entity b (unmerged rows)
                    .collect();
            }
        }
        let (e1, e2) = space.split_tables(&core.ent, n1, n2);
        rank_test(&e1, &e2, &input.split.test)
    }
}

/// Mutual nearest neighbours above a cosine threshold.
pub fn mutual_nearest(e1: &Tensor, e2: &Tensor, threshold: f32) -> Vec<(usize, usize)> {
    let sim = cosine_matrix(e1, e2);
    let (n, m) = (sim.shape()[0], sim.shape()[1]);
    let mut best_col = vec![(0usize, f32::NEG_INFINITY); m];
    let mut best_row = vec![(0usize, f32::NEG_INFINITY); n];
    for (i, br) in best_row.iter_mut().enumerate() {
        for (j, bc) in best_col.iter_mut().enumerate() {
            let s = sim.at2(i, j);
            if s > br.1 {
                *br = (j, s);
            }
            if s > bc.1 {
                *bc = (i, s);
            }
        }
    }
    (0..n)
        .filter_map(|i| {
            let (j, s) = best_row[i];
            (s >= threshold && best_col[j].0 == i).then_some((i, j))
        })
        .collect()
}

/// TransEdge: edge-contextualized translations.
pub struct TransEdge {
    /// Structural parameters.
    pub params: TransEParams,
    /// Context strength α.
    pub alpha: f32,
}

impl Default for TransEdge {
    fn default() -> Self {
        TransEdge { params: TransEParams::default(), alpha: 0.3 }
    }
}

impl AlignmentMethod for TransEdge {
    fn name(&self) -> &'static str {
        "TransEdge"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let (e1, e2) = shared_space_embeddings(
            input,
            &self.params,
            ScoreMode::EdgeContext(self.alpha),
            0x0006,
        );
        rank_test(&e1, &e2, &input.split.test)
    }
}

/// IPTransE: shared space + 2-hop path composition.
pub struct IpTransE {
    /// Structural parameters.
    pub params: TransEParams,
    /// Number of sampled 2-hop paths per epoch.
    pub paths_per_epoch: usize,
}

impl Default for IpTransE {
    fn default() -> Self {
        IpTransE { params: TransEParams::default(), paths_per_epoch: 2000 }
    }
}

impl AlignmentMethod for IpTransE {
    fn name(&self) -> &'static str {
        "IPTransE"
    }

    fn align(&self, input: &MethodInput<'_>) -> AlignmentResult {
        let mut rng = Rng::seed_from_u64(input.seed ^ 0x0007);
        let space = UnionSpace::new(input.kg1, input.kg2, &input.split.train);
        let (triples, n_rels) = space.union_triples(input.kg1, input.kg2);
        // index triples by head for path sampling
        let mut by_head: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &(h, _, _)) in triples.iter().enumerate() {
            by_head.entry(h).or_default().push(i);
        }
        let mut core = TransECore::new(space.n_rows(), n_rels, self.params.dim, &mut rng);
        for _ in 0..self.params.epochs {
            core.epoch(
                &triples,
                &self.params,
                ScoreMode::Plain,
                Some(input.kg1.num_entities()),
                &mut rng,
            );
            // sample 2-hop paths
            let mut paths = Vec::with_capacity(self.paths_per_epoch);
            for _ in 0..self.paths_per_epoch {
                let &(h, r1, mid) = &triples[rng.below(triples.len())];
                if let Some(next) = by_head.get(&mid) {
                    let &(_, r2, t) = &triples[*rng.choose(next)];
                    paths.push((h, r1, r2, t));
                }
            }
            core.epoch_paths(&paths, &self.params, &mut rng);
        }
        let (e1, e2) =
            space.split_tables(&core.ent, input.kg1.num_entities(), input.kg2.num_entities());
        rank_test(&e1, &e2, &input.split.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::testkit::assert_beats_random;

    #[test]
    fn transe_core_separates_pos_from_neg() {
        let mut rng = Rng::seed_from_u64(1);
        // tiny deterministic graph: chain 0-1-2-3 with one relation
        let triples = vec![(0, 0, 1), (1, 0, 2), (2, 0, 3), (3, 0, 4), (4, 0, 0)];
        let p = TransEParams { dim: 16, epochs: 1, lr: 0.05, margin: 1.0 };
        let mut core = TransECore::new(5, 1, 16, &mut rng);
        let mut e = vec![0.0f32; 16];
        let before: f32 =
            triples.iter().map(|&(h, r, t)| core.residual(h, r, t, ScoreMode::Plain, &mut e)).sum();
        for _ in 0..100 {
            core.epoch(&triples, &p, ScoreMode::Plain, None, &mut rng);
        }
        let after: f32 =
            triples.iter().map(|&(h, r, t)| core.residual(h, r, t, ScoreMode::Plain, &mut e)).sum();
        assert!(after < before, "training should reduce positive distances: {before} -> {after}");
    }

    #[test]
    fn mutual_nearest_finds_identity() {
        let mut rng = Rng::seed_from_u64(2);
        let e = Tensor::rand_normal(&[10, 8], 1.0, &mut rng);
        let pairs = mutual_nearest(&e, &e, 0.99);
        assert_eq!(pairs.len(), 10);
        assert!(pairs.iter().all(|&(a, b)| a == b));
    }

    #[test]
    fn jape_stru_beats_random() {
        let p = TransEParams { epochs: 30, dim: 32, ..TransEParams::default() };
        assert_beats_random(&JapeStru(p), 3.0);
    }

    #[test]
    fn mtranse_runs_and_is_sane() {
        let p = TransEParams { epochs: 20, dim: 32, ..TransEParams::default() };
        // MTransE is the weakest method in the paper; only require a valid
        // run with non-degenerate metrics.
        let (ds, split, corpus) = crate::method::testkit::tiny_dataset(120, 33);
        let input =
            MethodInput { kg1: ds.kg1(), kg2: ds.kg2(), split: &split, corpus: &corpus, seed: 33 };
        let m = MTransE(p).align(&input).metrics();
        assert!(m.mrr > 0.0 && m.hits10 <= 1.0);
    }

    #[test]
    fn bootea_collects_boot_pairs_and_runs() {
        let params = TransEParams { epochs: 40, dim: 32, ..TransEParams::default() };
        let method = BootEa { params, boot_every: 12, threshold: 0.9 };
        assert_beats_random(&method, 2.0);
    }

    #[test]
    fn transedge_edge_context_differs_from_plain() {
        let mut rng = Rng::seed_from_u64(3);
        let core = TransECore::new(4, 1, 8, &mut rng);
        let mut e1 = vec![0.0f32; 8];
        let mut e2 = vec![0.0f32; 8];
        let d_plain = core.residual(0, 0, 1, ScoreMode::Plain, &mut e1);
        let d_edge = core.residual(0, 0, 1, ScoreMode::EdgeContext(0.3), &mut e2);
        assert_ne!(d_plain, d_edge);
    }

    #[test]
    fn iptranse_paths_run() {
        let p = TransEParams { epochs: 15, dim: 32, ..TransEParams::default() };
        let method = IpTransE { params: p, paths_per_epoch: 300 };
        assert_beats_random(&method, 2.0);
    }
}
