//! Random-walk generation over the union of both KGs — the corpus for the
//! RSN4EA baseline. Walks cross between KGs through merged training-seed
//! entities, which is how RSN transmits alignment information over long
//! relational paths.

use crate::emb::UnionSpace;
use sdea_kg::KnowledgeGraph;
use sdea_tensor::Rng;

/// A walk is an alternating entity/relation row sequence
/// `e0 r0 e1 r1 e2 …` encoded as `(entity_rows, relation_indices)`.
#[derive(Clone, Debug)]
pub struct Walk {
    /// Entity rows (length `hops + 1`).
    pub entities: Vec<usize>,
    /// Relation indices (length `hops`).
    pub relations: Vec<usize>,
}

/// Generates `count` walks of `hops` hops over the union graph.
pub fn generate_walks(
    kg1: &KnowledgeGraph,
    kg2: &KnowledgeGraph,
    space: &UnionSpace,
    count: usize,
    hops: usize,
    rng: &mut Rng,
) -> Vec<Walk> {
    let (triples, _) = space.union_triples(kg1, kg2);
    // Adjacency by head row. A BTreeMap, not a HashMap: walk starts are
    // drawn from the key sequence, and HashMap iteration order is
    // per-process random — that leaked into the RSN walk corpus once and
    // made a test flaky. Ordered keys keep the whole corpus deterministic
    // given the seed (adjacency lists stay in triple order either way).
    let mut adj: std::collections::BTreeMap<usize, Vec<(usize, usize)>> =
        std::collections::BTreeMap::new();
    for &(h, r, t) in &triples {
        adj.entry(h).or_default().push((r, t));
        // biased walks also traverse inverse edges (standard in RSN)
        adj.entry(t).or_default().push((r, h));
    }
    let starts: Vec<usize> = adj.keys().copied().collect();
    if starts.is_empty() {
        return Vec::new();
    }
    let mut walks = Vec::with_capacity(count);
    for _ in 0..count {
        let mut e = *rng.choose(&starts);
        let mut entities = vec![e];
        let mut relations = Vec::with_capacity(hops);
        for _ in 0..hops {
            let Some(nexts) = adj.get(&e) else { break };
            let &(r, t) = rng.choose(nexts);
            relations.push(r);
            entities.push(t);
            e = t;
        }
        if entities.len() > 1 {
            walks.push(Walk { entities, relations });
        }
    }
    walks
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_kg::KgBuilder;

    fn ring(tag: &str, n: usize) -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        for i in 0..n {
            b.rel_triple(&format!("{tag}{i}"), "r", &format!("{tag}{}", (i + 1) % n));
        }
        b.build()
    }

    #[test]
    fn walks_have_consistent_lengths() {
        let kg1 = ring("a", 6);
        let kg2 = ring("b", 6);
        let space = UnionSpace::disjoint(&kg1, &kg2);
        let mut rng = Rng::seed_from_u64(1);
        let walks = generate_walks(&kg1, &kg2, &space, 50, 4, &mut rng);
        assert!(!walks.is_empty());
        for w in &walks {
            assert_eq!(w.entities.len(), w.relations.len() + 1);
            assert!(w.entities.len() >= 2);
        }
    }

    #[test]
    fn walks_cross_kgs_through_merged_seeds() {
        let kg1 = ring("a", 6);
        let kg2 = ring("b", 6);
        let a0 = kg1.find_entity("a0").unwrap();
        let b0 = kg2.find_entity("b0").unwrap();
        let space = UnionSpace::new(&kg1, &kg2, &[(a0, b0)]);
        let mut rng = Rng::seed_from_u64(2);
        let walks = generate_walks(&kg1, &kg2, &space, 500, 6, &mut rng);
        let n1 = kg1.num_entities();
        // some walk must contain both a row < n1 and a row >= n1
        let crossing = walks
            .iter()
            .any(|w| w.entities.iter().any(|&e| e < n1) && w.entities.iter().any(|&e| e >= n1));
        assert!(crossing, "walks should cross KGs via the merged seed");
    }

    #[test]
    fn walks_are_valid_rows() {
        let kg1 = ring("a", 4);
        let kg2 = ring("b", 4);
        let space = UnionSpace::disjoint(&kg1, &kg2);
        let mut rng = Rng::seed_from_u64(3);
        for w in generate_walks(&kg1, &kg2, &space, 100, 3, &mut rng) {
            assert!(w.entities.iter().all(|&e| e < space.n_rows()));
        }
    }
}
