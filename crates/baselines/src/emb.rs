//! Shared embedding-space utilities for the structure-based baselines.

use sdea_core::align::AlignmentResult;
use sdea_kg::{EntityId, KnowledgeGraph};
use sdea_tensor::Tensor;

/// A joint embedding row space over two KGs. Training seed pairs can be
/// *merged* (both entities share one row — the parameter-sharing trick of
/// JAPE/BootEA-style shared-space methods).
#[derive(Clone, Debug)]
pub struct UnionSpace {
    row_of_1: Vec<usize>,
    row_of_2: Vec<usize>,
    n_rows: usize,
    n_rels_1: usize,
}

impl UnionSpace {
    /// Builds the space. `merged` pairs (typically the training seeds)
    /// share rows; everything else gets its own row.
    pub fn new(
        kg1: &KnowledgeGraph,
        kg2: &KnowledgeGraph,
        merged: &[(EntityId, EntityId)],
    ) -> Self {
        let n1 = kg1.num_entities();
        let n2 = kg2.num_entities();
        let row_of_1: Vec<usize> = (0..n1).collect();
        let mut row_of_2: Vec<usize> = (n1..n1 + n2).collect();
        for &(e1, e2) in merged {
            row_of_2[e2.0 as usize] = e1.0 as usize;
        }
        UnionSpace { row_of_1, row_of_2, n_rows: n1 + n2, n_rels_1: kg1.num_relations() }
    }

    /// A space with no merging (separate rows for every entity).
    pub fn disjoint(kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) -> Self {
        Self::new(kg1, kg2, &[])
    }

    /// Total number of entity rows (merged rows counted once — unused rows
    /// for merged KG2 entities simply never receive gradients).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Row of a KG1 entity.
    pub fn row1(&self, e: EntityId) -> usize {
        self.row_of_1[e.0 as usize]
    }

    /// Row of a KG2 entity.
    pub fn row2(&self, e: EntityId) -> usize {
        self.row_of_2[e.0 as usize]
    }

    /// All triples of both KGs as `(head_row, rel_index, tail_row)`, with
    /// KG2 relation indices offset so the two schemas stay distinct.
    pub fn union_triples(
        &self,
        kg1: &KnowledgeGraph,
        kg2: &KnowledgeGraph,
    ) -> (Vec<(usize, usize, usize)>, usize) {
        let mut triples = Vec::with_capacity(kg1.rel_triples().len() + kg2.rel_triples().len());
        for t in kg1.rel_triples() {
            triples.push((self.row1(t.head), t.rel.0 as usize, self.row1(t.tail)));
        }
        let off = self.n_rels_1;
        for t in kg2.rel_triples() {
            triples.push((self.row2(t.head), off + t.rel.0 as usize, self.row2(t.tail)));
        }
        let n_rels = off + kg2.num_relations();
        (triples, n_rels)
    }

    /// Splits a trained `[n_rows, d]` table back into per-KG tables.
    pub fn split_tables(&self, table: &Tensor, n1: usize, n2: usize) -> (Tensor, Tensor) {
        let rows1: Vec<usize> = (0..n1).map(|i| self.row_of_1[i]).collect();
        let rows2: Vec<usize> = (0..n2).map(|i| self.row_of_2[i]).collect();
        (table.gather_rows(&rows1), table.gather_rows(&rows2))
    }
}

/// Ranks KG2 entities for the test sources given per-KG embedding tables.
pub fn rank_test(emb1: &Tensor, emb2: &Tensor, test: &[(EntityId, EntityId)]) -> AlignmentResult {
    let rows: Vec<usize> = test.iter().map(|&(e, _)| e.0 as usize).collect();
    let gold: Vec<usize> = test.iter().map(|&(_, e)| e.0 as usize).collect();
    AlignmentResult::rank(&emb1.gather_rows(&rows), emb2, gold)
}

/// In-place row L2 normalization (the TransE convention after each epoch).
pub fn normalize_rows(t: &mut Tensor) {
    let d = t.shape()[1];
    for row in t.data_mut().chunks_mut(d) {
        let n: f32 = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
        if n > 1e-9 {
            let inv = 1.0 / n;
            row.iter_mut().for_each(|x| *x *= inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_kg::KgBuilder;

    fn kgs() -> (KnowledgeGraph, KnowledgeGraph) {
        let mut b1 = KgBuilder::new();
        b1.rel_triple("a", "r", "b");
        let mut b2 = KgBuilder::new();
        b2.rel_triple("x", "s", "y");
        (b1.build(), b2.build())
    }

    #[test]
    fn merged_pairs_share_rows() {
        let (kg1, kg2) = kgs();
        let a = kg1.find_entity("a").unwrap();
        let x = kg2.find_entity("x").unwrap();
        let space = UnionSpace::new(&kg1, &kg2, &[(a, x)]);
        assert_eq!(space.row1(a), space.row2(x));
        let b = kg1.find_entity("b").unwrap();
        let y = kg2.find_entity("y").unwrap();
        assert_ne!(space.row1(b), space.row2(y));
    }

    #[test]
    fn union_triples_offsets_relations() {
        let (kg1, kg2) = kgs();
        let space = UnionSpace::disjoint(&kg1, &kg2);
        let (triples, n_rels) = space.union_triples(&kg1, &kg2);
        assert_eq!(triples.len(), 2);
        assert_eq!(n_rels, 2);
        assert_eq!(triples[0].1, 0);
        assert_eq!(triples[1].1, 1);
    }

    #[test]
    fn split_tables_recovers_rows() {
        let (kg1, kg2) = kgs();
        let a = kg1.find_entity("a").unwrap();
        let x = kg2.find_entity("x").unwrap();
        let space = UnionSpace::new(&kg1, &kg2, &[(a, x)]);
        let mut table = Tensor::zeros(&[space.n_rows(), 2]);
        for i in 0..space.n_rows() {
            table.row_mut(i)[0] = i as f32;
        }
        let (t1, t2) = space.split_tables(&table, 2, 2);
        // merged: row of x == row of a
        assert_eq!(t2.row(x.0 as usize)[0], t1.row(a.0 as usize)[0]);
    }

    #[test]
    fn normalize_rows_unit() {
        let mut t = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        normalize_rows(&mut t);
        assert!((t.row(0).iter().map(|x| x * x).sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(t.row(1), &[0.0, 0.0]);
    }
}
