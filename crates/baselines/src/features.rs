//! Feature builders shared by several baselines: ridge regression (MTransE
//! mapping), attribute-correlation embeddings (JAPE), character-n-gram
//! name embeddings (RDGCN/HGCN/CEA's GloVe/fastText stand-in), attribute
//! multi-hot features (GCN-Align/HMAN) and Levenshtein name similarity
//! (CEA's string channel).

use crate::method::MethodInput;
use sdea_eval::strings::edit_similarity;
use sdea_kg::KnowledgeGraph;
use sdea_tensor::{Rng, Tensor};

/// Solves `min_M ||X M − Y||² + λ||M||²` in closed form via
/// `(XᵀX + λI)⁻¹ Xᵀ Y` (Gauss-Jordan with partial pivoting).
pub fn ridge_regression(x: &Tensor, y: &Tensor, lambda: f32) -> Tensor {
    let d = x.shape()[1];
    let mut a = x.t_matmul(x); // [d, d]
    for i in 0..d {
        a.row_mut(i)[i] += lambda;
    }
    let b = x.t_matmul(y); // [d, m]
    solve_linear(&a, &b)
}

/// Solves `A X = B` for square `A` (`[d,d]`) and `B` (`[d,m]`).
pub fn solve_linear(a: &Tensor, b: &Tensor) -> Tensor {
    let d = a.shape()[0];
    assert_eq!(a.shape(), &[d, d]);
    assert_eq!(b.shape()[0], d);
    let m = b.shape()[1];
    // augmented system, row-major
    let mut aug = vec![0.0f64; d * (d + m)];
    for i in 0..d {
        for j in 0..d {
            aug[i * (d + m) + j] = a.at2(i, j) as f64;
        }
        for j in 0..m {
            aug[i * (d + m) + d + j] = b.at2(i, j) as f64;
        }
    }
    let w = d + m;
    for col in 0..d {
        // partial pivot
        let mut pivot = col;
        for r in col + 1..d {
            if aug[r * w + col].abs() > aug[pivot * w + col].abs() {
                pivot = r;
            }
        }
        if aug[pivot * w + col].abs() < 1e-12 {
            continue; // singular direction; leave as-is (ridge prevents this)
        }
        if pivot != col {
            for j in 0..w {
                aug.swap(col * w + j, pivot * w + j);
            }
        }
        let pv = aug[col * w + col];
        for j in col..w {
            aug[col * w + j] /= pv;
        }
        for r in 0..d {
            if r == col {
                continue;
            }
            let f = aug[r * w + col];
            if f == 0.0 {
                continue;
            }
            for j in col..w {
                aug[r * w + j] -= f * aug[col * w + j];
            }
        }
    }
    let mut out = Tensor::zeros(&[d, m]);
    for i in 0..d {
        for j in 0..m {
            out.row_mut(i)[j] = aug[i * w + d + j] as f32;
        }
    }
    out
}

/// JAPE's attribute-correlation channel: skip-gram-with-negative-sampling
/// over attribute co-occurrence (attributes of the same entity co-occur;
/// training-seed pairs merge the two entities' attribute sets, which is
/// what correlates the two schemas). Returns per-entity signatures
/// (mean of its attributes' embeddings) for both KGs.
pub fn attr_correlation_embeddings(input: &MethodInput<'_>, dim: usize) -> (Tensor, Tensor) {
    let mut rng = Rng::seed_from_u64(input.seed ^ 0xA77);
    let off = input.kg1.num_attributes();
    let n_attrs = off + input.kg2.num_attributes();
    // co-occurring attribute-id pairs
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let collect = |kg: &KnowledgeGraph, offset: usize, pairs: &mut Vec<(usize, usize)>| {
        for e in kg.entities() {
            let attrs: Vec<usize> =
                kg.attr_triples_of(e).map(|t| offset + t.attr.0 as usize).collect();
            for i in 0..attrs.len() {
                for j in 0..attrs.len() {
                    if i != j {
                        pairs.push((attrs[i], attrs[j]));
                    }
                }
            }
        }
    };
    collect(input.kg1, 0, &mut pairs);
    collect(input.kg2, off, &mut pairs);
    // cross-KG co-occurrence through merged training pairs
    for &(e1, e2) in &input.split.train {
        let a1: Vec<usize> = input.kg1.attr_triples_of(e1).map(|t| t.attr.0 as usize).collect();
        let a2: Vec<usize> =
            input.kg2.attr_triples_of(e2).map(|t| off + t.attr.0 as usize).collect();
        for &x in &a1 {
            for &y in &a2 {
                pairs.push((x, y));
                pairs.push((y, x));
            }
        }
    }
    // SGNS with manual gradients
    let mut emb = Tensor::rand_uniform(&[n_attrs.max(1), dim], -0.5, 0.5, &mut rng);
    let mut ctx = Tensor::rand_uniform(&[n_attrs.max(1), dim], -0.5, 0.5, &mut rng);
    let lr = 0.05f32;
    for _ in 0..3 {
        rng.shuffle(&mut pairs);
        for &(a, b) in &pairs {
            sgns_update(&mut emb, &mut ctx, a, b, true, lr);
            let neg = rng.below(n_attrs.max(1));
            sgns_update(&mut emb, &mut ctx, a, neg, false, lr);
        }
    }
    // entity signatures
    let sig = |kg: &KnowledgeGraph, offset: usize| -> Tensor {
        let mut t = Tensor::zeros(&[kg.num_entities(), dim]);
        for e in kg.entities() {
            let attrs: Vec<usize> =
                kg.attr_triples_of(e).map(|a| offset + a.attr.0 as usize).collect();
            if attrs.is_empty() {
                continue;
            }
            let inv = 1.0 / attrs.len() as f32;
            for &a in &attrs {
                for (o, &v) in t.row_mut(e.0 as usize).iter_mut().zip(emb.row(a)) {
                    *o += v * inv;
                }
            }
        }
        t
    };
    (sig(input.kg1, 0), sig(input.kg2, off))
}

fn sgns_update(emb: &mut Tensor, ctx: &mut Tensor, a: usize, b: usize, positive: bool, lr: f32) {
    let dot: f32 = emb.row(a).iter().zip(ctx.row(b)).map(|(&x, &y)| x * y).sum();
    let p = 1.0 / (1.0 + (-dot).exp());
    let g = if positive { p - 1.0 } else { p } * lr;
    let av: Vec<f32> = emb.row(a).to_vec();
    for (e, &c) in emb.row_mut(a).iter_mut().zip(ctx.row(b)) {
        *e -= g * c;
    }
    for (c, &e) in ctx.row_mut(b).iter_mut().zip(av.iter()) {
        *c -= g * e;
    }
}

/// Character-trigram hashed name embeddings — the stand-in for the GloVe /
/// fastText word vectors the literal baselines initialize from. Entities
/// with literally similar names land close; ciphered or Q-id names do not
/// (which is exactly the failure mode the paper demonstrates in Table V).
pub fn name_embeddings(kg: &KnowledgeGraph, dim: usize) -> Tensor {
    let mut out = Tensor::zeros(&[kg.num_entities(), dim]);
    for e in kg.entities() {
        let name = kg.entity_name(e).replace('_', " ").to_lowercase();
        let row = out.row_mut(e.0 as usize);
        let padded: Vec<char> = format!("^{name}$").chars().collect();
        let mut count = 0.0f32;
        for win in padded.windows(3) {
            let h = hash3(win);
            let idx = (h % dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            row[idx] += sign;
            count += 1.0;
        }
        if count > 0.0 {
            row.iter_mut().for_each(|v| *v /= count.sqrt());
        }
    }
    out
}

/// Word-identity hashed name embeddings — the stand-in for *word-level*
/// GloVe vectors (RDGCN/HGCN). Unlike the trigram features, a word that is
/// spelled even slightly differently gets an unrelated vector, reproducing
/// GloVe's out-of-vocabulary brittleness on proper names.
pub fn word_hash_embeddings(kg: &KnowledgeGraph, dim: usize) -> Tensor {
    let mut out = Tensor::zeros(&[kg.num_entities(), dim]);
    for e in kg.entities() {
        let name = kg.entity_name(e).replace('_', " ").to_lowercase();
        let row = out.row_mut(e.0 as usize);
        let mut count = 0.0f32;
        for word in name.split_whitespace() {
            let chars: Vec<char> = word.chars().collect();
            let h = hash3(&chars);
            // a few pseudo-random coordinates per word
            let mut state = h;
            for _ in 0..4 {
                state = state.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0x9E37);
                let idx = (state % dim as u64) as usize;
                let sign = if (state >> 63) == 0 { 1.0 } else { -1.0 };
                row[idx] += sign;
            }
            count += 1.0;
        }
        if count > 0.0 {
            row.iter_mut().for_each(|v| *v /= (count * 4.0).sqrt());
        }
    }
    out
}

fn hash3(win: &[char]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in win {
        h ^= c as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Attribute multi-hot features (GCN-Align's attribute channel): a shared
/// feature axis over the union of attribute names, 1 when the entity has
/// the attribute.
pub fn attr_multihot(kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) -> (Tensor, Tensor) {
    let width = kg1.num_attributes() + kg2.num_attributes();
    let build = |kg: &KnowledgeGraph, offset: usize| -> Tensor {
        let mut t = Tensor::zeros(&[kg.num_entities(), width]);
        for e in kg.entities() {
            for a in kg.attr_triples_of(e) {
                t.row_mut(e.0 as usize)[offset + a.attr.0 as usize] = 1.0;
            }
        }
        t
    };
    (build(kg1, 0), build(kg2, kg1.num_attributes()))
}

/// Levenshtein name-similarity matrix for the given source rows against
/// all KG2 entities (CEA's string feature).
pub fn name_similarity_matrix(
    kg1: &KnowledgeGraph,
    kg2: &KnowledgeGraph,
    src_rows: &[usize],
) -> Tensor {
    let m = kg2.num_entities();
    let names2: Vec<String> =
        kg2.entities().map(|e| kg2.entity_name(e).replace('_', " ").to_lowercase()).collect();
    let mut out = Tensor::zeros(&[src_rows.len(), m]);
    for (i, &r) in src_rows.iter().enumerate() {
        let n1 = kg1.entity_name(sdea_kg::EntityId(r as u32)).replace('_', " ").to_lowercase();
        let row = out.row_mut(i);
        for (j, n2) in names2.iter().enumerate() {
            // cheap length pre-filter: wildly different lengths can't be
            // similar; avoids the full DP in the common case
            let (l1, l2) = (n1.chars().count(), n2.chars().count());
            if l1.abs_diff(l2) * 2 > l1.max(l2) {
                continue;
            }
            row[j] = edit_similarity(&n1, n2) as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_kg::KgBuilder;

    #[test]
    fn solve_linear_identity() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]);
        let x = solve_linear(&a, &b);
        assert!((x.at2(0, 0) - 3.0).abs() < 1e-5);
        assert!((x.at2(1, 0) - 4.0).abs() < 1e-5);
    }

    #[test]
    fn solve_linear_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let a = Tensor::from_vec(vec![2.0, 1.0, 1.0, 3.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 10.0], &[2, 1]);
        let x = solve_linear(&a, &b);
        assert!((x.at2(0, 0) - 1.0).abs() < 1e-4, "{:?}", x.data());
        assert!((x.at2(1, 0) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn ridge_recovers_linear_map() {
        let mut rng = Rng::seed_from_u64(1);
        let x = Tensor::rand_normal(&[50, 4], 1.0, &mut rng);
        let m_true = Tensor::rand_normal(&[4, 4], 1.0, &mut rng);
        let y = x.matmul(&m_true);
        let m_hat = ridge_regression(&x, &y, 1e-4);
        for (a, b) in m_hat.data().iter().zip(m_true.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn name_embeddings_similar_names_close() {
        let mut b = KgBuilder::new();
        b.entity("Cristiano_Ronaldo");
        b.entity("Cristiano_Ronaldo_Jr");
        b.entity("Berlin");
        let kg = b.build();
        let e = name_embeddings(&kg, 64);
        let sim = sdea_eval::cosine_matrix(&e, &e);
        assert!(
            sim.at2(0, 1) > sim.at2(0, 2) + 0.2,
            "similar names should be closer: {} vs {}",
            sim.at2(0, 1),
            sim.at2(0, 2)
        );
    }

    #[test]
    fn attr_multihot_disjoint_columns() {
        let mut b1 = KgBuilder::new();
        b1.attr_triple("a", "name", "X");
        let kg1 = b1.build();
        let mut b2 = KgBuilder::new();
        b2.attr_triple("b", "label", "Y");
        let kg2 = b2.build();
        let (f1, f2) = attr_multihot(&kg1, &kg2);
        assert_eq!(f1.shape()[1], 2);
        assert_eq!(f1.row(0), &[1.0, 0.0]);
        assert_eq!(f2.row(0), &[0.0, 1.0]);
    }

    #[test]
    fn name_similarity_matrix_identity_names() {
        let mut b1 = KgBuilder::new();
        b1.entity("alpha");
        b1.entity("beta");
        let kg1 = b1.build();
        let mut b2 = KgBuilder::new();
        b2.entity("beta");
        b2.entity("alpha");
        let kg2 = b2.build();
        let sim = name_similarity_matrix(&kg1, &kg2, &[0, 1]);
        assert!((sim.at2(0, 1) - 1.0).abs() < 1e-6);
        assert!((sim.at2(1, 0) - 1.0).abs() < 1e-6);
        assert!(sim.at2(0, 0) < 0.6);
    }
}
