//! # sdea-baselines
//!
//! Re-implementations of the baseline entity-alignment methods the SDEA
//! paper compares against (Tables II–V), one representative per technique
//! family, all built on the same substrates as SDEA itself:
//!
//! * **TransE family** ([`transe`]): MTransE (separate spaces + learned
//!   linear mapping), JAPE-Stru (shared space + seed merging + negative
//!   sampling), JAPE (adds attribute-correlation embeddings), NAEA
//!   (neighbourhood-aware attention aggregation), BootEA (bootstrapped
//!   self-training), TransEdge (head-contextualized translations),
//!   IPTransE (2-hop path composition).
//! * **Path family** ([`rsn`]): RSN4EA-style GRU over cross-KG random
//!   walks ([`walks`]).
//! * **GNN family** ([`gnn`]): GCN (structure only), GCN-Align (adds an
//!   attribute channel), GAT-based MuGNN*/KECG* representatives, HMAN
//!   (GCN + attribute/relation feature FNN).
//! * **Literal family** ([`name_gcn`], [`cea`], [`bert_int`]):
//!   RDGCN*/HGCN* (name-initialized GCN, optionally with highway gates),
//!   CEA (structural + semantic + string features, with Gale–Shapley
//!   stable matching), BERT-INT* (name/attribute interaction on the same
//!   mini-LM SDEA uses).
//!
//! `*` marks simplified representatives: they reproduce the mechanism the
//! paper credits or blames for the method's behaviour, not every auxiliary
//! trick (DESIGN.md lists the simplifications).
//!
//! All methods implement [`method::AlignmentMethod`] so the bench harness
//! can sweep them uniformly.

#![forbid(unsafe_code)]

pub mod bert_int;
pub mod cea;
pub mod emb;
pub mod features;
pub mod gnn;
pub mod method;
pub mod name_gcn;
pub mod rsn;
pub mod transe;
pub mod walks;

pub use method::{AlignmentMethod, MethodInput};
