//! Transformer hyper-parameters.

/// Configuration of a [`crate::TransformerLm`].
///
/// Defaults are the paper's architecture scaled to CPU training: the paper
/// uses BERT-base (12 layers, hidden 768, max sequence length 128); we
/// default to 2 layers, hidden 128, max sequence length 64. The *structure*
/// (attention, residuals, `[CLS]` pooling, fine-tunability) is identical.
#[derive(Clone, Debug, PartialEq)]
pub struct LmConfig {
    /// Subword vocabulary size (including special tokens).
    pub vocab_size: usize,
    /// Hidden width of the encoder.
    pub hidden: usize,
    /// Number of encoder blocks.
    pub layers: usize,
    /// Number of attention heads (`hidden % heads == 0`).
    pub heads: usize,
    /// Feed-forward inner width.
    pub ffn: usize,
    /// Maximum (and fixed) input sequence length.
    pub max_seq: usize,
    /// Dropout probability used at training time.
    pub dropout: f32,
    /// LayerNorm epsilon.
    pub ln_eps: f32,
    /// Initialize each block's output projections (attention `W_o`, FFN
    /// `W_2`) near zero so the untrained encoder is residual-dominated —
    /// i.e. approximately a bag of token embeddings. A 12-layer published
    /// BERT checkpoint arrives with useful weights; a from-scratch small
    /// model must instead *start* harmless and let fine-tuning open the
    /// attention pathways (ReZero-style). See DESIGN.md.
    pub identity_residual_init: bool,
    /// Number of BERT-style segment (token-type) embeddings; `0` disables
    /// the table entirely — no `lm.seg_emb` parameter is registered and
    /// the forward pass is unchanged, so single-sequence encoders keep
    /// their historical parameter layout bit for bit. Cross-encoders use
    /// `2` (side a / side b of a pair).
    pub segments: usize,
}

impl LmConfig {
    /// The default CPU-scale configuration for a given vocabulary.
    pub fn small(vocab_size: usize) -> Self {
        LmConfig {
            vocab_size,
            hidden: 128,
            layers: 2,
            heads: 4,
            ffn: 256,
            max_seq: 64,
            dropout: 0.1,
            ln_eps: 1e-5,
            identity_residual_init: true,
            segments: 0,
        }
    }

    /// An even smaller config for unit tests.
    pub fn tiny(vocab_size: usize) -> Self {
        LmConfig {
            vocab_size,
            hidden: 32,
            layers: 1,
            heads: 2,
            ffn: 64,
            max_seq: 16,
            dropout: 0.0,
            ln_eps: 1e-5,
            identity_residual_init: true,
            segments: 0,
        }
    }

    /// Head width.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Validates internal consistency; call after manual edits.
    pub fn validate(&self) -> Result<(), String> {
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(format!("hidden {} not divisible by heads {}", self.hidden, self.heads));
        }
        if self.vocab_size < 5 {
            return Err("vocab must include the 5 special tokens".into());
        }
        if self.max_seq == 0 || self.layers == 0 {
            return Err("max_seq and layers must be positive".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(format!("dropout {} outside [0,1)", self.dropout));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        assert!(LmConfig::small(1000).validate().is_ok());
        assert!(LmConfig::tiny(100).validate().is_ok());
    }

    #[test]
    fn head_divisibility_checked() {
        let mut c = LmConfig::small(1000);
        c.heads = 5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_vocab_rejected() {
        assert!(LmConfig::small(3).validate().is_err());
    }
}
