//! Masked-language-model pre-training.
//!
//! This is how our substitute for "a pre-trained BERT" earns the adjective:
//! before SDEA ever sees seed alignments, the transformer is trained on a
//! corpus drawn from the benchmark world with the standard BERT objective —
//! 15 % of content tokens are selected; of those 80 % become `[MASK]`, 10 %
//! a random token, 10 % stay, and the model must recover the originals.

use crate::batch::TokenBatch;
use crate::model::TransformerLm;
use sdea_tensor::{
    init, Adam, BufferPool, GradClip, Graph, Optimizer, ParamId, ParamStore, Rng, Tensor,
};
use sdea_text::Vocab;
use std::rc::Rc;

/// Result of one pre-training run.
#[derive(Clone, Debug)]
pub struct MlmReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final masked-token prediction accuracy on the training stream.
    pub final_accuracy: f32,
}

/// Masked-LM pre-trainer. Owns the output head; the encoder weights live in
/// the shared store.
pub struct MlmPretrainer {
    head_w: ParamId,
    head_b: ParamId,
    mask_prob: f32,
    /// Recycles tape allocations across the sequential training steps.
    pool: Rc<BufferPool>,
}

impl MlmPretrainer {
    /// Registers the MLM output head (`hidden -> vocab`).
    pub fn new(lm: &TransformerLm, store: &mut ParamStore, rng: &mut Rng) -> Self {
        let d = lm.config().hidden;
        let v = lm.config().vocab_size;
        let head_w = store.add("mlm.head.w", init::xavier_uniform(&[d, v], rng));
        let head_b = store.add("mlm.head.b", Tensor::zeros(&[v]));
        MlmPretrainer { head_w, head_b, mask_prob: 0.15, pool: BufferPool::new() }
    }

    /// Applies BERT's corruption recipe to one encoded row. Returns the
    /// corrupted ids plus `(position, original_id)` supervision pairs.
    pub fn corrupt(
        &self,
        ids: &[u32],
        mask: &[u8],
        vocab: &Vocab,
        rng: &mut Rng,
    ) -> (Vec<u32>, Vec<(usize, u32)>) {
        let mut out = ids.to_vec();
        let mut targets = Vec::new();
        for (i, (&id, &m)) in ids.iter().zip(mask).enumerate() {
            if m == 0 || vocab.is_special(id) {
                continue;
            }
            if rng.next_f32() < self.mask_prob {
                targets.push((i, id));
                let roll = rng.next_f32();
                if roll < 0.8 {
                    out[i] = vocab.mask_id();
                } else if roll < 0.9 {
                    // random content token
                    let n_content = (vocab.len() - 5).max(1);
                    out[i] = 5 + rng.below(n_content) as u32;
                } // else: keep original
            }
        }
        (out, targets)
    }

    /// One training step over a batch of already-encoded rows; returns
    /// `(loss, #masked, #correct)`.
    pub fn step(
        &self,
        lm: &TransformerLm,
        store: &mut ParamStore,
        opt: &mut dyn Optimizer,
        rows: &[(Vec<u32>, Vec<u8>)],
        vocab: &Vocab,
        rng: &mut Rng,
    ) -> (f32, usize, usize) {
        // Corrupt each row.
        let mut corrupted = Vec::with_capacity(rows.len());
        let mut flat_targets: Vec<(usize, u32)> = Vec::new();
        let s = rows[0].0.len();
        for (ri, (ids, mask)) in rows.iter().enumerate() {
            let (c, t) = self.corrupt(ids, mask, vocab, rng);
            corrupted.push(sdea_text::Encoded { ids: c, mask: mask.clone() });
            flat_targets.extend(t.into_iter().map(|(p, orig)| (ri * s + p, orig)));
        }
        if flat_targets.is_empty() {
            return (0.0, 0, 0);
        }
        let batch = TokenBatch::from_encoded(&corrupted);
        let g = Graph::with_pool(Rc::clone(&self.pool));
        let hidden = lm.forward(&g, store, &batch, true, rng);
        let positions: Vec<usize> = flat_targets.iter().map(|&(p, _)| p).collect();
        let labels: Vec<usize> = flat_targets.iter().map(|&(_, t)| t as usize).collect();
        let picked = g.gather_rows(hidden, &positions);
        let w = g.param(store, self.head_w);
        let b = g.param(store, self.head_b);
        let logits = g.linear(picked, w, b);
        let logp = g.log_softmax_lastdim(logits);
        let loss = g.nll_mean(logp, &labels);
        let loss_val = g.value_cloned(loss).item();

        // accuracy before the update
        let correct = {
            let lp = g.value(logp);
            let v = lp.shape()[1];
            labels
                .iter()
                .enumerate()
                .filter(|&(i, &lab)| {
                    let row = &lp.data()[i * v..(i + 1) * v];
                    let argmax = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(j, _)| j)
                        .expect("non-empty row");
                    argmax == lab
                })
                .count()
        };

        g.backward(loss);
        g.accumulate_param_grads(store);
        opt.step(store);
        (loss_val, labels.len(), correct)
    }

    /// Full pre-training loop over a corpus of encoded id rows.
    ///
    /// `corpus` rows are `(ids, mask)` of a common fixed length. Rows are
    /// shuffled each epoch and consumed in minibatches of `batch_size`.
    pub fn pretrain(
        &self,
        lm: &TransformerLm,
        store: &mut ParamStore,
        corpus: &[(Vec<u32>, Vec<u8>)],
        vocab: &Vocab,
        epochs: usize,
        batch_size: usize,
        lr: f32,
        rng: &mut Rng,
    ) -> MlmReport {
        assert!(!corpus.is_empty(), "empty pre-training corpus");
        let mut opt = Adam::new(lr).with_clip(GradClip::GlobalNorm(1.0));
        let mut order: Vec<usize> = (0..corpus.len()).collect();
        let mut epoch_losses = Vec::with_capacity(epochs);
        let mut last_total = 0usize;
        let mut last_correct = 0usize;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            let mut steps = 0usize;
            let mut epoch_total = 0usize;
            let mut epoch_correct = 0usize;
            for chunk in order.chunks(batch_size) {
                let rows: Vec<(Vec<u32>, Vec<u8>)> =
                    chunk.iter().map(|&i| corpus[i].clone()).collect();
                let (loss, n, c) = self.step(lm, store, &mut opt, &rows, vocab, rng);
                epoch_loss += loss as f64;
                steps += 1;
                epoch_total += n;
                epoch_correct += c;
            }
            // An epoch that masked zero tokens (possible with an
            // all-special corpus or an unlucky final shuffle) carries no
            // accuracy signal: keep the last epoch that had one instead of
            // collapsing "no data" into "all wrong" (0.0).
            if epoch_total > 0 {
                last_total = epoch_total;
                last_correct = epoch_correct;
            }
            epoch_losses.push((epoch_loss / steps.max(1) as f64) as f32);
        }
        MlmReport { epoch_losses, final_accuracy: last_correct as f32 / last_total.max(1) as f32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LmConfig;
    use sdea_text::{Tokenizer, WordPieceTrainer};

    fn setup() -> (TransformerLm, ParamStore, Tokenizer, Rng) {
        let mut rng = Rng::seed_from_u64(42);
        let corpus = [
            "ronaldo plays for madrid",
            "madrid is in spain",
            "ronaldo was born in portugal",
            "portugal is a country",
        ];
        let vocab = WordPieceTrainer::new(120).train(corpus.iter().copied());
        let tok = Tokenizer::new(vocab);
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(LmConfig::tiny(tok.vocab().len()), &mut store, &mut rng);
        (lm, store, tok, rng)
    }

    #[test]
    fn corrupt_only_touches_content_tokens() {
        let (lm, mut store, tok, mut rng) = setup();
        let pre = MlmPretrainer::new(&lm, &mut store, &mut rng);
        let enc = tok.encode("ronaldo plays for madrid", 16);
        for _ in 0..20 {
            let (c, targets) = pre.corrupt(&enc.ids, &enc.mask, tok.vocab(), &mut rng);
            assert_eq!(c[0], tok.vocab().cls_id(), "[CLS] must never be corrupted");
            for &(p, orig) in &targets {
                assert_eq!(enc.ids[p], orig);
                assert!(!tok.vocab().is_special(orig));
            }
            // padding untouched
            for (i, (&ci, &m)) in c.iter().zip(&enc.mask).enumerate() {
                if m == 0 {
                    assert_eq!(ci, enc.ids[i]);
                }
            }
        }
    }

    #[test]
    fn pretraining_reduces_loss() {
        let (lm, mut store, tok, mut rng) = setup();
        let pre = MlmPretrainer::new(&lm, &mut store, &mut rng);
        let sentences = [
            "ronaldo plays for madrid",
            "madrid is in spain",
            "ronaldo was born in portugal",
            "portugal is a country",
            "spain is a country",
            "madrid plays in spain",
        ];
        let corpus: Vec<(Vec<u32>, Vec<u8>)> = sentences
            .iter()
            .map(|s| {
                let e = tok.encode(s, 12);
                (e.ids, e.mask)
            })
            .collect();
        let report = pre.pretrain(&lm, &mut store, &corpus, tok.vocab(), 30, 3, 3e-3, &mut rng);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first * 0.8, "MLM loss should drop: first {first}, last {last}");
        assert!(last.is_finite());
    }

    /// Regression: a final epoch that happens to mask zero tokens must not
    /// collapse `final_accuracy` to 0.0 — the report carries the last epoch
    /// that actually had maskable targets.
    #[test]
    fn final_accuracy_carries_last_nonempty_epoch() {
        // A one-word corpus: every maskable target is the same subword
        // sequence, so an overfitted model scores accuracy 1.0 on any
        // epoch that masks at least one token.
        let mut rng = Rng::seed_from_u64(5);
        let vocab = WordPieceTrainer::new(40).train(["a a a a a a a a"]);
        let tok = Tokenizer::new(vocab);
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(LmConfig::tiny(tok.vocab().len()), &mut store, &mut rng);
        let pre = MlmPretrainer::new(&lm, &mut store, &mut rng);
        let long = tok.encode("a a a a a a a a", 12);
        let warm = vec![(long.ids.clone(), long.mask.clone())];
        let report = pre.pretrain(&lm, &mut store, &warm, tok.vocab(), 40, 1, 1e-2, &mut rng);
        assert_eq!(report.final_accuracy, 1.0, "overfit warm-up should hit accuracy 1.0");
        // One maskable token per row: each epoch independently masks it
        // with p = 0.15, so a short run whose *last* epoch masked nothing
        // (loss exactly 0.0) while an earlier epoch did is easy to find by
        // scanning seeds. The run is deterministic per seed.
        let short = tok.encode("a", 12);
        let corpus = vec![(short.ids, short.mask)];
        let mut exercised = false;
        for seed in 0..200 {
            // Continued training on the same one-token objective (tiny lr,
            // at most one masked target per run) cannot unlearn the
            // overfit, so accuracy stays 1.0 on every non-empty epoch.
            let mut r = Rng::seed_from_u64(seed);
            let rep = pre.pretrain(&lm, &mut store, &corpus, tok.vocab(), 2, 1, 1e-4, &mut r);
            let (first, last) = (rep.epoch_losses[0], rep.epoch_losses[1]);
            if first > 0.0 && last == 0.0 {
                // Old code reported 0/max(0,1) = 0.0 here; the carried
                // accuracy of the non-empty first epoch is 1.0.
                assert_eq!(
                    rep.final_accuracy, 1.0,
                    "seed {seed}: empty final epoch must carry the non-empty one"
                );
                exercised = true;
                break;
            }
        }
        assert!(exercised, "no seed in 0..200 produced a non-empty-then-empty epoch pair");
    }
}
