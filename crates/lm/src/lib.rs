//! # sdea-lm
//!
//! A from-scratch, pre-trainable transformer encoder — the stand-in for the
//! pre-trained BERT the SDEA paper builds on.
//!
//! The model is architecturally a (small) BERT: learned token + position
//! embeddings, stacked blocks of multi-head self-attention and GELU
//! feed-forward with residuals and LayerNorm, and a `[CLS]` pooled output.
//! It supports:
//!
//! * **masked-LM pre-training** ([`mlm::MlmPretrainer`]) on a corpus, which
//!   plays the role of the public BERT checkpoint, and
//! * **fine-tuning** end-to-end through [`model::TransformerLm::forward`] —
//!   exactly what SDEA's attribute embedding module does (paper Alg. 2).
//!
//! Capacity defaults are scaled for CPU training (2 layers, 128 hidden);
//! everything is configurable via [`config::LmConfig`].

#![forbid(unsafe_code)]

pub mod batch;
pub mod config;
pub mod mlm;
pub mod model;

pub use batch::TokenBatch;
pub use config::LmConfig;
pub use mlm::MlmPretrainer;
pub use model::TransformerLm;
