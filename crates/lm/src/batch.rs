//! Fixed-shape token batches and the attention padding mask.

use sdea_tensor::Tensor;
use sdea_text::{Encoded, EncodedPair};

/// A `[b, s]` batch of token ids with padding masks, ready for
/// [`crate::TransformerLm::forward`].
#[derive(Clone, Debug, PartialEq)]
pub struct TokenBatch {
    /// Flattened ids, row-major `[b * s]`.
    pub ids: Vec<u32>,
    /// Flattened mask (1 = real token), `[b * s]`.
    pub mask: Vec<u8>,
    /// Flattened segment (token-type) ids, `[b * s]`; all zero for
    /// single-sequence batches. Only consumed when the model's
    /// `LmConfig::segments > 0`.
    pub segments: Vec<u8>,
    /// Batch size.
    pub b: usize,
    /// Sequence length.
    pub s: usize,
}

impl TokenBatch {
    /// Builds a batch from encoded sequences (all must share `s`).
    pub fn from_encoded(rows: &[Encoded]) -> Self {
        assert!(!rows.is_empty(), "empty batch");
        let s = rows[0].ids.len();
        let b = rows.len();
        let mut ids = Vec::with_capacity(b * s);
        let mut mask = Vec::with_capacity(b * s);
        for r in rows {
            assert_eq!(r.ids.len(), s, "ragged batch");
            ids.extend_from_slice(&r.ids);
            mask.extend_from_slice(&r.mask);
        }
        TokenBatch { ids, mask, segments: vec![0; b * s], b, s }
    }

    /// Builds a batch from encoded pairs (all must share `s`), carrying
    /// their segment vectors.
    pub fn from_encoded_pairs(rows: &[EncodedPair]) -> Self {
        assert!(!rows.is_empty(), "empty batch");
        let s = rows[0].ids.len();
        let b = rows.len();
        let mut ids = Vec::with_capacity(b * s);
        let mut mask = Vec::with_capacity(b * s);
        let mut segments = Vec::with_capacity(b * s);
        for r in rows {
            assert_eq!(r.ids.len(), s, "ragged batch");
            ids.extend_from_slice(&r.ids);
            mask.extend_from_slice(&r.mask);
            segments.extend_from_slice(&r.segments);
        }
        TokenBatch { ids, mask, segments, b, s }
    }

    /// Segment ids as usize indices (for the segment-embedding gather).
    pub fn segment_indices(&self) -> Vec<usize> {
        self.segments.iter().map(|&i| i as usize).collect()
    }

    /// Token ids as usize indices (for embedding gathers).
    pub fn ids_usize(&self) -> Vec<usize> {
        self.ids.iter().map(|&i| i as usize).collect()
    }

    /// Position indices `0..s` repeated per row.
    pub fn position_indices(&self) -> Vec<usize> {
        (0..self.b).flat_map(|_| 0..self.s).collect()
    }

    /// Indices (into the flattened `[b*s]` axis) of each row's `[CLS]`.
    pub fn cls_indices(&self) -> Vec<usize> {
        (0..self.b).map(|i| i * self.s).collect()
    }

    /// Additive attention mask of shape `[b*heads, s, s]`: `0` where the key
    /// position is real, `-1e9` where it is padding. Broadcast over query
    /// positions and heads by materialization (sizes here are small).
    pub fn attention_bias(&self, heads: usize) -> Tensor {
        let (b, s) = (self.b, self.s);
        let mut data = vec![0.0f32; b * heads * s * s];
        for bi in 0..b {
            let row_mask = &self.mask[bi * s..(bi + 1) * s];
            for h in 0..heads {
                let base = (bi * heads + h) * s * s;
                for q in 0..s {
                    let off = base + q * s;
                    for (k, &m) in row_mask.iter().enumerate() {
                        if m == 0 {
                            data[off + k] = -1e9;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(data, &[b * heads, s, s])
    }

    /// Per-position real-token mask as a `[b*s]` float vector.
    pub fn mask_f32(&self) -> Vec<f32> {
        self.mask.iter().map(|&m| m as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(ids: Vec<u32>, real: usize) -> Encoded {
        let mut mask = vec![0u8; ids.len()];
        mask[..real].iter_mut().for_each(|m| *m = 1);
        Encoded { ids, mask }
    }

    #[test]
    fn from_encoded_flattens() {
        let b = TokenBatch::from_encoded(&[enc(vec![2, 7, 0], 2), enc(vec![2, 8, 9], 3)]);
        assert_eq!(b.b, 2);
        assert_eq!(b.s, 3);
        assert_eq!(b.ids, vec![2, 7, 0, 2, 8, 9]);
        assert_eq!(b.cls_indices(), vec![0, 3]);
    }

    #[test]
    fn attention_bias_blocks_padding_keys() {
        let b = TokenBatch::from_encoded(&[enc(vec![2, 7, 0], 2)]);
        let bias = b.attention_bias(2);
        assert_eq!(bias.shape(), &[2, 3, 3]);
        // For every head and query, key 2 (padding) must be -1e9.
        for head in 0..2 {
            for q in 0..3 {
                let base = head * 9 + q * 3;
                assert_eq!(bias.data()[base], 0.0);
                assert_eq!(bias.data()[base + 1], 0.0);
                assert_eq!(bias.data()[base + 2], -1e9);
            }
        }
    }

    #[test]
    fn position_indices_repeat() {
        let b = TokenBatch::from_encoded(&[enc(vec![2, 1], 2), enc(vec![2, 1], 2)]);
        assert_eq!(b.position_indices(), vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_rejected() {
        let _ = TokenBatch::from_encoded(&[enc(vec![2, 1], 2), enc(vec![2], 1)]);
    }
}
