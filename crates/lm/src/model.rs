//! The transformer encoder model.

use crate::batch::TokenBatch;
use crate::config::LmConfig;
use sdea_tensor::{init, Graph, ParamId, ParamStore, Rng, Tensor, Var};

/// Parameters of one encoder block.
#[derive(Clone, Debug)]
struct BlockParams {
    wq: ParamId,
    bq: ParamId,
    wk: ParamId,
    bk: ParamId,
    wv: ParamId,
    bv: ParamId,
    wo: ParamId,
    bo: ParamId,
    ln1_gain: ParamId,
    ln1_bias: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    ln2_gain: ParamId,
    ln2_bias: ParamId,
}

/// A BERT-style transformer encoder whose weights live in an external
/// [`ParamStore`] (so callers can co-train extra heads, checkpoint, or
/// freeze the whole model).
#[derive(Clone, Debug)]
pub struct TransformerLm {
    cfg: LmConfig,
    tok_emb: ParamId,
    pos_emb: ParamId,
    /// Segment (token-type) table, only when `cfg.segments > 0`.
    seg_emb: Option<ParamId>,
    emb_gain: ParamId,
    emb_bias: ParamId,
    blocks: Vec<BlockParams>,
}

impl TransformerLm {
    /// Registers all model weights into `store` and returns the model.
    pub fn new(cfg: LmConfig, store: &mut ParamStore, rng: &mut Rng) -> Self {
        cfg.validate().expect("invalid LmConfig");
        let d = cfg.hidden;
        // In identity-residual mode token embeddings carry the signal, so
        // they start at unit-ish scale and position embeddings start small
        // (they would otherwise swamp token identity under mean pooling).
        let (tok_init, pos_init) = if cfg.identity_residual_init {
            (
                Tensor::rand_normal(&[cfg.vocab_size, d], 1.0 / (d as f32).sqrt(), rng),
                Tensor::rand_normal(&[cfg.max_seq, d], 0.02 / (d as f32).sqrt(), rng),
            )
        } else {
            (
                init::bert_normal(&[cfg.vocab_size, d], rng),
                init::bert_normal(&[cfg.max_seq, d], rng),
            )
        };
        let tok_emb = store.add("lm.tok_emb", tok_init);
        let pos_emb = store.add("lm.pos_emb", pos_init);
        let emb_gain = store.add("lm.emb_ln.gain", Tensor::ones(&[d]));
        let emb_bias = store.add("lm.emb_ln.bias", Tensor::zeros(&[d]));
        // Registered after the embedding LayerNorm params so the rng draw
        // sequence for tok/pos is unchanged when segments == 0, keeping the
        // historical single-sequence parameter layout bit for bit.
        let seg_emb = (cfg.segments > 0).then(|| {
            let seg_init = if cfg.identity_residual_init {
                Tensor::rand_normal(&[cfg.segments, d], 0.02 / (d as f32).sqrt(), rng)
            } else {
                init::bert_normal(&[cfg.segments, d], rng)
            };
            store.add("lm.seg_emb", seg_init)
        });
        let out_scale = if cfg.identity_residual_init { 0.02 } else { 1.0 };
        let blocks = (0..cfg.layers)
            .map(|l| BlockParams {
                wq: store.add(format!("lm.{l}.wq"), init::xavier_uniform(&[d, d], rng)),
                bq: store.add(format!("lm.{l}.bq"), Tensor::zeros(&[d])),
                wk: store.add(format!("lm.{l}.wk"), init::xavier_uniform(&[d, d], rng)),
                bk: store.add(format!("lm.{l}.bk"), Tensor::zeros(&[d])),
                wv: store.add(format!("lm.{l}.wv"), init::xavier_uniform(&[d, d], rng)),
                bv: store.add(format!("lm.{l}.bv"), Tensor::zeros(&[d])),
                wo: store
                    .add(format!("lm.{l}.wo"), init::xavier_uniform(&[d, d], rng).scale(out_scale)),
                bo: store.add(format!("lm.{l}.bo"), Tensor::zeros(&[d])),
                ln1_gain: store.add(format!("lm.{l}.ln1.gain"), Tensor::ones(&[d])),
                ln1_bias: store.add(format!("lm.{l}.ln1.bias"), Tensor::zeros(&[d])),
                w1: store.add(format!("lm.{l}.ffn.w1"), init::xavier_uniform(&[d, cfg.ffn], rng)),
                b1: store.add(format!("lm.{l}.ffn.b1"), Tensor::zeros(&[cfg.ffn])),
                w2: store.add(
                    format!("lm.{l}.ffn.w2"),
                    init::xavier_uniform(&[cfg.ffn, d], rng).scale(out_scale),
                ),
                b2: store.add(format!("lm.{l}.ffn.b2"), Tensor::zeros(&[d])),
                ln2_gain: store.add(format!("lm.{l}.ln2.gain"), Tensor::ones(&[d])),
                ln2_bias: store.add(format!("lm.{l}.ln2.bias"), Tensor::zeros(&[d])),
            })
            .collect();
        TransformerLm { cfg, tok_emb, pos_emb, seg_emb, emb_gain, emb_bias, blocks }
    }

    /// The model's configuration.
    pub fn config(&self) -> &LmConfig {
        &self.cfg
    }

    /// Parameter id of the token embedding table.
    pub fn token_embedding_id(&self) -> ParamId {
        self.tok_emb
    }

    /// Parameter id of the position embedding table.
    pub fn position_embedding_id(&self) -> ParamId {
        self.pos_emb
    }

    /// Marks every LM weight trainable (`true`) or frozen (`false`). SDEA
    /// freezes the LM after the attribute-module pre-training stage.
    pub fn set_trainable(&self, store: &mut ParamStore, trainable: bool) {
        for id in self.all_param_ids() {
            store.set_trainable(id, trainable);
        }
    }

    /// All parameter ids of the model in registration order.
    pub fn all_param_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.tok_emb, self.pos_emb, self.emb_gain, self.emb_bias];
        ids.extend(self.seg_emb);
        for b in &self.blocks {
            ids.extend_from_slice(&[
                b.wq, b.bq, b.wk, b.bk, b.wv, b.bv, b.wo, b.bo, b.ln1_gain, b.ln1_bias, b.w1, b.b1,
                b.w2, b.b2, b.ln2_gain, b.ln2_bias,
            ]);
        }
        ids
    }

    /// Encodes a batch; returns the final hidden states as `[b*s, hidden]`.
    pub fn forward(
        &self,
        g: &Graph,
        store: &ParamStore,
        batch: &TokenBatch,
        training: bool,
        rng: &mut Rng,
    ) -> Var {
        self.forward_layers(g, store, batch, training, rng).1
    }

    /// Like [`TransformerLm::forward`] but also returns the embedding-layer
    /// output (post-LayerNorm, pre-blocks). Callers that need an
    /// identity-preserving signal (e.g. lexical pooling on top of an
    /// MLM-trained encoder) can mix the two.
    pub fn forward_layers(
        &self,
        g: &Graph,
        store: &ParamStore,
        batch: &TokenBatch,
        training: bool,
        rng: &mut Rng,
    ) -> (Var, Var) {
        let cfg = &self.cfg;
        assert!(batch.s <= cfg.max_seq, "sequence {} exceeds max {}", batch.s, cfg.max_seq);
        let (b, s, h) = (batch.b, batch.s, cfg.heads);

        // Embeddings
        let tok_table = g.param(store, self.tok_emb);
        let pos_table = g.param(store, self.pos_emb);
        let tok = g.gather_rows(tok_table, &batch.ids_usize());
        let pos = g.gather_rows(pos_table, &batch.position_indices());
        let mut x = g.add(tok, pos);
        if let Some(seg) = self.seg_emb {
            let seg_table = g.param(store, seg);
            let segv = g.gather_rows(seg_table, &batch.segment_indices());
            x = g.add(x, segv);
        }
        let eg = g.param(store, self.emb_gain);
        let eb = g.param(store, self.emb_bias);
        x = g.layer_norm(x, eg, eb, cfg.ln_eps);
        x = g.dropout(x, cfg.dropout, training, rng);
        let embedded = x;

        // The additive attention mask stays off the tape: the fused
        // softmax nodes share one copy of it behind an Rc.
        let bias = std::rc::Rc::new(batch.attention_bias(h));
        let scale = 1.0 / (cfg.head_dim() as f32).sqrt();

        for blk in &self.blocks {
            // --- multi-head self-attention (fused score + mask-softmax) ---
            let q = self.linear(g, store, x, blk.wq, blk.bq);
            let k = self.linear(g, store, x, blk.wk, blk.bk);
            let v = self.linear(g, store, x, blk.wv, blk.bv);
            let qh = g.split_heads(q, b, s, h);
            let kh = g.split_heads(k, b, s, h);
            let vh = g.split_heads(v, b, s, h);
            let scores = g.scaled_bmm_nt(qh, kh, scale);
            let attn = g.softmax_bias_lastdim(scores, &bias);
            let attn = g.dropout(attn, cfg.dropout, training, rng);
            let ctx = g.bmm(attn, vh);
            let merged = g.merge_heads(ctx, b, s, h);
            let proj = self.linear(g, store, merged, blk.wo, blk.bo);
            let proj = g.dropout(proj, cfg.dropout, training, rng);
            let g1 = g.param(store, blk.ln1_gain);
            let b1v = g.param(store, blk.ln1_bias);
            x = g.add_layer_norm(x, proj, g1, b1v, cfg.ln_eps);

            // --- feed-forward (fused residual layer-norm) ---
            let f1 = self.linear(g, store, x, blk.w1, blk.b1);
            let act = g.gelu(f1);
            let f2 = self.linear(g, store, act, blk.w2, blk.b2);
            let f2 = g.dropout(f2, cfg.dropout, training, rng);
            let g2 = g.param(store, blk.ln2_gain);
            let b2v = g.param(store, blk.ln2_bias);
            x = g.add_layer_norm(x, f2, g2, b2v, cfg.ln_eps);
        }
        (embedded, x)
    }

    /// Extracts the `[CLS]` hidden state per sequence: `[b, hidden]`
    /// (paper Eq. 6: `C(e_i)`).
    pub fn cls_states(&self, g: &Graph, hidden: Var, batch: &TokenBatch) -> Var {
        g.gather_rows(hidden, &batch.cls_indices())
    }

    fn linear(&self, g: &Graph, store: &ParamStore, x: Var, w: ParamId, b: ParamId) -> Var {
        let wv = g.param(store, w);
        let bv = g.param(store, b);
        g.linear(x, wv, bv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_text::Encoded;

    fn toy_batch(s: usize) -> TokenBatch {
        let enc1 = Encoded { ids: (0..s as u32).map(|i| 2 + i % 8).collect(), mask: vec![1; s] };
        let mut ids2: Vec<u32> = (0..s as u32).map(|i| 2 + (i + 3) % 8).collect();
        let mut mask2 = vec![1u8; s];
        for i in s / 2..s {
            ids2[i] = 0;
            mask2[i] = 0;
        }
        TokenBatch::from_encoded(&[enc1, Encoded { ids: ids2, mask: mask2 }])
    }

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(LmConfig::tiny(32), &mut store, &mut rng);
        let batch = toy_batch(8);
        let g = Graph::new();
        let h = lm.forward(&g, &store, &batch, false, &mut rng);
        assert_eq!(g.value(h).shape(), &[16, 32]);
        let cls = lm.cls_states(&g, h, &batch);
        assert_eq!(g.value(cls).shape(), &[2, 32]);
    }

    #[test]
    fn forward_is_deterministic_in_eval_mode() {
        let mut rng = Rng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(LmConfig::tiny(32), &mut store, &mut rng);
        let batch = toy_batch(8);
        let out1 = {
            let g = Graph::new();
            let h = lm.forward(&g, &store, &batch, false, &mut rng);
            g.value_cloned(h)
        };
        let out2 = {
            let g = Graph::new();
            let h = lm.forward(&g, &store, &batch, false, &mut rng);
            g.value_cloned(h)
        };
        assert_eq!(out1, out2);
    }

    #[test]
    fn padding_does_not_affect_real_positions() {
        // Same first row, second row differs only in padded region content.
        let mut rng = Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(LmConfig::tiny(32), &mut store, &mut rng);
        let mk = |pad_id: u32| {
            let ids = vec![2, 7, 8, pad_id];
            let mask = vec![1, 1, 1, 0];
            TokenBatch::from_encoded(&[Encoded { ids, mask }])
        };
        let ga = Graph::new();
        let ha = lm.forward(&ga, &store, &mk(0), false, &mut rng);
        let gb = Graph::new();
        let hb = lm.forward(&gb, &store, &mk(9), false, &mut rng);
        let a = ga.value_cloned(lm.cls_states(&ga, ha, &mk(0)));
        let b = gb.value_cloned(lm.cls_states(&gb, hb, &mk(9)));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5, "CLS changed with padded content: {x} vs {y}");
        }
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut rng = Rng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(LmConfig::tiny(32), &mut store, &mut rng);
        let batch = toy_batch(8);
        let g = Graph::new();
        let h = lm.forward(&g, &store, &batch, true, &mut rng);
        let cls = lm.cls_states(&g, h, &batch);
        let loss = g.mean_all(g.square(cls));
        g.backward(loss);
        let n = g.accumulate_param_grads(&mut store);
        assert_eq!(n, lm.all_param_ids().len(), "every LM param should receive grad");
        assert!(store.grad_norm() > 0.0);
        assert!(store.grad_norm().is_finite());
    }

    #[test]
    fn segment_embeddings_gate_on_config() {
        let mut rng = Rng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(LmConfig::tiny(32), &mut store, &mut rng);
        // segments == 0: no table registered, historical layout intact.
        assert!(store.ids().all(|id| store.name(id) != "lm.seg_emb"));
        assert_eq!(lm.all_param_ids().len(), store.ids().count());

        let mut cfg = LmConfig::tiny(32);
        cfg.segments = 2;
        let mut store2 = ParamStore::new();
        let lm2 = TransformerLm::new(cfg, &mut store2, &mut rng);
        assert!(store2.ids().any(|id| store2.name(id) == "lm.seg_emb"));
        assert_eq!(lm2.all_param_ids().len(), store2.ids().count());

        // The segment assignment must change the encoding.
        let mut batch = toy_batch(8);
        let out0 = {
            let g = Graph::new();
            let h = lm2.forward(&g, &store2, &batch, false, &mut rng);
            g.value_cloned(lm2.cls_states(&g, h, &batch))
        };
        for s in &mut batch.segments[4..8] {
            *s = 1;
        }
        let out1 = {
            let g = Graph::new();
            let h = lm2.forward(&g, &store2, &batch, false, &mut rng);
            g.value_cloned(lm2.cls_states(&g, h, &batch))
        };
        assert_ne!(out0, out1, "segment ids should alter the encoding");
    }

    #[test]
    fn freeze_unfreeze_toggles() {
        let mut rng = Rng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let lm = TransformerLm::new(LmConfig::tiny(32), &mut store, &mut rng);
        lm.set_trainable(&mut store, false);
        assert!(lm.all_param_ids().iter().all(|&id| !store.is_trainable(id)));
        lm.set_trainable(&mut store, true);
        assert!(lm.all_param_ids().iter().all(|&id| store.is_trainable(id)));
    }
}
