//! Integration tests for the mini-LM: pre-train on a synthetic corpus and
//! verify the learned model behaves like a language model.

use sdea_lm::{LmConfig, MlmPretrainer, TokenBatch, TransformerLm};
use sdea_tensor::{ParamStore, Rng};
use sdea_text::{Tokenizer, WordPieceTrainer};

fn corpus() -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..40 {
        out.push(format!("player p{i} plays for club c{}", i % 5));
        out.push(format!("club c{} is located in city t{}", i % 5, i % 3));
        out.push(format!("player p{i} was born in city t{}", i % 3));
    }
    out
}

#[test]
fn pretraining_beats_chance_on_masked_tokens() {
    let mut rng = Rng::seed_from_u64(3);
    let corpus = corpus();
    let vocab = WordPieceTrainer::new(260).train(corpus.iter().map(|s| s.as_str()));
    let tok = Tokenizer::new(vocab);
    let mut store = ParamStore::new();
    let mut cfg = LmConfig::tiny(tok.vocab().len());
    cfg.max_seq = 16;
    cfg.identity_residual_init = false; // plain BERT-style init for MLM
    let lm = TransformerLm::new(cfg, &mut store, &mut rng);
    let rows: Vec<(Vec<u32>, Vec<u8>)> = corpus
        .iter()
        .map(|s| {
            let e = tok.encode(s, 16);
            (e.ids, e.mask)
        })
        .collect();
    let pre = MlmPretrainer::new(&lm, &mut store, &mut rng);
    let report = pre.pretrain(&lm, &mut store, &rows, tok.vocab(), 12, 8, 3e-3, &mut rng);
    let chance = 1.0 / tok.vocab().len() as f32;
    assert!(
        report.final_accuracy > 20.0 * chance,
        "MLM accuracy {:.3} vs chance {:.4}",
        report.final_accuracy,
        chance
    );
    assert!(
        report.epoch_losses.last().unwrap() < &report.epoch_losses[0],
        "losses {:?}",
        report.epoch_losses
    );
}

#[test]
fn identity_residual_init_preserves_token_identity() {
    // With identity-residual init, mean-pooled outputs of two sequences
    // sharing most tokens must be closer than two unrelated sequences —
    // before any training at all.
    let mut rng = Rng::seed_from_u64(5);
    let corpus = corpus();
    let vocab = WordPieceTrainer::new(260).train(corpus.iter().map(|s| s.as_str()));
    let tok = Tokenizer::new(vocab);
    let mut store = ParamStore::new();
    let mut cfg = LmConfig::tiny(tok.vocab().len());
    cfg.max_seq = 16;
    let lm = TransformerLm::new(cfg, &mut store, &mut rng);

    let embed = |text: &str, rng: &mut Rng| {
        let e = tok.encode(text, 16);
        let batch = TokenBatch::from_encoded(&[e]);
        let g = sdea_tensor::Graph::new();
        let h = lm.forward(&g, &store, &batch, false, rng);
        // masked mean over real positions
        let v = g.value_cloned(h);
        let real: Vec<usize> =
            batch.mask.iter().enumerate().filter(|(_, &m)| m == 1).map(|(i, _)| i).collect();
        let d = v.shape()[1];
        let mut mean = vec![0.0f32; d];
        for &i in &real {
            for (m, &x) in mean.iter_mut().zip(v.row(i)) {
                *m += x / real.len() as f32;
            }
        }
        mean
    };
    let cos = |a: &[f32], b: &[f32]| {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb)
    };
    let mut r = Rng::seed_from_u64(9);
    let a = embed("player p1 plays for club c1", &mut r);
    let b = embed("player p1 born for club c1", &mut r);
    let c = embed("zzz qqq xyzzy unrelated gibberish", &mut r);
    assert!(
        cos(&a, &b) > cos(&a, &c) + 0.1,
        "shared tokens should dominate: sim(a,b)={:.3} sim(a,c)={:.3}",
        cos(&a, &b),
        cos(&a, &c)
    );
}
