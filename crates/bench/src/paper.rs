//! The paper's reported numbers (Tables III–V), used to print
//! paper-vs-measured comparisons. Values are Hits@1 percentages.

/// One paper row: method name and H@1 per dataset column.
pub struct PaperRow {
    /// Method name.
    pub method: &'static str,
    /// H@1 (%) per dataset; `None` where the paper leaves the cell empty.
    pub h1: &'static [Option<f64>],
}

/// Table III (DBP15K): columns ZH-EN, JA-EN, FR-EN.
pub const TABLE3: &[PaperRow] = &[
    PaperRow { method: "MTransE", h1: &[Some(20.9), Some(25.0), Some(24.7)] },
    PaperRow { method: "JAPE-Stru", h1: &[Some(37.2), Some(32.9), Some(29.3)] },
    PaperRow { method: "JAPE", h1: &[Some(41.4), Some(36.5), Some(31.8)] },
    PaperRow { method: "NAEA", h1: &[Some(38.5), Some(35.3), Some(30.8)] },
    PaperRow { method: "BootEA", h1: &[Some(61.4), Some(57.3), Some(58.5)] },
    PaperRow { method: "TransEdge", h1: &[Some(75.3), Some(74.6), Some(77.0)] },
    PaperRow { method: "IPTransE", h1: &[Some(33.2), Some(29.0), Some(24.5)] },
    PaperRow { method: "RSN4EA", h1: &[Some(58.0), Some(57.4), Some(61.2)] },
    PaperRow { method: "GCN", h1: &[Some(39.8), Some(40.0), Some(38.9)] },
    PaperRow { method: "GCN-Align", h1: &[Some(43.4), Some(42.7), Some(41.1)] },
    PaperRow { method: "MuGNN*", h1: &[Some(47.0), Some(48.3), Some(49.1)] },
    PaperRow { method: "KECG*", h1: &[Some(47.7), Some(49.2), Some(48.5)] },
    PaperRow { method: "HMAN", h1: &[Some(56.1), Some(55.7), Some(55.0)] },
    PaperRow { method: "RDGCN*", h1: &[Some(69.7), Some(76.3), Some(87.3)] },
    PaperRow { method: "HGCN*", h1: &[Some(70.8), Some(75.8), Some(88.8)] },
    PaperRow { method: "CEA (Emb)", h1: &[Some(71.9), Some(78.5), Some(92.8)] },
    PaperRow { method: "CEA", h1: &[Some(78.7), Some(86.3), Some(97.2)] },
    PaperRow { method: "BERT-INT*", h1: &[Some(81.4), Some(80.6), Some(98.7)] },
    PaperRow { method: "SDEA", h1: &[Some(87.0), Some(84.8), Some(96.9)] },
    PaperRow { method: "SDEA w/o rel.", h1: &[Some(84.8), Some(79.0), Some(96.4)] },
];

/// Table IV (SRPRS): columns EN-FR, EN-DE, DBP-WD, DBP-YG.
pub const TABLE4: &[PaperRow] = &[
    PaperRow { method: "MTransE", h1: &[Some(21.3), Some(10.7), Some(18.8), Some(19.6)] },
    PaperRow { method: "JAPE-Stru", h1: &[Some(24.1), Some(30.2), Some(21.0), Some(21.5)] },
    PaperRow { method: "JAPE", h1: &[Some(24.1), Some(26.8), Some(21.2), Some(19.3)] },
    PaperRow { method: "NAEA", h1: &[Some(17.7), Some(30.7), Some(18.2), Some(19.5)] },
    PaperRow { method: "BootEA", h1: &[Some(36.5), Some(50.3), Some(38.4), Some(38.1)] },
    PaperRow { method: "TransEdge", h1: &[Some(40.0), Some(55.6), Some(46.1), Some(44.3)] },
    PaperRow { method: "IPTransE", h1: &[Some(12.4), Some(13.5), Some(10.1), Some(10.3)] },
    PaperRow { method: "RSN4EA", h1: &[Some(35.0), Some(48.4), Some(39.1), Some(39.3)] },
    PaperRow { method: "GCN", h1: &[Some(24.3), Some(38.5), Some(29.1), Some(31.9)] },
    PaperRow { method: "GCN-Align", h1: &[Some(29.6), Some(42.8), Some(32.7), Some(34.7)] },
    PaperRow { method: "MuGNN*", h1: &[Some(13.1), Some(24.5), Some(15.1), Some(17.5)] },
    PaperRow { method: "KECG*", h1: &[Some(29.8), Some(44.4), Some(32.3), Some(35.0)] },
    PaperRow { method: "HMAN", h1: &[Some(40.0), Some(52.8), Some(43.3), Some(46.1)] },
    PaperRow { method: "RDGCN*", h1: &[Some(67.2), Some(77.9), Some(97.4), Some(99.0)] },
    PaperRow { method: "HGCN*", h1: &[Some(67.0), Some(76.3), Some(98.9), Some(99.1)] },
    PaperRow { method: "CEA (Emb)", h1: &[Some(93.3), Some(94.5), Some(99.9), Some(99.9)] },
    PaperRow { method: "CEA", h1: &[Some(96.2), Some(97.1), Some(100.0), Some(100.0)] },
    PaperRow { method: "BERT-INT*", h1: &[Some(97.1), Some(98.6), Some(99.6), Some(100.0)] },
    PaperRow { method: "SDEA", h1: &[Some(96.6), Some(96.8), Some(98.0), Some(99.9)] },
    PaperRow { method: "SDEA w/o rel.", h1: &[Some(95.6), Some(95.7), Some(97.9), Some(99.9)] },
];

/// Table V (OpenEA): columns D_W_15K_V1, D_W_100K_V1.
pub const TABLE5: &[PaperRow] = &[
    PaperRow { method: "CEA (Emb)", h1: &[Some(14.9), Some(25.1)] },
    PaperRow { method: "CEA", h1: &[Some(19.0), Some(44.5)] },
    PaperRow { method: "BERT-INT*", h1: &[Some(0.6), Some(0.0)] },
    PaperRow { method: "SDEA", h1: &[Some(65.1), Some(57.1)] },
    PaperRow { method: "SDEA w/o rel.", h1: &[Some(58.2), Some(52.0)] },
];

/// Paper Table VI: degree-bucket proportions (1..3, 1..5, 1..10) in %.
pub const TABLE6: &[(&str, [f64; 3])] = &[
    ("ZH-EN", [30.0, 46.9, 78.5]),
    ("JA-EN", [28.8, 44.0, 76.8]),
    ("FR-EN", [23.1, 33.4, 63.6]),
    ("EN-FR", [69.9, 81.5, 92.5]),
    ("EN-DE", [65.4, 81.6, 94.7]),
    ("DBP-WD", [65.7, 78.9, 90.8]),
    ("DBP-YG", [69.8, 82.0, 94.7]),
    ("D_W_15K_V1", [52.8, 73.7, 91.2]),
    ("D_W_100K_V1", [54.7, 74.1, 91.4]),
];

/// Looks up a paper H@1 for a method/column in a table.
pub fn paper_h1(table: &[PaperRow], method: &str, col: usize) -> Option<f64> {
    table.iter().find(|r| r.method == method).and_then(|r| r.h1.get(col).copied().flatten())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_consistent_column_counts() {
        for r in TABLE3 {
            assert_eq!(r.h1.len(), 3, "{}", r.method);
        }
        for r in TABLE4 {
            assert_eq!(r.h1.len(), 4, "{}", r.method);
        }
        for r in TABLE5 {
            assert_eq!(r.h1.len(), 2, "{}", r.method);
        }
    }

    #[test]
    fn lookup_matches_the_paper() {
        assert_eq!(paper_h1(TABLE3, "SDEA", 0), Some(87.0));
        assert_eq!(paper_h1(TABLE4, "SDEA", 3), Some(99.9));
        assert_eq!(paper_h1(TABLE5, "BERT-INT*", 0), Some(0.6));
        assert_eq!(paper_h1(TABLE3, "nope", 0), None);
    }

    #[test]
    fn paper_shapes_hold_in_the_reference_numbers() {
        // the orderings our reproduction must reproduce also hold in the
        // paper's own numbers (sanity on transcription)
        let sdea_dw = paper_h1(TABLE5, "SDEA", 0).unwrap();
        let cea_dw = paper_h1(TABLE5, "CEA", 0).unwrap();
        let bert_dw = paper_h1(TABLE5, "BERT-INT*", 0).unwrap();
        assert!(sdea_dw > cea_dw && cea_dw > bert_dw);
        let sdea_zh = paper_h1(TABLE3, "SDEA", 0).unwrap();
        let mtranse_zh = paper_h1(TABLE3, "MTransE", 0).unwrap();
        assert!(sdea_zh > mtranse_zh + 50.0);
    }
}
