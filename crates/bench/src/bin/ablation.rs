//! The ablation study (paper Section V-B3) plus the extra ablations
//! DESIGN.md commits to:
//!
//! * SDEA (full: BiGRU + attention)
//! * SDEA w/o rel. (attribute embeddings only — the paper's ablation)
//! * SDEA w/ mean pooling instead of attention (no neighbour weighting)
//! * SDEA w/o BiGRU (attention directly over neighbour attribute embeddings)
//! * SDEA w/ shuffled attribute order per entity (tests Algorithm 1's
//!   fixed-order claim)
//! * SDEA w/ MLM pre-training enabled (documents the identity-collapse
//!   finding of DESIGN.md)

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_scale, bench_sdea_config, bench_seed, load_dataset, run_sdea};
use sdea_core::rel_module::RelVariant;
use sdea_synth::DatasetProfile;

fn main() {
    let links = bench_scale().links_15k();
    let seed = bench_seed();
    let profile = DatasetProfile::dbp15k_fr_en(links, seed);
    eprintln!("[ablation] generating {} ...", profile.name);
    let bundle = load_dataset(&profile);
    let cfg = bench_sdea_config(seed);
    println!("== Ablation study on {} ({} links) ==", profile.name, links);
    println!("{:<34} {:>6} {:>6} {:>6}", "Variant", "H@1", "H@10", "MRR");

    let print_row = |name: &str, m: sdea_eval::AlignmentMetrics| {
        println!("{:<34} {:>6.1} {:>6.1} {:>6.2}", name, m.hits1 * 100.0, m.hits10 * 100.0, m.mrr);
    };

    // Full model + w/o rel (shared run)
    eprintln!("[ablation] full model ...");
    let (full, model) = run_sdea(&bundle, &cfg, RelVariant::Full);
    print_row("SDEA (BiGRU + attention)", full.metrics);
    print_row("SDEA w/o rel. (H_a only)", model.align_test_attr_only(&bundle.split.test).metrics());

    // Mean pooling (no attention)
    eprintln!("[ablation] mean pooling ...");
    let (mean, _) = run_sdea(&bundle, &cfg, RelVariant::MeanPool);
    print_row("SDEA w/ mean pooling (no attention)", mean.metrics);

    // No BiGRU (attention over raw neighbour embeddings)
    eprintln!("[ablation] no BiGRU ...");
    let (nogru, _) = run_sdea(&bundle, &cfg, RelVariant::NoGru);
    print_row("SDEA w/o BiGRU (direct attention)", nogru.metrics);

    // Shuffled attribute order: the attribute sequencer draws a different
    // order per run seed; we test sensitivity by rerunning with another
    // seed (Algorithm 1 claims order only needs to be *consistent*).
    eprintln!("[ablation] alternate attribute order ...");
    let mut cfg2 = cfg.clone();
    cfg2.seed = seed ^ 0xABCD;
    let (alt, _) = run_sdea(&bundle, &cfg2, RelVariant::Full);
    print_row("SDEA w/ alternate attribute order", alt.metrics);

    // MLM pre-training enabled (the identity-collapse finding)
    eprintln!("[ablation] MLM pre-training on ...");
    let mut cfg3 = cfg.clone();
    cfg3.mlm_epochs = 1;
    let (mlm, _) = run_sdea(&bundle, &cfg3, RelVariant::Full);
    print_row("SDEA w/ MLM pre-training (1 epoch)", mlm.metrics);

    println!(
        "\nExpected shapes: full >= mean-pool and >= no-BiGRU; w/o rel below full;\n\
         alternate attribute order within noise of full (order only needs\n\
         consistency); MLM variant collapses (identity destruction at small\n\
         scale — DESIGN.md)."
    );
}
