//! Regenerates **Table V** — the challenging OpenEA datasets
//! (D_W_15K_V1 and D_W_100K_V1) where entity names do not align
//! (Wikidata Q-ids). The paper reports CEA (Emb), CEA, BERT-INT, SDEA and
//! SDEA w/o rel; name-dependent methods collapse here.

#![forbid(unsafe_code)]

use sdea_baselines::bert_int::BertInt;
use sdea_baselines::cea::Cea;
use sdea_bench::paper::{paper_h1, TABLE5};
use sdea_bench::runner::{
    bench_scale, bench_sdea_config, bench_seed, load_dataset, run_baseline, run_sdea,
};
use sdea_core::rel_module::RelVariant;
use sdea_eval::report::{format_table, TableRow};
use sdea_eval::AlignmentMetrics;
use sdea_synth::DatasetProfile;

fn main() {
    let scale = bench_scale();
    let seed = bench_seed();
    let mut small = DatasetProfile::openea_d_w(scale.links_15k(), seed);
    small.name = "D_W_15K_V1";
    let mut large = DatasetProfile::openea_d_w(scale.links_100k(), seed);
    large.name = "D_W_100K_V1";
    let profiles = [small, large];
    let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
    let bundles: Vec<_> = profiles
        .iter()
        .map(|p| {
            eprintln!("[Table V] generating {} ...", p.name);
            load_dataset(p)
        })
        .collect();

    let mut rows: Vec<TableRow> = Vec::new();
    // CEA (Emb) + CEA
    let cea = Cea::default();
    let mut emb_cells = Vec::new();
    let mut match_cells = Vec::new();
    for (b, n) in bundles.iter().zip(&names) {
        eprintln!("[Table V] CEA on {n} ...");
        let out = run_baseline(&cea, b, seed, true);
        emb_cells.push(out.metrics);
        match_cells.push(out.stable_hits1.map(|h| AlignmentMetrics {
            hits1: h,
            hits10: f64::NAN,
            mrr: f64::NAN,
        }));
    }
    rows.push(TableRow::full("CEA (Emb)", emb_cells));
    rows.push(TableRow { method: "CEA".into(), cells: match_cells });

    // BERT-INT
    let bert = BertInt::default();
    let mut cells = Vec::new();
    for (b, n) in bundles.iter().zip(&names) {
        eprintln!("[Table V] BERT-INT* on {n} ...");
        cells.push(run_baseline(&bert, b, seed, false).metrics);
    }
    rows.push(TableRow::full("BERT-INT*", cells));

    // SDEA + ablation
    let cfg = bench_sdea_config(seed);
    let mut sdea_cells = Vec::new();
    let mut ab_cells = Vec::new();
    for (b, n) in bundles.iter().zip(&names) {
        eprintln!("[Table V] SDEA on {n} ...");
        let (out, model) = run_sdea(b, &cfg, RelVariant::Full);
        eprintln!("[Table V]   H@1 {:.1} ({:.0}s)", out.metrics.hits1 * 100.0, out.seconds);
        sdea_cells.push(out.metrics);
        ab_cells.push(model.align_test_attr_only(&b.split.test).metrics());
    }
    rows.push(TableRow::full("SDEA", sdea_cells));
    rows.push(TableRow::full("SDEA w/o rel.", ab_cells));

    let mut table = format_table("Table V: OpenEA", &names, &rows);
    table.push_str("\n--- paper vs measured (Hits@1 %) ---\n");
    for row in &rows {
        for (col, cell) in row.cells.iter().enumerate() {
            if let (Some(m), Some(p)) = (cell, paper_h1(TABLE5, &row.method, col)) {
                table.push_str(&format!(
                    "{:<14} {:<12} paper {:5.1}  measured {:5.1}\n",
                    row.method,
                    names[col],
                    p,
                    m.hits1 * 100.0
                ));
            }
        }
    }
    println!("{table}");
}
