//! Diagnostic: runs one named baseline on one dataset profile.
//! Usage: `debug_baseline <method-index|name> <profile> [links]`.

#![forbid(unsafe_code)]

use sdea_bench::runner::{baseline_suite, bench_seed, load_dataset, run_baseline};
use sdea_synth::DatasetProfile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which_method = args.get(1).cloned().unwrap_or_else(|| "JAPE-Stru".into());
    let which = args.get(2).map(|s| s.as_str()).unwrap_or("fr_en").to_string();
    let links: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed = bench_seed();
    let profile = match which.as_str() {
        "zh_en" => DatasetProfile::dbp15k_zh_en(links, seed),
        "ja_en" => DatasetProfile::dbp15k_ja_en(links, seed),
        "fr_en" => DatasetProfile::dbp15k_fr_en(links, seed),
        "en_fr" => DatasetProfile::srprs_en_fr(links, seed),
        "en_de" => DatasetProfile::srprs_en_de(links, seed),
        "dbp_wd" => DatasetProfile::srprs_dbp_wd(links, seed),
        "dbp_yg" => DatasetProfile::srprs_dbp_yg(links, seed),
        "d_w" => DatasetProfile::openea_d_w(links, seed),
        _ => panic!("unknown profile"),
    };
    let bundle = load_dataset(&profile);
    for m in baseline_suite() {
        if m.name() == which_method || which_method == "all" {
            let out = run_baseline(m.as_ref(), &bundle, seed, false);
            println!(
                "{:<12} on {}: H@1 {:5.1} H@10 {:5.1} MRR {:.2} ({:.0}s)",
                m.name(),
                profile.name,
                out.metrics.hits1 * 100.0,
                out.metrics.hits10 * 100.0,
                out.metrics.mrr,
                out.seconds
            );
        }
    }
}
