//! Retrieval-layer benchmark: recall@k-vs-speedup curves for the IVF +
//! int8 backend against the exact blocked scan.
//!
//! The world is clustered, aligned-entity-shaped data (a mixture of
//! Gaussian concepts; queries are independent perturbations of the same
//! concepts) at 1/10 benchmark scale — the regime IVF is for. For each
//! `nprobe` in a sweep the bin measures per-batch search seconds, recall@10
//! against the exact top-10, the speedup over the exact backend, and the
//! member-store bytes (int8 vs f32), plus the `index.*` observability
//! counters, and writes everything to `results/BENCH_index.json`.
//!
//! Usage: `bench_index [--smoke]`. `--smoke` is the CI mode: a small world,
//! correctness assertions (the `nprobe = all` bypass must be bitwise equal
//! to exact, full probing must recall everything), and its own report file
//! so it never clobbers the committed full curve. The full run additionally
//! enforces the PR acceptance bar: some swept `nprobe` must reach >= 5x
//! search speedup at recall@10 >= 0.95.

#![forbid(unsafe_code)]

use sdea_bench::runner::report_dir;
use sdea_index::{ExactRetriever, IndexConfig, IndexKind, IvfRetriever, Retriever};
use sdea_obs::json::Json;
use sdea_tensor::{Rng, Tensor};
use std::time::Instant;

/// Times `f` adaptively: repeats until ~200 ms elapsed, three rounds, and
/// returns the best per-call seconds (minimum filters scheduler noise).
fn best_secs(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut iters = 0u32;
        let t0 = Instant::now();
        loop {
            f();
            iters += 1;
            if t0.elapsed().as_secs_f64() >= 0.2 {
                break;
            }
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// Clustered targets and independently-perturbed queries over shared
/// concept centers — the neighbourhood structure aligned KGs exhibit.
fn clustered_world(n: usize, nq: usize, d: usize, centers: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = Rng::seed_from_u64(seed);
    let c = Tensor::rand_normal(&[centers, d], 1.0, &mut rng);
    let mut tgt = Vec::with_capacity(n * d);
    for i in 0..n {
        let base = c.row(i % centers);
        tgt.extend(base.iter().map(|&b| b + 0.25 * rng.normal()));
    }
    let mut qry = Vec::with_capacity(nq * d);
    for i in 0..nq {
        let base = c.row(i % centers);
        qry.extend(base.iter().map(|&b| b + 0.25 * rng.normal()));
    }
    (Tensor::from_vec(tgt, &[n, d]), Tensor::from_vec(qry, &[nq, d]))
}

fn recall_at_k(truth: &[Vec<(usize, f32)>], got: &[Vec<(usize, f32)>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (t, g) in truth.iter().zip(got) {
        total += t.len();
        hit += g.iter().filter(|(i, _)| t.iter().any(|(j, _)| i == j)).count();
    }
    hit as f64 / total.max(1) as f64
}

fn counter(name: &str) -> u64 {
    sdea_obs::snapshot().counters.get(name).copied().unwrap_or(0)
}

struct SweepPoint {
    nlist: usize,
    nprobe: usize,
    quantize: bool,
    secs: f64,
    recall10: f64,
    speedup: f64,
    probes: u64,
    shortlist: u64,
    rescored: u64,
}

fn run(n: usize, nq: usize, d: usize, k: usize, smoke: bool) -> (Json, bool) {
    let centers = (n as f64).sqrt() as usize;
    let (tgt, qry) = clustered_world(n, nq, d, centers, 42);
    let exact = ExactRetriever::new(&tgt);
    let truth = exact.search(&qry, k);
    let exact_secs = best_secs(|| {
        std::hint::black_box(exact.search(&qry, k));
    });
    println!(
        "exact scan: n={n} nq={nq} d={d} k={k}  {:.3} ms/batch  store {} KiB",
        exact_secs * 1e3,
        4 * n * d / 1024
    );

    // nlist = 0 is the ⌈√n⌉ default; the coarser grid trades per-cluster
    // scan size for fewer probes at the same recall.
    let nlists: &[usize] = if smoke { &[0] } else { &[0, 20] };
    let mut points: Vec<SweepPoint> = Vec::new();
    let mut bar_met = false;
    for quantize in [false, true] {
        for &nlist_cfg in nlists {
            let cfg = IndexConfig { kind: IndexKind::Ivf, nlist: nlist_cfg, nprobe: 1, quantize };
            let mut ivf = IvfRetriever::build(&tgt, &cfg);
            let nlist = ivf.nlist();
            let sweep: Vec<usize> =
                [1usize, 2, 4, 8, 16, nlist].into_iter().filter(|&p| p <= nlist).collect();
            for &nprobe in &sweep {
                ivf.set_nprobe(nprobe);
                let got = ivf.search(&qry, k);
                let recall10 = recall_at_k(&truth, &got);
                let (p0, s0, r0) = (
                    counter("index.probes"),
                    counter("index.shortlist_len"),
                    counter("index.exact_rescored"),
                );
                let secs = best_secs(|| {
                    std::hint::black_box(ivf.search(&qry, k));
                });
                let speedup = exact_secs / secs;
                if recall10 >= 0.95 && speedup >= 5.0 {
                    bar_met = true;
                }
                println!(
                "ivf q={} nlist={nlist} nprobe={nprobe:>3}: {:.3} ms/batch  speedup {speedup:5.2}x  \
                 recall@{k} {recall10:.3}  store {} KiB",
                quantize as u8,
                secs * 1e3,
                ivf.scan_bytes() / 1024
            );
                points.push(SweepPoint {
                    nlist,
                    nprobe,
                    quantize,
                    secs,
                    recall10,
                    speedup,
                    probes: counter("index.probes") - p0,
                    shortlist: counter("index.shortlist_len") - s0,
                    rescored: counter("index.exact_rescored") - r0,
                });
                if smoke && nprobe == nlist {
                    // Full probing bypasses to the exact kernel: bitwise equal.
                    for (qi, (t, g)) in truth.iter().zip(&got).enumerate() {
                        assert_eq!(t.len(), g.len(), "query {qi}");
                        for (r, ((ti, ts), (gi, gs))) in t.iter().zip(g).enumerate() {
                            assert_eq!(ti, gi, "query {qi} rank {r}");
                            assert_eq!(ts.to_bits(), gs.to_bits(), "query {qi} rank {r} score");
                        }
                    }
                    assert!(
                        (recall10 - 1.0).abs() < 1e-12,
                        "full probing must recall everything, got {recall10}"
                    );
                }
            }
            if quantize {
                let f32_bytes = 4 * n * d;
                assert!(
                    ivf.scan_bytes() * 3 < f32_bytes,
                    "int8 store should cut the member scan ~4x: {} vs {f32_bytes}",
                    ivf.scan_bytes()
                );
            }
        }
    }

    let rows = points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("nlist", Json::Num(p.nlist as f64)),
                ("nprobe", Json::Num(p.nprobe as f64)),
                ("quantize", Json::Num(p.quantize as u8 as f64)),
                ("secs_per_batch", Json::Num(p.secs)),
                ("recall_at_10", Json::Num(p.recall10)),
                ("speedup_vs_exact", Json::Num(p.speedup)),
                ("probes", Json::Num(p.probes as f64)),
                ("shortlist_len", Json::Num(p.shortlist as f64)),
                ("exact_rescored", Json::Num(p.rescored as f64)),
            ])
        })
        .collect();
    let out = Json::obj(vec![
        ("bench", Json::str("bench_index_pr6")),
        ("n", Json::Num(n as f64)),
        ("nq", Json::Num(nq as f64)),
        ("d", Json::Num(d as f64)),
        ("k", Json::Num(k as f64)),
        ("exact_secs_per_batch", Json::Num(exact_secs)),
        ("exact_store_bytes", Json::Num((4 * n * d) as f64)),
        ("sweep", Json::Arr(rows)),
    ]);
    (out, bar_met)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    sdea_obs::set_enabled(true);
    // Smoke: small, fast, correctness-asserting. Full: 1/10 benchmark
    // scale (the DBP15K-profile worlds the repo benches at ~15k entities).
    let (out, bar_met) =
        if smoke { run(300, 60, 32, 10, true) } else { run(1500, 300, 128, 10, false) };
    if !smoke && !bar_met {
        eprintln!("FAIL: no swept nprobe reached >= 5x speedup at recall@10 >= 0.95");
        std::process::exit(1);
    }
    let dir = report_dir();
    let _ = std::fs::create_dir_all(&dir);
    // The smoke run gets its own file so it never clobbers the committed
    // full sweep.
    let path = dir.join(if smoke { "BENCH_index_smoke.json" } else { "BENCH_index.json" });
    match sdea_obs::fsio::atomic_write(&path, out.encode().as_bytes()) {
        Ok(()) => println!("bench report -> {}", path.display()),
        Err(e) => {
            eprintln!("bench report failed: {e}");
            std::process::exit(1);
        }
    }
}
