//! The paper's Section V-B1 stable-matching claim: applying Gale–Shapley
//! to SDEA's similarity matrix lifts Hits@1 (the paper reports
//! 84.8 → 89.8 on JA-EN, overtaking CEA's 86.3).

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_scale, bench_sdea_config, bench_seed, load_dataset, run_sdea};
use sdea_core::rel_module::RelVariant;
use sdea_synth::DatasetProfile;

fn main() {
    let links = bench_scale().links_15k();
    let seed = bench_seed();
    let profile = DatasetProfile::dbp15k_ja_en(links, seed);
    eprintln!("[stable-matching] generating {} ...", profile.name);
    let bundle = load_dataset(&profile);
    let cfg = bench_sdea_config(seed);
    eprintln!("[stable-matching] training SDEA ...");
    let (out, model) = run_sdea(&bundle, &cfg, RelVariant::Full);
    let result = model.align_test(&bundle.split.test);
    let greedy = result.metrics();
    let matched = result.stable_matching_hits1();
    println!("== Stable matching boost on {} ({} links) ==", profile.name, links);
    println!("SDEA greedy ranking      H@1 {:5.1}", greedy.hits1 * 100.0);
    println!("SDEA + stable matching   H@1 {:5.1}", matched * 100.0);
    println!("paper: 84.8 -> 89.8 (JA-EN, full scale)");
    println!(
        "boost: {:+.1} points ({})",
        (matched - greedy.hits1) * 100.0,
        if matched >= greedy.hits1 { "matches the paper's direction" } else { "NO boost" }
    );
    let _ = out;
}
