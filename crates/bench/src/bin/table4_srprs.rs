//! Regenerates **Table IV** — experimental results on the SRPRS benchmark
//! (EN-FR, EN-DE, DBP-WD, DBP-YG).

#![forbid(unsafe_code)]

use sdea_bench::paper::TABLE4;
use sdea_bench::runner::{bench_scale, bench_seed, run_full_table};
use sdea_synth::DatasetProfile;

fn main() {
    let links = bench_scale().links_15k();
    let seed = bench_seed();
    let profiles = [
        DatasetProfile::srprs_en_fr(links, seed),
        DatasetProfile::srprs_en_de(links, seed),
        DatasetProfile::srprs_dbp_wd(links, seed),
        DatasetProfile::srprs_dbp_yg(links, seed),
    ];
    let table = run_full_table("Table IV: SRPRS", &profiles, TABLE4);
    println!("{table}");
}
