//! Regenerates **Table I** — statistics of the benchmark datasets
//! (entities, relations, attributes, relational and attributed triples) —
//! over the generated reproduction-scale datasets.

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_scale, bench_seed};
use sdea_kg::KgStatistics;
use sdea_synth::{generate, DatasetProfile};
use std::io::Write;

fn main() {
    let scale = bench_scale();
    let seed = bench_seed();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    writeln!(
        out,
        "== Table I: statistics of generated benchmarks (scale {scale:?}, seed {seed}) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>4} | {:>9} {:>6} {:>6} {:>12} {:>13}",
        "Dataset", "side", "Entities", "Rel.", "Attr.", "Rel. triples", "Attr. triples"
    )
    .unwrap();
    let mut profiles = DatasetProfile::all_paper_datasets(seed);
    for p in &mut profiles {
        p.n_links = if p.name.contains("100K") { scale.links_100k() } else { scale.links_15k() };
    }
    for p in &profiles {
        let ds = generate(p);
        for (side, kg) in [(1, ds.kg1()), (2, ds.kg2())] {
            let s = KgStatistics::of(kg);
            writeln!(
                out,
                "{:<14} {:>4} | {:>9} {:>6} {:>6} {:>12} {:>13}",
                p.name, side, s.entities, s.relations, s.attributes, s.rel_triples, s.attr_triples
            )
            .unwrap();
        }
    }
    writeln!(
        out,
        "\nNote: datasets are generated at 1/10 of the paper's scale (see DESIGN.md);\n\
         the quantity *shapes* to compare with the paper's Table I are the\n\
         relative densities: DBP15K rel-dense, SRPRS sparse, DBP-YG attribute-poor,\n\
         OpenEA sparse with id-only names on the W side."
    )
    .unwrap();
}
