//! Regenerates **Table III** — experimental results on the DBP15K
//! benchmark (ZH-EN, JA-EN, FR-EN): H@1 / H@10 / MRR for the baseline
//! suite, CEA's stable-matching row, SDEA, and SDEA w/o rel.

#![forbid(unsafe_code)]

use sdea_bench::paper::TABLE3;
use sdea_bench::runner::{bench_scale, bench_seed, run_full_table};
use sdea_synth::DatasetProfile;

fn main() {
    let links = bench_scale().links_15k();
    let seed = bench_seed();
    let profiles = [
        DatasetProfile::dbp15k_zh_en(links, seed),
        DatasetProfile::dbp15k_ja_en(links, seed),
        DatasetProfile::dbp15k_fr_en(links, seed),
    ];
    let table = run_full_table("Table III: DBP15K", &profiles, TABLE3);
    println!("{table}");
}
