//! Diagnostic: JAPE-Stru epoch/lr sweep on one profile.

#![forbid(unsafe_code)]
use sdea_baselines::transe::{JapeStru, TransEParams};
use sdea_bench::runner::{bench_seed, load_dataset, run_baseline};
use sdea_synth::DatasetProfile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let links: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed = bench_seed();
    let profile = DatasetProfile::dbp15k_fr_en(links, seed);
    let bundle = load_dataset(&profile);
    for (epochs, lr, dim) in
        [(60, 0.02, 64), (200, 0.02, 64), (200, 0.05, 64), (400, 0.02, 32), (200, 0.01, 128)]
    {
        let p = TransEParams { dim, epochs, lr, margin: 1.0 };
        let out = run_baseline(&JapeStru(p), &bundle, seed, false);
        println!(
            "epochs {epochs:>3} lr {lr:.2} dim {dim:>3}: H@1 {:5.1} H@10 {:5.1} MRR {:.2} ({:.0}s)",
            out.metrics.hits1 * 100.0,
            out.metrics.hits10 * 100.0,
            out.metrics.mrr,
            out.seconds
        );
    }
}
