//! Cross-encoder reranking benchmark: ΔHits@1 and added latency per
//! shortlist size.
//!
//! The world is the DBP15K ZH-EN profile at the repo's reproduction scale
//! (1/10 of the paper's 15K links). The bin trains the attribute stage
//! (stage 1), fine-tunes a [`CrossEncoder`] on the train seeds with hard
//! negatives from the stage-1 shortlists, then evaluates the test pairs
//! through the blocked retrieval path twice per swept shortlist size `k`
//! — without and with the rerank pass — and measures the per-query
//! latency the pass adds (p50/p99 over the test queries). Everything
//! lands in `results/BENCH_rerank.json`.
//!
//! Usage: `bench_rerank [--smoke]`. `--smoke` is the CI mode: a small
//! world, short training, and determinism assertions (the rerank pass run
//! twice must produce bitwise-equal metrics, and rerank-off must equal
//! the plain blocked path bitwise); it writes its own report file. The
//! full run additionally enforces the PR acceptance bar: at the default
//! shortlist size, Hits@1 **with** reranking must be strictly greater
//! than without.

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_sdea_config, bench_seed, load_dataset, report_dir};
use sdea_core::attr_module::AttrModule;
use sdea_core::{AttrSequencer, CrossEncoder};
use sdea_eval::{
    evaluate_retrieved_blocked, evaluate_retrieved_reranked_blocked, AlignmentMetrics,
};
use sdea_index::{ExactRetriever, Hit, Retriever};
use sdea_kg::EntityId;
use sdea_obs::json::Json;
use sdea_synth::DatasetProfile;
use sdea_tensor::{Rng, Tensor};
use std::time::Instant;

/// Blocked-evaluation block height; results are block-invariant, this just
/// bounds resident hit lists.
const EVAL_BLOCK: usize = 64;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct KPoint {
    k: usize,
    base: AlignmentMetrics,
    reranked: AlignmentMetrics,
    rerank_p50_ms: f64,
    rerank_p99_ms: f64,
}

#[allow(clippy::too_many_arguments)]
fn sweep_k(
    ce: &CrossEncoder,
    retr: &dyn Retriever,
    test_q: &Tensor,
    gold: &[usize],
    cache1: &[Vec<u32>],
    cache2: &[Vec<u32>],
    test_pairs: &[(EntityId, EntityId)],
    ks: &[usize],
    alpha: f32,
    smoke: bool,
) -> Vec<KPoint> {
    let mut points = Vec::new();
    for &k in ks {
        let base = evaluate_retrieved_blocked(retr, test_q, gold, k, EVAL_BLOCK);
        let mut rescore = |start: usize, hits: Vec<Vec<Hit>>| {
            let qtok: Vec<Vec<u32>> = test_pairs[start..start + hits.len()]
                .iter()
                .map(|&(e, _)| cache1[e.0 as usize].clone())
                .collect();
            ce.rerank_hits(&qtok, cache2, &hits, alpha)
        };
        let reranked =
            evaluate_retrieved_reranked_blocked(retr, test_q, gold, k, EVAL_BLOCK, &mut rescore);
        if smoke {
            // Rerank-off is the plain blocked path, bitwise.
            let off = evaluate_retrieved_reranked_blocked(
                retr,
                test_q,
                gold,
                k,
                EVAL_BLOCK,
                &mut |_, hits| hits,
            );
            assert_eq!(off.hits1.to_bits(), base.hits1.to_bits(), "k={k} rerank-off hits1");
            assert_eq!(off.mrr.to_bits(), base.mrr.to_bits(), "k={k} rerank-off mrr");
            // The rerank pass is deterministic: a second evaluation is
            // bitwise identical.
            let again = evaluate_retrieved_reranked_blocked(
                retr,
                test_q,
                gold,
                k,
                EVAL_BLOCK,
                &mut rescore,
            );
            assert_eq!(again.hits1.to_bits(), reranked.hits1.to_bits(), "k={k} rerank repeat");
            assert_eq!(again.mrr.to_bits(), reranked.mrr.to_bits(), "k={k} rerank repeat mrr");
        }
        // Added latency: the rerank pass alone (stage 1 pays the same
        // search either way), per query, over the whole test set.
        let d = test_q.shape()[1];
        let mut times: Vec<f64> = Vec::with_capacity(test_pairs.len());
        for (qi, &(e, _)) in test_pairs.iter().enumerate() {
            let row = Tensor::from_vec(test_q.data()[qi * d..(qi + 1) * d].to_vec(), &[1, d]);
            let hits = retr.search(&row, k);
            let qtok = vec![cache1[e.0 as usize].clone()];
            let t0 = Instant::now();
            std::hint::black_box(ce.rerank_hits(&qtok, cache2, &hits, alpha));
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(f64::total_cmp);
        let p50 = percentile(&times, 0.50) * 1e3;
        let p99 = percentile(&times, 0.99) * 1e3;
        println!(
            "k={k:>3}: H@1 {:.3} -> {:.3} (Δ {:+.3})  MRR {:.3} -> {:.3}  rerank p50 {p50:.2} ms  p99 {p99:.2} ms",
            base.hits1,
            reranked.hits1,
            reranked.hits1 - base.hits1,
            base.mrr,
            reranked.mrr,
        );
        points.push(KPoint { k, base, reranked, rerank_p50_ms: p50, rerank_p99_ms: p99 });
    }
    points
}

fn run(links: usize, smoke: bool) -> (Json, bool) {
    let seed = bench_seed();
    let mut cfg = bench_sdea_config(seed);
    cfg.rerank.enabled = true;
    cfg.rerank.apply_env();
    if smoke {
        cfg.mlm_epochs = 0;
        cfg.attr_epochs = cfg.attr_epochs.min(2);
        cfg.rerank.epochs = cfg.rerank.epochs.min(2);
    }
    let profile = DatasetProfile::dbp15k_zh_en(links, 3);
    eprintln!("[bench_rerank] generating {} ({links} links) ...", profile.name);
    let bundle = load_dataset(&profile);

    // Stage 1, exactly as the pipeline derives it (same stream splits).
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut seq_rng = rng.split();
    let mut build_rng = rng.split();
    let mut fit_rng = rng.split();
    let mut rr_rng = rng.split();
    let t0 = Instant::now();
    let seq1 = AttrSequencer::new(bundle.ds.kg1(), &mut seq_rng);
    let seq2 = AttrSequencer::new(bundle.ds.kg2(), &mut seq_rng);
    let mut attr = AttrModule::build(&cfg, &bundle.corpus, &mut build_rng);
    let cache1 = attr.token_cache(seq1.sequences());
    let cache2 = attr.token_cache(seq2.sequences());
    eprintln!("[bench_rerank] fitting attribute stage ...");
    attr.fit_resumable(
        &cache1,
        &cache2,
        &bundle.split.train,
        &bundle.split.valid,
        &mut fit_rng,
        None,
    );
    let h_a1 = attr.embed_all(&cache1, &mut fit_rng);
    let h_a2 = attr.embed_all(&cache2, &mut fit_rng);
    let stage1_secs = t0.elapsed().as_secs_f64();
    let retr = ExactRetriever::new(&h_a2);

    // Stage 2: fine-tune the cross-encoder on the train seeds.
    eprintln!("[bench_rerank] fitting cross-encoder ({} epochs) ...", cfg.rerank.epochs);
    let t1 = Instant::now();
    let mut ce = CrossEncoder::from_encoder(&attr, &mut rr_rng);
    let report = ce.fit(
        &cache1,
        &cache2,
        &h_a1,
        &retr,
        &bundle.split.train,
        &bundle.split.valid,
        &mut rr_rng,
    );
    let fit_secs = t1.elapsed().as_secs_f64();
    eprintln!(
        "[bench_rerank] cross-encoder fit in {fit_secs:.0}s, best epoch {}, valid H@1 {:?}",
        report.best_epoch, report.valid_hits1
    );

    let test_rows: Vec<usize> = bundle.split.test.iter().map(|&(e, _)| e.0 as usize).collect();
    let gold: Vec<usize> = bundle.split.test.iter().map(|&(_, t)| t.0 as usize).collect();
    let test_q = h_a1.gather_rows(&test_rows);
    let ks: &[usize] = if smoke { &[5, 10] } else { &[5, 10, 20] };
    let points = sweep_k(
        &ce,
        &retr,
        &test_q,
        &gold,
        &cache1,
        &cache2,
        &bundle.split.test,
        ks,
        cfg.rerank.alpha,
        smoke,
    );

    // Acceptance bar: at the default shortlist size, reranking must
    // strictly improve Hits@1.
    let primary = points
        .iter()
        .min_by_key(|p| p.k.abs_diff(cfg.rerank.k))
        .map(|p| (p.k, p.base.hits1, p.reranked.hits1));
    let bar_met = primary.map(|(_, b, r)| r > b).unwrap_or(false);
    if let Some((k, b, r)) = primary {
        println!("primary k={k}: H@1 without {b:.4}, with {r:.4} (bar: strictly greater)");
    }

    let rows = points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("k", Json::Num(p.k as f64)),
                ("hits1_base", Json::Num(p.base.hits1)),
                ("hits10_base", Json::Num(p.base.hits10)),
                ("mrr_base", Json::Num(p.base.mrr)),
                ("hits1_reranked", Json::Num(p.reranked.hits1)),
                ("hits10_reranked", Json::Num(p.reranked.hits10)),
                ("mrr_reranked", Json::Num(p.reranked.mrr)),
                ("delta_hits1", Json::Num(p.reranked.hits1 - p.base.hits1)),
                ("rerank_p50_ms", Json::Num(p.rerank_p50_ms)),
                ("rerank_p99_ms", Json::Num(p.rerank_p99_ms)),
            ])
        })
        .collect();
    let out = Json::obj(vec![
        ("bench", Json::str("bench_rerank_pr9")),
        ("dataset", Json::str(profile.name)),
        ("links", Json::Num(links as f64)),
        ("seed", Json::Num(seed as f64)),
        ("alpha", Json::Num(cfg.rerank.alpha as f64)),
        ("rerank_epochs", Json::Num(cfg.rerank.epochs as f64)),
        ("negatives", Json::Num(cfg.rerank.negatives as f64)),
        ("test_pairs", Json::Num(bundle.split.test.len() as f64)),
        ("stage1_secs", Json::Num(stage1_secs)),
        ("rerank_fit_secs", Json::Num(fit_secs)),
        ("sweep", Json::Arr(rows)),
    ]);
    (out, bar_met)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    sdea_obs::set_enabled(true);
    // Smoke: a small world, minutes. Full: the 1/10 reproduction scale.
    let (out, bar_met) = if smoke { run(150, true) } else { run(1500, false) };
    if !smoke && !bar_met {
        eprintln!("FAIL: reranked Hits@1 must be strictly greater than the stage-1 baseline");
        std::process::exit(1);
    }
    let dir = report_dir();
    let _ = std::fs::create_dir_all(&dir);
    // The smoke run gets its own file so it never clobbers the committed
    // full sweep.
    let path = dir.join(if smoke { "BENCH_rerank_smoke.json" } else { "BENCH_rerank.json" });
    match sdea_obs::fsio::atomic_write(&path, out.encode().as_bytes()) {
        Ok(()) => println!("bench report -> {}", path.display()),
        Err(e) => {
            eprintln!("bench report failed: {e}");
            std::process::exit(1);
        }
    }
}
