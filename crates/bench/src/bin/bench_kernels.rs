//! Kernel + pipeline throughput benchmark for the tiled-matmul work.
//!
//! Measures single-thread GFLOP/s of the register-tiled matmul against the
//! pre-tiling naive kernel (`sdea_tensor::kernels::reference`) at square
//! sizes {128, 256, 512}, optionally runs one quick-scale FR-EN pipeline at
//! the current thread budget, and writes everything — kernel numbers, stage
//! wall times pulled from the observability span registry, and final
//! alignment metrics — to `results/BENCH_pr3.json`.
//!
//! Usage: `bench_kernels [--kernels-only]`. The `--kernels-only` mode is
//! what `scripts/ci.sh` runs (seconds, not minutes); `scripts/bench_kernels.sh`
//! runs the full version including the pipeline comparison.

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_sdea_config, bench_seed, load_dataset, report_dir, run_sdea};
use sdea_core::rel_module::RelVariant;
use sdea_obs::json::Json;
use sdea_synth::DatasetProfile;
use sdea_tensor::{kernels, with_thread_budget, Rng, Tensor};
use std::time::Instant;

/// Times `f` adaptively: repeats until ~200 ms elapsed, three rounds, and
/// returns the best per-call seconds (minimum is the standard choice for
/// throughput benches — it filters scheduler noise, not real work).
fn best_secs(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut iters = 0u32;
        let t0 = Instant::now();
        loop {
            f();
            iters += 1;
            if t0.elapsed().as_secs_f64() >= 0.2 {
                break;
            }
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn bench_kernels_json() -> Json {
    let mut rows = Vec::new();
    for &n in &[128usize, 256, 512] {
        let mut rng = Rng::seed_from_u64(n as u64);
        let a = Tensor::rand_normal(&[n, n], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[n, n], 1.0, &mut rng);
        let flop = 2.0 * (n as f64).powi(3);
        let (ref_secs, tiled_secs) = with_thread_budget(1, || {
            let mut out = vec![0.0f32; n * n];
            let r = best_secs(|| {
                kernels::reference::matmul_into(a.data(), b.data(), &mut out, n, n, n);
                std::hint::black_box(&out);
            });
            let t = best_secs(|| {
                std::hint::black_box(a.matmul(&b));
            });
            (r, t)
        });
        let ref_gflops = flop / ref_secs / 1e9;
        let tiled_gflops = flop / tiled_secs / 1e9;
        let speedup = ref_secs / tiled_secs;
        println!(
            "matmul {n:>3}^3  reference {ref_gflops:6.2} GFLOP/s   tiled {tiled_gflops:6.2} GFLOP/s   speedup {speedup:4.2}x"
        );
        rows.push(Json::obj(vec![
            ("n", Json::Num(n as f64)),
            ("reference_secs", Json::Num(ref_secs)),
            ("tiled_secs", Json::Num(tiled_secs)),
            ("reference_gflops", Json::Num(ref_gflops)),
            ("tiled_gflops", Json::Num(tiled_gflops)),
            ("speedup", Json::Num(speedup)),
        ]));
    }
    Json::Arr(rows)
}

/// The pre-optimization pipeline wall time to compare against. Prefers the
/// `SDEA_BASELINE_WALL` env var (seconds — set it to a same-machine,
/// same-arguments measurement of the previous revision, which is the only
/// fair baseline; malformed values are a hard startup error); falls back to
/// `wall_secs` scraped out of the committed calibrate run report with plain
/// string scanning (the report encoder always writes
/// `"wall_secs":<number>`).
fn baseline_wall_secs() -> Option<(f64, &'static str)> {
    if let Some(v) =
        sdea_obs::env::parse_or_exit::<f64>("SDEA_BASELINE_WALL", "a wall time in seconds")
    {
        return Some((v, "SDEA_BASELINE_WALL"));
    }
    let text =
        std::fs::read_to_string(report_dir().join("run_report_calibrate_FR-EN.json")).ok()?;
    let at = text.find("\"wall_secs\":")? + "\"wall_secs\":".len();
    let rest = &text[at..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok().map(|v| (v, "run_report_calibrate_FR-EN.json"))
}

fn bench_pipeline_json() -> Json {
    let seed = bench_seed();
    let profile = DatasetProfile::dbp15k_fr_en(300, seed);
    let t0 = Instant::now();
    let bundle = load_dataset(&profile);
    println!("dataset {} generated in {:.1}s", profile.name, t0.elapsed().as_secs_f64());
    let cfg = bench_sdea_config(seed);
    let (outcome, _model) = run_sdea(&bundle, &cfg, RelVariant::Full);
    let snap = sdea_obs::snapshot();
    let stage =
        |name: &str| Json::Num(snap.spans.get(name).map(|s| s.total_secs).unwrap_or(f64::NAN));
    println!(
        "pipeline wall {:.1}s  H@1 {:.4}  MRR {:.4}  (threads={})",
        outcome.seconds,
        outcome.metrics.hits1,
        outcome.metrics.mrr,
        sdea_tensor::max_threads()
    );
    let mut fields = vec![
        ("dataset", Json::str(profile.name)),
        ("threads", Json::Num(sdea_tensor::max_threads() as f64)),
        ("wall_secs", Json::Num(outcome.seconds)),
        ("test_hits1", Json::Num(outcome.metrics.hits1)),
        ("test_hits10", Json::Num(outcome.metrics.hits10)),
        ("test_mrr", Json::Num(outcome.metrics.mrr)),
        ("attr_stage_secs", stage("pipeline.attr_stage")),
        ("rel_stage_secs", stage("pipeline.rel_stage")),
        ("final_embed_secs", stage("pipeline.final_embed")),
    ];
    if let Some((base, source)) = baseline_wall_secs() {
        println!("baseline wall {base:.1}s ({source}) -> speedup {:.2}x", base / outcome.seconds);
        fields.push(("baseline_wall_secs", Json::Num(base)));
        fields.push(("baseline_source", Json::str(source)));
        fields.push(("speedup_vs_baseline", Json::Num(base / outcome.seconds)));
    }
    Json::obj(fields)
}

fn main() {
    let kernels_only = std::env::args().any(|a| a == "--kernels-only");
    sdea_obs::set_enabled(true);
    let mut fields = vec![
        ("bench", Json::str("bench_kernels_pr3")),
        ("kernels_single_thread", bench_kernels_json()),
    ];
    if !kernels_only {
        fields.push(("pipeline_quick", bench_pipeline_json()));
    }
    let out = Json::obj(fields);
    let dir = report_dir();
    let _ = std::fs::create_dir_all(&dir);
    // The kernels-only smoke run gets its own file so it never clobbers
    // the full report's pipeline section.
    let path = dir.join(if kernels_only { "BENCH_pr3_kernels.json" } else { "BENCH_pr3.json" });
    match sdea_obs::fsio::atomic_write(&path, out.encode().as_bytes()) {
        Ok(()) => println!("bench report -> {}", path.display()),
        Err(e) => {
            eprintln!("bench report failed: {e}");
            std::process::exit(1);
        }
    }
}
