//! Calibration tool: runs SDEA (full + w/o rel) on one dataset profile and
//! prints metrics + timing. Used to tune generator difficulty and the
//! default configuration; not itself a paper table.
//!
//! Usage: `calibrate [profile] [links] [--resume <dir>]` where profile is
//! one of `zh_en ja_en fr_en en_fr en_de dbp_wd dbp_yg d_w`. With
//! `--resume`, training checkpoints into (and resumes from) the given
//! directory — an interrupted calibration continues where it left off and
//! finishes bit-identically to an uninterrupted one. Equivalent to setting
//! `SDEA_CHECKPOINT_DIR`.

#![forbid(unsafe_code)]

use sdea_bench::runner::{
    bench_sdea_config, bench_seed, load_dataset, run_sdea, write_sdea_run_report,
};
use sdea_core::rel_module::RelVariant;
use sdea_synth::DatasetProfile;

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let resume = args.iter().position(|a| a == "--resume").map(|i| {
        let Some(dir) = args.get(i + 1).cloned() else {
            eprintln!("--resume requires a directory argument");
            std::process::exit(2);
        };
        args.drain(i..=i + 1);
        dir
    });
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("fr_en");
    let links: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed = bench_seed();
    let profile = match which {
        "zh_en" => DatasetProfile::dbp15k_zh_en(links, seed),
        "ja_en" => DatasetProfile::dbp15k_ja_en(links, seed),
        "fr_en" => DatasetProfile::dbp15k_fr_en(links, seed),
        "en_fr" => DatasetProfile::srprs_en_fr(links, seed),
        "en_de" => DatasetProfile::srprs_en_de(links, seed),
        "dbp_wd" => DatasetProfile::srprs_dbp_wd(links, seed),
        "dbp_yg" => DatasetProfile::srprs_dbp_yg(links, seed),
        "d_w" => DatasetProfile::openea_d_w(links, seed),
        other => {
            eprintln!("unknown profile {other}");
            std::process::exit(2);
        }
    };
    let t0 = std::time::Instant::now();
    let bundle = load_dataset(&profile);
    println!(
        "dataset {} generated in {:.1}s: |E1|={} |E2|={} links={} rel1={} attr1={}",
        profile.name,
        t0.elapsed().as_secs_f64(),
        bundle.ds.kg1().num_entities(),
        bundle.ds.kg2().num_entities(),
        bundle.ds.seeds.len(),
        bundle.ds.kg1().rel_triples().len(),
        bundle.ds.kg1().attr_triples().len(),
    );
    let mut cfg = bench_sdea_config(seed);
    if let Some(dir) = resume {
        cfg.checkpoint_dir = Some(dir.into());
    }
    println!(
        "cfg: mlm_epochs={} attr_epochs={} max_seq={} hidden={} vocab={} lr={} margin={}",
        cfg.mlm_epochs,
        cfg.attr_epochs,
        cfg.max_seq,
        cfg.lm_hidden,
        cfg.vocab_budget,
        cfg.attr_lr,
        cfg.margin
    );
    let (outcome, model) = run_sdea(&bundle, &cfg, RelVariant::Full);
    match write_sdea_run_report("calibrate", profile.name, &cfg, &outcome, &model) {
        Ok(path) => println!("run report -> {}", path.display()),
        Err(e) => eprintln!("run report failed: {e}"),
    }
    println!(
        "SDEA           H@1 {:5.1}  H@10 {:5.1}  MRR {:.2}   ({:.0}s, stable H@1 {:.1})",
        outcome.metrics.hits1 * 100.0,
        outcome.metrics.hits10 * 100.0,
        outcome.metrics.mrr,
        outcome.seconds,
        outcome.stable_hits1.unwrap_or(0.0) * 100.0
    );
    let attr_only = model.align_test_attr_only(&bundle.split.test).metrics();
    println!(
        "SDEA w/o rel.  H@1 {:5.1}  H@10 {:5.1}  MRR {:.2}",
        attr_only.hits1 * 100.0,
        attr_only.hits10 * 100.0,
        attr_only.mrr
    );
    println!(
        "attr epochs: {:?} valid H@1 {:?}",
        model.attr_report.epoch_losses, model.attr_report.valid_hits1
    );
    println!(
        "rel epochs: {:?} valid H@1 {:?}",
        model.rel_report.epoch_losses, model.rel_report.valid_hits1
    );
}
