//! Mechanism experiment (paper Section II-B1): after training, does the
//! relation module's attention actually *downweight general-concept hub
//! neighbours* (person, club, …) relative to specific entities, as the
//! paper's design argues? We compute the trained attention weights over
//! every test entity's neighbour list and compare the average weight mass
//! assigned to concept-hub neighbours against the uniform baseline.

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_scale, bench_sdea_config, bench_seed, load_dataset, run_sdea};
use sdea_core::rel_module::NeighborBatch;
use sdea_core::rel_module::RelVariant;
use sdea_core::trainer::neighbor_lists;
use sdea_synth::{DatasetProfile, EntityKind};
use sdea_tensor::Graph;

fn main() {
    let links = bench_scale().links_15k();
    let seed = bench_seed();
    let profile = DatasetProfile::dbp15k_fr_en(links, seed);
    eprintln!("[attention] generating {} ...", profile.name);
    let bundle = load_dataset(&profile);
    let cfg = bench_sdea_config(seed);
    eprintln!("[attention] training SDEA ...");
    let (_, model) = run_sdea(&bundle, &cfg, RelVariant::Full);
    let stage = model.rel_stage.as_ref().expect("freshly trained model");

    let kg1 = bundle.ds.kg1();
    let lists = neighbor_lists(kg1, cfg.max_neighbors);
    let is_concept = |entity_row: usize| -> bool {
        let wid = bundle.ds.gen1.world_of[entity_row];
        bundle.ds.world_kinds[wid] == EntityKind::Concept
    };

    // attention over each test source's neighbours
    let mut concept_mass = 0.0f64; // attention mass on concept neighbours
    let mut concept_frac = 0.0f64; // count fraction (uniform baseline)
    let mut n_entities = 0usize;
    for chunk in bundle.split.test.chunks(128) {
        let batch_lists: Vec<Vec<usize>> =
            chunk.iter().map(|&(e, _)| lists[e.0 as usize].clone()).collect();
        let nb = NeighborBatch::from_lists(&batch_lists);
        let g = Graph::new();
        let table = g.constant(model.h_a1.clone());
        let w = stage.rel.attention_weights(&g, &stage.store, table, &nb);
        for (i, l) in batch_lists.iter().enumerate() {
            let concepts: Vec<bool> = l.iter().map(|&n| is_concept(n)).collect();
            if !concepts.iter().any(|&c| c) || concepts.iter().all(|&c| c) {
                continue; // need both kinds present for a meaningful ratio
            }
            let mass: f32 =
                concepts.iter().enumerate().filter(|&(_, &c)| c).map(|(j, _)| w.at2(i, j)).sum();
            concept_mass += mass as f64;
            concept_frac += concepts.iter().filter(|&&c| c).count() as f64 / l.len() as f64;
            n_entities += 1;
        }
    }
    let mass = concept_mass / n_entities.max(1) as f64;
    let baseline = concept_frac / n_entities.max(1) as f64;
    println!("== Attention analysis on {} ({} links) ==", profile.name, links);
    println!("entities inspected (mixed neighbourhoods): {n_entities}");
    println!(
        "uniform baseline: concept-hub neighbours are {:.1}% of neighbour slots",
        baseline * 100.0
    );
    println!("trained attention mass on concept-hub neighbours: {:.1}%", mass * 100.0);
    println!(
        "=> the trained model {} general-concept neighbours ({})",
        if mass < baseline { "DOWNWEIGHTS" } else { "does not downweight" },
        if mass < baseline { "matches the paper's design claim" } else { "contradicts the claim" }
    );
}
