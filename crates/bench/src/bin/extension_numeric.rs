//! Extension experiment (the paper's stated future work, Section III-A
//! remarks + Section V-B1 error analysis): handling numeric values
//! *separately* from the language model. Blends a tolerant numeric-overlap
//! channel into SDEA's similarity on D_W_15K_V1 — the dataset whose errors
//! the paper attributes to numerals — and reports the delta.

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_scale, bench_sdea_config, bench_seed, load_dataset, run_sdea};
use sdea_core::numeric::blend_numeric_channel;
use sdea_core::rel_module::RelVariant;
use sdea_eval::evaluate_ranking;
use sdea_synth::DatasetProfile;

fn main() {
    let links = bench_scale().links_15k();
    let seed = bench_seed();
    let profile = DatasetProfile::openea_d_w(links, seed);
    eprintln!("[numeric] generating {} ...", profile.name);
    let bundle = load_dataset(&profile);
    let cfg = bench_sdea_config(seed);
    eprintln!("[numeric] training SDEA ...");
    let (_, model) = run_sdea(&bundle, &cfg, RelVariant::Full);
    let result = model.align_test(&bundle.split.test);
    let base = result.metrics();

    println!("== Numeric-value extension on {} ({links} links) ==", profile.name);
    println!("{:<34} {:>6} {:>6} {:>6}", "Variant", "H@1", "H@10", "MRR");
    println!(
        "{:<34} {:>6.1} {:>6.1} {:>6.2}",
        "SDEA (paper model)",
        base.hits1 * 100.0,
        base.hits10 * 100.0,
        base.mrr
    );
    let rows: Vec<usize> = bundle.split.test.iter().map(|&(e, _)| e.0 as usize).collect();
    for w in [0.2f32, 0.4, 0.6] {
        let blended =
            blend_numeric_channel(&result.sim, bundle.ds.kg1(), bundle.ds.kg2(), &rows, w, 0.01);
        let m = evaluate_ranking(&blended, &result.gold);
        println!(
            "{:<34} {:>6.1} {:>6.1} {:>6.2}",
            format!("SDEA + numeric channel (w={w})"),
            m.hits1 * 100.0,
            m.hits10 * 100.0,
            m.mrr
        );
    }
    println!(
        "\nThe paper's error analysis blames numeric values for the residual\n\
         D-W errors; an explicit tolerant-overlap channel should recover part\n\
         of them (their future work, implemented here)."
    );
}
