//! Diagnostic: ranks test pairs by TF-IDF-weighted bag-of-subwords cosine
//! over the Algorithm-1 attribute sequences. This is the *lexical ceiling*
//! of the attribute signal — what a perfect identity-preserving encoder
//! could extract without any cross-lingual learning.

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_seed, load_dataset};
use sdea_core::attr_seq::AttrSequencer;
use sdea_eval::evaluate_ranking;
use sdea_synth::DatasetProfile;
use sdea_tensor::{Rng, Tensor};
use sdea_text::{Tokenizer, WordPieceTrainer};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("fr_en");
    let links: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed = bench_seed();
    let profile = match which {
        "zh_en" => DatasetProfile::dbp15k_zh_en(links, seed),
        "ja_en" => DatasetProfile::dbp15k_ja_en(links, seed),
        "fr_en" => DatasetProfile::dbp15k_fr_en(links, seed),
        "en_fr" => DatasetProfile::srprs_en_fr(links, seed),
        "en_de" => DatasetProfile::srprs_en_de(links, seed),
        "dbp_wd" => DatasetProfile::srprs_dbp_wd(links, seed),
        "dbp_yg" => DatasetProfile::srprs_dbp_yg(links, seed),
        "d_w" => DatasetProfile::openea_d_w(links, seed),
        _ => panic!("unknown profile"),
    };
    let bundle = load_dataset(&profile);
    let vocab = WordPieceTrainer::new(3000).train(bundle.corpus.iter().map(|s| s.as_str()));
    let tok = Tokenizer::new(vocab);
    let mut rng = Rng::seed_from_u64(1);
    let seq1 = AttrSequencer::new(bundle.ds.kg1(), &mut rng);
    let seq2 = AttrSequencer::new(bundle.ds.kg2(), &mut rng);
    let v = tok.vocab().len();

    // document frequency over both sides
    let docs1: Vec<Vec<u32>> = seq1.sequences().iter().map(|s| tok.text_to_ids(s)).collect();
    let docs2: Vec<Vec<u32>> = seq2.sequences().iter().map(|s| tok.text_to_ids(s)).collect();
    let mut df = vec![0f32; v];
    for d in docs1.iter().chain(&docs2) {
        let set: std::collections::HashSet<&u32> = d.iter().collect();
        for &t in set {
            df[t as usize] += 1.0;
        }
    }
    let n_docs = (docs1.len() + docs2.len()) as f32;
    let idf: Vec<f32> = df.iter().map(|&d| ((n_docs + 1.0) / (d + 1.0)).ln()).collect();

    let embed = |docs: &[Vec<u32>]| -> Tensor {
        let mut t = Tensor::zeros(&[docs.len(), v]);
        for (i, d) in docs.iter().enumerate() {
            let mut counts: HashMap<u32, f32> = HashMap::new();
            for &x in d {
                *counts.entry(x).or_insert(0.0) += 1.0;
            }
            for (x, c) in counts {
                t.row_mut(i)[x as usize] = c.ln_1p() * idf[x as usize];
            }
        }
        t
    };
    let e1 = embed(&docs1);
    let e2 = embed(&docs2);
    let rows: Vec<usize> = bundle.split.test.iter().map(|&(e, _)| e.0 as usize).collect();
    let gold: Vec<usize> = bundle.split.test.iter().map(|&(_, e)| e.0 as usize).collect();
    let sim = sdea_eval::cosine_matrix(&e1.gather_rows(&rows), &e2);
    let m = evaluate_ranking(&sim, &gold);
    println!(
        "lexical TF-IDF ceiling on {}: H@1 {:.1} H@10 {:.1} MRR {:.2}",
        profile.name,
        m.hits1 * 100.0,
        m.hits10 * 100.0,
        m.mrr
    );
}
