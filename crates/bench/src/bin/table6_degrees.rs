//! Regenerates **Table VI** — proportion of entity degrees within ranges
//! 1..3, 1..5, 1..10 per dataset — and compares against the paper's
//! figures. This is a pure dataset-statistics experiment: it validates
//! that the generated benchmarks reproduce the long-tail structure the
//! paper's analysis builds on.

#![forbid(unsafe_code)]

use sdea_bench::paper::TABLE6;
use sdea_bench::runner::{bench_scale, bench_seed};
use sdea_kg::DegreeBuckets;
use sdea_synth::{generate, DatasetProfile};
use std::io::Write;

fn main() {
    let scale = bench_scale();
    let seed = bench_seed();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    writeln!(out, "== Table VI: proportion of entity degrees within ranges ==").unwrap();
    writeln!(
        out,
        "{:<14} | {:>12} {:>12} {:>12} | paper (1-3, 1-5, 1-10)",
        "Dataset", "1..3", "1..5", "1..10"
    )
    .unwrap();
    let mut profiles = DatasetProfile::all_paper_datasets(seed);
    for p in &mut profiles {
        p.n_links = if p.name.contains("100K") { scale.links_100k() } else { scale.links_15k() };
    }
    for p in &profiles {
        let ds = generate(p);
        let d = DegreeBuckets::of_pair(ds.kg1(), ds.kg2());
        let paper = TABLE6.iter().find(|(n, _)| *n == p.name).map(|(_, v)| v);
        let paper_str =
            paper.map(|v| format!("{:.1}%, {:.1}%, {:.1}%", v[0], v[1], v[2])).unwrap_or_default();
        writeln!(
            out,
            "{:<14} | {:>11.1}% {:>11.1}% {:>11.1}% | {}",
            p.name,
            d.upto3 * 100.0,
            d.upto5 * 100.0,
            d.upto10 * 100.0,
            paper_str
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nShape check: SRPRS/OpenEA rows must show far more low-degree (1..3)\n\
         entities than DBP15K rows, as in the paper."
    )
    .unwrap();
}
