//! Extension experiment: semi-supervised seed bootstrapping applied to
//! SDEA (the mechanism the paper credits for BootEA/TransEdge's strength,
//! composed with SDEA's attribute embeddings). Compares plain SDEA against
//! `SdeaPipeline::run_bootstrapped` at several confidence thresholds.

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_scale, bench_sdea_config, bench_seed, load_dataset};
use sdea_core::rel_module::RelVariant;
use sdea_core::SdeaPipeline;
use sdea_synth::DatasetProfile;

fn main() {
    let links = bench_scale().links_15k();
    let seed = bench_seed();
    let profile = DatasetProfile::dbp15k_zh_en(links, seed);
    eprintln!("[bootstrap] generating {} ...", profile.name);
    let bundle = load_dataset(&profile);
    let cfg = bench_sdea_config(seed);
    println!("== Bootstrapping extension on {} ({links} links) ==", profile.name);
    println!("{:<34} {:>6} {:>6} {:>6}", "Variant", "H@1", "H@10", "MRR");
    let pipeline = SdeaPipeline {
        kg1: bundle.ds.kg1(),
        kg2: bundle.ds.kg2(),
        split: &bundle.split,
        corpus: &bundle.corpus,
        cfg,
        variant: RelVariant::Full,
    };
    eprintln!("[bootstrap] plain SDEA ...");
    let plain = pipeline.run().test_metrics(&bundle.split.test);
    println!(
        "{:<34} {:>6.1} {:>6.1} {:>6.2}",
        "SDEA",
        plain.hits1 * 100.0,
        plain.hits10 * 100.0,
        plain.mrr
    );
    for threshold in [0.95f32, 0.9, 0.8] {
        eprintln!("[bootstrap] threshold {threshold} ...");
        let m = pipeline.run_bootstrapped(threshold).test_metrics(&bundle.split.test);
        println!(
            "{:<34} {:>6.1} {:>6.1} {:>6.2}",
            format!("SDEA + bootstrap (cos >= {threshold})"),
            m.hits1 * 100.0,
            m.hits10 * 100.0,
            m.mrr
        );
    }
    println!(
        "\nBootstrapping promotes confident mutual-nearest pairs to training\n\
         seeds for the relation stage; high thresholds should help or be\n\
         neutral, low thresholds admit noise."
    );
}
