//! Scaling-curve benchmark: out-of-core embedding + blocked evaluation
//! against the full-materialization path, with memory as a first-class
//! metric.
//!
//! For each scale factor the bin generates a DBP15K-profile benchmark via
//! [`DatasetProfile::scaled`], builds one attribute module, and runs the
//! embed-KG2-then-rank-every-seed workload twice over the *same* module
//! and token caches:
//!
//! * **sharded** — `AttrModule::embed_all_spill` streams the target table
//!   to disk shards, `evaluate_ranking_shards` ranks against the shards a
//!   query block at a time; the full table and the n×m similarity matrix
//!   never exist in memory.
//! * **full** — `embed_all` materializes the table, `cosine_matrix` the
//!   whole similarity matrix, `evaluate_ranking` scans it.
//!
//! Each phase is timed and bracketed by `sdea_obs::mem::reset_peak`, so
//! the reported peak is the phase's *incremental* high-water mark over the
//! shared baseline (module weights + token caches). The phases must agree
//! bitwise on Hits@1/Hits@10/MRR — sharding and blocking are execution
//! knobs, not approximations — and the full run additionally enforces the
//! acceptance bar: at the largest scale the sharded peak must stay below
//! half the materialized peak.
//!
//! Usage: `bench_scale [--smoke]`. `--smoke` is the CI mode: two small
//! scale points, equality assertions only (the peak ratio is noise at toy
//! sizes), and its own report file. Reports land in
//! `results/BENCH_scale.json` / `results/BENCH_scale_smoke.json`.

#![forbid(unsafe_code)]

use sdea_bench::runner::report_dir;
use sdea_core::{AttrModule, AttrSequencer, SdeaConfig};
use sdea_eval::{cosine_matrix, evaluate_ranking, evaluate_ranking_shards, AlignmentMetrics};
use sdea_obs::json::Json;
use sdea_obs::mem;
use sdea_synth::{generate, DatasetProfile};
use sdea_tensor::Rng;
use std::time::Instant;

/// One measured phase: wall seconds plus its incremental allocator peak.
struct Phase {
    secs: f64,
    peak_bytes: u64,
    metrics: AlignmentMetrics,
}

/// Runs `f` with the allocator peak rebased to the current live size, so
/// the returned peak covers only this phase's allocations.
fn measured(f: impl FnOnce() -> AlignmentMetrics) -> Phase {
    mem::reset_peak();
    let base = mem::current_bytes();
    let t0 = Instant::now();
    let metrics = f();
    Phase {
        secs: t0.elapsed().as_secs_f64(),
        peak_bytes: mem::peak_bytes().saturating_sub(base),
        metrics,
    }
}

struct ScalePoint {
    scale: usize,
    n1: usize,
    n2: usize,
    queries: usize,
    sharded: Phase,
    full: Phase,
}

/// Measures one scale point. The module, token caches and query
/// embeddings are built up front and shared by both phases, so the phase
/// peaks compare exactly the parts that differ: table + similarity
/// residency.
fn run_point(links: usize, scale: usize, shards_root: &std::path::Path) -> ScalePoint {
    let profile = DatasetProfile::dbp15k_zh_en(links, 3).scaled(scale);
    let ds = generate(&profile);
    let corpus = sdea_synth::corpus::dataset_corpus(&ds);

    let mut cfg = SdeaConfig::test_tiny();
    // Small windows relative to the table keep the out-of-core working
    // set honest; both are execution knobs with no effect on results.
    cfg.embed_shard_rows = 128;
    cfg.eval_block_rows = 64;

    let mut rng = Rng::seed_from_u64(0x5dea_5ca1);
    let mut seq_rng = rng.split();
    let (seq1, seq2) =
        (AttrSequencer::new(ds.kg1(), &mut seq_rng), AttrSequencer::new(ds.kg2(), &mut seq_rng));
    let module = AttrModule::build(&cfg, &corpus, &mut rng);
    let cache1 = module.token_cache(seq1.sequences());
    let cache2 = module.token_cache(seq2.sequences());

    // Every seed link is a query: src entity ranked against all of KG2.
    let src_rows: Vec<usize> = ds.seeds.pairs.iter().map(|&(a, _)| a.0 as usize).collect();
    let gold: Vec<usize> = ds.seeds.pairs.iter().map(|&(_, b)| b.0 as usize).collect();
    let src_emb = module.embed_rows(&cache1, &src_rows, &mut rng);

    // Sharded first: the heap holds only the shared baseline, so its
    // peak is not inflated by the other phase's leftovers.
    let dir = shards_root.join(format!("scale_{scale}"));
    let die = |what: &str, e: std::io::Error| -> ! {
        eprintln!("bench_scale: {what} at scale {scale}: {e}");
        std::process::exit(1)
    };
    let sharded = measured(|| {
        let shards = module
            .embed_all_spill(&cache2, &mut Rng::seed_from_u64(0), &dir, scale as u64)
            .unwrap_or_else(|e| die("embedding spill failed", e));
        evaluate_ranking_shards(&src_emb, &shards, &gold, cfg.eval_block_rows)
            .unwrap_or_else(|e| die("sharded evaluation failed", e))
    });
    let _ = std::fs::remove_dir_all(&dir);

    let full = measured(|| {
        let h2 = module.embed_all(&cache2, &mut Rng::seed_from_u64(0));
        let sim = cosine_matrix(&src_emb, &h2);
        evaluate_ranking(&sim, &gold)
    });

    for (name, a, b) in [
        ("hits1", sharded.metrics.hits1, full.metrics.hits1),
        ("hits10", sharded.metrics.hits10, full.metrics.hits10),
        ("mrr", sharded.metrics.mrr, full.metrics.mrr),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "scale {scale}: sharded+blocked {name} diverged from materialized ({a} vs {b})"
        );
    }

    ScalePoint {
        scale,
        n1: ds.kg1().num_entities(),
        n2: ds.kg2().num_entities(),
        queries: src_rows.len(),
        sharded,
        full,
    }
}

fn phase_json(p: &Phase) -> Json {
    Json::obj(vec![
        ("secs", Json::Num(p.secs)),
        ("peak_bytes", Json::Num(p.peak_bytes as f64)),
        ("hits1", Json::Num(p.metrics.hits1)),
        ("hits10", Json::Num(p.metrics.hits10)),
        ("mrr", Json::Num(p.metrics.mrr)),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    sdea_obs::set_enabled(true);
    mem::set_counting(true);
    let (links, scales): (usize, &[usize]) = if smoke { (60, &[1, 2]) } else { (200, &[1, 4, 10]) };

    let shards_root = std::env::temp_dir().join(format!("sdea_bench_scale_{}", std::process::id()));
    let points: Vec<ScalePoint> =
        scales.iter().map(|&s| run_point(links, s, &shards_root)).collect();
    let _ = std::fs::remove_dir_all(&shards_root);

    println!(
        "{:>5} {:>7} {:>7} {:>7}  {:>12} {:>12} {:>6}  {:>9} {:>9}",
        "scale", "n1", "n2", "queries", "shard KiB", "full KiB", "ratio", "shard s", "full s"
    );
    for p in &points {
        println!(
            "{:>5} {:>7} {:>7} {:>7}  {:>12} {:>12} {:>6.3}  {:>9.3} {:>9.3}",
            p.scale,
            p.n1,
            p.n2,
            p.queries,
            p.sharded.peak_bytes / 1024,
            p.full.peak_bytes / 1024,
            p.sharded.peak_bytes as f64 / p.full.peak_bytes.max(1) as f64,
            p.sharded.secs,
            p.full.secs,
        );
    }

    // Acceptance bar (full mode only — toy smoke sizes put both phases
    // inside allocator noise): at the largest scale the out-of-core path
    // must hold under half the materialized peak.
    if let Some(last) = points.last().filter(|_| !smoke && mem::counting_enabled()) {
        let ratio = last.sharded.peak_bytes as f64 / last.full.peak_bytes.max(1) as f64;
        if ratio >= 0.5 {
            eprintln!(
                "FAIL: at scale {} the sharded peak is {:.1}% of the materialized peak (bar: < 50%)",
                last.scale,
                ratio * 100.0
            );
            std::process::exit(1);
        }
    }

    let rows = points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("scale", Json::Num(p.scale as f64)),
                ("n1_entities", Json::Num(p.n1 as f64)),
                ("n2_entities", Json::Num(p.n2 as f64)),
                ("queries", Json::Num(p.queries as f64)),
                ("sharded", phase_json(&p.sharded)),
                ("full", phase_json(&p.full)),
                (
                    "peak_ratio",
                    Json::Num(p.sharded.peak_bytes as f64 / p.full.peak_bytes.max(1) as f64),
                ),
            ])
        })
        .collect();
    let out = Json::obj(vec![
        ("bench", Json::str("bench_scale_pr8")),
        ("links_base", Json::Num(links as f64)),
        ("mem_counting", Json::Num(mem::counting_enabled() as u8 as f64)),
        ("vm_hwm_bytes", mem::vm_hwm_bytes().map_or(Json::Null, |b| Json::Num(b as f64))),
        ("points", Json::Arr(rows)),
    ]);

    let dir = report_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(if smoke { "BENCH_scale_smoke.json" } else { "BENCH_scale.json" });
    match sdea_obs::fsio::atomic_write(&path, out.encode().as_bytes()) {
        Ok(()) => println!("bench report -> {}", path.display()),
        Err(e) => {
            eprintln!("bench report failed: {e}");
            std::process::exit(1);
        }
    }
}
