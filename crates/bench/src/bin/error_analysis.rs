//! The paper's Section V-B1 error analysis on D_W_15K_V1:
//!
//! * "99.6% of the to-be-aligned entities in the test set have no matching
//!   neighbors" — we report the matching-neighbour fraction for the
//!   generated datasets;
//! * "about 40% of attribute values in this dataset are numerical …
//!   9% identifiers, 23% integers and floats, and 8% dates" — we report
//!   the value-kind mix of the W side.

#![forbid(unsafe_code)]

use sdea_bench::runner::{bench_scale, bench_seed};
use sdea_kg::stats::value_kind_mix;
use sdea_synth::profiles::matching_neighbor_fraction;
use sdea_synth::{generate, DatasetProfile};

fn main() {
    let scale = bench_scale();
    let seed = bench_seed();
    println!("== Error analysis (paper Section V-B1) ==\n");

    let dw = generate(&DatasetProfile::openea_d_w(scale.links_15k(), seed));
    let dense = generate(&DatasetProfile::dbp15k_zh_en(scale.links_15k(), seed));

    let f_dw = matching_neighbor_fraction(&dw);
    let f_dense = matching_neighbor_fraction(&dense);
    println!("fraction of seed pairs WITH at least one matching (specific) neighbour:");
    println!(
        "  D_W_15K_V1 : {:5.1}%   (paper: 0.4% — '99.6% have no matching neighbors')",
        f_dw * 100.0
    );
    println!("  ZH-EN      : {:5.1}%   (dense reference)", f_dense * 100.0);
    println!(
        "  shape: D-W must be far below the dense reference -> {}",
        if f_dw < f_dense * 0.5 { "OK" } else { "MISMATCH" }
    );

    println!("\nattribute value kinds on the W side of D_W_15K_V1:");
    let mix = value_kind_mix(dw.kg2());
    let mut numeric = 0.0;
    for (kind, frac) in &mix {
        println!("  {kind:?}: {:5.1}%", frac * 100.0);
        if matches!(
            kind,
            sdea_kg::ValueKind::Number | sdea_kg::ValueKind::Date | sdea_kg::ValueKind::Identifier
        ) {
            numeric += frac;
        }
    }
    println!(
        "  numerical total: {:5.1}%   (paper: ~40% = 9% ids + 23% numbers + 8% dates)",
        numeric * 100.0
    );
}
