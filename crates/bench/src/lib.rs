//! # sdea-bench
//!
//! The experiment harness: one binary per table of the SDEA paper, plus
//! criterion microbenches. Shared machinery (dataset scaling, method
//! runners, timing, table assembly) lives here.
//!
//! ## Scale
//!
//! By default datasets are generated at **reproduction scale** (1/10 of the
//! originals — 1 500 links per 15K dataset); set `SDEA_SCALE=quick` for a
//! fast pass (300 links) or `SDEA_SCALE=full` for the 1/10 scale explicitly.
//! `SDEA_SEED` overrides the master seed.

#![forbid(unsafe_code)]

pub mod paper;
pub mod runner;

pub use runner::{
    bench_scale, load_dataset, report_dir, run_sdea, write_sdea_run_report, BenchScale,
    DatasetBundle, MethodOutcome,
};
