//! Shared experiment machinery for the table binaries.

use sdea_baselines::bert_int::BertInt;
use sdea_baselines::cea::Cea;
use sdea_baselines::gnn::{GatAligner, Gcn, GcnAlign, Hman};
use sdea_baselines::name_gcn::NameGcn;
use sdea_baselines::rsn::Rsn4Ea;
use sdea_baselines::transe::{BootEa, IpTransE, Jape, JapeStru, MTransE, Naea, TransEdge};
use sdea_baselines::{AlignmentMethod, MethodInput};
use sdea_core::rel_module::RelVariant;
use sdea_core::{SdeaConfig, SdeaModel, SdeaPipeline};
use sdea_eval::AlignmentMetrics;
use sdea_kg::SplitSeeds;
use sdea_synth::{generate, DatasetProfile, GeneratedDataset};
use sdea_tensor::Rng;
use std::time::Instant;

/// Dataset sizing for a bench run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BenchScale {
    /// 300 links — minutes for a whole table on one core.
    Quick,
    /// 1 500 links (1/10 of the paper's 15K sets) — the reproduction scale.
    Full,
}

impl BenchScale {
    /// Links for a 15K-class dataset at this scale.
    pub fn links_15k(self) -> usize {
        match self {
            BenchScale::Quick => 300,
            BenchScale::Full => 1500,
        }
    }

    /// Links for the 100K-class dataset at this scale.
    pub fn links_100k(self) -> usize {
        match self {
            BenchScale::Quick => 1000,
            BenchScale::Full => 10_000,
        }
    }
}

/// Reads `SDEA_SCALE` (`quick`/`full`; default `quick`; anything else is a
/// hard startup error — `SDEA_SCALE=ful` used to silently run quick).
pub fn bench_scale() -> BenchScale {
    match sdea_obs::env::enum_or_exit("SDEA_SCALE", &["quick", "full"]) {
        Some("full") => BenchScale::Full,
        _ => BenchScale::Quick,
    }
}

/// Reads `SDEA_SEED` (default 2022, the paper's year; malformed values are
/// a hard startup error).
pub fn bench_seed() -> u64 {
    sdea_obs::env::parse_or_exit::<u64>("SDEA_SEED", "an unsigned integer seed").unwrap_or(2022)
}

/// A generated dataset together with its split and corpus — everything a
/// method needs.
pub struct DatasetBundle {
    /// The generated dataset.
    pub ds: GeneratedDataset,
    /// 2:1:7 split of the seeds.
    pub split: SplitSeeds,
    /// Unlabeled pre-training corpus.
    pub corpus: Vec<String>,
}

/// Generates a dataset bundle from a profile (split seeded from the
/// profile's seed so every method sees identical data).
pub fn load_dataset(profile: &DatasetProfile) -> DatasetBundle {
    let ds = generate(profile);
    let mut split_rng = Rng::seed_from_u64(profile.seed ^ 0x5EED);
    let split = ds.seeds.split_paper(&mut split_rng);
    let corpus = sdea_synth::corpus::dataset_corpus(&ds);
    DatasetBundle { ds, split, corpus }
}

/// What a method run produced.
#[derive(Clone, Debug)]
pub struct MethodOutcome {
    /// Greedy-ranking metrics on the test pairs.
    pub metrics: AlignmentMetrics,
    /// Hits@1 after stable matching, when computed.
    pub stable_hits1: Option<f64>,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs full SDEA (optionally a rel-module ablation variant) on a bundle.
/// Returns the outcome plus the trained model (for ablation reuse).
///
/// The observability registry is reset first, so a [`write_sdea_run_report`]
/// right after captures spans/counters of exactly this run.
pub fn run_sdea(
    bundle: &DatasetBundle,
    cfg: &SdeaConfig,
    variant: RelVariant,
) -> (MethodOutcome, SdeaModel) {
    sdea_obs::reset();
    let start = Instant::now();
    let pipeline = SdeaPipeline {
        kg1: bundle.ds.kg1(),
        kg2: bundle.ds.kg2(),
        split: &bundle.split,
        corpus: &bundle.corpus,
        cfg: cfg.clone(),
        variant,
    };
    let model = pipeline.run();
    let result = model.align_test(&bundle.split.test);
    let outcome = MethodOutcome {
        metrics: result.metrics(),
        stable_hits1: Some(result.stable_matching_hits1()),
        seconds: start.elapsed().as_secs_f64(),
    };
    (outcome, model)
}

/// Directory run reports are written to: `SDEA_REPORT_DIR`, default
/// `results` (relative to the working directory, which the experiment
/// scripts pin to the repo root).
pub fn report_dir() -> std::path::PathBuf {
    sdea_obs::env::string_or_exit("SDEA_REPORT_DIR").unwrap_or_else(|| "results".into()).into()
}

/// Assembles and writes the JSON run report of one SDEA run: config, seed,
/// thread budget, final metrics, per-epoch loss / validation-Hits@1 curves
/// of both training stages, and the observability registry's span timings
/// and counters (reset at the start of [`run_sdea`]). Returns the path
/// written, `results/run_report_<run>_<dataset>.json`.
pub fn write_sdea_run_report(
    run: &str,
    dataset: &str,
    cfg: &SdeaConfig,
    outcome: &MethodOutcome,
    model: &SdeaModel,
) -> std::io::Result<std::path::PathBuf> {
    let mut report =
        sdea_obs::RunReport::new(format!("{run}_{dataset}"), cfg.seed, sdea_tensor::max_threads());
    report.config_kv("dataset", dataset);
    report.config_kv("scale", format!("{:?}", bench_scale()));
    report.config_kv("embed_dim", cfg.embed_dim);
    report.config_kv("lm_hidden", cfg.lm_hidden);
    report.config_kv("lm_layers", cfg.lm_layers);
    report.config_kv("vocab_budget", cfg.vocab_budget);
    report.config_kv("max_seq", cfg.max_seq);
    report.config_kv("mlm_epochs", cfg.mlm_epochs);
    report.config_kv("attr_epochs", cfg.attr_epochs);
    report.config_kv("attr_batch", cfg.attr_batch);
    report.config_kv("attr_lr", cfg.attr_lr);
    report.config_kv("rel_epochs", cfg.rel_epochs);
    report.config_kv("rel_batch", cfg.rel_batch);
    report.config_kv("rel_lr", cfg.rel_lr);
    report.config_kv("margin", cfg.margin);
    report.config_kv("n_candidates", cfg.n_candidates);
    report.config_kv("patience", cfg.patience);
    report.config_kv("max_neighbors", cfg.max_neighbors);
    report.config_kv("pooling", format!("{:?}", cfg.pooling));
    report.metric("test_hits1", outcome.metrics.hits1);
    report.metric("test_hits10", outcome.metrics.hits10);
    report.metric("test_mrr", outcome.metrics.mrr);
    if let Some(h) = outcome.stable_hits1 {
        report.metric("stable_matching_hits1", h);
    }
    report.metric("wall_secs", outcome.seconds);
    report.metric("attr_best_epoch", model.attr_report.best_epoch as f64);
    report.metric("rel_best_epoch", model.rel_report.best_epoch as f64);
    report.curve("attr_loss", model.attr_report.epoch_losses.iter().map(|&l| l as f64));
    report.curve("attr_valid_hits1", model.attr_report.valid_hits1.iter().copied());
    report.curve("rel_loss", model.rel_report.epoch_losses.iter().map(|&l| l as f64));
    report.curve("rel_valid_hits1", model.rel_report.valid_hits1.iter().copied());
    report.write_to_dir(report_dir())
}

/// Runs a baseline method on a bundle (with stable-matching Hits@1 when
/// `with_matching` is set — only CEA's paper row uses it).
pub fn run_baseline(
    method: &dyn AlignmentMethod,
    bundle: &DatasetBundle,
    seed: u64,
    with_matching: bool,
) -> MethodOutcome {
    let start = Instant::now();
    let input = MethodInput {
        kg1: bundle.ds.kg1(),
        kg2: bundle.ds.kg2(),
        split: &bundle.split,
        corpus: &bundle.corpus,
        seed,
    };
    let result = method.align(&input);
    MethodOutcome {
        metrics: result.metrics(),
        stable_hits1: with_matching.then(|| result.stable_matching_hits1()),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// The full baseline suite in the paper's table order (excluding SDEA).
/// The boolean marks methods whose "CEA"-style row needs stable matching.
pub fn baseline_suite() -> Vec<Box<dyn AlignmentMethod>> {
    vec![
        Box::new(MTransE::default()),
        Box::new(JapeStru::default()),
        Box::new(Jape::default()),
        Box::new(Naea::default()),
        Box::new(BootEa::default()),
        Box::new(TransEdge::default()),
        Box::new(IpTransE::default()),
        Box::new(Rsn4Ea::default()),
        Box::new(Gcn::default()),
        Box::new(GcnAlign::default()),
        Box::new(GatAligner::mugnn()),
        Box::new(GatAligner::kecg()),
        Box::new(Hman::default()),
        Box::new(NameGcn::rdgcn()),
        Box::new(NameGcn::hgcn()),
        Box::new(Cea::default()),
        Box::new(BertInt::default()),
    ]
}

/// Runs one full paper-style table: every baseline + CEA's stable-matching
/// row + SDEA + SDEA w/o rel, on each dataset profile. Prints progress to
/// stderr and returns the formatted table plus a paper-vs-measured digest.
pub fn run_full_table(
    title: &str,
    profiles: &[DatasetProfile],
    paper_table: &[crate::paper::PaperRow],
) -> String {
    use sdea_eval::report::{format_table, TableRow};
    let seed = bench_seed();
    let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
    let bundles: Vec<DatasetBundle> = profiles
        .iter()
        .map(|p| {
            eprintln!("[{}] generating {} ...", title, p.name);
            load_dataset(p)
        })
        .collect();

    let mut rows: Vec<TableRow> = Vec::new();
    let methods = baseline_suite();
    let mut cea_matching_cells: Vec<Option<AlignmentMetrics>> = Vec::new();
    for method in &methods {
        let mut cells = Vec::with_capacity(bundles.len());
        let is_cea = method.name() == "CEA (Emb)";
        let mut matching_cells = Vec::with_capacity(bundles.len());
        for (bundle, name) in bundles.iter().zip(&names) {
            eprintln!("[{}] {} on {} ...", title, method.name(), name);
            let out = run_baseline(method.as_ref(), bundle, seed, is_cea);
            eprintln!("[{}]   H@1 {:.1} ({:.0}s)", title, out.metrics.hits1 * 100.0, out.seconds);
            if is_cea {
                matching_cells.push(out.stable_hits1.map(|h| AlignmentMetrics {
                    hits1: h,
                    hits10: f64::NAN,
                    mrr: f64::NAN,
                }));
            }
            cells.push(out.metrics);
        }
        rows.push(TableRow::full(method.name(), cells));
        if is_cea {
            cea_matching_cells = matching_cells;
        }
        if method.name() == "CEA (Emb)" {
            // paper's "CEA" row: stable matching, H@1 only
            rows.push(TableRow { method: "CEA".into(), cells: cea_matching_cells.clone() });
        }
    }

    // SDEA + ablation
    let cfg = bench_sdea_config(seed);
    let mut sdea_cells = Vec::new();
    let mut ablation_cells = Vec::new();
    for (bundle, name) in bundles.iter().zip(&names) {
        eprintln!("[{}] SDEA on {} ...", title, name);
        let (out, model) = run_sdea(bundle, &cfg, RelVariant::Full);
        eprintln!("[{}]   H@1 {:.1} ({:.0}s)", title, out.metrics.hits1 * 100.0, out.seconds);
        match write_sdea_run_report(title, name, &cfg, &out, &model) {
            Ok(path) => eprintln!("[{}]   run report -> {}", title, path.display()),
            Err(e) => eprintln!("[{}]   run report failed: {e}", title),
        }
        sdea_cells.push(out.metrics);
        ablation_cells.push(model.align_test_attr_only(&bundle.split.test).metrics());
    }
    rows.push(TableRow::full("SDEA", sdea_cells.clone()));
    rows.push(TableRow::full("SDEA w/o rel.", ablation_cells.clone()));

    let mut out = format_table(title, &names, &rows);
    out.push_str("\n--- paper vs measured (Hits@1 %) ---\n");
    for row in &rows {
        for (col, cell) in row.cells.iter().enumerate() {
            if let (Some(m), Some(p)) =
                (cell, crate::paper::paper_h1(paper_table, &row.method, col))
            {
                out.push_str(&format!(
                    "{:<14} {:<12} paper {:5.1}  measured {:5.1}\n",
                    row.method,
                    names[col],
                    p,
                    m.hits1 * 100.0
                ));
            }
        }
    }
    out
}

/// The default bench configuration for SDEA at a given seed.
///
/// Individual knobs can be overridden through `SDEA_*` environment
/// variables (used by the calibration tool):
/// `SDEA_MLM_EPOCHS`, `SDEA_ATTR_EPOCHS`, `SDEA_MAX_SEQ`, `SDEA_HIDDEN`,
/// `SDEA_ATTR_LR`, `SDEA_MARGIN`, `SDEA_VOCAB` (`SDEA_THREADS` is handled
/// by the par layer itself, capped at the machine's cores).
/// `SDEA_CHECKPOINT_DIR` enables crash-safe checkpointing into the given
/// directory (a rerun with the same configuration resumes from it,
/// bit-identically); `SDEA_CKPT_EVERY` sets the mid-stage cadence.
/// `SDEA_SHARD_ROWS` / `SDEA_EVAL_BLOCK_ROWS` set the out-of-core spill
/// shard height and blocked-evaluation block height (execution knobs:
/// results are bit-identical at any value).
pub fn bench_sdea_config(seed: u64) -> SdeaConfig {
    let mut cfg = SdeaConfig { seed, ..SdeaConfig::default() };
    // Strict parses: a typo'd override (`SDEA_ATTR_EPOCHS=1O`) used to be
    // silently dropped, running the default config under the wrong label.
    let getu = |k: &str| sdea_obs::env::parse_or_exit::<usize>(k, "an unsigned integer");
    let getf = |k: &str| sdea_obs::env::parse_or_exit::<f32>(k, "a floating-point number");
    if let Some(v) = getu("SDEA_MLM_EPOCHS") {
        cfg.mlm_epochs = v;
    }
    // SDEA_THREADS is deliberately NOT copied into cfg.threads: the par
    // layer already resolves it (capped at the machine's cores), while
    // cfg.threads is a literal programmatic override that would bypass
    // the cap and oversubscribe small containers.
    if let Some(v) = getu("SDEA_ATTR_EPOCHS") {
        cfg.attr_epochs = v;
    }
    if let Some(v) = getu("SDEA_MAX_SEQ") {
        cfg.max_seq = v;
    }
    if let Some(v) = getu("SDEA_HIDDEN") {
        cfg.lm_hidden = v;
        cfg.embed_dim = v;
    }
    if let Some(v) = getu("SDEA_VOCAB") {
        cfg.vocab_budget = v;
    }
    if let Some(v) = getf("SDEA_ATTR_LR") {
        cfg.attr_lr = v;
    }
    if let Some(v) = getf("SDEA_MARGIN") {
        cfg.margin = v;
    }
    if let Some(dir) = sdea_obs::env::string_or_exit("SDEA_CHECKPOINT_DIR") {
        cfg.checkpoint_dir = Some(dir.into());
    }
    if let Some(v) = getu("SDEA_CKPT_EVERY") {
        cfg.checkpoint_every = v;
    }
    // Out-of-core execution knobs (bit-identical results at any value).
    if let Some(v) = getu("SDEA_SHARD_ROWS") {
        cfg.embed_shard_rows = v;
    }
    if let Some(v) = getu("SDEA_EVAL_BLOCK_ROWS") {
        cfg.eval_block_rows = v;
    }
    cfg
}
