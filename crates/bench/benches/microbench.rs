//! Criterion microbenchmarks over the system's hot kernels: dense matmul,
//! transformer forward, GRU relation module forward, tokenization,
//! candidate generation and alignment scoring — plus thread-budget
//! comparisons (`*_t1` vs `*_tN`) for the fork-join layer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sdea_core::rel_module::{NeighborBatch, RelModule, RelVariant};
use sdea_eval::{cosine_matrix, top_k_indices};
use sdea_kg::EntityId;
use sdea_lm::{LmConfig, TokenBatch, TransformerLm};
use sdea_tensor::{with_thread_budget, Graph, ParamStore, Rng, Tensor};
use sdea_text::{Tokenizer, WordPieceTrainer};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(1);
    // Square sizes the tiled-kernel acceptance numbers are quoted at, each
    // against the naive pre-tiling reference kernel.
    for n in [128usize, 256, 512] {
        let a = Tensor::rand_normal(&[n, n], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[n, n], 1.0, &mut rng);
        c.bench_function(&format!("matmul_{n}x{n}x{n}_tiled"), |bch| {
            bch.iter(|| std::hint::black_box(a.matmul(&b)))
        });
        let mut out = vec![0.0f32; n * n];
        c.bench_function(&format!("matmul_{n}x{n}x{n}_reference"), |bch| {
            bch.iter(|| {
                sdea_tensor::kernels::reference::matmul_into(a.data(), b.data(), &mut out, n, n, n);
                std::hint::black_box(&out);
            })
        });
    }
    let a2 = Tensor::rand_normal(&[512, 128], 1.0, &mut rng);
    let b2 = Tensor::rand_normal(&[128, 256], 1.0, &mut rng);
    c.bench_function("matmul_512x128x256", |bch| bch.iter(|| std::hint::black_box(a2.matmul(&b2))));
}

fn bench_transformer_forward(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let cfg = LmConfig::small(2000);
    let lm = TransformerLm::new(cfg.clone(), &mut store, &mut rng);
    let rows: Vec<sdea_text::Encoded> = (0..8)
        .map(|i| {
            let ids: Vec<u32> = (0..cfg.max_seq as u32).map(|j| 5 + (i * 31 + j) % 1900).collect();
            sdea_text::Encoded { ids, mask: vec![1; cfg.max_seq] }
        })
        .collect();
    let batch = TokenBatch::from_encoded(&rows);
    c.bench_function("transformer_fwd_b8_s64_h128", |bch| {
        bch.iter(|| {
            let g = Graph::new();
            let h = lm.forward(&g, &store, &batch, false, &mut rng);
            std::hint::black_box(g.value_cloned(h))
        })
    });
}

fn bench_gru_forward(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let rel = RelModule::new(128, RelVariant::Full, &mut store, &mut rng);
    let table = Tensor::rand_normal(&[1000, 128], 0.5, &mut rng);
    let lists: Vec<Vec<usize>> =
        (0..128).map(|i| (0..8).map(|j| (i * 13 + j * 7) % 1000).collect()).collect();
    let batch = NeighborBatch::from_lists(&lists);
    c.bench_function("bigru_attention_fwd_b128_t8_d128", |bch| {
        bch.iter(|| {
            let g = Graph::new();
            let t = g.constant(table.clone());
            let out = rel.forward(&g, &store, t, &batch);
            std::hint::black_box(g.value_cloned(out))
        })
    });
}

fn bench_tokenizer(c: &mut Criterion) {
    let corpus: Vec<String> = (0..200)
        .map(|i| format!("entity number {i} born {} in settlement alpha{}", 1900 + i % 100, i % 17))
        .collect();
    let vocab = WordPieceTrainer::new(1500).train(corpus.iter().map(|s| s.as_str()));
    let tok = Tokenizer::new(vocab);
    let text = "cristiano ronaldo dos santos aveiro born 1985-02-05 in funchal madeira portugal plays for real madrid and al nassr";
    c.bench_function("tokenize_sentence", |bch| {
        bch.iter(|| std::hint::black_box(tok.encode(text, 64)))
    });
}

fn bench_candidate_generation(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(4);
    let src = Tensor::rand_normal(&[300, 128], 1.0, &mut rng);
    let tgt = Tensor::rand_normal(&[1500, 128], 1.0, &mut rng);
    let sources: Vec<EntityId> = (0..300u32).map(EntityId).collect();
    c.bench_function("candidate_gen_300x1500_top20", |bch| {
        bch.iter(|| {
            std::hint::black_box(sdea_core::CandidateSet::generate(&sources, &src, &tgt, 20))
        })
    });
}

fn bench_alignment_scoring(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(5);
    let a = Tensor::rand_normal(&[1000, 384], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[1000, 384], 1.0, &mut rng);
    c.bench_function("cosine_matrix_1000x1000_d384", |bch| {
        bch.iter(|| std::hint::black_box(cosine_matrix(&a, &b)))
    });
    let sim = cosine_matrix(&a, &b);
    c.bench_function("top10_per_row_1000x1000", |bch| {
        bch.iter_batched(
            || sim.clone(),
            |s| {
                let m = s.shape()[1];
                for i in 0..s.shape()[0] {
                    std::hint::black_box(top_k_indices(&s.data()[i * m..(i + 1) * m], 10));
                }
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("stable_matching_1000x1000", |bch| {
        bch.iter(|| std::hint::black_box(sdea_core::stable_matching(&sim)))
    });
}

fn bench_par_matmul(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(6);
    let a = Tensor::rand_normal(&[512, 256], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[256, 512], 1.0, &mut rng);
    c.bench_function("par_matmul_512x256x512_t1", |bch| {
        bch.iter(|| with_thread_budget(1, || std::hint::black_box(a.matmul(&b))))
    });
    c.bench_function("par_matmul_512x256x512_tN", |bch| {
        bch.iter(|| with_thread_budget(0, || std::hint::black_box(a.matmul(&b))))
    });
}

fn bench_par_cosine(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(7);
    let a = Tensor::rand_normal(&[1000, 256], 1.0, &mut rng);
    let b = Tensor::rand_normal(&[1000, 256], 1.0, &mut rng);
    c.bench_function("par_cosine_1000x1000_d256_t1", |bch| {
        bch.iter(|| with_thread_budget(1, || std::hint::black_box(cosine_matrix(&a, &b))))
    });
    c.bench_function("par_cosine_1000x1000_d256_tN", |bch| {
        bch.iter(|| with_thread_budget(0, || std::hint::black_box(cosine_matrix(&a, &b))))
    });
}

fn bench_embed_all(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(8);
    let corpus: Vec<String> = (0..256)
        .map(|i| format!("entity gamma{i} founded {} near delta{}", 1800 + i % 200, i % 29))
        .collect();
    let mut cfg = sdea_core::SdeaConfig::test_tiny();
    cfg.mlm_epochs = 0;
    let module = sdea_core::AttrModule::build(&cfg, &corpus, &mut rng);
    let cache = module.token_cache(&corpus);
    c.bench_function("embed_all_256_t1", |bch| {
        bch.iter(|| {
            with_thread_budget(1, || {
                std::hint::black_box(module.embed_all(&cache, &mut Rng::seed_from_u64(0)))
            })
        })
    });
    c.bench_function("embed_all_256_tN", |bch| {
        bch.iter(|| {
            with_thread_budget(0, || {
                std::hint::black_box(module.embed_all(&cache, &mut Rng::seed_from_u64(0)))
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_matmul,
        bench_transformer_forward,
        bench_gru_forward,
        bench_tokenizer,
        bench_candidate_generation,
        bench_alignment_scoring,
        bench_par_matmul,
        bench_par_cosine,
        bench_embed_all
}
criterion_main!(benches);
