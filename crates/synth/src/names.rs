//! Deterministic pseudo-word generation and per-language surface forms.
//!
//! Every nameable thing in the world is a sequence of [`WordId`]s. A word's
//! surface string depends on the rendering [`Lang`]:
//!
//! * `En` — a pronounceable pseudo-word derived from the word id;
//! * `Fr`/`De` — the English form with small deterministic mutations
//!   (accents, letter doubling), so string similarity is high (these are the
//!   "well-aligned entity names" datasets of the paper);
//! * `Zh`/`Ja` — an unrelated pseudo-word from a keyed cipher, so the two
//!   sides share no name tokens (the paper's translated datasets);
//!
//! All derivations are pure functions of `(word id, language)` — no global
//! state, fully reproducible.

use crate::language::Lang;

/// Index of a word in the global word space.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WordId(pub u32);

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr",
    "r", "s", "st", "t", "tr", "v", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ia", "ei", "ou"];
const CODAS: &[&str] = &["", "n", "r", "l", "s", "m", "t", ""];

const CIPHER_ONSETS: &[&str] =
    &["zh", "x", "q", "sh", "ts", "ry", "ky", "gy", "hy", "my", "ny", "w", "y", "j", "sz", "dz"];
const CIPHER_VOWELS: &[&str] = &["ao", "uo", "ie", "ue", "ai", "o", "u", "i"];

#[inline]
fn mix(seed: u64) -> u64 {
    // splitmix64 finalizer
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates per-language surfaces for word ids.
#[derive(Clone, Debug, Default)]
pub struct WordBank;

impl WordBank {
    /// A word bank (stateless; exists for API symmetry and future caching).
    pub fn new() -> Self {
        WordBank
    }

    /// The surface string of `word` in `lang`.
    pub fn surface(&self, word: WordId, lang: Lang) -> String {
        match lang {
            Lang::En => base_word(word.0 as u64, 2 + (mix(word.0 as u64) % 2) as usize),
            Lang::Fr => mutate_literal(&self.surface(word, Lang::En), word.0 as u64, 0xF1),
            Lang::De => mutate_literal(&self.surface(word, Lang::En), word.0 as u64, 0xDE),
            Lang::Zh => cipher_word(word.0 as u64, 0x5A11),
            Lang::Ja => cipher_word(word.0 as u64, 0x3A77),
            Lang::WdId => {
                // Words never render in WdId mode (entity names become Q-ids
                // upstream); fall back to English for values.
                self.surface(word, Lang::En)
            }
        }
    }

    /// Renders a multi-word phrase.
    pub fn phrase(&self, words: &[WordId], lang: Lang) -> String {
        let parts: Vec<String> = words.iter().map(|&w| self.surface(w, lang)).collect();
        parts.join(" ")
    }
}

/// Pronounceable pseudo-word with `syllables` syllables, seeded by `seed`.
fn base_word(seed: u64, syllables: usize) -> String {
    let mut s = String::new();
    let mut state = mix(seed ^ 0xABCD_EF01);
    for _ in 0..syllables {
        state = mix(state);
        s.push_str(ONSETS[(state % ONSETS.len() as u64) as usize]);
        state = mix(state);
        s.push_str(VOWELS[(state % VOWELS.len() as u64) as usize]);
        state = mix(state);
        s.push_str(CODAS[(state % CODAS.len() as u64) as usize]);
    }
    s
}

/// Transliteration-style cipher: a keyed per-syllable rewrite of the
/// English form that keeps each syllable's onset consonant but replaces
/// vowels and codas. The result is what name translation/transliteration
/// gives the real benchmarks' literal channels: partial, noisy string
/// overlap (e.g. *Ronaldo* ↔ *罗纳尔多* transliterates back as *Luonaerduo*)
/// — enough for name-based methods to be mediocre, far from exact.
fn cipher_word(seed: u64, key: u64) -> String {
    // Regenerate the English form from the same seed path as
    // `WordBank::surface(_, Lang::En)`.
    let base = {
        let mut s = String::new();
        let mut state = mix(seed ^ 0xABCD_EF01);
        let syllables = 2 + (mix(seed) % 2) as usize;
        for _ in 0..syllables {
            state = mix(state);
            s.push_str(ONSETS[(state % ONSETS.len() as u64) as usize]);
            state = mix(state);
            s.push_str(VOWELS[(state % VOWELS.len() as u64) as usize]);
            state = mix(state);
            s.push_str(CODAS[(state % CODAS.len() as u64) as usize]);
        }
        s
    };
    // Rewrite: keep consonants, remap vowels through the key; occasionally
    // inject a foreign syllable.
    let mut out = String::with_capacity(base.len() + 4);
    let mut state = mix(seed.wrapping_mul(0x9E37_79B9).wrapping_add(key));
    for c in base.chars() {
        if "aeiou".contains(c) {
            state = mix(state);
            out.push_str(CIPHER_VOWELS[(state % CIPHER_VOWELS.len() as u64) as usize]);
        } else {
            out.push(c);
        }
    }
    state = mix(state);
    if state.is_multiple_of(3) {
        out.push_str(CIPHER_ONSETS[(state / 3 % CIPHER_ONSETS.len() as u64) as usize]);
        out.push('u');
    }
    out
}

/// Small deterministic mutation preserving most characters (literal langs).
fn mutate_literal(en: &str, seed: u64, key: u64) -> String {
    let chars: Vec<char> = en.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let state = mix(seed ^ (key << 32));
    let mut out: Vec<char> = chars.clone();
    match state % 4 {
        0 => {
            // accent one vowel
            let pos = (mix(state) % out.len() as u64) as usize;
            for (i, c) in out.iter_mut().enumerate().skip(pos) {
                let repl = match *c {
                    'a' => Some('à'),
                    'e' => Some('é'),
                    'i' => Some('ï'),
                    'o' => Some('ö'),
                    'u' => Some('ü'),
                    _ => None,
                };
                if let Some(r) = repl {
                    *c = r;
                    let _ = i;
                    break;
                }
            }
        }
        1 => {
            // double a consonant
            let pos = (mix(state) % out.len() as u64) as usize;
            let c = out[pos];
            if c.is_ascii_alphabetic() && !"aeiou".contains(c) {
                out.insert(pos, c);
            }
        }
        2 => {
            // append a silent suffix letter
            out.push(if key == 0xF1 { 'e' } else { 'z' });
        }
        _ => { /* identical */ }
    }
    out.into_iter().collect()
}

/// Character-level edit similarity in `[0,1]` (1 = identical); used by the
/// generator's own tests and by the CEA baseline.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let dist = levenshtein(a, b) as f64;
    let max_len = a.chars().count().max(b.chars().count()).max(1) as f64;
    1.0 - dist / max_len
}

/// Plain Levenshtein distance (two-row DP).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surfaces_are_deterministic() {
        let bank = WordBank::new();
        for lang in [Lang::En, Lang::Fr, Lang::De, Lang::Zh, Lang::Ja] {
            assert_eq!(bank.surface(WordId(7), lang), bank.surface(WordId(7), lang));
        }
    }

    #[test]
    fn different_words_differ() {
        let bank = WordBank::new();
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for i in 0..500 {
            if !seen.insert(bank.surface(WordId(i), Lang::En)) {
                collisions += 1;
            }
        }
        assert!(collisions < 10, "{collisions} collisions in 500 words");
    }

    #[test]
    fn literal_langs_are_string_similar() {
        let bank = WordBank::new();
        let mut total = 0.0;
        for i in 0..200 {
            let en = bank.surface(WordId(i), Lang::En);
            let fr = bank.surface(WordId(i), Lang::Fr);
            total += edit_similarity(&en, &fr);
        }
        let avg = total / 200.0;
        assert!(avg > 0.75, "FR should be literally close to EN, avg sim {avg}");
    }

    #[test]
    fn cipher_langs_are_transliteration_distance() {
        // The cipher models transliterated names: partial overlap, clearly
        // below the literal languages but above unrelated words.
        let bank = WordBank::new();
        let mut cipher_total = 0.0;
        let mut literal_total = 0.0;
        let mut unrelated_total = 0.0;
        for i in 0..200 {
            let en = bank.surface(WordId(i), Lang::En);
            cipher_total += edit_similarity(&en, &bank.surface(WordId(i), Lang::Zh));
            literal_total += edit_similarity(&en, &bank.surface(WordId(i), Lang::Fr));
            unrelated_total += edit_similarity(&en, &bank.surface(WordId(i + 1000), Lang::En));
        }
        let cipher = cipher_total / 200.0;
        let literal = literal_total / 200.0;
        let unrelated = unrelated_total / 200.0;
        assert!(
            cipher < literal - 0.1,
            "cipher sim {cipher} should be well below literal {literal}"
        );
        assert!(
            cipher > unrelated + 0.1,
            "cipher sim {cipher} should exceed unrelated-word sim {unrelated}"
        );
    }

    #[test]
    fn zh_and_ja_ciphers_differ() {
        let bank = WordBank::new();
        let same = (0..100)
            .filter(|&i| bank.surface(WordId(i), Lang::Zh) == bank.surface(WordId(i), Lang::Ja))
            .count();
        assert!(same < 5, "{same} identical across cipher keys");
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("x", "x"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("kitten", "sitting");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn phrases_join_words() {
        let bank = WordBank::new();
        let p = bank.phrase(&[WordId(1), WordId(2)], Lang::En);
        assert_eq!(p.split(' ').count(), 2);
    }
}
