//! Per-benchmark dataset profiles.
//!
//! Each profile fixes the two sides' [`DerivationSpec`]s so that the
//! generated pair reproduces the *phenomena* the paper attributes to that
//! benchmark (Section V-A1, Tables I and VI):
//!
//! | family  | density     | long tails | names across KGs            |
//! |---------|-------------|-----------|------------------------------|
//! | DBP15K  | dense       | few       | ZH/JA ciphered, FR near-literal |
//! | SRPRS   | sparse      | many      | literal (well-aligned)       |
//! | OpenEA D-W | sparse, disjoint facts | many | unalignable (Q-ids)  |
//!
//! Scale: datasets are generated at 1/10 of the originals (1 500 links for
//! the 15K sets, 10 000 for the 100K set) so a full table regenerates on a
//! laptop CPU in minutes. DESIGN.md documents this substitution.

use crate::derive::{derive_kg, DerivationSpec, GeneratedKg, PartitionSpec};
use crate::language::{Lang, SchemaDialect, ValueFormat};
use crate::world::{EntityKind, World, WorldConfig};
use sdea_kg::AlignmentSeeds;

/// Which benchmark a profile belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BenchmarkFamily {
    /// DBP15K (dense multilingual DBpedia).
    Dbp15k,
    /// SRPRS (sparse, realistic degree distribution).
    Srprs,
    /// OpenEA V1 (sparse + unalignable names).
    OpenEa,
}

/// A dataset recipe.
#[derive(Clone, Debug)]
pub struct DatasetProfile {
    /// Dataset name as in the paper (e.g. `ZH-EN`).
    pub name: &'static str,
    /// Benchmark family.
    pub family: BenchmarkFamily,
    /// Target number of alignment links.
    pub n_links: usize,
    /// Spec of KG1.
    pub spec1: DerivationSpec,
    /// Spec of KG2.
    pub spec2: DerivationSpec,
    /// Master seed.
    pub seed: u64,
}

/// A generated dataset: two KGs plus ground-truth links.
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// Dataset name.
    pub name: &'static str,
    /// Benchmark family.
    pub family: BenchmarkFamily,
    /// First KG with world mapping.
    pub gen1: GeneratedKg,
    /// Second KG with world mapping.
    pub gen2: GeneratedKg,
    /// Ground-truth seed links.
    pub seeds: AlignmentSeeds,
    /// Kind of each world entity (indexed by world id).
    pub world_kinds: Vec<EntityKind>,
}

impl GeneratedDataset {
    /// Convenience: the first KG.
    pub fn kg1(&self) -> &sdea_kg::KnowledgeGraph {
        &self.gen1.kg
    }

    /// Convenience: the second KG.
    pub fn kg2(&self) -> &sdea_kg::KnowledgeGraph {
        &self.gen2.kg
    }
}

fn dense_spec(
    lang: Lang,
    dialect: SchemaDialect,
    format: ValueFormat,
    seed: u64,
) -> DerivationSpec {
    DerivationSpec {
        lang,
        dialect,
        format,
        entity_keep: 0.97,
        rel_keep: 0.92,
        rel_partition: None,
        attr_keep: 0.92,
        name_attr_prob: 0.95,
        comment_prob: 0.85,
        long_tail_frac: 0.04,
        qid_names: false,
        date_year_only: 0.10,
        seed,
    }
}

fn sparse_spec(
    lang: Lang,
    dialect: SchemaDialect,
    format: ValueFormat,
    seed: u64,
) -> DerivationSpec {
    DerivationSpec {
        lang,
        dialect,
        format,
        entity_keep: 0.97,
        rel_keep: 0.38,
        rel_partition: None,
        attr_keep: 0.75,
        name_attr_prob: 0.92,
        comment_prob: 0.70,
        long_tail_frac: 0.30,
        qid_names: false,
        date_year_only: 0.20,
        seed,
    }
}

fn openea_spec(
    lang: Lang,
    dialect: SchemaDialect,
    format: ValueFormat,
    side: u8,
    qid: bool,
    seed: u64,
) -> DerivationSpec {
    DerivationSpec {
        lang,
        dialect,
        format,
        entity_keep: 0.97,
        rel_keep: 0.55,
        rel_partition: Some(PartitionSpec { side, shared: 0.04 }),
        attr_keep: 0.80,
        name_attr_prob: if qid { 0.0 } else { 0.92 },
        comment_prob: 0.55,
        long_tail_frac: 0.25,
        qid_names: qid,
        date_year_only: 0.45,
        seed,
    }
}

impl DatasetProfile {
    /// DBP15K ZH-EN.
    pub fn dbp15k_zh_en(n_links: usize, seed: u64) -> Self {
        DatasetProfile {
            name: "ZH-EN",
            family: BenchmarkFamily::Dbp15k,
            n_links,
            spec1: dense_spec(
                Lang::Zh,
                SchemaDialect::Alt,
                ValueFormat::DottedMetric,
                seed * 31 + 1,
            ),
            spec2: dense_spec(Lang::En, SchemaDialect::Dbp, ValueFormat::IsoCm, seed * 31 + 2),
            seed,
        }
    }

    /// DBP15K JA-EN.
    pub fn dbp15k_ja_en(n_links: usize, seed: u64) -> Self {
        DatasetProfile {
            name: "JA-EN",
            family: BenchmarkFamily::Dbp15k,
            n_links,
            spec1: dense_spec(
                Lang::Ja,
                SchemaDialect::Alt,
                ValueFormat::DottedMetric,
                seed * 31 + 3,
            ),
            spec2: dense_spec(Lang::En, SchemaDialect::Dbp, ValueFormat::IsoCm, seed * 31 + 4),
            seed: seed + 1,
        }
    }

    /// DBP15K FR-EN.
    pub fn dbp15k_fr_en(n_links: usize, seed: u64) -> Self {
        DatasetProfile {
            name: "FR-EN",
            family: BenchmarkFamily::Dbp15k,
            n_links,
            spec1: dense_spec(
                Lang::Fr,
                SchemaDialect::Alt,
                ValueFormat::DottedMetric,
                seed * 31 + 5,
            ),
            spec2: dense_spec(Lang::En, SchemaDialect::Dbp, ValueFormat::IsoCm, seed * 31 + 6),
            seed: seed + 2,
        }
    }

    /// SRPRS EN-FR.
    pub fn srprs_en_fr(n_links: usize, seed: u64) -> Self {
        DatasetProfile {
            name: "EN-FR",
            family: BenchmarkFamily::Srprs,
            n_links,
            spec1: sparse_spec(Lang::En, SchemaDialect::Dbp, ValueFormat::IsoCm, seed * 31 + 7),
            spec2: sparse_spec(
                Lang::Fr,
                SchemaDialect::Alt,
                ValueFormat::DottedMetric,
                seed * 31 + 8,
            ),
            seed: seed + 3,
        }
    }

    /// SRPRS EN-DE.
    pub fn srprs_en_de(n_links: usize, seed: u64) -> Self {
        DatasetProfile {
            name: "EN-DE",
            family: BenchmarkFamily::Srprs,
            n_links,
            spec1: sparse_spec(Lang::En, SchemaDialect::Dbp, ValueFormat::IsoCm, seed * 31 + 9),
            spec2: sparse_spec(
                Lang::De,
                SchemaDialect::Alt,
                ValueFormat::DottedMetric,
                seed * 31 + 10,
            ),
            seed: seed + 4,
        }
    }

    /// SRPRS DBP-WD (monolingual; WD ids replaced by names per the paper).
    pub fn srprs_dbp_wd(n_links: usize, seed: u64) -> Self {
        DatasetProfile {
            name: "DBP-WD",
            family: BenchmarkFamily::Srprs,
            n_links,
            spec1: sparse_spec(Lang::En, SchemaDialect::Dbp, ValueFormat::IsoCm, seed * 31 + 11),
            spec2: sparse_spec(
                Lang::En,
                SchemaDialect::Alt,
                ValueFormat::DottedMetric,
                seed * 31 + 12,
            ),
            seed: seed + 5,
        }
    }

    /// SRPRS DBP-YG (YAGO side is attribute-poor).
    pub fn srprs_dbp_yg(n_links: usize, seed: u64) -> Self {
        let mut yg =
            sparse_spec(Lang::En, SchemaDialect::Alt, ValueFormat::DottedMetric, seed * 31 + 14);
        // YAGO: 21 attributes, ~1.5 attr triples per entity in Table I.
        yg.attr_keep = 0.15;
        yg.comment_prob = 0.25;
        DatasetProfile {
            name: "DBP-YG",
            family: BenchmarkFamily::Srprs,
            n_links,
            spec1: sparse_spec(Lang::En, SchemaDialect::Dbp, ValueFormat::IsoCm, seed * 31 + 13),
            spec2: yg,
            seed: seed + 6,
        }
    }

    /// OpenEA D_W_15K_V1 (default scale) / D_W_100K_V1 (larger `n_links`).
    pub fn openea_d_w(n_links: usize, seed: u64) -> Self {
        DatasetProfile {
            name: if n_links > 5000 { "D_W_100K_V1" } else { "D_W_15K_V1" },
            family: BenchmarkFamily::OpenEa,
            n_links,
            spec1: openea_spec(
                Lang::En,
                SchemaDialect::Dbp,
                ValueFormat::IsoCm,
                0,
                false,
                seed * 31 + 15,
            ),
            spec2: openea_spec(
                Lang::WdId,
                SchemaDialect::Alt,
                ValueFormat::DottedMetric,
                1,
                true,
                seed * 31 + 16,
            ),
            seed: seed + 7,
        }
    }

    /// Grows the profile `factor`× by multiplying its link target.
    /// [`generate`] oversizes the world proportionally to `n_links`, so
    /// entity and triple counts scale near-linearly while every
    /// distributional phenomenon the profile encodes (density, long tails,
    /// name formats) is preserved — the knob behind the `--scale` CLI flag
    /// and the out-of-core scaling benchmarks. `factor = 1` is the
    /// identity; determinism is unchanged (same seed ⇒ same bytes).
    pub fn scaled(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be >= 1");
        self.n_links *= factor;
        self
    }

    /// All nine datasets of the paper at reproduction scale.
    pub fn all_paper_datasets(seed: u64) -> Vec<DatasetProfile> {
        vec![
            Self::dbp15k_zh_en(1500, seed),
            Self::dbp15k_ja_en(1500, seed),
            Self::dbp15k_fr_en(1500, seed),
            Self::srprs_en_fr(1500, seed),
            Self::srprs_en_de(1500, seed),
            Self::srprs_dbp_wd(1500, seed),
            Self::srprs_dbp_yg(1500, seed),
            Self::openea_d_w(1500, seed),
            Self::openea_d_w(10_000, seed),
        ]
    }
}

/// Generates a dataset from a profile.
pub fn generate(profile: &DatasetProfile) -> GeneratedDataset {
    // Oversize the world so that after presence sampling both sides still
    // share >= n_links alignable entities.
    let keep = profile.spec1.entity_keep * profile.spec2.entity_keep;
    let n_core = ((profile.n_links as f64) / keep * 1.12).ceil() as usize;
    let world = World::generate(WorldConfig { n_core, seed: profile.seed });
    let gen1 = derive_kg(&world, &profile.spec1);
    let gen2 = derive_kg(&world, &profile.spec2);
    // Ground truth: world entities (non-concept) present in both sides.
    let mut pairs = Vec::new();
    for wid in world.alignable() {
        if let (Some(&e1), Some(&e2)) =
            (gen1.entity_of_world.get(&wid), gen2.entity_of_world.get(&wid))
        {
            pairs.push((e1, e2));
        }
    }
    pairs.truncate(profile.n_links);
    let world_kinds = world.entities.iter().map(|e| e.kind).collect();
    GeneratedDataset {
        name: profile.name,
        family: profile.family,
        gen1,
        gen2,
        seeds: AlignmentSeeds::new(pairs),
        world_kinds,
    }
}

/// Fraction of seed pairs whose two entities share at least one aligned
/// neighbour pair — the quantity behind the paper's D-W error analysis
/// ("99.6% of the to-be-aligned entities in the test set have no matching
/// neighbors").
pub fn matching_neighbor_fraction(ds: &GeneratedDataset) -> f64 {
    use std::collections::HashSet;
    let mut have = 0usize;
    for &(e1, e2) in &ds.seeds.pairs {
        let n1: HashSet<usize> = ds
            .gen1
            .kg
            .neighbors(e1)
            .iter()
            .map(|&(n, _, _)| ds.gen1.world_of[n.0 as usize])
            .collect();
        let shared = ds.gen2.kg.neighbors(e2).iter().any(|&(n, _, _)| {
            let w = ds.gen2.world_of[n.0 as usize];
            // Concept hubs match trivially; the paper counts informative
            // (specific-entity) matches.
            n1.contains(&w) && ds.world_kinds[w] != EntityKind::Concept
        });
        if shared {
            have += 1;
        }
    }
    have as f64 / ds.seeds.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_kg::DegreeBuckets;

    #[test]
    fn small_dataset_generates_with_requested_links() {
        let p = DatasetProfile::dbp15k_zh_en(150, 3);
        let ds = generate(&p);
        assert_eq!(ds.seeds.len(), 150);
        assert!(ds.kg1().num_entities() >= 150);
        assert!(ds.kg2().num_entities() >= 150);
    }

    #[test]
    fn seeds_reference_valid_entities() {
        let ds = generate(&DatasetProfile::srprs_en_fr(120, 5));
        for &(e1, e2) in &ds.seeds.pairs {
            assert!((e1.0 as usize) < ds.kg1().num_entities());
            assert!((e2.0 as usize) < ds.kg2().num_entities());
        }
    }

    #[test]
    fn seeds_are_bijective() {
        let ds = generate(&DatasetProfile::dbp15k_fr_en(200, 7));
        let lefts: std::collections::HashSet<_> = ds.seeds.pairs.iter().map(|p| p.0).collect();
        let rights: std::collections::HashSet<_> = ds.seeds.pairs.iter().map(|p| p.1).collect();
        assert_eq!(lefts.len(), ds.seeds.len());
        assert_eq!(rights.len(), ds.seeds.len());
    }

    #[test]
    fn seeds_map_same_world_entity() {
        let ds = generate(&DatasetProfile::openea_d_w(150, 9));
        for &(e1, e2) in &ds.seeds.pairs {
            assert_eq!(
                ds.gen1.world_of[e1.0 as usize], ds.gen2.world_of[e2.0 as usize],
                "seed pair must denote the same world entity"
            );
        }
    }

    #[test]
    fn srprs_is_sparser_than_dbp15k() {
        let dense = generate(&DatasetProfile::dbp15k_zh_en(300, 11));
        let sparse = generate(&DatasetProfile::srprs_en_fr(300, 11));
        let d_dense = DegreeBuckets::of_pair(dense.kg1(), dense.kg2());
        let d_sparse = DegreeBuckets::of_pair(sparse.kg1(), sparse.kg2());
        assert!(
            d_sparse.upto3 > d_dense.upto3 + 0.15,
            "SRPRS 1..3 fraction {:.2} should exceed DBP15K {:.2} (Table VI shape)",
            d_sparse.upto3,
            d_dense.upto3
        );
        assert!(d_sparse.mean_degree < d_dense.mean_degree);
    }

    #[test]
    fn openea_w_side_has_qid_names() {
        let ds = generate(&DatasetProfile::openea_d_w(150, 13));
        let qids =
            ds.gen2.kg.entities().filter(|&e| ds.gen2.kg.entity_name(e).starts_with('Q')).count();
        assert!(qids * 10 >= ds.kg2().num_entities() * 8, "most W names are Q-ids");
        // and the name attribute is absent on the W side
        let has_label =
            ds.gen2.kg.attr_triples().iter().any(|t| ds.gen2.kg.attribute_name(t.attr) == "label");
        assert!(!has_label, "W side must not expose readable names");
    }

    #[test]
    fn openea_has_few_matching_neighbors() {
        let open = generate(&DatasetProfile::openea_d_w(300, 17));
        let dense = generate(&DatasetProfile::dbp15k_zh_en(300, 17));
        let f_open = matching_neighbor_fraction(&open);
        let f_dense = matching_neighbor_fraction(&dense);
        assert!(
            f_open < f_dense * 0.6,
            "OpenEA matching-neighbor fraction {f_open:.2} should be far below DBP15K {f_dense:.2}"
        );
    }

    #[test]
    fn all_paper_datasets_enumerate_nine() {
        let all = DatasetProfile::all_paper_datasets(1);
        assert_eq!(all.len(), 9);
        let names: Vec<&str> = all.iter().map(|p| p.name).collect();
        assert!(names.contains(&"ZH-EN"));
        assert!(names.contains(&"DBP-YG"));
        assert!(names.contains(&"D_W_100K_V1"));
    }

    #[test]
    fn generation_is_deterministic() {
        let p = DatasetProfile::srprs_dbp_yg(100, 21);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.kg1().rel_triples(), b.kg1().rel_triples());
        assert_eq!(a.kg2().attr_triples(), b.kg2().attr_triples());
    }

    #[test]
    fn scaled_profile_roughly_doubles_entities_at_2x() {
        let base = DatasetProfile::dbp15k_zh_en(150, 3);
        let ds1 = generate(&base);
        let ds2 = generate(&DatasetProfile::dbp15k_zh_en(150, 3).scaled(2));
        assert_eq!(ds2.seeds.len(), 300, "2x scale doubles the link target exactly");
        for (n1, n2) in [
            (ds1.kg1().num_entities(), ds2.kg1().num_entities()),
            (ds1.kg2().num_entities(), ds2.kg2().num_entities()),
        ] {
            let ratio = n2 as f64 / n1 as f64;
            assert!(
                (1.7..=2.3).contains(&ratio),
                "entities should ~double at 2x scale, got {n1} -> {n2} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn scaled_generation_is_deterministic() {
        let a = generate(&DatasetProfile::srprs_en_fr(80, 21).scaled(3));
        let b = generate(&DatasetProfile::srprs_en_fr(80, 21).scaled(3));
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.kg1().rel_triples(), b.kg1().rel_triples());
        assert_eq!(a.kg1().attr_triples(), b.kg1().attr_triples());
        assert_eq!(a.kg2().rel_triples(), b.kg2().rel_triples());
        assert_eq!(a.kg2().attr_triples(), b.kg2().attr_triples());
    }

    #[test]
    fn yg_side_is_attribute_poor() {
        let ds = generate(&DatasetProfile::srprs_dbp_yg(300, 23));
        let per_entity_1 = ds.kg1().attr_triples().len() as f64 / ds.kg1().num_entities() as f64;
        let per_entity_2 = ds.kg2().attr_triples().len() as f64 / ds.kg2().num_entities() as f64;
        assert!(
            per_entity_2 < per_entity_1 * 0.6,
            "YG side {per_entity_2:.2} attrs/entity vs DBP {per_entity_1:.2}"
        );
    }
}
